// Interactive steering: the scientist talks back to the simulation.
//
//   $ ./interactive_steering
//
// Implements the paper's future-work scenario ("user input based on the
// visualization can steer the simulation") with an automated scientist
// policy at the visualization site:
//
//   1. While the system is quiet, frames every 25 minutes are fine.
//   2. The moment a visualized frame shows the depression below 995 hPa,
//      request denser output (every 10 simulated minutes) — landfall
//      decisions need temporal detail.
//   3. When the nest appears, widen it to 12 degrees for more context.
//   4. Cap refinement at 15 km — this scientist's storage budget does not
//      allow 10-km frames.
//
// Every command crosses the WAN back to the simulation site, where the
// application manager and job handler apply it (checkpoint/restart where
// needed) — and the decision algorithm keeps balancing the disk around the
// new requirements.
#include <algorithm>
#include <cstdio>

#include "core/framework.hpp"
#include "util/calendar.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main() {
  set_log_level(LogLevel::kInfo);

  ExperimentConfig cfg;
  cfg.name = "interactive";
  cfg.site = intra_country_site();
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 10.0;
  cfg.steering_latency = WallSeconds(0.5);
  cfg.seed = 21;

  bool asked_for_density = false;
  bool widened_nest = false;
  bool capped_resolution = false;
  cfg.steering_policy = [&](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!capped_resolution && obs.sequence == 0) {
      capped_resolution = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetResolutionFloor;
      c.resolution_floor_km = 15.0;
      c.reason = "storage budget: no finer than 15 km";
      return c;
    }
    if (!asked_for_density && obs.min_pressure_hpa < 995.0) {
      asked_for_density = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetOutputBounds;
      c.bounds.min_output_interval = SimSeconds::minutes(3.0);
      c.bounds.max_output_interval = SimSeconds::minutes(10.0);
      c.reason = "cyclone forming: need frames every <= 10 sim-min";
      return c;
    }
    if (!widened_nest && obs.nest_active) {
      widened_nest = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetNestExtent;
      c.nest_extent_deg = 12.0;
      c.reason = "wider nest for landfall context";
      return c;
    }
    return std::nullopt;
  };

  const ExperimentResult r = run_experiment(cfg);

  std::printf("\n=== steering log ===\n");
  for (const SteeringRecord& s : r.steering) {
    std::printf("  [%s] %-22s %s\n", hh_mm(s.delivered_at).c_str(),
                to_string(s.command.kind), s.command.reason.c_str());
  }
  std::printf("\ncompleted=%s; %lld frames visualized (vs ~144 without the "
              "density request); finest resolution used: ",
              r.summary.completed ? "yes" : "no",
              static_cast<long long>(r.summary.frames_visualized));
  double finest = 1e9;
  for (const auto& s : r.samples) finest = std::min(finest, s.resolution_km);
  std::printf("%.1f km (floor was 15)\n", finest);
  std::printf("min free disk %.1f%% — the optimizer absorbed the extra "
              "output within the storage budget\n",
              r.summary.min_free_disk_percent);
  return 0;
}
