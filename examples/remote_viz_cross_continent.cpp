// Remote visualization over a 60 Kbps cross-continent link.
//
//   $ ./remote_viz_cross_continent
//
// The paper's hardest setting: the simulation site (moria, 100 GB disk)
// feeds a visualization site across a trickle WAN. Runs both decision
// algorithms and narrates the contrast — the greedy heuristic rides the
// disk into the CRITICAL flag and stalls for good, while the optimization
// method budgets the disk from the first decision and completes the entire
// 60-hour Aila window.
#include <cstdio>

#include "core/framework.hpp"
#include "util/calendar.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

namespace {

ExperimentConfig make_config(AlgorithmKind algorithm) {
  ExperimentConfig cfg;
  cfg.name = "cross-continent";
  cfg.site = cross_continent_site();
  cfg.algorithm = algorithm;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 10.0;
  cfg.seed = 42;
  return cfg;
}

void narrate(const ExperimentResult& r) {
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  std::printf("\n--- %s ---\n", to_string(r.config.algorithm));
  // Walk the telemetry and report the notable transitions.
  bool was_critical = false;
  double last_free_decade = 100.0;
  for (const TelemetrySample& s : r.samples) {
    if (s.free_disk_percent < last_free_decade - 20.0) {
      last_free_decade = s.free_disk_percent;
      std::printf("  [%s] disk down to %.0f%% free (sim at %s)\n",
                  hh_mm(s.wall_time).c_str(), s.free_disk_percent,
                  epoch.label(s.sim_time).c_str());
    }
    if (s.critical && !was_critical) {
      std::printf("  [%s] CRITICAL flag set -- simulation stalls "
                  "(disk %.1f%% free)\n",
                  hh_mm(s.wall_time).c_str(), s.free_disk_percent);
    }
    if (!s.critical && was_critical) {
      std::printf("  [%s] CRITICAL cleared -- simulation resumes\n",
                  hh_mm(s.wall_time).c_str());
    }
    was_critical = s.critical;
  }
  std::printf("  result: %s; visualized %lld frames up to %s; "
              "min free disk %.1f%%; stalled %.1f h\n",
              r.summary.completed ? "completed the full window"
                                  : "DID NOT complete",
              static_cast<long long>(r.summary.frames_visualized),
              r.vis_records.empty()
                  ? "(nothing)"
                  : epoch.label(r.vis_records.back().sim_time).c_str(),
              r.summary.min_free_disk_percent,
              r.summary.total_stall_time.as_hours());
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Cross-continent remote visualization: moria -> IISc at "
              "60 Kbps, 100 GB stable storage\n");

  const ExperimentResult greedy =
      run_experiment(make_config(AlgorithmKind::kGreedyThreshold));
  const ExperimentResult opt =
      run_experiment(make_config(AlgorithmKind::kOptimization));
  narrate(greedy);
  narrate(opt);

  std::printf("\nThe paper's conclusion, reproduced: \"a simple and "
              "intuitive greedy approach may lead to low throughput, "
              "stalling of simulation and disk overflow\" — the optimizer "
              "avoids all three.\n");
  return 0;
}
