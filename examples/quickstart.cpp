// Quickstart: run one adaptive simulation + remote-visualization experiment
// and read the results.
//
//   $ ./quickstart
//
// Sets up the paper's inter-department configuration (Table IV), runs the
// LP-based optimization manager over the full 60-hour Aila window, and
// prints what the framework did: decisions taken, frames shipped and
// visualized, storage safety. Also shows the application-configuration
// file round trip (the on-disk protocol between the manager, job handler
// and simulation).
#include <cstdio>

#include "core/framework.hpp"
#include "util/calendar.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main() {
  set_log_level(LogLevel::kInfo);  // watch the daemons narrate

  // 1. Describe the experiment: site (machine + disk + WAN), algorithm,
  //    simulated window, and how coarse the compute grid may be.
  ExperimentConfig cfg;
  cfg.name = "quickstart";
  cfg.site = inter_department_site();           // fire, 182 GB, 56 Mbps
  cfg.algorithm = AlgorithmKind::kOptimization; // Section IV-B LP
  cfg.sim_window = SimSeconds::hours(60.0);     // 22-May 18:00 .. 25-May 06:00
  cfg.max_wall = WallSeconds::hours(48.0);
  cfg.model.compute_scale = 10.0;               // coarse + fast for a demo
  cfg.seed = 7;

  // 2. Run. Everything — profiling the machine, launching WRF-like runs,
  //    shipping frames, periodic decisions, restarts — happens inside.
  const ExperimentResult result = run_experiment(cfg);

  // 3. Read the outcome.
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  std::printf("\n=== quickstart summary ===\n");
  std::printf("simulation completed: %s (reached %s in %s wall time)\n",
              result.summary.completed ? "yes" : "no",
              epoch.label(result.summary.sim_reached).c_str(),
              hh_mm(result.summary.sim_finished_wall).c_str());
  std::printf("frames written/sent/visualized: %lld/%lld/%lld\n",
              static_cast<long long>(result.summary.frames_written),
              static_cast<long long>(result.summary.frames_sent),
              static_cast<long long>(result.summary.frames_visualized));
  std::printf("storage: peak %s used, minimum %.1f%% free, stalls %.1f h\n",
              to_string(result.summary.peak_disk_used).c_str(),
              result.summary.min_free_disk_percent,
              result.summary.total_stall_time.as_hours());
  std::printf("adaptations: %d decisions, %d restarts\n",
              result.summary.decision_count, result.summary.restarts);

  std::printf("\nDecision log (what the application manager chose):\n");
  for (const DecisionRecord& d : result.decisions) {
    std::printf("  [%s] disk %5.1f%% -> %2d procs, OI %.1f sim-min%s\n",
                hh_mm(d.wall_time).c_str(), d.input.free_disk_percent,
                d.decision.processors,
                d.decision.output_interval.as_minutes(),
                d.decision.critical ? "  CRITICAL" : "");
  }

  std::printf("\nCyclone track (every ~6 simulated hours):\n");
  for (std::size_t i = 0; i < result.track.size(); i += 12) {
    const TrackPoint& p = result.track[i];
    std::printf("  %s  eye (%.1fN, %.1fE)  min pressure %.1f hPa\n",
                epoch.label(p.time).c_str(), p.eye.lat, p.eye.lon,
                p.min_pressure_hpa);
  }

  // 4. The application-configuration file: the paper's components exchange
  //    settings through an on-disk file; here is the same protocol.
  ApplicationConfiguration app;
  app.processors = 48;
  app.output_interval = SimSeconds::minutes(25.0);
  app.resolution_km = 10.0;
  app.save("quickstart_app_config.ini");
  const ApplicationConfiguration loaded =
      ApplicationConfiguration::load("quickstart_app_config.ini");
  std::printf("\napplication config round trip: %d procs, OI %.0f min, "
              "%.0f km -> quickstart_app_config.ini\n",
              loaded.processors, loaded.output_interval.as_minutes(),
              loaded.resolution_km);
  return 0;
}
