// Cyclone Aila tracking with real rendered output.
//
//   $ ./cyclone_aila_tracking [output_dir]
//
// Runs the mesoscale model standalone (no resource constraints) at a finer
// compute grid than the benches use, walks the Table III resolution ladder
// as the storm deepens, and renders the paper's Figure-3/4-style imagery:
// perturbation-pressure pseudocolor with contours, wind glyphs, the moving
// 1:3 nest box and the storm track, written as PPM images plus an NCL frame
// file and a track CSV.
#include <cstdio>
#include <filesystem>
#include <string>

#include "util/calendar.hpp"
#include "util/csv.hpp"
#include "vis/renderer.hpp"
#include "weather/model.hpp"

using namespace adaptviz;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "aila_out";
  std::filesystem::create_directories(out_dir);

  ModelConfig cfg;
  cfg.compute_scale = 5.0;  // finer fields than the benches: nicer imagery
  WeatherModel model(cfg);
  const CalendarEpoch epoch = CalendarEpoch::aila_start();

  RenderOptions pressure_opts;
  pressure_opts.width = 720;
  pressure_opts.field = RenderField::kPressure;
  RenderOptions wind_opts;
  wind_opts.width = 720;
  wind_opts.field = RenderField::kWindSpeed;
  wind_opts.draw_contours = false;
  wind_opts.draw_streamlines = true;
  RenderOptions satellite_opts;
  satellite_opts.width = 720;
  satellite_opts.field = RenderField::kHeight;
  satellite_opts.field_alpha = 0.15;  // mostly terrain under the clouds
  satellite_opts.draw_contours = false;
  satellite_opts.draw_glyphs = false;
  satellite_opts.draw_cloud_volume = true;
  const FrameRenderer pressure_view(pressure_opts);
  const FrameRenderer wind_view(wind_opts);
  const FrameRenderer satellite_view(satellite_opts);

  std::printf("Tracking cyclone Aila, %s onward (images -> %s/)\n",
              epoch.label(SimSeconds(0.0)).c_str(), out_dir.c_str());

  int frame_no = 0;
  double next_render_h = 0.0;
  while (model.sim_time() < SimSeconds::hours(60.0)) {
    if (model.sim_time().as_hours() >= next_render_h) {
      const NclFile frame = model.make_frame();
      const auto& track = model.tracker().track();
      char name[128];
      std::snprintf(name, sizeof name, "%s/pressure_%03d.ppm",
                    out_dir.c_str(), frame_no);
      pressure_view.render(frame, &track).save_ppm(name);
      std::snprintf(name, sizeof name, "%s/wind_%03d.ppm", out_dir.c_str(),
                    frame_no);
      wind_view.render(frame, &track).save_ppm(name);
      std::snprintf(name, sizeof name, "%s/satellite_%03d.ppm",
                    out_dir.c_str(), frame_no);
      satellite_view.render(frame, &track).save_ppm(name);
      std::printf("  %s  p=%7.2f hPa  wind=%4.1f m/s  res=%4.1f km  "
                  "nest=%s  -> frame %03d\n",
                  epoch.label(model.sim_time()).c_str(),
                  model.min_pressure_hpa(), model.tracker().max_wind_ms(),
                  model.modeled_resolution_km(),
                  model.nest_active() ? "yes" : "no ", frame_no);
      ++frame_no;
      next_render_h += 3.0;
    }
    model.step();
    if (model.resolution_change_pending()) {
      std::printf("  >> refining to %.1f km (pressure %.2f hPa) at %s\n",
                  model.recommended_resolution_km(), model.min_pressure_hpa(),
                  epoch.label(model.sim_time()).c_str());
      model.set_modeled_resolution(model.recommended_resolution_km());
    }
  }

  // Final artifacts: the last frame as NCL (the wire/disk format) and the
  // full track.
  model.make_frame().save(out_dir + "/final_frame.ncl");
  CsvTable track_csv({"sim_time", "lat", "lon", "min_pressure_hpa",
                      "max_wind_ms"});
  for (const TrackPoint& p : model.tracker().track()) {
    track_csv.add_row({epoch.label(p.time), p.eye.lat, p.eye.lon,
                       p.min_pressure_hpa, p.max_wind_ms});
  }
  track_csv.save(out_dir + "/track.csv");

  std::printf("\nDone: %d rendered times, track.csv (%zu points), "
              "final_frame.ncl (%s) in %s/\n",
              frame_no, model.tracker().track().size(),
              to_string(Bytes(static_cast<std::int64_t>(
                  model.make_frame().encoded_size()))).c_str(),
              out_dir.c_str());
  std::printf("View PPMs with any image viewer, e.g. `magick display "
              "%s/pressure_010.ppm`.\n",
              out_dir.c_str());
  return 0;
}
