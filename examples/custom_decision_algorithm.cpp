// Extending the framework with a custom decision algorithm.
//
//   $ ./custom_decision_algorithm
//
// The DecisionAlgorithm interface is the framework's extension point: this
// example implements a "bandwidth-matched" policy — pick the largest output
// frequency whose steady-state production rate the observed WAN can drain,
// then run at maximum processors — and compares it against the paper's two
// algorithms on the intra-country configuration.
//
// (The policy deliberately ignores the disk, so it beats greedy but loses
// to the LP when the network estimate is optimistic — a nice illustration
// of why the paper's formulation includes the disk constraint.)
#include <algorithm>
#include <cstdio>

#include "core/framework.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

using namespace adaptviz;

namespace {

class BandwidthMatchedAlgorithm final : public DecisionAlgorithm {
 public:
  Decision decide(const DecisionInput& in) override {
    const PerformanceModel& perf = *in.perf;
    const double t = perf.fastest_step_time(in.work_units).seconds();
    const double tio =
        in.frame_bytes.as_double() / in.io_bandwidth.bytes_per_sec();
    const double b = std::max(1.0, in.observed_bandwidth.bytes_per_sec());

    // Steady state: one frame of size O per (steps_per_frame * t + TIO)
    // must not exceed the drain rate b. Solve for the interval.
    const double cycle_needed = in.frame_bytes.as_double() / b;
    const double steps_needed = (cycle_needed - tio) / t;
    const SimSeconds oi(std::max(1.0, steps_needed) *
                        in.integration_step.seconds());

    Decision d;
    d.processors = in.max_processors;
    d.output_interval = quantize_output_interval(oi, in.integration_step,
                                                 in.bounds);
    d.note = format("bandwidth-matched: OI=%.1f sim-min for %s",
                    d.output_interval.as_minutes(),
                    to_string(in.observed_bandwidth).c_str());
    return d;
  }
  std::string name() const override { return "bandwidth-matched"; }
};

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.name = "custom-algorithm-demo";
  cfg.site = intra_country_site();
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 10.0;
  cfg.seed = 11;
  return cfg;
}

void report(const char* name, const ExperimentSummary& s) {
  std::printf("%-20s completed=%-3s wall=%5.1fh  min-free=%5.1f%%  "
              "frames visualized=%lld\n",
              name, s.completed ? "yes" : "NO",
              s.sim_finished_wall.as_hours(), s.min_free_disk_percent,
              static_cast<long long>(s.frames_visualized));
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf("Custom decision algorithm on the intra-country setting\n\n");

  // Built-ins via the configuration enum...
  ExperimentConfig cfg = base_config();
  cfg.algorithm = AlgorithmKind::kGreedyThreshold;
  report("greedy-threshold", run_experiment(cfg).summary);
  cfg.algorithm = AlgorithmKind::kOptimization;
  report("optimization", run_experiment(cfg).summary);

  // ...and the custom policy through the same manager machinery: the
  // framework components are reusable directly. For brevity we drive the
  // algorithm through a standalone decision loop here.
  BandwidthMatchedAlgorithm custom;
  GroundTruthMachine machine(cfg.site.machine, cfg.seed);
  BenchmarkProfiler profiler;
  PerformanceModel perf(profiler.profile(machine, 1.0),
                        cfg.site.machine.max_cores);
  DecisionInput in;
  in.free_disk_percent = 60.0;
  in.disk_capacity = cfg.site.disk_capacity;
  in.free_disk_bytes = cfg.site.disk_capacity * 0.6;
  in.observed_bandwidth = cfg.site.wan_nominal * cfg.site.wan_efficiency;
  in.io_bandwidth = cfg.site.io_bandwidth;
  in.work_units = 0.64;
  in.frame_bytes = Bytes::megabytes(900);
  in.integration_step = SimSeconds(60.0);
  in.remaining_sim_time = SimSeconds::hours(30.0);
  in.current_processors = cfg.site.machine.max_cores;
  in.current_output_interval = SimSeconds::minutes(3.0);
  in.perf = &perf;
  in.min_processors = cfg.site.machine.min_cores;
  in.max_processors = cfg.site.machine.max_cores;

  const Decision d = custom.decide(in);
  std::printf("\n%-20s one-shot decision: %d procs, OI %.1f sim-min\n",
              custom.name().c_str(), d.processors,
              d.output_interval.as_minutes());
  std::printf("  (%s)\n", d.note.c_str());
  std::printf("\nTo run a custom algorithm end to end, construct the "
              "framework components directly — see "
              "src/core/framework.cpp for the full wiring.\n");
  return 0;
}
