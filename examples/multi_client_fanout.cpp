// Multi-client frame serving at the visualization site.
//
//   $ ./multi_client_fanout
//
// The paper streams every frame to exactly one scientist. This example
// puts the serving subsystem (src/serve) behind the receiver instead: the
// inter-department Aila run fans out to a mixed fleet of viewer clients —
// fast campus workstations live-tailing the stream, a 2 Mbps home DSL
// straggler, and late-joining clients that replay the cyclone from the
// start out of the bounded frame cache, re-rendering whatever the
// stride-thinning eviction already dropped. Per-client backpressure means
// the straggler only ever holds itself back.
#include <cstdio>

#include "core/framework.hpp"
#include "util/calendar.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main() {
  set_log_level(LogLevel::kWarn);

  ExperimentConfig cfg;
  cfg.name = "multi-client-fanout";
  cfg.site = inter_department_site();
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 8.0;
  cfg.seed = 42;

  // A 4 GB cache (a handful of frames) with coverage-preserving eviction.
  cfg.serve.session.cache.capacity = Bytes::gigabytes(4.0);
  cfg.serve.session.cache.policy = EvictionPolicy::kStrideThinning;
  cfg.serve.session.rerender_workers = 2;

  // Six campus workstations tailing the live stream.
  for (ViewerConfig v :
       make_viewer_fleet(6, Bandwidth::mbps(100.0), 0.0, SimSeconds(0.0))) {
    cfg.serve.viewers.push_back(v);
  }
  // One home-DSL straggler on 2 Mbps: it skips frames, nobody waits for it.
  ViewerConfig dsl;
  dsl.name = "dsl-straggler";
  dsl.downlink.nominal = Bandwidth::mbps(2.0);
  cfg.serve.viewers.push_back(dsl);
  // Three scientists connecting 12 wall hours in, replaying from the start
  // of the cyclone window.
  for (int i = 0; i < 3; ++i) {
    ViewerConfig late;
    char name[32];
    std::snprintf(name, sizeof name, "late-joiner%d", i);
    late.name = name;
    late.mode = ViewerMode::kCatchUp;
    late.join_wall = WallSeconds::hours(12.0);
    cfg.serve.viewers.push_back(late);
  }

  std::printf("Serving the inter-department run to %zu viewer clients "
              "from a %s cache (%s eviction)\n\n",
              cfg.serve.viewers.size(),
              to_string(cfg.serve.session.cache.capacity).c_str(),
              to_string(cfg.serve.session.cache.policy));

  const ExperimentResult r = run_experiment(cfg);
  const CalendarEpoch epoch = CalendarEpoch::aila_start();

  std::printf("%-14s %-9s %8s %8s %6s %7s %8s  %s\n", "client", "mode",
              "frames", "skipped", "hits", "waits", "GB", "caught up to");
  for (const ClientSeries& c : r.clients) {
    std::printf("%-14s %-9s %8lld %8lld %6lld %7lld %8.2f  %s\n",
                c.name.c_str(), to_string(c.mode),
                static_cast<long long>(c.stats.frames_delivered),
                static_cast<long long>(c.stats.frames_skipped),
                static_cast<long long>(c.stats.cache_hits),
                static_cast<long long>(c.stats.rerender_waits),
                c.stats.bytes_delivered.gb(),
                c.stats.frames_delivered == 0
                    ? "(nothing)"
                    : epoch.label(c.stats.latest_sim_time).c_str());
  }

  const ExperimentSummary& s = r.summary;
  std::printf("\ncache: %lld hits / %lld misses (%.1f%% hit rate), "
              "%lld evictions, %lld re-renders, peak %s of %s cap\n",
              static_cast<long long>(s.cache_hits),
              static_cast<long long>(s.cache_misses),
              s.cache_hits + s.cache_misses == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(s.cache_hits) /
                        static_cast<double>(s.cache_hits + s.cache_misses),
              static_cast<long long>(s.cache_evictions),
              static_cast<long long>(s.rerenders),
              to_string(s.peak_cache_bytes).c_str(),
              to_string(cfg.serve.session.cache.capacity).c_str());
  std::printf("the %lld deliveries cost the WAN nothing: the simulation "
              "site still sent exactly %lld frames\n",
              static_cast<long long>(s.frames_served),
              static_cast<long long>(s.frames_sent));
  return 0;
}
