
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_config.cpp" "src/core/CMakeFiles/adaptviz_core.dir/app_config.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/app_config.cpp.o.d"
  "/root/repo/src/core/application_manager.cpp" "src/core/CMakeFiles/adaptviz_core.dir/application_manager.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/application_manager.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/core/CMakeFiles/adaptviz_core.dir/decision.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/decision.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/adaptviz_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/greedy_threshold.cpp" "src/core/CMakeFiles/adaptviz_core.dir/greedy_threshold.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/greedy_threshold.cpp.o.d"
  "/root/repo/src/core/job_handler.cpp" "src/core/CMakeFiles/adaptviz_core.dir/job_handler.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/job_handler.cpp.o.d"
  "/root/repo/src/core/lp_optimizer.cpp" "src/core/CMakeFiles/adaptviz_core.dir/lp_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/lp_optimizer.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/adaptviz_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/simulation_process.cpp" "src/core/CMakeFiles/adaptviz_core.dir/simulation_process.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/simulation_process.cpp.o.d"
  "/root/repo/src/core/static_algorithm.cpp" "src/core/CMakeFiles/adaptviz_core.dir/static_algorithm.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/static_algorithm.cpp.o.d"
  "/root/repo/src/core/storage_estimate.cpp" "src/core/CMakeFiles/adaptviz_core.dir/storage_estimate.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/storage_estimate.cpp.o.d"
  "/root/repo/src/core/telemetry.cpp" "src/core/CMakeFiles/adaptviz_core.dir/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/adaptviz_core.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/adaptviz_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/adaptviz_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/adaptviz_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adaptviz_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/adaptviz_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/adaptviz_steering.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
