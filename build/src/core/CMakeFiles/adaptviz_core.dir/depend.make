# Empty dependencies file for adaptviz_core.
# This may be replaced when dependencies are built.
