file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_core.dir/app_config.cpp.o"
  "CMakeFiles/adaptviz_core.dir/app_config.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/application_manager.cpp.o"
  "CMakeFiles/adaptviz_core.dir/application_manager.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/decision.cpp.o"
  "CMakeFiles/adaptviz_core.dir/decision.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/framework.cpp.o"
  "CMakeFiles/adaptviz_core.dir/framework.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/greedy_threshold.cpp.o"
  "CMakeFiles/adaptviz_core.dir/greedy_threshold.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/job_handler.cpp.o"
  "CMakeFiles/adaptviz_core.dir/job_handler.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/lp_optimizer.cpp.o"
  "CMakeFiles/adaptviz_core.dir/lp_optimizer.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/scenario.cpp.o"
  "CMakeFiles/adaptviz_core.dir/scenario.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/simulation_process.cpp.o"
  "CMakeFiles/adaptviz_core.dir/simulation_process.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/static_algorithm.cpp.o"
  "CMakeFiles/adaptviz_core.dir/static_algorithm.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/storage_estimate.cpp.o"
  "CMakeFiles/adaptviz_core.dir/storage_estimate.cpp.o.d"
  "CMakeFiles/adaptviz_core.dir/telemetry.cpp.o"
  "CMakeFiles/adaptviz_core.dir/telemetry.cpp.o.d"
  "libadaptviz_core.a"
  "libadaptviz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
