file(REMOVE_RECURSE
  "libadaptviz_core.a"
)
