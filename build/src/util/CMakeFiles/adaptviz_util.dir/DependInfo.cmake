
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/calendar.cpp" "src/util/CMakeFiles/adaptviz_util.dir/calendar.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/calendar.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/adaptviz_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/ini.cpp" "src/util/CMakeFiles/adaptviz_util.dir/ini.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/ini.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/adaptviz_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/parallel_for.cpp" "src/util/CMakeFiles/adaptviz_util.dir/parallel_for.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/parallel_for.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/adaptviz_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/util/CMakeFiles/adaptviz_util.dir/string_util.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/string_util.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/adaptviz_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/adaptviz_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
