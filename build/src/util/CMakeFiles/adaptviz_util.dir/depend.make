# Empty dependencies file for adaptviz_util.
# This may be replaced when dependencies are built.
