file(REMOVE_RECURSE
  "libadaptviz_util.a"
)
