file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_util.dir/calendar.cpp.o"
  "CMakeFiles/adaptviz_util.dir/calendar.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/csv.cpp.o"
  "CMakeFiles/adaptviz_util.dir/csv.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/ini.cpp.o"
  "CMakeFiles/adaptviz_util.dir/ini.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/logging.cpp.o"
  "CMakeFiles/adaptviz_util.dir/logging.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/parallel_for.cpp.o"
  "CMakeFiles/adaptviz_util.dir/parallel_for.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/rng.cpp.o"
  "CMakeFiles/adaptviz_util.dir/rng.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/string_util.cpp.o"
  "CMakeFiles/adaptviz_util.dir/string_util.cpp.o.d"
  "CMakeFiles/adaptviz_util.dir/units.cpp.o"
  "CMakeFiles/adaptviz_util.dir/units.cpp.o.d"
  "libadaptviz_util.a"
  "libadaptviz_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
