file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_transport.dir/bandwidth_estimator.cpp.o"
  "CMakeFiles/adaptviz_transport.dir/bandwidth_estimator.cpp.o.d"
  "CMakeFiles/adaptviz_transport.dir/receiver.cpp.o"
  "CMakeFiles/adaptviz_transport.dir/receiver.cpp.o.d"
  "CMakeFiles/adaptviz_transport.dir/sender.cpp.o"
  "CMakeFiles/adaptviz_transport.dir/sender.cpp.o.d"
  "libadaptviz_transport.a"
  "libadaptviz_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
