file(REMOVE_RECURSE
  "libadaptviz_transport.a"
)
