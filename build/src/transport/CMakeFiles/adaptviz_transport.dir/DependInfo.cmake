
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/bandwidth_estimator.cpp" "src/transport/CMakeFiles/adaptviz_transport.dir/bandwidth_estimator.cpp.o" "gcc" "src/transport/CMakeFiles/adaptviz_transport.dir/bandwidth_estimator.cpp.o.d"
  "/root/repo/src/transport/receiver.cpp" "src/transport/CMakeFiles/adaptviz_transport.dir/receiver.cpp.o" "gcc" "src/transport/CMakeFiles/adaptviz_transport.dir/receiver.cpp.o.d"
  "/root/repo/src/transport/sender.cpp" "src/transport/CMakeFiles/adaptviz_transport.dir/sender.cpp.o" "gcc" "src/transport/CMakeFiles/adaptviz_transport.dir/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
