# Empty dependencies file for adaptviz_transport.
# This may be replaced when dependencies are built.
