file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_perf.dir/perf_model.cpp.o"
  "CMakeFiles/adaptviz_perf.dir/perf_model.cpp.o.d"
  "libadaptviz_perf.a"
  "libadaptviz_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
