
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/perf_model.cpp" "src/perf/CMakeFiles/adaptviz_perf.dir/perf_model.cpp.o" "gcc" "src/perf/CMakeFiles/adaptviz_perf.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
