# Empty dependencies file for adaptviz_perf.
# This may be replaced when dependencies are built.
