file(REMOVE_RECURSE
  "libadaptviz_perf.a"
)
