
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/curve_fit.cpp" "src/numerics/CMakeFiles/adaptviz_numerics.dir/curve_fit.cpp.o" "gcc" "src/numerics/CMakeFiles/adaptviz_numerics.dir/curve_fit.cpp.o.d"
  "/root/repo/src/numerics/interpolation.cpp" "src/numerics/CMakeFiles/adaptviz_numerics.dir/interpolation.cpp.o" "gcc" "src/numerics/CMakeFiles/adaptviz_numerics.dir/interpolation.cpp.o.d"
  "/root/repo/src/numerics/linalg.cpp" "src/numerics/CMakeFiles/adaptviz_numerics.dir/linalg.cpp.o" "gcc" "src/numerics/CMakeFiles/adaptviz_numerics.dir/linalg.cpp.o.d"
  "/root/repo/src/numerics/statistics.cpp" "src/numerics/CMakeFiles/adaptviz_numerics.dir/statistics.cpp.o" "gcc" "src/numerics/CMakeFiles/adaptviz_numerics.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
