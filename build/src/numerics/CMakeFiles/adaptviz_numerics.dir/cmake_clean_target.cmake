file(REMOVE_RECURSE
  "libadaptviz_numerics.a"
)
