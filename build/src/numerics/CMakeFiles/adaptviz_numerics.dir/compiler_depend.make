# Empty compiler generated dependencies file for adaptviz_numerics.
# This may be replaced when dependencies are built.
