file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_numerics.dir/curve_fit.cpp.o"
  "CMakeFiles/adaptviz_numerics.dir/curve_fit.cpp.o.d"
  "CMakeFiles/adaptviz_numerics.dir/interpolation.cpp.o"
  "CMakeFiles/adaptviz_numerics.dir/interpolation.cpp.o.d"
  "CMakeFiles/adaptviz_numerics.dir/linalg.cpp.o"
  "CMakeFiles/adaptviz_numerics.dir/linalg.cpp.o.d"
  "CMakeFiles/adaptviz_numerics.dir/statistics.cpp.o"
  "CMakeFiles/adaptviz_numerics.dir/statistics.cpp.o.d"
  "libadaptviz_numerics.a"
  "libadaptviz_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
