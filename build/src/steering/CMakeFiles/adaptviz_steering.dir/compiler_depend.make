# Empty compiler generated dependencies file for adaptviz_steering.
# This may be replaced when dependencies are built.
