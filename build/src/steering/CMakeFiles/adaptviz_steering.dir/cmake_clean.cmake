file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_steering.dir/steering.cpp.o"
  "CMakeFiles/adaptviz_steering.dir/steering.cpp.o.d"
  "libadaptviz_steering.a"
  "libadaptviz_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
