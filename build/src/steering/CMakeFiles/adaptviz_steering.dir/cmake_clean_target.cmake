file(REMOVE_RECURSE
  "libadaptviz_steering.a"
)
