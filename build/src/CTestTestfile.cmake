# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("numerics")
subdirs("lp")
subdirs("dataio")
subdirs("resources")
subdirs("weather")
subdirs("perf")
subdirs("transport")
subdirs("vis")
subdirs("steering")
subdirs("core")
