
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/cluster.cpp" "src/resources/CMakeFiles/adaptviz_resources.dir/cluster.cpp.o" "gcc" "src/resources/CMakeFiles/adaptviz_resources.dir/cluster.cpp.o.d"
  "/root/repo/src/resources/disk.cpp" "src/resources/CMakeFiles/adaptviz_resources.dir/disk.cpp.o" "gcc" "src/resources/CMakeFiles/adaptviz_resources.dir/disk.cpp.o.d"
  "/root/repo/src/resources/event_queue.cpp" "src/resources/CMakeFiles/adaptviz_resources.dir/event_queue.cpp.o" "gcc" "src/resources/CMakeFiles/adaptviz_resources.dir/event_queue.cpp.o.d"
  "/root/repo/src/resources/network.cpp" "src/resources/CMakeFiles/adaptviz_resources.dir/network.cpp.o" "gcc" "src/resources/CMakeFiles/adaptviz_resources.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
