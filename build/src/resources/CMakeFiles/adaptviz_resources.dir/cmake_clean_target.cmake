file(REMOVE_RECURSE
  "libadaptviz_resources.a"
)
