file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_resources.dir/cluster.cpp.o"
  "CMakeFiles/adaptviz_resources.dir/cluster.cpp.o.d"
  "CMakeFiles/adaptviz_resources.dir/disk.cpp.o"
  "CMakeFiles/adaptviz_resources.dir/disk.cpp.o.d"
  "CMakeFiles/adaptviz_resources.dir/event_queue.cpp.o"
  "CMakeFiles/adaptviz_resources.dir/event_queue.cpp.o.d"
  "CMakeFiles/adaptviz_resources.dir/network.cpp.o"
  "CMakeFiles/adaptviz_resources.dir/network.cpp.o.d"
  "libadaptviz_resources.a"
  "libadaptviz_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
