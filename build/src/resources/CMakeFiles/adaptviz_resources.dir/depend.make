# Empty dependencies file for adaptviz_resources.
# This may be replaced when dependencies are built.
