file(REMOVE_RECURSE
  "libadaptviz_weather.a"
)
