file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_weather.dir/analysis.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/analysis.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/domain_io.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/domain_io.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/dynamics.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/dynamics.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/geography.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/geography.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/grid.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/grid.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/model.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/model.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/nest.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/nest.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/physics.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/physics.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/state.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/state.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/track_metrics.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/track_metrics.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/tracker.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/tracker.cpp.o.d"
  "CMakeFiles/adaptviz_weather.dir/vortex.cpp.o"
  "CMakeFiles/adaptviz_weather.dir/vortex.cpp.o.d"
  "libadaptviz_weather.a"
  "libadaptviz_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
