
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/weather/analysis.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/analysis.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/analysis.cpp.o.d"
  "/root/repo/src/weather/domain_io.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/domain_io.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/domain_io.cpp.o.d"
  "/root/repo/src/weather/dynamics.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/dynamics.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/dynamics.cpp.o.d"
  "/root/repo/src/weather/geography.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/geography.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/geography.cpp.o.d"
  "/root/repo/src/weather/grid.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/grid.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/grid.cpp.o.d"
  "/root/repo/src/weather/model.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/model.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/model.cpp.o.d"
  "/root/repo/src/weather/nest.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/nest.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/nest.cpp.o.d"
  "/root/repo/src/weather/physics.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/physics.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/physics.cpp.o.d"
  "/root/repo/src/weather/state.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/state.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/state.cpp.o.d"
  "/root/repo/src/weather/track_metrics.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/track_metrics.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/track_metrics.cpp.o.d"
  "/root/repo/src/weather/tracker.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/tracker.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/tracker.cpp.o.d"
  "/root/repo/src/weather/vortex.cpp" "src/weather/CMakeFiles/adaptviz_weather.dir/vortex.cpp.o" "gcc" "src/weather/CMakeFiles/adaptviz_weather.dir/vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
