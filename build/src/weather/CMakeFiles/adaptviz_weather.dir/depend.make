# Empty dependencies file for adaptviz_weather.
# This may be replaced when dependencies are built.
