# Empty compiler generated dependencies file for adaptviz_dataio.
# This may be replaced when dependencies are built.
