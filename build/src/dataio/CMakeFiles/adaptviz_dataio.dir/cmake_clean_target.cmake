file(REMOVE_RECURSE
  "libadaptviz_dataio.a"
)
