
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataio/frame.cpp" "src/dataio/CMakeFiles/adaptviz_dataio.dir/frame.cpp.o" "gcc" "src/dataio/CMakeFiles/adaptviz_dataio.dir/frame.cpp.o.d"
  "/root/repo/src/dataio/ncl.cpp" "src/dataio/CMakeFiles/adaptviz_dataio.dir/ncl.cpp.o" "gcc" "src/dataio/CMakeFiles/adaptviz_dataio.dir/ncl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
