file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_dataio.dir/frame.cpp.o"
  "CMakeFiles/adaptviz_dataio.dir/frame.cpp.o.d"
  "CMakeFiles/adaptviz_dataio.dir/ncl.cpp.o"
  "CMakeFiles/adaptviz_dataio.dir/ncl.cpp.o.d"
  "libadaptviz_dataio.a"
  "libadaptviz_dataio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_dataio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
