file(REMOVE_RECURSE
  "libadaptviz_lp.a"
)
