# Empty compiler generated dependencies file for adaptviz_lp.
# This may be replaced when dependencies are built.
