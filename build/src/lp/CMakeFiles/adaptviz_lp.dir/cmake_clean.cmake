file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_lp.dir/problem.cpp.o"
  "CMakeFiles/adaptviz_lp.dir/problem.cpp.o.d"
  "CMakeFiles/adaptviz_lp.dir/simplex.cpp.o"
  "CMakeFiles/adaptviz_lp.dir/simplex.cpp.o.d"
  "libadaptviz_lp.a"
  "libadaptviz_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
