# Empty compiler generated dependencies file for adaptviz_vis.
# This may be replaced when dependencies are built.
