file(REMOVE_RECURSE
  "libadaptviz_vis.a"
)
