
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vis/colormap.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/colormap.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/colormap.cpp.o.d"
  "/root/repo/src/vis/contour.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/contour.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/contour.cpp.o.d"
  "/root/repo/src/vis/image.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/image.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/image.cpp.o.d"
  "/root/repo/src/vis/renderer.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/renderer.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/renderer.cpp.o.d"
  "/root/repo/src/vis/streamlines.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/streamlines.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/streamlines.cpp.o.d"
  "/root/repo/src/vis/vis_process.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/vis_process.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/vis_process.cpp.o.d"
  "/root/repo/src/vis/volume.cpp" "src/vis/CMakeFiles/adaptviz_vis.dir/volume.cpp.o" "gcc" "src/vis/CMakeFiles/adaptviz_vis.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/adaptviz_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
