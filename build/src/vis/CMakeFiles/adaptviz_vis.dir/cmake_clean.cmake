file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_vis.dir/colormap.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/colormap.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/contour.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/contour.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/image.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/image.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/renderer.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/renderer.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/streamlines.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/streamlines.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/vis_process.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/vis_process.cpp.o.d"
  "CMakeFiles/adaptviz_vis.dir/volume.cpp.o"
  "CMakeFiles/adaptviz_vis.dir/volume.cpp.o.d"
  "libadaptviz_vis.a"
  "libadaptviz_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
