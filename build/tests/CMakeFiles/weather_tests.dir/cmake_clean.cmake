file(REMOVE_RECURSE
  "CMakeFiles/weather_tests.dir/test_analysis.cpp.o"
  "CMakeFiles/weather_tests.dir/test_analysis.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_dynamics.cpp.o"
  "CMakeFiles/weather_tests.dir/test_dynamics.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_geography.cpp.o"
  "CMakeFiles/weather_tests.dir/test_geography.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_grid.cpp.o"
  "CMakeFiles/weather_tests.dir/test_grid.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_nest.cpp.o"
  "CMakeFiles/weather_tests.dir/test_nest.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_physics.cpp.o"
  "CMakeFiles/weather_tests.dir/test_physics.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_track_metrics.cpp.o"
  "CMakeFiles/weather_tests.dir/test_track_metrics.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_tracker.cpp.o"
  "CMakeFiles/weather_tests.dir/test_tracker.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_vortex.cpp.o"
  "CMakeFiles/weather_tests.dir/test_vortex.cpp.o.d"
  "CMakeFiles/weather_tests.dir/test_weather_model.cpp.o"
  "CMakeFiles/weather_tests.dir/test_weather_model.cpp.o.d"
  "weather_tests"
  "weather_tests.pdb"
  "weather_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
