# Empty dependencies file for weather_tests.
# This may be replaced when dependencies are built.
