
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app_config.cpp" "tests/CMakeFiles/core_tests.dir/test_app_config.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_app_config.cpp.o.d"
  "/root/repo/tests/test_application_manager.cpp" "tests/CMakeFiles/core_tests.dir/test_application_manager.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_application_manager.cpp.o.d"
  "/root/repo/tests/test_decision.cpp" "tests/CMakeFiles/core_tests.dir/test_decision.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_decision.cpp.o.d"
  "/root/repo/tests/test_framework.cpp" "tests/CMakeFiles/core_tests.dir/test_framework.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_framework.cpp.o.d"
  "/root/repo/tests/test_greedy.cpp" "tests/CMakeFiles/core_tests.dir/test_greedy.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_greedy.cpp.o.d"
  "/root/repo/tests/test_job_handler.cpp" "tests/CMakeFiles/core_tests.dir/test_job_handler.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_job_handler.cpp.o.d"
  "/root/repo/tests/test_lp_optimizer.cpp" "tests/CMakeFiles/core_tests.dir/test_lp_optimizer.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_lp_optimizer.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/core_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_simulation_process.cpp" "tests/CMakeFiles/core_tests.dir/test_simulation_process.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_simulation_process.cpp.o.d"
  "/root/repo/tests/test_steering.cpp" "tests/CMakeFiles/core_tests.dir/test_steering.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_steering.cpp.o.d"
  "/root/repo/tests/test_storage_estimate.cpp" "tests/CMakeFiles/core_tests.dir/test_storage_estimate.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/test_storage_estimate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adaptviz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/adaptviz_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adaptviz_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/adaptviz_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/adaptviz_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/adaptviz_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/adaptviz_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
