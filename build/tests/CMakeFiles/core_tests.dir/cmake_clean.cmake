file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/test_app_config.cpp.o"
  "CMakeFiles/core_tests.dir/test_app_config.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_application_manager.cpp.o"
  "CMakeFiles/core_tests.dir/test_application_manager.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_decision.cpp.o"
  "CMakeFiles/core_tests.dir/test_decision.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_framework.cpp.o"
  "CMakeFiles/core_tests.dir/test_framework.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_greedy.cpp.o"
  "CMakeFiles/core_tests.dir/test_greedy.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_job_handler.cpp.o"
  "CMakeFiles/core_tests.dir/test_job_handler.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_lp_optimizer.cpp.o"
  "CMakeFiles/core_tests.dir/test_lp_optimizer.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_scenario.cpp.o"
  "CMakeFiles/core_tests.dir/test_scenario.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_simulation_process.cpp.o"
  "CMakeFiles/core_tests.dir/test_simulation_process.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_steering.cpp.o"
  "CMakeFiles/core_tests.dir/test_steering.cpp.o.d"
  "CMakeFiles/core_tests.dir/test_storage_estimate.cpp.o"
  "CMakeFiles/core_tests.dir/test_storage_estimate.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
