file(REMOVE_RECURSE
  "CMakeFiles/foundation_tests.dir/test_curve_fit.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_curve_fit.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_dataio.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_dataio.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_ini.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_ini.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_interpolation.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_interpolation.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_linalg.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_linalg.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_lp.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_lp.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_statistics.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_statistics.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_units.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_units.cpp.o.d"
  "CMakeFiles/foundation_tests.dir/test_util_misc.cpp.o"
  "CMakeFiles/foundation_tests.dir/test_util_misc.cpp.o.d"
  "foundation_tests"
  "foundation_tests.pdb"
  "foundation_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foundation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
