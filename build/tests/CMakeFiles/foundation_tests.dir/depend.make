# Empty dependencies file for foundation_tests.
# This may be replaced when dependencies are built.
