# Empty dependencies file for vis_tests.
# This may be replaced when dependencies are built.
