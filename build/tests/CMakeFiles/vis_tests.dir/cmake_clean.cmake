file(REMOVE_RECURSE
  "CMakeFiles/vis_tests.dir/test_colormap.cpp.o"
  "CMakeFiles/vis_tests.dir/test_colormap.cpp.o.d"
  "CMakeFiles/vis_tests.dir/test_contour.cpp.o"
  "CMakeFiles/vis_tests.dir/test_contour.cpp.o.d"
  "CMakeFiles/vis_tests.dir/test_image.cpp.o"
  "CMakeFiles/vis_tests.dir/test_image.cpp.o.d"
  "CMakeFiles/vis_tests.dir/test_renderer.cpp.o"
  "CMakeFiles/vis_tests.dir/test_renderer.cpp.o.d"
  "CMakeFiles/vis_tests.dir/test_streamlines.cpp.o"
  "CMakeFiles/vis_tests.dir/test_streamlines.cpp.o.d"
  "CMakeFiles/vis_tests.dir/test_volume.cpp.o"
  "CMakeFiles/vis_tests.dir/test_volume.cpp.o.d"
  "vis_tests"
  "vis_tests.pdb"
  "vis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
