
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_colormap.cpp" "tests/CMakeFiles/vis_tests.dir/test_colormap.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_colormap.cpp.o.d"
  "/root/repo/tests/test_contour.cpp" "tests/CMakeFiles/vis_tests.dir/test_contour.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_contour.cpp.o.d"
  "/root/repo/tests/test_image.cpp" "tests/CMakeFiles/vis_tests.dir/test_image.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_image.cpp.o.d"
  "/root/repo/tests/test_renderer.cpp" "tests/CMakeFiles/vis_tests.dir/test_renderer.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_renderer.cpp.o.d"
  "/root/repo/tests/test_streamlines.cpp" "tests/CMakeFiles/vis_tests.dir/test_streamlines.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_streamlines.cpp.o.d"
  "/root/repo/tests/test_volume.cpp" "tests/CMakeFiles/vis_tests.dir/test_volume.cpp.o" "gcc" "tests/CMakeFiles/vis_tests.dir/test_volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adaptviz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/adaptviz_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adaptviz_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/adaptviz_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/adaptviz_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/adaptviz_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/adaptviz_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
