file(REMOVE_RECURSE
  "CMakeFiles/resources_tests.dir/test_event_queue.cpp.o"
  "CMakeFiles/resources_tests.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/resources_tests.dir/test_perf_model.cpp.o"
  "CMakeFiles/resources_tests.dir/test_perf_model.cpp.o.d"
  "CMakeFiles/resources_tests.dir/test_resources.cpp.o"
  "CMakeFiles/resources_tests.dir/test_resources.cpp.o.d"
  "CMakeFiles/resources_tests.dir/test_transport.cpp.o"
  "CMakeFiles/resources_tests.dir/test_transport.cpp.o.d"
  "resources_tests"
  "resources_tests.pdb"
  "resources_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resources_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
