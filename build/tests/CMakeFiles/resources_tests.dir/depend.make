# Empty dependencies file for resources_tests.
# This may be replaced when dependencies are built.
