# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/foundation_tests[1]_include.cmake")
include("/root/repo/build/tests/resources_tests[1]_include.cmake")
include("/root/repo/build/tests/weather_tests[1]_include.cmake")
include("/root/repo/build/tests/vis_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
