file(REMOVE_RECURSE
  "CMakeFiles/adaptviz_run.dir/adaptviz_run.cpp.o"
  "CMakeFiles/adaptviz_run.dir/adaptviz_run.cpp.o.d"
  "adaptviz_run"
  "adaptviz_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptviz_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
