# Empty dependencies file for adaptviz_run.
# This may be replaced when dependencies are built.
