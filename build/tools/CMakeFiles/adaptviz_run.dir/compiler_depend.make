# Empty compiler generated dependencies file for adaptviz_run.
# This may be replaced when dependencies are built.
