# Empty compiler generated dependencies file for bench_ablation_bandwidth.
# This may be replaced when dependencies are built.
