file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vis_progress.dir/bench_fig7_vis_progress.cpp.o"
  "CMakeFiles/bench_fig7_vis_progress.dir/bench_fig7_vis_progress.cpp.o.d"
  "bench_fig7_vis_progress"
  "bench_fig7_vis_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vis_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
