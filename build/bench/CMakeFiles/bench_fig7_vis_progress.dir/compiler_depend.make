# Empty compiler generated dependencies file for bench_fig7_vis_progress.
# This may be replaced when dependencies are built.
