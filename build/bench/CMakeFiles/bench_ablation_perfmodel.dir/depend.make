# Empty dependencies file for bench_ablation_perfmodel.
# This may be replaced when dependencies are built.
