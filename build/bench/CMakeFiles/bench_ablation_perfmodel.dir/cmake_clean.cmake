file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_perfmodel.dir/bench_ablation_perfmodel.cpp.o"
  "CMakeFiles/bench_ablation_perfmodel.dir/bench_ablation_perfmodel.cpp.o.d"
  "bench_ablation_perfmodel"
  "bench_ablation_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
