file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_resolution_ladder.dir/bench_table3_resolution_ladder.cpp.o"
  "CMakeFiles/bench_table3_resolution_ladder.dir/bench_table3_resolution_ladder.cpp.o.d"
  "bench_table3_resolution_ladder"
  "bench_table3_resolution_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_resolution_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
