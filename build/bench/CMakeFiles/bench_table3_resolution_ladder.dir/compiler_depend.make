# Empty compiler generated dependencies file for bench_table3_resolution_ladder.
# This may be replaced when dependencies are built.
