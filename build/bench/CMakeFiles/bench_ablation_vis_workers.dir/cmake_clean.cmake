file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vis_workers.dir/bench_ablation_vis_workers.cpp.o"
  "CMakeFiles/bench_ablation_vis_workers.dir/bench_ablation_vis_workers.cpp.o.d"
  "bench_ablation_vis_workers"
  "bench_ablation_vis_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vis_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
