# Empty compiler generated dependencies file for bench_ablation_vis_workers.
# This may be replaced when dependencies are built.
