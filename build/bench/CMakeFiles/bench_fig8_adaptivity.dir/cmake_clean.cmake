file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_adaptivity.dir/bench_fig8_adaptivity.cpp.o"
  "CMakeFiles/bench_fig8_adaptivity.dir/bench_fig8_adaptivity.cpp.o.d"
  "bench_fig8_adaptivity"
  "bench_fig8_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
