file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decision_period.dir/bench_ablation_decision_period.cpp.o"
  "CMakeFiles/bench_ablation_decision_period.dir/bench_ablation_decision_period.cpp.o.d"
  "bench_ablation_decision_period"
  "bench_ablation_decision_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decision_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
