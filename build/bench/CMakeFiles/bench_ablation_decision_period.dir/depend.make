# Empty dependencies file for bench_ablation_decision_period.
# This may be replaced when dependencies are built.
