# Empty dependencies file for bench_fig6_disk_space.
# This may be replaced when dependencies are built.
