file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_disk_space.dir/bench_fig6_disk_space.cpp.o"
  "CMakeFiles/bench_fig6_disk_space.dir/bench_fig6_disk_space.cpp.o.d"
  "bench_fig6_disk_space"
  "bench_fig6_disk_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_disk_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
