file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_renders.dir/bench_fig34_renders.cpp.o"
  "CMakeFiles/bench_fig34_renders.dir/bench_fig34_renders.cpp.o.d"
  "bench_fig34_renders"
  "bench_fig34_renders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_renders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
