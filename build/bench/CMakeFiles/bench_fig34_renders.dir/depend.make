# Empty dependencies file for bench_fig34_renders.
# This may be replaced when dependencies are built.
