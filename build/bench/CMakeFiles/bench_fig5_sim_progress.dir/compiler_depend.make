# Empty compiler generated dependencies file for bench_fig5_sim_progress.
# This may be replaced when dependencies are built.
