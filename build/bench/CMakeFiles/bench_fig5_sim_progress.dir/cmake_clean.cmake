file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sim_progress.dir/bench_fig5_sim_progress.cpp.o"
  "CMakeFiles/bench_fig5_sim_progress.dir/bench_fig5_sim_progress.cpp.o.d"
  "bench_fig5_sim_progress"
  "bench_fig5_sim_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sim_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
