file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_disk_limit.dir/bench_table1_disk_limit.cpp.o"
  "CMakeFiles/bench_table1_disk_limit.dir/bench_table1_disk_limit.cpp.o.d"
  "bench_table1_disk_limit"
  "bench_table1_disk_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_disk_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
