# Empty dependencies file for bench_table1_disk_limit.
# This may be replaced when dependencies are built.
