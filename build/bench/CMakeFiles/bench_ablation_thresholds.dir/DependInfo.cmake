
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_thresholds.cpp" "bench/CMakeFiles/bench_ablation_thresholds.dir/bench_ablation_thresholds.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_thresholds.dir/bench_ablation_thresholds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adaptviz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/adaptviz_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/adaptviz_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/adaptviz_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/adaptviz_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/dataio/CMakeFiles/adaptviz_dataio.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/adaptviz_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/adaptviz_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/adaptviz_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/adaptviz_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adaptviz_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
