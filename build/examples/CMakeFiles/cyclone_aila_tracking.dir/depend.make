# Empty dependencies file for cyclone_aila_tracking.
# This may be replaced when dependencies are built.
