file(REMOVE_RECURSE
  "CMakeFiles/cyclone_aila_tracking.dir/cyclone_aila_tracking.cpp.o"
  "CMakeFiles/cyclone_aila_tracking.dir/cyclone_aila_tracking.cpp.o.d"
  "cyclone_aila_tracking"
  "cyclone_aila_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclone_aila_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
