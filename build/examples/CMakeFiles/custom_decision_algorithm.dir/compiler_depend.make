# Empty compiler generated dependencies file for custom_decision_algorithm.
# This may be replaced when dependencies are built.
