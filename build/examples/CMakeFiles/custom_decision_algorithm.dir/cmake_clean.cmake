file(REMOVE_RECURSE
  "CMakeFiles/custom_decision_algorithm.dir/custom_decision_algorithm.cpp.o"
  "CMakeFiles/custom_decision_algorithm.dir/custom_decision_algorithm.cpp.o.d"
  "custom_decision_algorithm"
  "custom_decision_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_decision_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
