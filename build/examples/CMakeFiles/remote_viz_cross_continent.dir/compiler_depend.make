# Empty compiler generated dependencies file for remote_viz_cross_continent.
# This may be replaced when dependencies are built.
