file(REMOVE_RECURSE
  "CMakeFiles/remote_viz_cross_continent.dir/remote_viz_cross_continent.cpp.o"
  "CMakeFiles/remote_viz_cross_continent.dir/remote_viz_cross_continent.cpp.o.d"
  "remote_viz_cross_continent"
  "remote_viz_cross_continent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_viz_cross_continent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
