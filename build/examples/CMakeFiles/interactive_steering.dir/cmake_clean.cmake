file(REMOVE_RECURSE
  "CMakeFiles/interactive_steering.dir/interactive_steering.cpp.o"
  "CMakeFiles/interactive_steering.dir/interactive_steering.cpp.o.d"
  "interactive_steering"
  "interactive_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
