# Empty compiler generated dependencies file for interactive_steering.
# This may be replaced when dependencies are built.
