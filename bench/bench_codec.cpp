// Codec bench: compression ratio and throughput of the lossless frame
// codec on *real* simulation frames at the paper's Fig. 5 output cadence.
//
// Drives the Fig-5 model configuration (24 km modeled parent, compute
// scale 8), lets the cyclone spin up, then feeds consecutive frames at a
// 3-minute output interval through FrameFieldCodec exactly as the
// simulation process does (parent + nest h/u/v, roundtrip verified).
// Asserts a cumulative ratio >= 2.0x at the 3-minute cadence; the full
// run also sweeps the coarser Fig-5 intervals (report-only — temporal
// deltas decay as frames grow further apart).
//
// Writes BENCH_codec.json ({bench, scenario, metric, value, unit} rows);
// --json=PATH overrides, --quick shrinks the frame count for CI smokes.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "dataio/codec.hpp"
#include "weather/model.hpp"

namespace {

using namespace adaptviz;

ModelConfig fig5_config() {
  ModelConfig config;
  config.base_resolution_km = 24.0;
  config.compute_scale = 8.0;
  return config;
}

void collect_fields(const WeatherModel& model,
                    std::vector<FieldView>& fields) {
  fields.clear();
  const DomainState& p = model.parent_state();
  fields.push_back(FieldView{p.h.data().data(), p.h.nx(), p.h.ny()});
  fields.push_back(FieldView{p.u.data().data(), p.u.nx(), p.u.ny()});
  fields.push_back(FieldView{p.v.data().data(), p.v.nx(), p.v.ny()});
  if (model.nest_active()) {
    const DomainState& n = model.nest()->state();
    fields.push_back(FieldView{n.h.data().data(), n.h.nx(), n.h.ny()});
    fields.push_back(FieldView{n.u.data().data(), n.u.nx(), n.u.ny()});
    fields.push_back(FieldView{n.v.data().data(), n.v.nx(), n.v.ny()});
  }
}

struct OiResult {
  double ratio = 0.0;
  double encode_mb_s = 0.0;
  double decode_mb_s = 0.0;
  int frames = 0;
};

/// Runs `frames` consecutive frames at `oi_seconds` cadence through a
/// fresh codec, on a model already spun up past `spinup`.
OiResult run_oi(WeatherModel& model, double oi_seconds, int frames) {
  FrameFieldCodec codec(CodecOptions{/*enabled=*/true,
                                     CodecPrecision::kFloat32,
                                     /*verify_roundtrip=*/true});
  std::vector<FieldView> fields;
  OiResult out;
  double encode_s = 0.0;
  double decode_s = 0.0;
  double next_frame = model.sim_time().seconds();
  while (out.frames < frames) {
    if (model.sim_time().seconds() >= next_frame) {
      collect_fields(model, fields);
      const CodecFrameReport report = codec.encode_frame_fields(fields);
      encode_s += report.encode_seconds;
      decode_s += report.decode_seconds;
      ++out.frames;
      next_frame += oi_seconds;
    } else {
      model.step();
    }
  }
  out.ratio = codec.cumulative_ratio();
  const double raw_mb =
      static_cast<double>(codec.total_raw_bytes()) / 1.0e6;
  out.encode_mb_s = encode_s > 0.0 ? raw_mb / encode_s : 0.0;
  out.decode_mb_s = decode_s > 0.0 ? raw_mb / decode_s : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const std::string json_path =
      args.json_path.empty() ? "BENCH_codec.json" : args.json_path;

  // Spin up ~12 simulated hours so the cyclone is organized and the nest
  // is active — frames then look like mid-experiment output, not the
  // near-uniform initial analysis (which would flatter the ratio). Each
  // cadence restarts from the same checkpoint so the sweep compares
  // output intervals, not storm stages.
  WeatherModel spinup(fig5_config());
  const double spinup_s = 12.0 * 3600.0;
  while (spinup.sim_time().seconds() < spinup_s) spinup.step();
  const NclFile checkpoint = spinup.checkpoint();
  const auto restored = [&checkpoint] {
    return WeatherModel::restore(fig5_config(), ResolutionLadder::table3(),
                                 checkpoint);
  };

  const int frames = args.quick ? 6 : 40;
  benchio::BenchReport report;
  int failures = 0;

  // Gate at the finest Fig-5 cadence (3 min), where the decision layer
  // lives when resources are tight and compression matters most.
  {
    WeatherModel model = restored();
    const OiResult r = run_oi(model, 180.0, frames);
    report.add("codec", "oi3min", "ratio", r.ratio, "x");
    report.add("codec", "oi3min", "encode_mb_s", r.encode_mb_s, "MB/s");
    report.add("codec", "oi3min", "decode_mb_s", r.decode_mb_s, "MB/s");
    report.add("codec", "oi3min", "frames", static_cast<double>(r.frames),
               "count");
    std::printf("codec oi3min: ratio %.2fx over %d frames, encode %.1f "
                "MB/s, decode %.1f MB/s\n",
                r.ratio, r.frames, r.encode_mb_s, r.decode_mb_s);
    if (r.ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: codec ratio %.2fx at 3-min cadence is below the "
                   "2.0x floor\n",
                   r.ratio);
      ++failures;
    }
  }

  // Coarser Fig-5 cadences, report-only: shows how the temporal predictor
  // decays as the output interval stretches.
  if (!args.quick) {
    const struct {
      const char* name;
      double oi_s;
    } sweeps[] = {{"oi7.2min", 432.0}, {"oi12min", 720.0},
                  {"oi24min", 1440.0}};
    for (const auto& sweep : sweeps) {
      WeatherModel model = restored();
      const OiResult r = run_oi(model, sweep.oi_s, frames);
      report.add("codec", sweep.name, "ratio", r.ratio, "x");
      report.add("codec", sweep.name, "encode_mb_s", r.encode_mb_s, "MB/s");
      report.add("codec", sweep.name, "decode_mb_s", r.decode_mb_s, "MB/s");
      std::printf("codec %s: ratio %.2fx over %d frames\n", sweep.name,
                  r.ratio, r.frames);
    }
  }

  report.save(json_path);
  std::printf("wrote %s (%zu rows)\n", json_path.c_str(),
              report.rows().size());
  return failures == 0 ? 0 : 1;
}
