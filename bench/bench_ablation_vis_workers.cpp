// Ablation A5 — parallel visualization (future-work feature).
//
// "We intend to parallelize the visualization process as well." This bench
// makes rendering the bottleneck (heavy per-frame render cost on a fast
// LAN-like link) and sweeps the number of parallel render workers at the
// visualization site: with one worker the scientist's view lags ever
// further behind the transfers; workers remove the backlog.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Ablation: visualization workers (render-bound site) "
              "===\n");
  std::printf("%-9s %-12s %-16s %-18s\n", "workers", "wall(h)",
              "frames visualized", "last frame seen at");

  CsvTable csv({"workers", "wall_hours", "frames_visualized",
                "last_vis_wall_hours"});
  set_log_level(LogLevel::kError);
  for (int workers : {1, 2, 4, 8}) {
    SiteSpec site = inter_department_site();
    site.wan_nominal = Bandwidth::mbps(400);  // fast link: render-bound
    site.wan_efficiency = 0.8;
    ExperimentConfig cfg =
        standard_config("vis-workers", site, AlgorithmKind::kOptimization);
    // Maximum temporal resolution: with the fast link the optimizer outputs
    // every ~3 simulated minutes, far faster than one renderer can draw.
    cfg.optimizer.preference = FrequencyPreference::kMaxResolution;
    cfg.bounds.min_output_interval = SimSeconds::minutes(3.0);
    cfg.vis_workers = workers;
    // A deliberately expensive renderer (e.g. volume rendering at high
    // fidelity): ~6 minutes per fine-resolution frame.
    cfg.vis.fixed_seconds = 30.0;
    cfg.vis.seconds_per_gb = 400.0;
    const ExperimentResult r = run_experiment(cfg);
    const double last_vis = r.vis_records.empty()
                                ? 0.0
                                : r.vis_records.back().wall_time.as_hours();
    std::printf("%-9d %-12.1f %-16lld %-18.1f\n", workers,
                r.summary.wall_elapsed.as_hours(),
                static_cast<long long>(r.summary.frames_visualized),
                last_vis);
    csv.add_row({static_cast<long>(workers),
                 r.summary.wall_elapsed.as_hours(),
                 static_cast<long>(r.summary.frames_visualized), last_vis});
  }
  save_csv(csv, "ablation_vis_workers");
  std::printf(
      "\nShape check: total wall time (simulation + drain of the render\n"
      "backlog) drops as workers are added, then saturates once rendering\n"
      "is no longer the bottleneck.\n");
  return 0;
}
