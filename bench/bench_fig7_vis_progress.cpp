// Figure 7 (a, b, c) — "Progress at the visualization end".
//
// Each point in the paper's figure is (wall-clock time a frame was
// visualized, simulated time that frame represents). Shape criteria: the
// optimization method's visualization progress is faster and steadier (the
// scientist sees a consistent quality-of-service); greedy lags because it
// "tries to send every time step ... in the initial stages", and over slow
// links visualizes only a few hours of simulation even after a day of wall
// time.
#include <algorithm>
#include <cstdio>

#include "experiment_common.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

void print_series(const std::string& site, const SitePair& pair) {
  std::printf("\n--- Fig 7: %s ---\n", site.c_str());

  CsvTable csv({"algorithm", "wall_hours", "frame_sim_hours", "sequence"});
  auto emit = [&csv](const char* alg, const ExperimentResult& r) {
    for (const auto& v : r.vis_records) {
      csv.add_row({std::string(alg), v.wall_time.as_hours(),
                   v.sim_time.as_hours(), static_cast<long>(v.sequence)});
    }
  };
  emit("greedy", pair.greedy);
  emit("optimization", pair.optimization);

  // Print a sampled view: newest visualized sim-time at 3-hour wall marks.
  std::printf("%-8s %-18s %-18s\n", "wall", "greedy (sim time)",
              "optimization (sim time)");
  auto newest_at = [](const ExperimentResult& r, double wall_h) {
    SimSeconds newest(0.0);
    for (const auto& v : r.vis_records) {
      if (v.wall_time.as_hours() <= wall_h + 1e-9) newest = v.sim_time;
    }
    return newest;
  };
  const double end_h =
      std::max(pair.greedy.summary.wall_elapsed.as_hours(),
               pair.optimization.summary.wall_elapsed.as_hours());
  for (double h = 0.0; h <= end_h + 1e-9; h += 3.0) {
    std::printf("%-8s %-18s %-18s\n", hh_mm(WallSeconds::hours(h)).c_str(),
                sim_label(newest_at(pair.greedy, h)).c_str(),
                sim_label(newest_at(pair.optimization, h)).c_str());
  }
  save_csv(csv, "fig7_" + site);

  std::printf("  frames visualized: greedy %lld, optimization %lld\n",
              static_cast<long long>(pair.greedy.summary.frames_visualized),
              static_cast<long long>(
                  pair.optimization.summary.frames_visualized));
  std::printf("  newest sim time visualized: greedy %s, optimization %s\n",
              sim_label(newest_at(pair.greedy, end_h)).c_str(),
              sim_label(newest_at(pair.optimization, end_h)).c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 7: visualization progress, greedy vs optimization "
              "===\n");
  for (const auto& [name, site] : table4_sites()) {
    print_series(name, run_site(name, site));
  }
  return 0;
}
