// Client-scaling bench for the serving subsystem (src/serve).
//
// Part 1 — single-site scaling: the inter-department Aila run fanned out
// to 1/8/32/128 viewer clients over a sweep of cache capacities. For every
// cell it reports deliveries, cache hit rate, evictions, re-renders and
// the peak resident cache bytes, and *fails* (exit 1) if the cache ever
// exceeded its configured byte cap — the bounded-memory guarantee.
//
// Part 2 — tiered fan-out: the edge-cache distribution tree takes the
// same 64-leaf viewer population from a flat topology (64 caches pulling
// straight off the origin — the PR 2 shape, one WAN transfer per leaf) to
// 2- and 3-tier trees, with 1600 modeled viewers per leaf = 102,400
// clients. Asserted invariants: per-node cache bytes stay bounded, every
// tier's hit rate is > 0, the 2-tier tree cuts origin bytes-on-WAN by
// >= 10x vs flat, delivered-frame digests are bitwise identical across
// tree shapes (equal leaf count) and across thread-pool sizes, and a 30%
// fill-failure rate on the regional uplinks still delivers every frame to
// every leaf exactly once with the identical content digest. Per-tier
// hit-rate / bytes-on-WAN / staleness curves land in BENCH_client_scaling
// .json.
//
// Part 3 — determinism: the synthetic single-site serving workload (late
// catch-up joiners forcing re-renders whose heavy work runs on the
// thread pool) replayed on pools of 1/4/8 lanes must produce bitwise
// identical delivery digests; a fixed-seed full experiment is run twice
// and digest-compared.
//
// --quick shrinks part 1 to one cell and the tree stream to 60 frames
// (the ctest smoke); --json=PATH overrides the report location.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "experiment_common.hpp"
#include "serve/edge_tree.hpp"
#include "serve/session_manager.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over raw bytes: digests must capture exact bit patterns.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void f64(double v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
};

std::uint64_t digest_deliveries(const ViewerSessionManager& m) {
  Digest d;
  for (int c = 0; c < m.viewer_count(); ++c) {
    d.i64(c);
    for (const DeliveryRecord& r : m.deliveries(c)) {
      d.f64(r.wall_time.seconds());
      d.f64(r.sim_time.seconds());
      d.i64(r.sequence);
      d.i64(r.size.count());
      d.i64(r.cache_hit ? 1 : 0);
    }
  }
  return d.h;
}

std::uint64_t digest_result(const ExperimentResult& r) {
  Digest d;
  for (const ClientSeries& c : r.clients) {
    for (const DeliveryRecord& rec : c.records) {
      d.f64(rec.wall_time.seconds());
      d.f64(rec.sim_time.seconds());
      d.i64(rec.sequence);
      d.i64(rec.size.count());
      d.i64(rec.cache_hit ? 1 : 0);
    }
  }
  d.i64(r.summary.cache_hits);
  d.i64(r.summary.cache_misses);
  d.i64(r.summary.cache_evictions);
  return d.h;
}

ExperimentConfig scaling_config(int clients, double cache_gb) {
  ExperimentConfig cfg;
  cfg.name = "client-scaling";
  cfg.site = inter_department_site();
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 8.0;
  cfg.seed = 42;
  cfg.serve.session.cache.capacity = Bytes::gigabytes(cache_gb);
  cfg.serve.session.cache.policy = EvictionPolicy::kStrideThinning;
  cfg.serve.session.rerender_workers = 2;
  // A quarter of the fleet connects 12 wall hours in and replays the run
  // from the start — the cache-miss / re-render load.
  cfg.serve.viewers =
      make_viewer_fleet(clients, Bandwidth::mbps(100.0),
                        /*catchup_fraction=*/0.25, SimSeconds(0.0),
                        /*catchup_join=*/WallSeconds::hours(12.0));
  return cfg;
}

// ---- Part 2: the tiered fan-out rig ----

TreeSpec make_tree_spec(const std::vector<int>& fan_out,
                        std::int64_t viewers_per_leaf,
                        double tier0_failure_rate) {
  TreeSpec spec;
  for (std::size_t t = 0; t < fan_out.size(); ++t) {
    EdgeTierSpec tier;
    tier.fan_out = fan_out[t];
    // Tier 0 rides the origin's WAN; deeper tiers are regional metro links.
    tier.uplink.nominal =
        t == 0 ? Bandwidth::mbps(1000.0) : Bandwidth::mbps(200.0);
    tier.uplink.latency = WallSeconds(t == 0 ? 0.04 : 0.005);
    tier.uplink.failure_probability = t == 0 ? tier0_failure_rate : 0.0;
    tier.cache.capacity =
        t == 0 ? Bytes::gigabytes(8.0) : Bytes::gigabytes(2.0);
    tier.cache.policy = EvictionPolicy::kStrideThinning;
    spec.tiers.push_back(tier);
  }
  spec.viewers_per_leaf = viewers_per_leaf;
  spec.retry.initial_backoff = WallSeconds(2.0);
  spec.retry.max_backoff = WallSeconds(30.0);
  spec.leaf_join_stagger = WallSeconds(5.0);
  return spec;
}

struct TreeRun {
  std::vector<EdgeTierStats> tiers;
  Bytes origin_wan{};
  std::int64_t leaf_frames = 0;
  std::int64_t viewers = 0;
  std::int64_t fill_retries = 0;
  std::uint64_t shape_digest = 0;  // content only: (leaf, seq, size, sim)
  std::uint64_t full_digest = 0;   // + wall times and staleness
  std::int64_t render_checksum = 0;
  double wall_hours = 0.0;
  bool bounded = true;
  bool exactly_once = true;
  bool all_tiers_hit = true;
};

/// Publishes a fixed synthetic frame stream (60 s cadence, the determinism
/// rig's size pattern) through a tree of the given shape and drains it.
TreeRun run_tree(const std::vector<int>& fan_out, int frames,
                 std::int64_t viewers_per_leaf, double tier0_failure_rate,
                 int pool_workers) {
  EventQueue queue;
  ThreadPool pool(pool_workers);
  std::atomic<std::int64_t> render_work{0};
  EdgeTree tree(queue, make_tree_spec(fan_out, viewers_per_leaf,
                                      tier0_failure_rate),
                /*seed=*/42, &pool, [&render_work](const Frame& f) {
                  // Real pool-side work whose result never feeds back into
                  // virtual time.
                  std::int64_t acc = 0;
                  for (int i = 0; i < 2000; ++i) {
                    acc += (f.sequence * 31 + i) % 97;
                  }
                  render_work.fetch_add(acc, std::memory_order_relaxed);
                });
  for (int i = 0; i < frames; ++i) {
    queue.schedule_at(WallSeconds(60.0 * i), [&tree, i] {
      Frame f;
      f.sequence = i;
      f.sim_time = SimSeconds(1800.0 * i);
      f.size = Bytes::megabytes(80.0 + 17.0 * (i % 7));
      tree.publish(f);
    });
  }
  queue.run_all();
  tree.drain_renders();

  TreeRun out;
  for (int t = 0; t < tree.tier_count(); ++t) {
    EdgeTierStats ts = tree.tier_stats(t);
    const Bytes cap = tree.spec().tiers[static_cast<std::size_t>(t)]
                          .cache.capacity;
    out.bounded = out.bounded && ts.peak_node_bytes <= cap;
    out.all_tiers_hit = out.all_tiers_hit && ts.cache_hits > 0;
    out.fill_retries += ts.fill_retries;
    out.tiers.push_back(ts);
  }
  for (int leaf = 0; leaf < tree.leaf_count(); ++leaf) {
    const auto& records = tree.leaf_deliveries(leaf);
    if (static_cast<int>(records.size()) != frames) out.exactly_once = false;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].sequence != static_cast<std::int64_t>(i)) {
        out.exactly_once = false;
      }
    }
  }
  out.origin_wan = tree.origin_bytes_on_wan();
  out.leaf_frames = tree.leaf_frames_delivered();
  out.viewers = tree.modeled_viewers();
  out.shape_digest = tree.delivery_digest(/*include_wall_times=*/false);
  out.full_digest = tree.delivery_digest(/*include_wall_times=*/true);
  out.render_checksum = render_work.load();
  out.wall_hours = queue.now().as_hours();
  return out;
}

std::string shape_name(const std::vector<int>& fan_out) {
  std::string s = "tree";
  for (std::size_t i = 0; i < fan_out.size(); ++i) {
    s += (i == 0 ? "" : "x") + std::to_string(fan_out[i]);
  }
  return s;
}

void report_tree(benchio::BenchReport& report, const std::string& scenario,
                 const TreeRun& r) {
  report.add("client_scaling", scenario, "viewers",
             static_cast<double>(r.viewers), "clients");
  report.add("client_scaling", scenario, "leaf_frames",
             static_cast<double>(r.leaf_frames), "frames");
  report.add("client_scaling", scenario, "origin_wan_gb", r.origin_wan.gb(),
             "GB");
  report.add("client_scaling", scenario, "bounded", r.bounded ? 1.0 : 0.0,
             "flag");
  report.add("client_scaling", scenario, "wall_hours", r.wall_hours, "h");
  for (std::size_t t = 0; t < r.tiers.size(); ++t) {
    const EdgeTierStats& ts = r.tiers[t];
    const std::string tier = "t" + std::to_string(t);
    report.add("client_scaling", scenario, tier + "_hit_rate",
               ts.hit_rate(), "fraction");
    report.add("client_scaling", scenario, tier + "_wan_gb",
               ts.bytes_on_wan().gb(), "GB");
    report.add("client_scaling", scenario, tier + "_staleness_mean_s",
               ts.mean_staleness_s(), "s");
    report.add("client_scaling", scenario, tier + "_staleness_max_s",
               ts.staleness_max_s, "s");
    report.add("client_scaling", scenario, tier + "_evictions",
               static_cast<double>(ts.cache_evictions), "count");
    report.add("client_scaling", scenario, tier + "_fill_coalesced",
               static_cast<double>(ts.fill_coalesced), "count");
  }
}

void print_tree(const std::string& scenario, const TreeRun& r) {
  std::printf("  %-10s: %7lld viewers, %6lld leaf frames, origin WAN "
              "%8.2f GB, wall %5.1f h %s%s\n",
              scenario.c_str(), static_cast<long long>(r.viewers),
              static_cast<long long>(r.leaf_frames), r.origin_wan.gb(),
              r.wall_hours, r.bounded ? "(bounded)" : "** CAP EXCEEDED **",
              r.exactly_once ? "" : " ** DELIVERY LOST/DUPLICATED **");
  for (std::size_t t = 0; t < r.tiers.size(); ++t) {
    const EdgeTierStats& ts = r.tiers[t];
    std::printf("    tier %zu: %3d nodes, hit %5.1f%%, WAN %8.2f GB, "
                "staleness mean/max %6.1f/%6.1f s, evictions %5lld, "
                "coalesced %5lld\n",
                t, ts.nodes, ts.hit_rate() * 100.0, ts.bytes_on_wan().gb(),
                ts.mean_staleness_s(), ts.staleness_max_s,
                static_cast<long long>(ts.cache_evictions),
                static_cast<long long>(ts.fill_coalesced));
  }
}

/// Synthetic serving rig: a fixed 180-frame stream, 24 mixed clients, a
/// cache small enough to thin aggressively, and a real compute kernel as
/// the re-render body. Returns the delivery digest.
std::uint64_t run_determinism_rig(int pool_workers) {
  EventQueue queue;
  ThreadPool pool(pool_workers);
  std::atomic<std::int64_t> render_work{0};

  ViewerSessionManager::Options opts;
  opts.cache.capacity = Bytes::megabytes(1500.0);
  opts.cache.policy = EvictionPolicy::kStrideThinning;
  opts.rerender_workers = 3;
  ViewerSessionManager manager(
      queue, opts, /*seed=*/7, &pool, [&render_work](const Frame& f) {
        // Real (threaded) work whose result never feeds back into
        // virtual time.
        std::int64_t acc = 0;
        for (int i = 0; i < 20000; ++i) acc += (f.sequence * 31 + i) % 97;
        render_work.fetch_add(acc, std::memory_order_relaxed);
      });
  for (const ViewerConfig& v :
       make_viewer_fleet(24, Bandwidth::mbps(40.0), /*catchup_fraction=*/0.5,
                         SimSeconds(0.0),
                         /*catchup_join=*/WallSeconds(3000.0))) {
    manager.add_viewer(v);
  }
  for (int i = 0; i < 180; ++i) {
    queue.schedule_at(WallSeconds(60.0 * i), [&manager, i] {
      Frame f;
      f.sequence = i;
      f.sim_time = SimSeconds(1800.0 * i);
      f.size = Bytes::megabytes(80.0 + 17.0 * (i % 7));
      manager.on_frame(f);
    });
  }
  queue.run_all();
  return digest_deliveries(manager);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const std::string json_path =
      args.json_path.empty() ? "BENCH_client_scaling.json" : args.json_path;
  benchio::BenchReport report;
  bool ok = true;

  std::printf("== client scaling: viewers x cache capacity "
              "(inter-department, optimization) ==\n");
  CsvTable table({"clients", "cache_gb", "frames_sent", "frames_served",
                  "hit_percent", "evictions", "rerenders", "peak_cache_gb",
                  "bounded", "wall_hours"});
  const std::vector<int> client_axis = args.quick ? std::vector<int>{8}
                                                  : std::vector<int>{1, 8, 32,
                                                                     128};
  const std::vector<double> cache_axis =
      args.quick ? std::vector<double>{4.0}
                 : std::vector<double>{2.0, 4.0, 16.0};
  for (const int clients : client_axis) {
    for (const double cache_gb : cache_axis) {
      const ExperimentConfig cfg = scaling_config(clients, cache_gb);
      const ExperimentResult r = run_experiment(cfg);
      const ExperimentSummary& s = r.summary;
      const double hit_pct =
          s.cache_hits + s.cache_misses == 0
              ? 100.0
              : 100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(s.cache_hits + s.cache_misses);
      const bool bounded =
          s.peak_cache_bytes <= cfg.serve.session.cache.capacity;
      ok = ok && bounded;
      std::printf("  %3d clients, %5.1f GB cache: served %6lld frames, "
                  "%5.1f%% hit, %4lld evictions, %3lld rerenders, peak "
                  "%5.2f GB %s, wall %.1f h\n",
                  clients, cache_gb, static_cast<long long>(s.frames_served),
                  hit_pct, static_cast<long long>(s.cache_evictions),
                  static_cast<long long>(s.rerenders),
                  s.peak_cache_bytes.gb(),
                  bounded ? "(bounded)" : "** CAP EXCEEDED **",
                  s.wall_elapsed.as_hours());
      table.add_row({static_cast<long>(clients), cache_gb, s.frames_sent,
                     s.frames_served, hit_pct, s.cache_evictions,
                     s.rerenders, s.peak_cache_bytes.gb(),
                     static_cast<long>(bounded), s.wall_elapsed.as_hours()});
      const std::string cell =
          "c" + std::to_string(clients) + "-" +
          std::to_string(static_cast<int>(cache_gb)) + "gb";
      report.add("client_scaling", cell, "hit_percent", hit_pct, "%");
      report.add("client_scaling", cell, "peak_cache_gb",
                 s.peak_cache_bytes.gb(), "GB");
      report.add("client_scaling", cell, "rerenders",
                 static_cast<double>(s.rerenders), "count");
      report.add("client_scaling", cell, "bounded", bounded ? 1.0 : 0.0,
                 "flag");
    }
  }
  save_csv(table, "client_scaling");

  std::printf("\n== tiered fan-out: 64 leaves, 1600 viewers/leaf = 102,400 "
              "modeled clients ==\n");
  const int tree_frames = args.quick ? 60 : 240;
  const std::int64_t viewers_per_leaf = 1600;
  const TreeRun flat = run_tree({64}, tree_frames, viewers_per_leaf,
                                /*failure=*/0.0, /*pool=*/0);
  const TreeRun two = run_tree({4, 16}, tree_frames, viewers_per_leaf,
                               /*failure=*/0.0, /*pool=*/0);
  const TreeRun three = run_tree({4, 4, 4}, tree_frames, viewers_per_leaf,
                                 /*failure=*/0.0, /*pool=*/0);
  print_tree("flat64", flat);
  print_tree(shape_name({4, 16}), two);
  print_tree(shape_name({4, 4, 4}), three);
  report_tree(report, "flat64", flat);
  report_tree(report, shape_name({4, 16}), two);
  report_tree(report, shape_name({4, 4, 4}), three);
  for (const TreeRun* r : {&flat, &two, &three}) {
    ok = ok && r->bounded && r->exactly_once && r->all_tiers_hit &&
         r->viewers >= 100'000;
  }

  // 2-tier vs flat: one origin transfer now serves 16 leaves, so origin
  // bytes-on-WAN must drop by at least 10x (the tree's reason to exist).
  const double wan_reduction = flat.origin_wan / two.origin_wan;
  const bool wan_ok = wan_reduction >= 10.0;
  ok = ok && wan_ok;
  std::printf("  origin WAN reduction flat -> 2-tier: %.1fx %s\n",
              wan_reduction, wan_ok ? "(>= 10x)" : "** BELOW 10x **");
  report.add("client_scaling", "flat_vs_2tier", "wan_reduction",
             wan_reduction, "x");

  // Same leaf population => identical delivered content, whatever hangs
  // above the leaves.
  const bool shapes_same = flat.shape_digest == two.shape_digest &&
                           two.shape_digest == three.shape_digest;
  ok = ok && shapes_same;
  std::printf("  delivered-frame digest across shapes: %016llx %s\n",
              static_cast<unsigned long long>(two.shape_digest),
              shapes_same ? "== identical" : "** DIVERGED **");
  report.add("client_scaling", "shapes", "digest_match",
             shapes_same ? 1.0 : 0.0, "flag");

  // Pool width only changes who executes the render side effects, never
  // the virtual-time schedule: full digests (wall times included) match.
  bool pools_same = true;
  for (const int workers : {3, 7}) {
    const TreeRun r = run_tree({4, 16}, tree_frames, viewers_per_leaf,
                               /*failure=*/0.0, workers);
    const bool same = r.full_digest == two.full_digest &&
                      r.render_checksum == two.render_checksum;
    pools_same = pools_same && same;
    std::printf("  2-tier on pool %d lanes: digest %016llx %s\n", workers + 1,
                static_cast<unsigned long long>(r.full_digest),
                same ? "== identical" : "** DIVERGED **");
  }
  ok = ok && pools_same;
  report.add("client_scaling", "pools", "digest_match",
             pools_same ? 1.0 : 0.0, "flag");

  // 30% of regional fills aborting mid-flight: retries happen, every leaf
  // still gets every frame exactly once, and the delivered *content* is
  // bit-identical to the clean run (only wall times shift).
  const TreeRun faulted = run_tree({4, 16}, tree_frames, viewers_per_leaf,
                                   /*failure=*/0.3, /*pool=*/0);
  const bool fault_ok = faulted.exactly_once && faulted.fill_retries > 0 &&
                        faulted.shape_digest == two.shape_digest;
  ok = ok && fault_ok;
  std::printf("  2-tier @ 30%% fill failures: %lld retries, %s\n",
              static_cast<long long>(faulted.fill_retries),
              fault_ok ? "exactly-once, content digest identical"
                       : "** INVARIANT VIOLATED **");
  report.add("client_scaling", "faulted_2tier", "fill_retries",
             static_cast<double>(faulted.fill_retries), "count");
  report.add("client_scaling", "faulted_2tier", "exactly_once",
             fault_ok ? 1.0 : 0.0, "flag");

  std::printf("\n== determinism across thread-pool worker counts ==\n");
  const std::uint64_t base = run_determinism_rig(0);
  for (const int workers : {3, 7}) {
    const std::uint64_t h = run_determinism_rig(workers);
    const bool same = h == base;
    ok = ok && same;
    std::printf("  pool %d lanes vs serial: digest %016llx %s\n", workers + 1,
                static_cast<unsigned long long>(h),
                same ? "== identical" : "** DIVERGED **");
  }

  if (!args.quick) {
    std::printf("\n== determinism of the full experiment (fixed seed) ==\n");
    const ExperimentConfig cfg = scaling_config(32, 4.0);
    const std::uint64_t run1 = digest_result(run_experiment(cfg));
    const std::uint64_t run2 = digest_result(run_experiment(cfg));
    ok = ok && run1 == run2;
    std::printf("  run1 %016llx / run2 %016llx %s\n",
                static_cast<unsigned long long>(run1),
                static_cast<unsigned long long>(run2),
                run1 == run2 ? "== identical" : "** DIVERGED **");
  }

  report.save(json_path);
  std::printf("wrote %s (%zu rows)\n", json_path.c_str(),
              report.rows().size());
  std::printf("\n%s\n", ok ? "client scaling: all invariants held"
                           : "client scaling: INVARIANT VIOLATIONS");
  return ok ? 0 : 1;
}
