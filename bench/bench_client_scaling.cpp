// Client-scaling bench for the serving subsystem (src/serve).
//
// Part 1 — scaling: the inter-department Aila run fanned out to
// 1/8/32/128 viewer clients over a sweep of cache capacities. For every
// cell it reports deliveries, cache hit rate, evictions, re-renders and
// the peak resident cache bytes, and *fails* (exit 1) if the cache ever
// exceeded its configured byte cap — the bounded-memory guarantee.
//
// Part 2 — determinism: the same synthetic serving workload (late
// catch-up joiners forcing re-renders whose heavy work runs on the
// thread pool) is replayed on pools of 1/4/8 lanes; the digest over
// every client's full delivery series must be bitwise identical, because
// all virtual-time decisions happen on the event loop and the pool only
// executes side-effect render work. A fixed-seed full experiment is also
// run twice and digest-compared.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "experiment_common.hpp"
#include "serve/session_manager.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over raw bytes: digests must capture exact bit patterns.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void f64(double v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
};

std::uint64_t digest_deliveries(const ViewerSessionManager& m) {
  Digest d;
  for (int c = 0; c < m.viewer_count(); ++c) {
    d.i64(c);
    for (const DeliveryRecord& r : m.deliveries(c)) {
      d.f64(r.wall_time.seconds());
      d.f64(r.sim_time.seconds());
      d.i64(r.sequence);
      d.i64(r.size.count());
      d.i64(r.cache_hit ? 1 : 0);
    }
  }
  return d.h;
}

std::uint64_t digest_result(const ExperimentResult& r) {
  Digest d;
  for (const ClientSeries& c : r.clients) {
    for (const DeliveryRecord& rec : c.records) {
      d.f64(rec.wall_time.seconds());
      d.f64(rec.sim_time.seconds());
      d.i64(rec.sequence);
      d.i64(rec.size.count());
      d.i64(rec.cache_hit ? 1 : 0);
    }
  }
  d.i64(r.summary.cache_hits);
  d.i64(r.summary.cache_misses);
  d.i64(r.summary.cache_evictions);
  return d.h;
}

ExperimentConfig scaling_config(int clients, double cache_gb) {
  ExperimentConfig cfg;
  cfg.name = "client-scaling";
  cfg.site = inter_department_site();
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 8.0;
  cfg.seed = 42;
  cfg.serve.session.cache.capacity = Bytes::gigabytes(cache_gb);
  cfg.serve.session.cache.policy = EvictionPolicy::kStrideThinning;
  cfg.serve.session.rerender_workers = 2;
  // A quarter of the fleet connects 12 wall hours in and replays the run
  // from the start — the cache-miss / re-render load.
  cfg.serve.viewers =
      make_viewer_fleet(clients, Bandwidth::mbps(100.0),
                        /*catchup_fraction=*/0.25, SimSeconds(0.0),
                        /*catchup_join=*/WallSeconds::hours(12.0));
  return cfg;
}

/// Synthetic serving rig: a fixed 180-frame stream, 24 mixed clients, a
/// cache small enough to thin aggressively, and a real compute kernel as
/// the re-render body. Returns the delivery digest.
std::uint64_t run_determinism_rig(int pool_workers) {
  EventQueue queue;
  ThreadPool pool(pool_workers);
  std::atomic<std::int64_t> render_work{0};

  ViewerSessionManager::Options opts;
  opts.cache.capacity = Bytes::megabytes(1500.0);
  opts.cache.policy = EvictionPolicy::kStrideThinning;
  opts.rerender_workers = 3;
  ViewerSessionManager manager(
      queue, opts, /*seed=*/7, &pool, [&render_work](const Frame& f) {
        // Real (threaded) work whose result never feeds back into
        // virtual time.
        std::int64_t acc = 0;
        for (int i = 0; i < 20000; ++i) acc += (f.sequence * 31 + i) % 97;
        render_work.fetch_add(acc, std::memory_order_relaxed);
      });
  for (const ViewerConfig& v :
       make_viewer_fleet(24, Bandwidth::mbps(40.0), /*catchup_fraction=*/0.5,
                         SimSeconds(0.0),
                         /*catchup_join=*/WallSeconds(3000.0))) {
    manager.add_viewer(v);
  }
  for (int i = 0; i < 180; ++i) {
    queue.schedule_at(WallSeconds(60.0 * i), [&manager, i] {
      Frame f;
      f.sequence = i;
      f.sim_time = SimSeconds(1800.0 * i);
      f.size = Bytes::megabytes(80.0 + 17.0 * (i % 7));
      manager.on_frame(f);
    });
  }
  queue.run_all();
  return digest_deliveries(manager);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  bool ok = true;

  std::printf("== client scaling: viewers x cache capacity "
              "(inter-department, optimization) ==\n");
  CsvTable table({"clients", "cache_gb", "frames_sent", "frames_served",
                  "hit_percent", "evictions", "rerenders", "peak_cache_gb",
                  "bounded", "wall_hours"});
  for (const int clients : {1, 8, 32, 128}) {
    for (const double cache_gb : {2.0, 4.0, 16.0}) {
      const ExperimentConfig cfg = scaling_config(clients, cache_gb);
      const ExperimentResult r = run_experiment(cfg);
      const ExperimentSummary& s = r.summary;
      const double hit_pct =
          s.cache_hits + s.cache_misses == 0
              ? 100.0
              : 100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(s.cache_hits + s.cache_misses);
      const bool bounded =
          s.peak_cache_bytes <= cfg.serve.session.cache.capacity;
      ok = ok && bounded;
      std::printf("  %3d clients, %5.1f GB cache: served %6lld frames, "
                  "%5.1f%% hit, %4lld evictions, %3lld rerenders, peak "
                  "%5.2f GB %s, wall %.1f h\n",
                  clients, cache_gb, static_cast<long long>(s.frames_served),
                  hit_pct, static_cast<long long>(s.cache_evictions),
                  static_cast<long long>(s.rerenders),
                  s.peak_cache_bytes.gb(),
                  bounded ? "(bounded)" : "** CAP EXCEEDED **",
                  s.wall_elapsed.as_hours());
      table.add_row({static_cast<long>(clients), cache_gb, s.frames_sent,
                     s.frames_served, hit_pct, s.cache_evictions,
                     s.rerenders, s.peak_cache_bytes.gb(),
                     static_cast<long>(bounded), s.wall_elapsed.as_hours()});
    }
  }
  save_csv(table, "client_scaling");

  std::printf("\n== determinism across thread-pool worker counts ==\n");
  const std::uint64_t base = run_determinism_rig(0);
  for (const int workers : {3, 7}) {
    const std::uint64_t h = run_determinism_rig(workers);
    const bool same = h == base;
    ok = ok && same;
    std::printf("  pool %d lanes vs serial: digest %016llx %s\n", workers + 1,
                static_cast<unsigned long long>(h),
                same ? "== identical" : "** DIVERGED **");
  }

  std::printf("\n== determinism of the full experiment (fixed seed) ==\n");
  const ExperimentConfig cfg = scaling_config(32, 4.0);
  const std::uint64_t run1 = digest_result(run_experiment(cfg));
  const std::uint64_t run2 = digest_result(run_experiment(cfg));
  ok = ok && run1 == run2;
  std::printf("  run1 %016llx / run2 %016llx %s\n",
              static_cast<unsigned long long>(run1),
              static_cast<unsigned long long>(run2),
              run1 == run2 ? "== identical" : "** DIVERGED **");

  std::printf("\n%s\n", ok ? "client scaling: all invariants held"
                           : "client scaling: INVARIANT VIOLATIONS");
  return ok ? 0 : 1;
}
