// Observability overhead + transparency bench (src/obs).
//
// Two guarantees the instrumentation layer makes, asserted here (exit 1
// on violation):
//
//  1. Transparency — running an experiment with the metrics registry and
//     stage tracer installed produces *bitwise identical* simulation
//     output (telemetry series, visualization records, track, summary) to
//     running with observability off. Instrumentation never touches
//     simulation state, RNG streams or the event queue; an FNV-1a digest
//     over the raw bytes proves it.
//
//  2. Cost — the wall-time overhead of full instrumentation on the Fig 5
//     scenario stays under 2%. Runs alternate off/on and the minimum of
//     N runs per mode is compared (the min is the robust statistic for
//     CPU-bound work; means absorb scheduler noise).
//
// `--quick` shrinks the scenario so the same checks run as a ctest smoke.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_report.hpp"
#include "experiment_common.hpp"
#include "obs/export.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over raw bytes: digests must capture exact bit patterns.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void f64(double v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
};

std::uint64_t digest_result(const ExperimentResult& r) {
  Digest d;
  for (const TelemetrySample& s : r.samples) {
    d.f64(s.wall_time.seconds());
    d.f64(s.sim_time.seconds());
    d.f64(s.free_disk_percent);
    d.i64(s.processors);
    d.f64(s.output_interval.seconds());
    d.f64(s.resolution_km);
    d.f64(s.min_pressure_hpa);
    d.i64((s.stalled ? 1 : 0) | (s.critical ? 2 : 0) | (s.paused ? 4 : 0));
    d.i64(s.frames_written);
    d.i64(s.frames_sent);
    d.i64(s.frames_visualized);
    d.i64(s.transfer_failures);
    d.i64(s.transfer_retries);
  }
  for (const VisRecord& v : r.vis_records) {
    d.f64(v.wall_time.seconds());
    d.f64(v.sim_time.seconds());
    d.i64(v.sequence);
    d.i64(v.size.count());
  }
  for (const TrackPoint& p : r.track) {
    d.f64(p.time.seconds());
    d.f64(p.eye.lat);
    d.f64(p.eye.lon);
    d.f64(p.min_pressure_hpa);
  }
  d.f64(r.summary.wall_elapsed.seconds());
  d.f64(r.summary.sim_reached.seconds());
  d.i64(r.summary.frames_written);
  d.i64(r.summary.restarts);
  return d.h;
}

ExperimentConfig scenario(bool quick) {
  ExperimentConfig cfg;
  if (!quick) {
    // The Fig 5 scenario: full Aila window on the inter-department site.
    cfg = standard_config("inter-department", inter_department_site(),
                          AlgorithmKind::kOptimization);
  } else {
    cfg.name = "obs-smoke";
    cfg.site = inter_department_site();
    cfg.algorithm = AlgorithmKind::kOptimization;
    cfg.sim_window = SimSeconds::hours(24.0);
    cfg.max_wall = WallSeconds::hours(48.0);
    cfg.model.compute_scale = 8.0;
    cfg.seed = 42;
  }
  // Two solver lanes so the shared pool's fork-join instrumentation is on
  // the measured path (results are bitwise identical for any lane count).
  cfg.model.dynamics.threads = 2;
  return cfg;
}

double run_once(const ExperimentConfig& cfg, bool with_obs,
                std::uint64_t* digest_out,
                ExperimentResult* keep = nullptr) {
  ExperimentConfig run_cfg = cfg;
  run_cfg.observability = with_obs;
  const auto t0 = std::chrono::steady_clock::now();
  ExperimentResult r = run_experiment(run_cfg);
  const auto t1 = std::chrono::steady_clock::now();
  if (digest_out != nullptr) *digest_out = digest_result(r);
  if (keep != nullptr) *keep = std::move(r);
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const bool quick = args.quick;
  const std::string json_path =
      args.json_path.empty() ? "BENCH_observability.json" : args.json_path;
  const ExperimentConfig cfg = scenario(quick);
  const int kRuns = quick ? 5 : 3;

  // Warm the shared pool and every code path before timing anything.
  std::uint64_t digest_off = 0;
  std::uint64_t digest_on = 0;
  run_once(cfg, /*with_obs=*/false, nullptr);

  // Alternate off/on so drift (thermal, cache residency) hits both modes
  // equally; keep the minimum per mode.
  double min_off = 1e100;
  double min_on = 1e100;
  ExperimentResult instrumented;
  for (int i = 0; i < kRuns; ++i) {
    min_off = std::min(min_off, run_once(cfg, false, &digest_off));
    min_on = std::min(min_on, run_once(cfg, true, &digest_on, &instrumented));
  }

  // The <2% contract is measured on the full Fig 5 scenario, where each
  // run is seconds long and the min-of-N statistic is stable. The ctest
  // smoke runs a sub-second scenario, where timer/scheduler noise alone
  // can exceed 2%; it keeps the machinery honest with a looser gate (the
  // transparency check stays exact in both modes).
  const double budget_pct = quick ? 10.0 : 2.0;
  const double overhead_pct = 100.0 * (min_on - min_off) / min_off;
  std::printf("observability overhead (%s): off=%.3fs on=%.3fs -> %+.2f%%\n",
              quick ? "smoke scenario" : "fig5 scenario", min_off, min_on,
              overhead_pct);
  std::printf("digest off=%016llx on=%016llx\n",
              static_cast<unsigned long long>(digest_off),
              static_cast<unsigned long long>(digest_on));

  const auto& m = instrumented.metrics;
  std::printf(
      "captured: sim.steps=%lld pool.regions=%lld transport.attempts=%lld "
      "manager.decisions=%lld trace_events=%zu\n",
      static_cast<long long>(m.counter_or("sim.steps")),
      static_cast<long long>(m.counter_or("pool.regions")),
      static_cast<long long>(m.counter_or("transport.attempts")),
      static_cast<long long>(m.counter_or("manager.decisions")),
      instrumented.trace.size());

  CsvTable table({"scenario", "runs_per_mode", "min_off_s", "min_on_s",
                  "overhead_percent", "digest_match"});
  table.add_row({std::string(quick ? "smoke" : "fig5"),
                 static_cast<long>(kRuns), min_off, min_on, overhead_pct,
                 static_cast<long>(digest_off == digest_on)});
  save_csv(table, "observability_overhead");

  benchio::BenchReport report;
  const std::string cell = quick ? "smoke" : "fig5";
  report.add("observability", cell, "min_off_s", min_off, "s");
  report.add("observability", cell, "min_on_s", min_on, "s");
  report.add("observability", cell, "overhead_percent", overhead_pct, "%");
  report.add("observability", cell, "digest_match",
             digest_off == digest_on ? 1.0 : 0.0, "flag");
  report.add("observability", cell, "trace_events",
             static_cast<double>(instrumented.trace.size()), "count");
  report.save(json_path);
  std::printf("bench rows written to %s\n", json_path.c_str());

  bool ok = true;
  if (digest_off != digest_on) {
    std::fprintf(stderr,
                 "FAIL: simulation output changed with metrics on "
                 "(instrumentation must be invisible)\n");
    ok = false;
  }
  if (overhead_pct >= budget_pct) {
    std::fprintf(stderr, "FAIL: overhead %.2f%% >= %.0f%% budget\n",
                 overhead_pct, budget_pct);
    ok = false;
  }
  if (m.counter_or("sim.steps") <= 0 || m.counter_or("pool.regions") <= 0 ||
      m.counter_or("manager.decisions") <= 0 || instrumented.trace.empty()) {
    std::fprintf(stderr,
                 "FAIL: instrumented run captured no metrics/trace\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
