// Table I — "Illustration of Disk Space Limitation".
//
// Reproduces the paper's estimate of when stable storage becomes full for a
// projected petascale run: 4486x4486 points at 10 km (~31 GB/frame), 1.2 s
// per step on 16,384 cores, ~5 GBps parallel I/O, for disks of 5..500 TB
// and networks of 1 and 10 Gbps. Paper values are printed alongside for
// shape comparison (same analytic model, the paper rounds).
#include <cstdio>

#include "core/storage_estimate.hpp"
#include "experiment_common.hpp"
#include "util/csv.hpp"
#include "util/string_util.hpp"

using namespace adaptviz;

namespace {

std::string pretty(std::optional<WallSeconds> t) {
  if (!t) return "never";
  const double h = t->as_hours();
  if (h < 1.5) {
    return format("%.0f minutes", t->seconds() / 60.0);
  }
  return format("%.1f hours", h);
}

}  // namespace

int main() {
  std::printf("=== Table I: time until storage becomes full ===\n");
  std::printf(
      "grid 4486x4486 @10 km, 31 GB/frame, 1.2 s/step on 16,384 cores, "
      "5 GBps I/O\n\n");
  std::printf("%-12s %-12s %-16s %-16s\n", "Disk", "Network", "This repo",
              "Paper");

  struct Row {
    double disk_tb;
    double gbps;
    const char* paper;
  };
  const Row rows[] = {
      {5, 1, "25 minutes"},    {5, 10, "36 minutes"},
      {100, 1, "8 hours"},     {100, 10, "12 hours"},
      {300, 1, "24.5 hours"},  {300, 10, "36 hours"},
      {500, 1, "41 hours"},    {500, 10, "60 hours"},
  };

  CsvTable csv({"disk_tb", "network_gbps", "hours_until_full",
                "paper_value"});
  for (const Row& row : rows) {
    StorageEstimateInput in;
    in.disk_capacity = Bytes::terabytes(row.disk_tb);
    in.network_bandwidth = Bandwidth::gbps(row.gbps);
    const auto t = time_until_storage_full(in);
    std::printf("%-12s %-12s %-16s %-16s\n",
                format("%.0f TB", row.disk_tb).c_str(),
                format("%.0f Gbps", row.gbps).c_str(), pretty(t).c_str(),
                row.paper);
    csv.add_row({row.disk_tb, row.gbps, t ? t->as_hours() : -1.0,
                 std::string(row.paper)});
  }
  bench::save_csv(csv, "table1_disk_limit");

  std::printf(
      "\nShape check: minutes at 5 TB, hours at 100+ TB, and the faster\n"
      "network always buys time — matching the paper's conclusion that even\n"
      "large disks fill within hours at petascale output rates.\n");
  return 0;
}
