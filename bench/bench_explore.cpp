// Scenario-explorer bench: snapshot/backtrack vs naive re-execution.
//
// The explorer's pitch is that checkpoint/restore makes a tree of
// adversarial futures affordable: revisiting a decision boundary costs a
// state restore instead of a re-execution from t = 0. This bench runs the
// SAME search twice over a reference tree — once restoring snapshots,
// once re-executing every node — and gates on the speedup (exit 1 when
// snapshot mode is not at least 3x faster per evaluated leaf; the smoke
// tree of --quick is much shallower, where re-execution has less to lose,
// so its gate is 1.5x). Both modes must also produce byte-identical
// reports — the speedup is only meaningful if the answers agree.
//
// The reference tree stacks the deck the way real exploration does: deep
// boundaries (re-execution cost grows linearly with depth), short leaf
// tails (shared cost that dilutes the ratio), and a no-op adversary
// action (failure-burst at probability 0) so every branch follows the
// same deterministic trajectory and the measurement is timing, not
// workload drift.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_report.hpp"
#include "experiment_common.hpp"
#include "explore/explorer.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

/// Inter-department site scaled like scenarios/explore_smoke.ini, but with
/// a long simulated window (the run must still be going at the deepest
/// boundary) and a wall cutoff just past it (short leaf tails).
ExperimentConfig reference_config(int depth) {
  ExperimentConfig cfg;
  cfg.name = "explore-bench";
  cfg.site = inter_department_site();
  cfg.site.machine.max_cores = 32;
  cfg.site.disk_capacity = Bytes::gigabytes(100);
  cfg.site.wan_nominal = Bandwidth::mbps(30);
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(240.0);
  cfg.decision_period = WallSeconds::hours(0.5);
  cfg.sample_period = WallSeconds::minutes(10.0);
  // Last boundary at (depth - 1) * period; leave a 0.1 h tail.
  cfg.max_wall = cfg.decision_period * static_cast<double>(depth - 1) +
                 WallSeconds::hours(0.1);
  cfg.seed = 7;
  return cfg;
}

ExploreSpec reference_spec(int depth) {
  ExploreSpec spec;
  spec.max_depth = depth;
  spec.max_branches = 1 << depth;
  // One no-op action + the none branch: a full binary tree whose branches
  // all follow the baseline trajectory bit for bit.
  spec.failure_burst_levels = {0.0};
  spec.prune = false;  // identical work in both modes, nothing skipped
  return spec;
}

struct Timed {
  double seconds = 0.0;
  ExploreReport report;
};

Timed timed_explore(int depth, bool use_snapshots) {
  ExploreSpec spec = reference_spec(depth);
  spec.use_snapshots = use_snapshots;
  ScenarioExplorer explorer(reference_config(depth), spec);
  const auto t0 = std::chrono::steady_clock::now();
  Timed out;
  out.report = explorer.explore();
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kError);
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const std::string json_path =
      args.json_path.empty() ? "BENCH_explore.json" : args.json_path;
  const int depth = args.quick ? 3 : 5;
  const double gate = args.quick ? 1.5 : 3.0;

  // Warm caches and the profiler path before timing.
  timed_explore(depth, /*use_snapshots=*/true);

  const Timed snap = timed_explore(depth, /*use_snapshots=*/true);
  const Timed naive = timed_explore(depth, /*use_snapshots=*/false);

  const int leaves = snap.report.leaves_evaluated;
  const double per_leaf_snap = snap.seconds / leaves;
  const double per_leaf_naive = naive.seconds / leaves;
  const double speedup = naive.seconds / snap.seconds;
  std::printf(
      "explore bench (depth %d, %d nodes, %d leaves):\n"
      "  snapshot/backtrack: %6.2f s  (%7.1f ms/leaf)\n"
      "  naive re-execution: %6.2f s  (%7.1f ms/leaf)\n"
      "  speedup: %.2fx (gate %.1fx)\n",
      depth, snap.report.nodes_explored, leaves, snap.seconds,
      1e3 * per_leaf_snap, naive.seconds, 1e3 * per_leaf_naive, speedup,
      gate);

  const bool reports_agree =
      to_string(snap.report) == to_string(naive.report);

  CsvTable table({"depth", "nodes", "leaves", "snapshot_s", "naive_s",
                  "speedup", "reports_agree"});
  table.add_row({static_cast<long>(depth),
                 static_cast<long>(snap.report.nodes_explored),
                 static_cast<long>(leaves), snap.seconds, naive.seconds,
                 speedup, static_cast<long>(reports_agree)});
  save_csv(table, "explore_speedup");

  benchio::BenchReport report;
  const std::string cell = "depth" + std::to_string(depth);
  report.add("explore", cell, "snapshot_s", snap.seconds, "s");
  report.add("explore", cell, "naive_s", naive.seconds, "s");
  report.add("explore", cell, "per_leaf_snapshot_s", per_leaf_snap, "s");
  report.add("explore", cell, "per_leaf_naive_s", per_leaf_naive, "s");
  report.add("explore", cell, "speedup", speedup, "x");
  report.add("explore", cell, "reports_agree", reports_agree ? 1.0 : 0.0,
             "flag");
  report.save(json_path);
  std::printf("bench rows written to %s\n", json_path.c_str());

  bool ok = true;
  if (!reports_agree) {
    std::fprintf(stderr,
                 "FAIL: snapshot and naive searches disagree on the "
                 "report\n");
    ok = false;
  }
  if (speedup < gate) {
    std::fprintf(stderr, "FAIL: speedup %.2fx < %.1fx gate\n", speedup,
                 gate);
    ok = false;
  }
  return ok ? 0 : 1;
}
