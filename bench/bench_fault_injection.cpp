// Fault-injection bench for the reliable transport layer (src/transport).
//
// Part 1 — failure-rate sweep: the inter-department Aila run with the WAN
// aborting 0/5/15/30 percent of transfer attempts mid-flight. For every
// rate it reports attempts, failures, retries, wall time and the decision
// algorithm's final smoothed bandwidth estimate, and *fails* (exit 1)
// unless (a) the run completes, (b) every frame written is visualized
// exactly once (zero loss, no duplicates), (c) failures occurred iff the
// rate is non-zero, and (d) the bandwidth EMA stays within noise of the
// failure-free baseline — failed attempts must not poison the estimate.
//
// Part 2 — determinism: a synthetic flaky sender→receiver rig (30% abort
// rate, exponential backoff, heavy pool-side render work in the delivery
// callback) replayed on thread pools of 1/4/8 lanes; the digest over the
// delivery series must be bitwise identical because every retry/backoff
// decision happens in virtual time on the event loop. A fixed-seed full
// experiment at 15% failure rate is also run twice and digest-compared.
//
// --quick shrinks the sweep to {0, 0.30} and skips the fixed-seed double
// run (the ctest smoke); --json=PATH overrides the
// BENCH_fault_injection.json report location.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "experiment_common.hpp"
#include "transport/sender.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over raw bytes: digests must capture exact bit patterns.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void f64(double v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
};

ExperimentConfig fault_config(double rate) {
  ExperimentConfig cfg;
  cfg.name = "fault-injection";
  cfg.site = inter_department_site();
  cfg.algorithm = AlgorithmKind::kOptimization;
  cfg.sim_window = SimSeconds::hours(60.0);
  cfg.max_wall = WallSeconds::hours(96.0);
  cfg.model.compute_scale = 8.0;
  cfg.seed = 42;
  cfg.faults.transfer_failure_rate = rate;
  cfg.faults.retry.initial_backoff = WallSeconds(5.0);
  cfg.faults.retry.max_backoff = WallSeconds(120.0);
  return cfg;
}

/// Every frame written must be visualized exactly once (unique sequences).
bool exactly_once(const ExperimentResult& r) {
  std::set<std::int64_t> seen;
  for (const VisRecord& v : r.vis_records) {
    if (!seen.insert(v.sequence).second) return false;  // duplicate
  }
  return static_cast<std::int64_t>(seen.size()) == r.summary.frames_written;
}

std::uint64_t digest_result(const ExperimentResult& r) {
  Digest d;
  for (const VisRecord& v : r.vis_records) {
    d.f64(v.wall_time.seconds());
    d.f64(v.sim_time.seconds());
    d.i64(v.sequence);
    d.i64(v.size.count());
  }
  d.i64(r.summary.transfer_failures);
  d.i64(r.summary.transfer_retries);
  d.i64(r.summary.frames_sent);
  return d.h;
}

struct RigResult {
  std::uint64_t digest = 0;
  std::int64_t delivered = 0;
  std::int64_t failures = 0;
  bool drained = false;
};

/// Synthetic rig: 60 frames pushed on a 60 s cadence over a fluctuating
/// link that aborts 30% of attempts; the delivery callback runs a real
/// parallel render kernel on the pool. All retry/backoff decisions live on
/// the event loop, so the delivery series must not depend on pool width.
RigResult run_determinism_rig(int pool_workers) {
  EventQueue queue;
  ThreadPool pool(pool_workers);
  std::atomic<std::int64_t> render_work{0};

  DiskModel disk(Bytes::gigabytes(64), Bandwidth::megabytes_per_second(200));
  LinkSpec spec;
  spec.nominal = Bandwidth::mbps(400.0);
  spec.fluctuation_sigma = 0.15;
  spec.latency = WallSeconds(0.05);
  spec.failure_probability = 0.3;
  NetworkLink link(spec, /*seed=*/17);
  FrameCatalog catalog;
  BandwidthEstimator estimator(0.3);

  RigResult out;
  Digest d;
  FrameSender::Options opts;
  opts.retry.initial_backoff = WallSeconds(2.0);
  opts.retry.max_backoff = WallSeconds(30.0);
  opts.seed = 11;
  FrameSender sender(
      queue, link, catalog, disk, estimator,
      [&](const Frame& f) {
        // Heavy side-effect work whose result never feeds virtual time.
        pool.parallel_for(
            0, 4096, pool_workers + 1, [&](std::size_t b, std::size_t e) {
              std::int64_t acc = 0;
              for (std::size_t i = b; i < e; ++i) {
                acc += (f.sequence * 131 +
                        static_cast<std::int64_t>(i)) % 101;
              }
              render_work.fetch_add(acc, std::memory_order_relaxed);
            });
        d.i64(f.sequence);
        d.f64(queue.now().seconds());
        d.i64(f.size.count());
        ++out.delivered;
      },
      opts);
  sender.start();
  for (int i = 0; i < 60; ++i) {
    queue.schedule_at(WallSeconds(60.0 * i), [&, i] {
      Frame f;
      f.sequence = i;
      f.sim_time = SimSeconds(600.0 * i);
      f.size = Bytes::megabytes(40.0 + 9.0 * (i % 5));
      (void)disk.allocate(f.size);
      catalog.push(f);
      sender.kick();
    });
  }
  // run_until, not run_all: the sender's poll loop re-arms itself forever.
  queue.run_until(WallSeconds::hours(12.0));
  sender.stop();
  out.digest = d.h;
  out.failures = sender.transfer_failures();
  out.drained = catalog.empty() && disk.used() == Bytes(0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const std::string json_path =
      args.json_path.empty() ? "BENCH_fault_injection.json" : args.json_path;
  benchio::BenchReport report;
  bool ok = true;

  std::printf("== failure-rate sweep (inter-department, optimization) ==\n");
  CsvTable table({"failure_rate", "frames_written", "frames_visualized",
                  "transfer_failures", "transfer_retries", "ema_mbps",
                  "wall_hours", "completed", "exactly_once"});
  double baseline_ema = 0.0;
  const std::vector<double> rates =
      args.quick ? std::vector<double>{0.0, 0.30}
                 : std::vector<double>{0.0, 0.05, 0.15, 0.30};
  for (const double rate : rates) {
    const ExperimentResult r = run_experiment(fault_config(rate));
    const ExperimentSummary& s = r.summary;
    const double ema =
        r.decisions.empty()
            ? 0.0
            : r.decisions.back().input.observed_bandwidth.megabits_per_sec();
    if (rate == 0.0) baseline_ema = ema;
    const bool once = exactly_once(r);
    const bool zero_loss = s.frames_visualized == s.frames_written &&
                           s.frames_sent == s.frames_written;
    const bool faults_seen = rate > 0.0 ? s.transfer_failures > 0
                                        : s.transfer_failures == 0;
    // Failed attempts must not poison the estimator: the EMA tracks the
    // same fluctuating link the baseline saw, so it stays within noise.
    const bool ema_sane =
        baseline_ema > 0.0 &&
        ema > 0.6 * baseline_ema && ema < 1.4 * baseline_ema;
    const bool cell_ok =
        s.completed && once && zero_loss && faults_seen && ema_sane;
    ok = ok && cell_ok;
    std::printf("  rate %4.0f%%: %4lld frames, %4lld failures, %4lld "
                "retries, EMA %5.1f Mbps, wall %5.1f h %s\n", rate * 100.0,
                static_cast<long long>(s.frames_written),
                static_cast<long long>(s.transfer_failures),
                static_cast<long long>(s.transfer_retries),
                ema, s.wall_elapsed.as_hours(),
                cell_ok ? "(exactly-once)" : "** INVARIANT VIOLATED **");
    table.add_row({rate, s.frames_written, s.frames_visualized,
                   s.transfer_failures, s.transfer_retries, ema,
                   s.wall_elapsed.as_hours(), static_cast<long>(s.completed),
                   static_cast<long>(once)});
    const std::string cell =
        "rate" + std::to_string(static_cast<int>(rate * 100.0));
    report.add("fault_injection", cell, "transfer_failures",
               static_cast<double>(s.transfer_failures), "count");
    report.add("fault_injection", cell, "transfer_retries",
               static_cast<double>(s.transfer_retries), "count");
    report.add("fault_injection", cell, "ema_mbps", ema, "Mbps");
    report.add("fault_injection", cell, "wall_hours",
               s.wall_elapsed.as_hours(), "h");
    report.add("fault_injection", cell, "exactly_once", once ? 1.0 : 0.0,
               "flag");
  }
  save_csv(table, "fault_injection");

  std::printf("\n== determinism across thread-pool worker counts ==\n");
  const RigResult base = run_determinism_rig(0);
  ok = ok && base.delivered == 60 && base.failures > 0 && base.drained;
  std::printf("  serial: %lld delivered, %lld failures, %s, digest %016llx\n",
              static_cast<long long>(base.delivered),
              static_cast<long long>(base.failures),
              base.drained ? "drained" : "** NOT DRAINED **",
              static_cast<unsigned long long>(base.digest));
  for (const int workers : {3, 7}) {
    const RigResult r = run_determinism_rig(workers);
    const bool same = r.digest == base.digest && r.delivered == 60;
    ok = ok && same && r.drained;
    std::printf("  pool %d lanes vs serial: digest %016llx %s\n", workers + 1,
                static_cast<unsigned long long>(r.digest),
                same ? "== identical" : "** DIVERGED **");
  }

  if (!args.quick) {
    std::printf("\n== determinism of the full experiment (fixed seed, 15%% "
                "failure rate) ==\n");
    const ExperimentConfig cfg = fault_config(0.15);
    const std::uint64_t run1 = digest_result(run_experiment(cfg));
    const std::uint64_t run2 = digest_result(run_experiment(cfg));
    ok = ok && run1 == run2;
    std::printf("  run1 %016llx / run2 %016llx %s\n",
                static_cast<unsigned long long>(run1),
                static_cast<unsigned long long>(run2),
                run1 == run2 ? "== identical" : "** DIVERGED **");
  }

  report.save(json_path);
  std::printf("wrote %s (%zu rows)\n", json_path.c_str(),
              report.rows().size());
  std::printf("\n%s\n", ok ? "fault injection: all invariants held"
                           : "fault injection: INVARIANT VIOLATIONS");
  return ok ? 0 : 1;
}
