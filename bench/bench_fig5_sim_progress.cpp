// Figure 5 (a, b, c) — "Simulation times with progress in executions".
//
// For each Table IV configuration, runs greedy-threshold and optimization
// and prints the simulated time reached as wall-clock execution time
// advances — the series the paper plots. Shape criteria from the paper:
// the optimization method progresses faster and completes the full window
// in every configuration; greedy lags and, in the cross-continent setting,
// stalls before completion (dotted line in the paper's Fig 5c).
#include <algorithm>
#include <cstdio>

#include "experiment_common.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

void print_series(const std::string& site, const SitePair& pair) {
  std::printf("\n--- Fig 5: %s ---\n", site.c_str());
  std::printf("%-8s %-16s %-16s\n", "wall", "greedy", "optimization");

  CsvTable csv({"wall_hours", "greedy_sim_hours", "optimization_sim_hours"});
  const double end_h =
      std::max(pair.greedy.summary.wall_elapsed.as_hours(),
               pair.optimization.summary.wall_elapsed.as_hours());

  auto sim_at = [](const ExperimentResult& r, double wall_h) {
    SimSeconds best(0.0);
    for (const auto& s : r.samples) {
      if (s.wall_time.as_hours() <= wall_h + 1e-9) best = s.sim_time;
    }
    return best;
  };

  for (double h = 0.0; h <= end_h + 1e-9; h += 2.0) {
    const SimSeconds g = sim_at(pair.greedy, h);
    const SimSeconds o = sim_at(pair.optimization, h);
    std::printf("%-8s %-16s %-16s\n", hh_mm(WallSeconds::hours(h)).c_str(),
                sim_label(g).c_str(), sim_label(o).c_str());
    csv.add_row({h, g.as_hours(), o.as_hours()});
  }
  save_csv(csv, "fig5_" + site);

  print_summary(site + " / greedy-threshold", pair.greedy);
  print_summary(site + " / optimization", pair.optimization);

  const double g_wall = pair.greedy.summary.completed
                            ? pair.greedy.summary.sim_finished_wall.as_hours()
                            : 1e9;
  const double o_wall =
      pair.optimization.summary.sim_finished_wall.as_hours();
  if (pair.greedy.summary.completed) {
    std::printf("  => optimization finished the 60-h window %.1f h sooner "
                "(%.0f%% higher effective simulation rate)\n",
                g_wall - o_wall, 100.0 * (g_wall / o_wall - 1.0));
  } else {
    std::printf("  => greedy never completed (stalled, reached %s); "
                "optimization completed in %s\n",
                sim_label(pair.greedy.summary.sim_reached).c_str(),
                hh_mm(pair.optimization.summary.sim_finished_wall).c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 5: simulation progress, greedy vs optimization ===\n");
  for (const auto& [name, site] : table4_sites()) {
    print_series(name, run_site(name, site));
  }

  // The paper's aside: "a non-adaptive solution would result in stalling of
  // the simulation much earlier than in the greedy algorithm."
  std::printf("\n--- non-adaptive baseline (cross-continent) ---\n");
  const ExperimentResult fixed =
      run_static("cross-continent", cross_continent_site());
  print_summary("cross-continent / non-adaptive", fixed);
  double stall_start = -1.0;
  for (const auto& s : fixed.samples) {
    if (s.stalled) {
      stall_start = s.wall_time.as_hours();
      break;
    }
  }
  if (stall_start >= 0) {
    std::printf("  => never adapts: first stall after %.1f wall hours, "
                "reaching only %s\n",
                stall_start, sim_label(fixed.summary.sim_reached).c_str());
  }
  return 0;
}
