// Live-steering control-plane bench: record → replay determinism gate.
//
// Leg 1 (record) runs the inter-department Aila configuration under a
// scripted interactive session — an observer attaches mid-run, steers the
// view twice (the second client's identical view exercises the dedup
// path), proposes a knob, pauses/auto-resumes the simulation and detaches
// — and records the applied event stream to steering_log.jsonl.
//
// Leg 2 (replay) runs the same configuration with *only* the recorded log
// as input. The bench *fails* (exit 1) unless
//  (a) both legs complete,
//  (b) the FNV-1a digest over the replay's telemetry CSV bytes and
//      per-client delivery series equals the record leg's digest (the
//      bitwise-reproducibility gate the paper's "online remote
//      visualization" workflow depends on),
//  (c) the re-recorded log of the replay leg is byte-identical to the
//      original (a replay of the replay would also be exact), and
//  (d) the scripted same-view steers were deduplicated onto one render
//      (steer_dedup >= 1).
//
// Reports events applied, steer re-renders/dedups, observer peak and both
// legs' wall time; writes BENCH_steering.json and leaves
// steering_log.jsonl in the working directory for CI artifact upload.
// --quick shrinks the simulated window (the ctest smoke).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/telemetry.hpp"
#include "experiment_common.hpp"
#include "steering/control_plane.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over raw bytes: the gate must capture exact bit patterns.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
  void f64(double v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
};

std::uint64_t digest_result(const ExperimentResult& r) {
  Digest d;
  CsvTable table(telemetry_columns());
  for (const TelemetrySample& s : r.samples) {
    table.add_row(telemetry_row(s, CalendarEpoch::aila_start()));
  }
  d.str(table.str());
  for (const ClientSeries& c : r.clients) {
    d.str(c.name);
    for (const DeliveryRecord& rec : c.records) {
      d.i64(rec.sequence);
      d.f64(rec.wall_time.seconds());
      d.f64(rec.sim_time.seconds());
      d.i64(rec.cache_hit ? 1 : 0);
    }
  }
  return d.h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

ExperimentConfig steered_config(bool quick) {
  ExperimentConfig cfg = standard_config(
      "inter-department", table4_sites()[0].second,
      AlgorithmKind::kOptimization);
  cfg.name = "steered";
  if (quick) {
    cfg.sim_window = SimSeconds::hours(24.0);
    cfg.max_wall = WallSeconds::hours(48.0);
  }
  cfg.log.set_level(LogLevel::kError);
  return cfg;
}

/// The scripted interactive session: two observers, a shared view change
/// (dedup), a knob proposal and a pause, all at fixed virtual walls well
/// inside the run.
std::vector<SteeringEvent> scripted_session() {
  std::vector<SteeringEvent> events;
  auto attach = [&events](double wall_h, const std::string& who) {
    SteeringEvent e;
    e.wall = WallSeconds::hours(wall_h);
    e.client = who;
    e.type = SteeringEvent::Type::kAttach;
    e.attach = ObserverSpec{.mode = "live-tail", .downlink_mbps = 50.0};
    events.push_back(e);
  };
  auto view = [&events](double wall_h, const std::string& who) {
    SteeringEvent e;
    e.wall = WallSeconds::hours(wall_h);
    e.client = who;
    e.type = SteeringEvent::Type::kView;
    e.view = ViewCommand{.field = "pressure",
                         .colormap = "viridis",
                         .zoom = 2.0,
                         .center_lat = 21.5,
                         .center_lon = 89.0};
    events.push_back(e);
  };
  // Walls sit well inside even the --quick run: unsteered, the quick
  // simulation finishes its window at ~2.1 h wall (the remaining ~4.5 h is
  // transfer drain), so the pause lands at 1.0 h while the simulation is
  // demonstrably still stepping and stretches it by its full hour.
  attach(0.5, "forecaster");
  attach(0.5, "modeler");
  {
    SteeringEvent e;
    e.wall = WallSeconds::hours(1.0);
    e.client = "modeler";
    e.type = SteeringEvent::Type::kCommand;
    e.command.kind = SteeringCommand::Kind::kPause;
    e.command.auto_resume_after = WallSeconds::hours(1.0);
    e.command.reason = "inspecting the genesis frames";
    events.push_back(e);
  }
  // Same frame, same view, same instant: the second must dedup onto the
  // first's render.
  view(1.5, "forecaster");
  view(1.5, "modeler");
  {
    SteeringEvent e;
    e.wall = WallSeconds::hours(2.0);
    e.client = "forecaster";
    e.type = SteeringEvent::Type::kProposal;
    e.proposal.max_output_interval = SimSeconds::minutes(10.0);
    e.proposal.reason = "landfall brief needs denser frames";
    events.push_back(e);
  }
  {
    SteeringEvent e;
    e.wall = WallSeconds::hours(4.2);
    e.client = "modeler";
    e.type = SteeringEvent::Type::kDetach;
    events.push_back(e);
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  set_log_level(LogLevel::kError);
  const std::string log_path = "steering_log.jsonl";
  const std::string relog_path = "steering_log_replay.jsonl";

  std::printf("== Live steering: record -> replay determinism ==\n");

  // Leg 1: the scripted live session, recorded.
  ExperimentConfig record_cfg = steered_config(args.quick);
  record_cfg.steering.replay = scripted_session();
  record_cfg.steering.record_log_path = log_path;
  const ExperimentResult live = run_experiment(record_cfg);
  const std::uint64_t live_digest = digest_result(live);
  std::printf(
      "record: completed=%s wall=%.1fh events=%lld renders=%lld "
      "dedup=%lld observers_peak=%d digest=%016llx\n",
      live.summary.completed ? "yes" : "NO",
      live.summary.wall_elapsed.as_hours(),
      static_cast<long long>(live.summary.steering_events),
      static_cast<long long>(live.summary.steer_renders),
      static_cast<long long>(live.summary.steer_dedup),
      live.summary.observers_peak,
      static_cast<unsigned long long>(live_digest));

  // Leg 2: the recorded log is the only steering input.
  ExperimentConfig replay_cfg = steered_config(args.quick);
  replay_cfg.steering.replay_log_path = log_path;
  replay_cfg.steering.record_log_path = relog_path;
  const ExperimentResult replayed = run_experiment(replay_cfg);
  const std::uint64_t replay_digest = digest_result(replayed);
  std::printf("replay: completed=%s wall=%.1fh events=%lld digest=%016llx\n",
              replayed.summary.completed ? "yes" : "NO",
              replayed.summary.wall_elapsed.as_hours(),
              static_cast<long long>(replayed.summary.steering_events),
              static_cast<unsigned long long>(replay_digest));

  bool ok = true;
  auto gate = [&ok](bool pass, const char* what) {
    std::printf("  [%s] %s\n", pass ? "ok" : "FAIL", what);
    ok = ok && pass;
  };
  gate(live.summary.completed && replayed.summary.completed,
       "both legs completed");
  gate(live_digest == replay_digest,
       "replay telemetry+delivery digest matches the recorded run");
  const std::string original = read_file(log_path);
  gate(!original.empty() && original == read_file(relog_path),
       "re-recorded steering_log.jsonl is byte-identical");
  gate(live.summary.steer_dedup >= 1,
       "identical same-frame views were deduplicated onto one render");
  gate(live.summary.steering_events ==
           static_cast<std::int64_t>(scripted_session().size()),
       "every scripted event was applied");
  gate(live.summary.observers_peak == 2, "both observers were attached");
  gate(live.summary.total_stall_time.as_hours() > 0.5,
       "the scripted pause held the simulation");

  benchio::BenchReport report;
  const std::string scenario = args.quick ? "quick" : "full";
  report.add("steering", scenario, "events_applied",
             static_cast<double>(live.summary.steering_events), "count");
  report.add("steering", scenario, "steer_renders",
             static_cast<double>(live.summary.steer_renders), "count");
  report.add("steering", scenario, "steer_dedup",
             static_cast<double>(live.summary.steer_dedup), "count");
  report.add("steering", scenario, "observers_peak",
             static_cast<double>(live.summary.observers_peak), "count");
  report.add("steering", scenario, "record_wall_hours",
             live.summary.wall_elapsed.as_hours(), "h");
  report.add("steering", scenario, "replay_wall_hours",
             replayed.summary.wall_elapsed.as_hours(), "h");
  report.add("steering", scenario, "replay_digest_match",
             live_digest == replay_digest ? 1.0 : 0.0, "flag");
  report.add("steering", scenario, "log_byte_identical",
             original == read_file(relog_path) ? 1.0 : 0.0, "flag");
  const std::string json =
      args.json_path.empty() ? "BENCH_steering.json" : args.json_path;
  report.save(json);
  std::printf("report written to %s; event log in %s\n", json.c_str(),
              log_path.c_str());

  if (!ok) {
    std::printf("bench_steering: FAILED\n");
    return 1;
  }
  std::printf("bench_steering: all gates passed\n");
  return 0;
}
