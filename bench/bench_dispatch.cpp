// Distributed dispatch gate: K worker processes vs the in-process runner.
//
// Runs scenarios/sweep_smoke.ini four ways — in-process CampaignRunner
// (the reference), a clean 2-worker distributed dispatch, a 2-worker
// dispatch with one injected worker crash, and a coordinator restart that
// resumes from the manifest with two entries dropped — and ASSERTS the
// load-bearing guarantee: campaign_summary.csv is bitwise identical in
// all four, and the resume leg re-executes exactly the two dropped runs.
// Wall time per leg is reported (not asserted; process spawn costs are
// machine-dependent). Writes BENCH_dispatch.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_report.hpp"
#include "campaign/campaign.hpp"
#include "campaign/dispatch.hpp"
#include "campaign/manifest.hpp"

using namespace adaptviz;
namespace fs = std::filesystem;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  std::printf("  %-52s %s\n", what, ok ? "ok" : "FAIL");
  if (!ok) ++g_failures;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

fs::path fresh_dir(const char* name) {
  const fs::path dir =
      fs::temp_directory_path() / "adaptviz_bench_dispatch" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  benchio::BenchReport report;
  const std::string campaign = std::string(ADAPTVIZ_SCENARIO_DIR) +
                               "/sweep_smoke.ini";
  const std::vector<std::string> worker_cmd = {ADAPTVIZ_SWEEP_BIN};

  std::printf("dispatch bench: %s, 2 workers (%s)\n", campaign.c_str(),
              args.quick ? "quick" : "full");

  // Reference: the in-process runner.
  const fs::path ref_dir = fresh_dir("inproc");
  auto t0 = std::chrono::steady_clock::now();
  {
    CampaignOptions options;
    options.output_dir = ref_dir.string();
    CampaignRunner runner(options);
    runner.run(load_campaign(campaign));
  }
  const double inproc_s = seconds_since(t0);
  const std::string expected = slurp(ref_dir / "campaign_summary.csv");
  report.add("dispatch", "inprocess", "wall_seconds", inproc_s, "s");
  check(!expected.empty(), "in-process summary written");

  // Clean 2-worker dispatch.
  const fs::path clean_dir = fresh_dir("workers2");
  t0 = std::chrono::steady_clock::now();
  DispatchOptions options;
  options.workers = 2;
  options.output_dir = clean_dir.string();
  const DispatchResult clean =
      CampaignDispatcher(worker_cmd, options).run(campaign);
  const double dist_s = seconds_since(t0);
  report.add("dispatch", "workers2", "wall_seconds", dist_s, "s");
  check(slurp(clean_dir / "campaign_summary.csv") == expected,
        "2-worker summary bitwise-identical to in-process");
  check(clean.executed == clean.records.size(), "all runs executed");

  // One injected worker crash: re-dispatch must not change a byte.
  const fs::path crash_dir = fresh_dir("crash");
  DispatchOptions crash_options = options;
  crash_options.output_dir = crash_dir.string();
  crash_options.crash_inject_worker = 0;
  crash_options.retry.initial_backoff = WallSeconds(0.05);
  t0 = std::chrono::steady_clock::now();
  const DispatchResult crashed =
      CampaignDispatcher(worker_cmd, crash_options).run(campaign);
  report.add("dispatch", "crash", "wall_seconds", seconds_since(t0), "s");
  check(slurp(crash_dir / "campaign_summary.csv") == expected,
        "summary identical after one worker crash");
  check(crashed.metrics.counter_or("dispatch.worker_failures", 0) >= 1,
        "crash was observed and counted");
  check(crashed.metrics.counter_or("dispatch.tasks_completed", 0) ==
            static_cast<std::int64_t>(crashed.records.size()),
        "exactly-once row accounting");

  // Coordinator restart: drop two manifest entries, resume.
  const std::string manifest_path =
      (clean_dir / CampaignManifest::filename()).string();
  auto manifest = CampaignManifest::load(manifest_path);
  check(manifest.has_value(), "manifest loads");
  if (manifest.has_value()) {
    manifest->entries.erase(0);
    manifest->entries.erase(2);
    manifest->save(manifest_path);
  }
  t0 = std::chrono::steady_clock::now();
  const DispatchResult resumed =
      CampaignDispatcher(worker_cmd, options).run(campaign);
  report.add("dispatch", "resume", "wall_seconds", seconds_since(t0), "s");
  check(resumed.resumed == 2 && resumed.executed == 2,
        "resume re-executed exactly the 2 dropped runs");
  check(slurp(clean_dir / "campaign_summary.csv") == expected,
        "summary identical after resume");

  report.add("dispatch", "workers2", "speedup_vs_inprocess",
             dist_s > 0.0 ? inproc_s / dist_s : 0.0, "x");
  if (!args.json_path.empty()) report.save(args.json_path);

  std::printf("dispatch bench: %s\n", g_failures == 0 ? "PASS" : "FAIL");
  return g_failures == 0 ? 0 : 1;
}
