// Ablation A1 — sensitivity of the greedy heuristic to its threshold sets.
//
// The paper fixes lowdiskspace-thresholdset = {50, 25} and
// highdiskspace-thresholdset = {60} "specific to our experiment settings".
// This bench sweeps the sets on the intra-country configuration (the most
// finely balanced one) and reports completion, storage safety and
// visualization throughput — showing how much the heuristic's outcome
// depends on hand-tuned constants, which is the paper's motivation for the
// optimization method.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Ablation: greedy threshold sets (intra-country) ===\n");
  std::printf("%-26s %-10s %-10s %-10s %-8s %-8s\n", "thresholds {low,hi}",
              "completed", "min-free", "stall(h)", "frames", "wall(h)");

  struct Variant {
    const char* name;
    GreedyThresholds th;
  };
  const Variant variants[] = {
      {"{50,25}/{60} (paper)", {50, 25, 10, 60}},
      {"{40,20}/{50} laxer", {40, 20, 10, 50}},
      {"{60,30}/{70} stricter", {60, 30, 10, 70}},
      {"{70,40}/{80} paranoid", {70, 40, 10, 80}},
      {"{30,15}/{40} reckless", {30, 15, 5, 40}},
  };

  CsvTable csv({"variant", "completed", "min_free_pct", "stall_hours",
                "frames_visualized", "wall_hours"});
  set_log_level(LogLevel::kError);
  for (const Variant& v : variants) {
    ExperimentConfig cfg = standard_config(
        "intra-country", intra_country_site(),
        AlgorithmKind::kGreedyThreshold);
    cfg.greedy = v.th;
    const ExperimentResult r = run_experiment(cfg);
    std::printf("%-26s %-10s %-9.1f%% %-10.1f %-8lld %-8.1f\n", v.name,
                r.summary.completed ? "yes" : "NO",
                r.summary.min_free_disk_percent,
                r.summary.total_stall_time.as_hours(),
                static_cast<long long>(r.summary.frames_visualized),
                r.summary.sim_finished_wall.as_hours());
    csv.add_row({std::string(v.name),
                 static_cast<long>(r.summary.completed),
                 r.summary.min_free_disk_percent,
                 r.summary.total_stall_time.as_hours(),
                 static_cast<long>(r.summary.frames_visualized),
                 r.summary.sim_finished_wall.as_hours()});
  }
  save_csv(csv, "ablation_thresholds");

  // Reference: the optimizer needs no such tuning.
  const ExperimentResult opt = run_experiment(standard_config(
      "intra-country", intra_country_site(), AlgorithmKind::kOptimization));
  print_summary("optimization (no thresholds)", opt);
  return 0;
}
