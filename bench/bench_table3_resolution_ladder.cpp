// Table III — "Resolutions for different Pressure Values".
//
// Runs the Aila simulation standalone and logs every resolution switch the
// framework would perform: the simulated time at which the storm's minimum
// pressure crossed each Table III threshold and the resolution adopted.
#include <cstdio>

#include "experiment_common.hpp"
#include "weather/model.hpp"

using namespace adaptviz;

int main() {
  std::printf("=== Table III: pressure-driven resolution ladder ===\n");
  std::printf("%-10s %-12s | observed crossing during the Aila run\n",
              "Pressure", "Resolution");
  const ResolutionLadder ladder = ResolutionLadder::table3();
  for (const auto& rung : ladder.rungs()) {
    std::printf("%-10.0f %-12.0f |\n", rung.pressure_hpa, rung.resolution_km);
  }

  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);

  std::printf("\n%-16s %-14s %-12s %-12s %-10s\n", "sim time",
              "min pressure", "resolution", "frame", "nest");
  CsvTable csv({"sim_time", "min_pressure_hpa", "resolution_km",
                "frame_mb", "nest_active"});

  auto report = [&] {
    std::printf("%-16s %-14.2f %-12.1f %-12s %-10s\n",
                bench::sim_label(model.sim_time()).c_str(),
                model.min_pressure_hpa(), model.modeled_resolution_km(),
                to_string(model.frame_bytes()).c_str(),
                model.nest_active() ? "yes" : "no");
    csv.add_row({bench::sim_label(model.sim_time()), model.min_pressure_hpa(),
                 model.modeled_resolution_km(), model.frame_bytes().mb(),
                 static_cast<long>(model.nest_active())});
  };

  report();
  double next_report_h = 6.0;
  while (model.sim_time() < SimSeconds::hours(60.0)) {
    model.step();
    if (model.resolution_change_pending()) {
      // The job handler would checkpoint/restart here; standalone we switch
      // in place to trace the ladder.
      std::printf("  >> pressure %.2f hPa crossed a threshold: "
                  "%-4.1f km -> %.1f km at %s\n",
                  model.min_pressure_hpa(), model.modeled_resolution_km(),
                  model.recommended_resolution_km(),
                  bench::sim_label(model.sim_time()).c_str());
      model.set_modeled_resolution(model.recommended_resolution_km());
      report();
    }
    if (model.sim_time().as_hours() >= next_report_h) {
      report();
      next_report_h += 6.0;
    }
  }
  bench::save_csv(csv, "table3_resolution_ladder");

  std::printf(
      "\nShape check: the run starts at 24 km, spawns the 1:3 nest when the\n"
      "pressure first drops below 995 hPa, and walks all six Table III rungs\n"
      "down to 10 km (nest 3.33 km) as Aila intensifies.\n");
  return 0;
}
