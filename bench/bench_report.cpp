#include "bench_report.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace adaptviz::benchio {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  // JSON has no inf/nan literals; a bench emitting one is a bug we still
  // want visible in the artifact rather than a parse failure.
  if (std::strstr(buf, "inf") != nullptr || std::strstr(buf, "nan") != nullptr) {
    return "null";
  }
  return buf;
}

}  // namespace

void BenchReport::add(std::string bench, std::string scenario,
                      std::string metric, double value, std::string unit) {
  rows_.push_back(BenchRow{std::move(bench), std::move(scenario),
                           std::move(metric), value, std::move(unit)});
}

void BenchReport::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("BenchReport: cannot write " + path);
  }
  out << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const BenchRow& r = rows_[i];
    out << "  {\"bench\": \"" << json_escape(r.bench) << "\", \"scenario\": \""
        << json_escape(r.scenario) << "\", \"metric\": \""
        << json_escape(r.metric) << "\", \"value\": " << json_number(r.value)
        << ", \"unit\": \"" << json_escape(r.unit) << "\"}"
        << (i + 1 < rows_.size() ? ",\n" : "\n");
  }
  out << "]\n";
  if (!out.flush()) {
    throw std::runtime_error("BenchReport: write failed for " + path);
  }
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs out;
  if (argc > 0) out.rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      out.quick = true;
    } else if (a.rfind("--json=", 0) == 0) {
      out.json_path = a.substr(7);
    } else {
      out.rest.push_back(argv[i]);
    }
  }
  return out;
}

}  // namespace adaptviz::benchio
