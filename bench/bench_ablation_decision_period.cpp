// Ablation A2 — decision-invocation period.
//
// The paper invokes the application manager "periodically every 1.5 hours"
// without justifying the constant. This bench sweeps the period on the
// inter-department configuration for both algorithms: too-rare decisions
// let the disk swing wide between corrections (greedy especially); very
// frequent decisions add restart overhead for little benefit.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Ablation: decision period (inter-department) ===\n");
  std::printf("%-10s %-18s %-10s %-10s %-9s %-9s\n", "period", "algorithm",
              "wall(h)", "min-free", "restarts", "frames");

  CsvTable csv({"period_hours", "algorithm", "wall_hours", "min_free_pct",
                "restarts", "frames_visualized"});
  set_log_level(LogLevel::kError);
  for (double period_h : {0.5, 1.5, 3.0, 6.0}) {
    for (AlgorithmKind alg : {AlgorithmKind::kGreedyThreshold,
                              AlgorithmKind::kOptimization}) {
      ExperimentConfig cfg = standard_config(
          "inter-department", inter_department_site(), alg);
      cfg.decision_period = WallSeconds::hours(period_h);
      const ExperimentResult r = run_experiment(cfg);
      std::printf("%-10.1f %-18s %-10.1f %-9.1f%% %-9d %-9lld\n", period_h,
                  to_string(alg), r.summary.sim_finished_wall.as_hours(),
                  r.summary.min_free_disk_percent, r.summary.restarts,
                  static_cast<long long>(r.summary.frames_visualized));
      csv.add_row({period_h, std::string(to_string(alg)),
                   r.summary.sim_finished_wall.as_hours(),
                   r.summary.min_free_disk_percent,
                   static_cast<long>(r.summary.restarts),
                   static_cast<long>(r.summary.frames_visualized)});
    }
  }
  save_csv(csv, "ablation_decision_period");
  return 0;
}
