// Campaign throughput: K concurrent experiments vs the sequential loop.
//
// Runs the same 8-run grid (both decision algorithms x four seeds) twice
// through CampaignRunner — once with K=1 (strictly sequential, the
// baseline) and once with K=4 — and asserts the load-bearing guarantee of
// the campaign engine: every run's telemetry CSV is BITWISE IDENTICAL
// whatever the concurrency. Per-run contexts are what make this hold; a
// regression to shared mutable state shows up here as a digest mismatch.
//
// On hardware with >= 4 cores the full bench additionally asserts >= 2x
// wall-clock speedup at K=4. `--quick` shrinks the scenario so the same
// identity checks run as a ctest smoke, reporting (not asserting) the
// speedup — CI machines may be single-core.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "experiment_common.hpp"
#include "util/calendar.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

// FNV-1a over the telemetry CSV text: the identity check is on exact bytes.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string telemetry_csv(const ExperimentResult& r) {
  CsvTable table(telemetry_columns());
  for (const TelemetrySample& s : r.samples) {
    table.add_row(telemetry_row(s, CalendarEpoch::aila_start()));
  }
  return table.str();
}

CampaignSpec grid(bool quick) {
  CampaignSpec spec;
  spec.name = "throughput";
  spec.base = standard_config("inter-department", inter_department_site(),
                              AlgorithmKind::kOptimization);
  if (quick) {
    spec.base.sim_window = SimSeconds::hours(24.0);
    spec.base.max_wall = WallSeconds::hours(48.0);
    spec.base.model.compute_scale = 12.0;
  }
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  spec.seeds = {42, 43, 44, 45};
  return spec;
}

struct Sweep {
  double wall_seconds = 0.0;
  std::vector<std::string> csvs;  // per-run telemetry CSV, grid order
};

Sweep sweep(const CampaignSpec& spec, int k) {
  CampaignOptions options;
  options.concurrency = k;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  Sweep out;
  out.csvs.resize(spec.expand().size());
  const auto t0 = std::chrono::steady_clock::now();
  const auto records = CampaignRunner(std::move(options))
                           .run(spec, [&out](std::size_t i, const CampaignRun&,
                                             const ExperimentResult& r) {
                             out.csvs[i] = telemetry_csv(r);
                           });
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const CampaignRunRecord& r : records) {
    if (r.failed) {
      std::fprintf(stderr, "FAIL: run %s failed: %s\n", r.label.c_str(),
                   r.error.c_str());
      std::exit(1);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const CampaignSpec spec = grid(quick);
  const std::vector<CampaignRun> runs = spec.expand();
  std::printf("campaign throughput bench (%s): %zu runs, %u hardware "
              "threads\n",
              quick ? "quick" : "full", runs.size(),
              std::thread::hardware_concurrency());

  const Sweep serial = sweep(spec, 1);
  const Sweep concurrent = sweep(spec, 4);

  bool identical = true;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const bool same = serial.csvs[i] == concurrent.csvs[i];
    identical = identical && same;
    std::printf("  %-32s K=1 digest %016llx  K=4 digest %016llx  %s\n",
                runs[i].label.c_str(),
                static_cast<unsigned long long>(fnv1a(serial.csvs[i])),
                static_cast<unsigned long long>(fnv1a(concurrent.csvs[i])),
                same ? "identical" : "MISMATCH");
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: K=4 telemetry differs from the K=1 baseline\n");
    return 1;
  }

  const double speedup =
      concurrent.wall_seconds > 0.0 ? serial.wall_seconds /
                                          concurrent.wall_seconds
                                    : 0.0;
  std::printf("  K=1: %.3fs   K=4: %.3fs   speedup %.2fx\n",
              serial.wall_seconds, concurrent.wall_seconds, speedup);

  // Wall-clock scaling needs real cores; the identity assertion above is
  // the part that must hold everywhere.
  if (!quick && std::thread::hardware_concurrency() >= 4 && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 2x speedup at K=4 on %u threads, got "
                 "%.2fx\n",
                 std::thread::hardware_concurrency(), speedup);
    return 1;
  }
  std::printf("PASS: %zu runs bitwise identical at K=4 vs K=1\n",
              runs.size());
  return 0;
}
