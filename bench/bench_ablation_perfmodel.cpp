// Ablation A4 — sensitivity to performance-model quality.
//
// Both algorithms map a target step time to a processor count through the
// fitted t(p) curve (Section IV: profiling runs + curve fitting). This
// bench degrades the profiling conditions — noisier machines and fewer
// timed steps per sample — and measures how much decision quality suffers,
// on the intra-country configuration.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Ablation: performance-model noise (intra-country, "
              "optimization) ===\n");
  std::printf("%-14s %-10s %-10s %-10s %-9s\n", "machine noise", "wall(h)",
              "min-free", "restarts", "frames");

  CsvTable csv({"noise_sigma", "wall_hours", "min_free_pct", "restarts",
                "frames_visualized"});
  set_log_level(LogLevel::kError);
  for (double sigma : {0.0, 0.05, 0.15, 0.30}) {
    ExperimentConfig cfg = standard_config("intra-country",
                                           intra_country_site(),
                                           AlgorithmKind::kOptimization);
    cfg.site.machine.noise_sigma = sigma;
    const ExperimentResult r = run_experiment(cfg);
    std::printf("%-14.2f %-10.1f %-9.1f%% %-10d %-9lld\n", sigma,
                r.summary.sim_finished_wall.as_hours(),
                r.summary.min_free_disk_percent, r.summary.restarts,
                static_cast<long long>(r.summary.frames_visualized));
    csv.add_row({sigma, r.summary.sim_finished_wall.as_hours(),
                 r.summary.min_free_disk_percent,
                 static_cast<long>(r.summary.restarts),
                 static_cast<long>(r.summary.frames_visualized)});
  }
  save_csv(csv, "ablation_perfmodel");
  std::printf(
      "\nShape check: the framework is robust to realistic machine noise —\n"
      "the fitted curve averages it out; only gross noise perturbs the\n"
      "decisions (slightly different processor picks, a few extra "
      "restarts).\n");
  return 0;
}
