// Machine-readable bench output: a flat list of measurement rows written
// as JSON (BENCH_kernels.json and friends), so CI can upload and diff
// bench results without scraping human-oriented stdout.
//
//   [
//     {"bench": "kernel_step", "scenario": "96km-t1", "metric":
//      "step_seconds", "value": 1.2e-05, "unit": "s"},
//     ...
//   ]
#pragma once

#include <string>
#include <vector>

namespace adaptviz::benchio {

struct BenchRow {
  std::string bench;     // which benchmark family ("kernel_step", "codec")
  std::string scenario;  // which case within it ("96km", "oi3min")
  std::string metric;    // what was measured ("speedup", "ratio")
  double value = 0.0;
  std::string unit;      // "s", "x", "MB/s", "flag", ...
};

class BenchReport {
 public:
  void add(std::string bench, std::string scenario, std::string metric,
           double value, std::string unit);

  /// Writes the rows as a JSON array (UTF-8, trailing newline). Throws
  /// std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;

  [[nodiscard]] const std::vector<BenchRow>& rows() const { return rows_; }

 private:
  std::vector<BenchRow> rows_;
};

/// Strips `--quick` and `--json=PATH` from an argv vector (google-benchmark
/// rejects flags it does not know). Returns the remaining args in place via
/// argc/argv-style outputs.
struct BenchArgs {
  bool quick = false;
  std::string json_path;  // empty when --json= was not given
  std::vector<char*> rest;
};

BenchArgs parse_bench_args(int argc, char** argv);

}  // namespace adaptviz::benchio
