#include "experiment_common.hpp"

#include <cstdio>
#include <filesystem>

#include "campaign/campaign.hpp"
#include "util/logging.hpp"

namespace adaptviz::bench {

std::vector<std::pair<std::string, SiteSpec>> table4_sites() {
  return {{"inter-department", inter_department_site()},
          {"intra-country", intra_country_site()},
          {"cross-continent", cross_continent_site()}};
}

ExperimentConfig standard_config(const std::string& site_name,
                                 const SiteSpec& site,
                                 AlgorithmKind algorithm) {
  ExperimentConfig cfg;
  cfg.name = site_name;
  cfg.site = site;
  cfg.algorithm = algorithm;
  cfg.sim_window = SimSeconds::hours(60.0);  // 22-May 18:00 .. 25-May 06:00
  cfg.max_wall = WallSeconds::hours(60.0);
  cfg.model.compute_scale = 8.0;
  cfg.sample_period = WallSeconds::minutes(10.0);
  cfg.seed = 42;
  return cfg;
}

SitePair run_site(const std::string& site_name, const SiteSpec& site) {
  set_log_level(LogLevel::kError);
  // Both algorithm runs go through the campaign engine concurrently;
  // per-run contexts make the results identical to back-to-back
  // run_experiment() calls (the pre-campaign behaviour of this helper).
  CampaignSpec spec;
  spec.base = standard_config(site_name, site, AlgorithmKind::kOptimization);
  spec.sites = {{site_name, site}};
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  spec.concurrency = 2;

  CampaignOptions options;
  options.concurrency = 0;  // defer to spec.concurrency
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  SitePair pair;
  CampaignRunner(std::move(options))
      .run(spec, [&pair](std::size_t, const CampaignRun& run,
                         const ExperimentResult& result) {
        if (run.config.algorithm == AlgorithmKind::kGreedyThreshold) {
          pair.greedy = result;
        } else {
          pair.optimization = result;
        }
      });
  return pair;
}

ExperimentResult run_static(const std::string& site_name,
                            const SiteSpec& site) {
  set_log_level(LogLevel::kError);
  return run_experiment(
      standard_config(site_name, site, AlgorithmKind::kStatic));
}

std::string output_dir() {
  const std::string dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

void save_csv(const CsvTable& table, const std::string& name) {
  const std::string path = output_dir() + "/" + name + ".csv";
  table.save(path);
  std::printf("  [csv] %s (%zu rows)\n", path.c_str(), table.row_count());
}

std::string sim_label(SimSeconds t) {
  return CalendarEpoch::aila_start().label(t);
}

void print_summary(const std::string& tag, const ExperimentResult& r) {
  std::printf(
      "  %-34s completed=%s  sim=%s  wall=%s  min-free=%4.1f%%  "
      "peak=%s  stall=%.1fh  frames w/s/v=%lld/%lld/%lld  restarts=%d\n",
      tag.c_str(), r.summary.completed ? "yes" : "NO ",
      sim_label(r.summary.sim_reached).c_str(),
      hh_mm(r.summary.sim_finished_wall).c_str(),
      r.summary.min_free_disk_percent,
      to_string(r.summary.peak_disk_used).c_str(),
      r.summary.total_stall_time.as_hours(),
      static_cast<long long>(r.summary.frames_written),
      static_cast<long long>(r.summary.frames_sent),
      static_cast<long long>(r.summary.frames_visualized),
      r.summary.restarts);
}

}  // namespace adaptviz::bench
