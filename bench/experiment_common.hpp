// Shared harness for the figure-reproduction benches.
//
// Each bench binary regenerates one of the paper's tables/figures. The three
// experiment settings (Table IV) and the two decision algorithms give six
// runs; figures 5, 6, 7 and 8 are different views of the same runs, so the
// harness runs an experiment once per binary invocation and each bench
// prints its own series. Series are printed to stdout in the paper's
// units/labels and saved as CSV next to the binary (bench_out/).
#pragma once

#include <string>
#include <vector>

#include "core/framework.hpp"
#include "util/calendar.hpp"
#include "util/csv.hpp"

namespace adaptviz::bench {

/// The three Table IV configurations.
std::vector<std::pair<std::string, SiteSpec>> table4_sites();

/// Standard experiment configuration used by every figure bench: full Aila
/// window (22-May 18:00 + 60 h), 1.5-hour decisions, Table IV site.
ExperimentConfig standard_config(const std::string& site_name,
                                 const SiteSpec& site, AlgorithmKind algorithm);

/// Runs greedy + optimization on one site.
struct SitePair {
  ExperimentResult greedy;
  ExperimentResult optimization;
};
SitePair run_site(const std::string& site_name, const SiteSpec& site);

/// The non-adaptive baseline the paper reasons about ("a non-adaptive
/// solution would result in stalling of the simulation much earlier").
ExperimentResult run_static(const std::string& site_name,
                            const SiteSpec& site);

/// Output directory for CSV artifacts (created on demand).
std::string output_dir();

/// Saves a table under bench_out/<name>.csv and reports the path on stdout.
void save_csv(const CsvTable& table, const std::string& name);

/// Simulation-time axis label in the paper's style ("23-May 09:00").
std::string sim_label(SimSeconds t);

/// Prints a one-line run summary (completion, wall, storage, frames).
void print_summary(const std::string& tag, const ExperimentResult& r);

}  // namespace adaptviz::bench
