// Figure 6 (a, b, c) — "Free disk space with progress in executions".
//
// Shape criteria from the paper: the greedy-threshold heuristic consumes
// storage rapidly in the initial stages and ends the run with little free
// space (cross-continent: overflows below 5% and stalls); the optimization
// method's steady-state behaviour consumes 25-50% less storage and never
// triggers the disk overflow problem.
#include <algorithm>
#include <cstdio>

#include "experiment_common.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

void print_series(const std::string& site, const SitePair& pair) {
  std::printf("\n--- Fig 6: %s ---\n", site.c_str());
  std::printf("%-8s %-10s %-14s\n", "wall", "greedy", "optimization");

  CsvTable csv({"wall_hours", "greedy_free_pct", "optimization_free_pct"});
  const double end_h =
      std::max(pair.greedy.summary.wall_elapsed.as_hours(),
               pair.optimization.summary.wall_elapsed.as_hours());

  auto free_at = [](const ExperimentResult& r, double wall_h) {
    double pct = 100.0;
    for (const auto& s : r.samples) {
      if (s.wall_time.as_hours() <= wall_h + 1e-9) pct = s.free_disk_percent;
    }
    return pct;
  };

  for (double h = 0.0; h <= end_h + 1e-9; h += 2.0) {
    const double g = free_at(pair.greedy, h);
    const double o = free_at(pair.optimization, h);
    std::printf("%-8s %7.1f%%  %7.1f%%\n",
                hh_mm(WallSeconds::hours(h)).c_str(), g, o);
    csv.add_row({h, g, o});
  }
  save_csv(csv, "fig6_" + site);

  const auto& gs = pair.greedy.summary;
  const auto& os = pair.optimization.summary;
  std::printf("  greedy:       min free %4.1f%%  peak used %s%s\n",
              gs.min_free_disk_percent, to_string(gs.peak_disk_used).c_str(),
              gs.min_free_disk_percent <= 10.0 ? "  [hit CRITICAL band]" : "");
  std::printf("  optimization: min free %4.1f%%  peak used %s\n",
              os.min_free_disk_percent, to_string(os.peak_disk_used).c_str());
  if (gs.peak_disk_used.count() > 0) {
    std::printf("  => optimization consumed %.0f%% less peak storage\n",
                100.0 * (1.0 - os.peak_disk_used.as_double() /
                                   gs.peak_disk_used.as_double()));
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 6: free disk space, greedy vs optimization ===\n");
  for (const auto& [name, site] : table4_sites()) {
    print_series(name, run_site(name, site));
  }
  return 0;
}
