// Figures 3 and 4 — the paper's visualization imagery.
//
//   Fig 3: "Windspeed visualization in finer resolution nest inside parent
//          domain"
//   Fig 4: "Visualization of Perturbation Pressure at 18:00 hours on 23rd,
//          24th and 25th May, 2009"
//
// Runs the Aila simulation standalone (walking the Table III ladder) and
// renders exactly those panels to bench_out/: three perturbation-pressure
// frames at the paper's timestamps with the storm track overlaid, plus a
// wind-speed frame showing the 1:3 nest box around the eye.
#include <cstdio>

#include "experiment_common.hpp"
#include "vis/renderer.hpp"
#include "weather/model.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Figures 3 & 4: rendered imagery ===\n");
  ModelConfig cfg;
  cfg.compute_scale = 6.0;  // finer compute grid for imagery
  WeatherModel model(cfg);
  const CalendarEpoch epoch = CalendarEpoch::aila_start();

  RenderOptions pressure;
  pressure.width = 720;
  pressure.field = RenderField::kPressure;
  RenderOptions wind;
  wind.width = 720;
  wind.field = RenderField::kWindSpeed;
  wind.draw_contours = false;
  wind.draw_streamlines = true;  // the "vector plot" companion view
  const FrameRenderer pressure_view(pressure);
  const FrameRenderer wind_view(wind);

  // The paper's Fig 4 timestamps.
  const SimSeconds targets[] = {epoch.at(23, 18), epoch.at(24, 18),
                                epoch.at(25, 6)};
  // (The run ends 25-May 06:00; the paper's third panel, 25-May 18:00, lies
  // beyond the simulated window shown in its own Fig 5, so the final frame
  // stands in.)
  const char* names[] = {"fig4_pressure_23may1800", "fig4_pressure_24may1800",
                         "fig4_pressure_25may0600"};
  std::size_t next = 0;
  bool wind_done = false;

  while (model.sim_time() < SimSeconds::hours(60.0)) {
    model.step();
    if (model.resolution_change_pending()) {
      model.set_modeled_resolution(model.recommended_resolution_km());
    }
    // Fig 3: first wind view once the nest exists and the storm organized.
    if (!wind_done && model.nest_active() &&
        model.min_pressure_hpa() < 990.0) {
      const std::string path = output_dir() + "/fig3_windspeed_nest.ppm";
      wind_view.render(model.make_frame(), &model.tracker().track())
          .save_ppm(path);
      std::printf("  fig 3  %s  (p=%.1f hPa, nest %.1f km)  -> %s\n",
                  sim_label(model.sim_time()).c_str(),
                  model.min_pressure_hpa(),
                  model.modeled_resolution_km() / kNestRatio, path.c_str());
      wind_done = true;
    }
    if (next < 3 && model.sim_time() >= targets[next]) {
      const std::string path =
          output_dir() + "/" + names[next] + ".ppm";
      pressure_view.render(model.make_frame(), &model.tracker().track())
          .save_ppm(path);
      std::printf("  fig 4  %s  (p=%.1f hPa, eye %.1fN %.1fE)  -> %s\n",
                  sim_label(model.sim_time()).c_str(),
                  model.min_pressure_hpa(), model.eye().lat, model.eye().lon,
                  path.c_str());
      ++next;
    }
  }

  std::printf(
      "\nShape check: the depression forms in the central Bay of Bengal\n"
      "(~14N) and traverses north toward Darjeeling (~27N), deepening as it\n"
      "goes — the track the paper's Fig 4 shows. Figures 1 and 2 are\n"
      "architecture diagrams; they are realized by the framework itself\n"
      "(see DESIGN.md / src/core/framework.hpp).\n");
  return 0;
}
