// Ablation A3 — bandwidth sweep between the paper's operating points.
//
// Table IV jumps from 60 Kbps (cross-continent) to 40-56 Mbps; this bench
// fills the gap on the inter-department machine/disk, locating where greedy
// transitions from "survives with low free space" to "overflows and
// stalls", and confirming the optimizer completes across the whole range.
#include <cstdio>

#include "experiment_common.hpp"
#include "util/logging.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

int main() {
  std::printf("=== Ablation: WAN bandwidth sweep (inter-department machine) "
              "===\n");
  std::printf("%-12s %-18s %-10s %-10s %-10s %-9s\n", "bandwidth",
              "algorithm", "completed", "min-free", "stall(h)", "frames");

  CsvTable csv({"bandwidth_mbps", "algorithm", "completed", "min_free_pct",
                "stall_hours", "frames_visualized"});
  set_log_level(LogLevel::kError);
  for (double mbps : {0.06, 0.6, 2.0, 8.0, 24.0, 56.0, 200.0}) {
    for (AlgorithmKind alg : {AlgorithmKind::kGreedyThreshold,
                              AlgorithmKind::kOptimization}) {
      SiteSpec site = inter_department_site();
      site.wan_nominal = Bandwidth::mbps(mbps);
      ExperimentConfig cfg = standard_config("bw-sweep", site, alg);
      const ExperimentResult r = run_experiment(cfg);
      std::printf("%-12s %-18s %-10s %-9.1f%% %-10.1f %-9lld\n",
                  to_string(Bandwidth::mbps(mbps)).c_str(), to_string(alg),
                  r.summary.completed ? "yes" : "NO",
                  r.summary.min_free_disk_percent,
                  r.summary.total_stall_time.as_hours(),
                  static_cast<long long>(r.summary.frames_visualized));
      csv.add_row({mbps, std::string(to_string(alg)),
                   static_cast<long>(r.summary.completed),
                   r.summary.min_free_disk_percent,
                   r.summary.total_stall_time.as_hours(),
                   static_cast<long>(r.summary.frames_visualized)});
    }
  }
  save_csv(csv, "ablation_bandwidth");
  std::printf(
      "\nShape check: the optimizer completes at every bandwidth; greedy's\n"
      "free disk collapses as the link slows, reproducing the paper's\n"
      "cross-continent overflow at the thin end of the sweep.\n");
  return 0;
}
