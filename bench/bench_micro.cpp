// Microbenchmarks (google-benchmark): the per-operation costs behind the
// framework — LP solve, shallow-water step at several compute resolutions,
// nest substep cycle, frame encode/decode, render, and decision latency.
//
// Before the google-benchmark suite runs, a self-checking kernel case
// measures the restructured row kernels against the scalar reference,
// verifies bitwise-identical digests across kernels and worker counts, and
// writes the measurements to BENCH_kernels.json (--json=PATH overrides;
// --quick runs only this case at smoke size).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "bench_report.hpp"
#include "core/greedy_threshold.hpp"
#include "core/lp_optimizer.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "perf/perf_model.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"
#include "vis/renderer.hpp"
#include "weather/model.hpp"

namespace {

using namespace adaptviz;

void BM_LpSolve(benchmark::State& state) {
  lp::Problem p;
  const int t = p.add_variable("t", 30.0, 300.0, 1.0);
  const int z = p.add_variable("z", 0.04, 0.33, -1e-4);
  const int y = p.add_variable("y", 0.0, lp::kInfinity, 0.0);
  p.add_constraint("y_le_z", {{y, 1.0}, {z, -1.0}}, lp::Relation::kLessEqual,
                   0.0);
  p.add_constraint("eq5", {{t, 1.0}, {z, 6.0}, {y, -880.0}},
                   lp::Relation::kLessEqual, 0.0);
  p.add_constraint("eq6", {{t, 1.0}, {z, -424.0}},
                   lp::Relation::kGreaterEqual, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(p));
  }
}
BENCHMARK(BM_LpSolve);

void BM_SwStep(benchmark::State& state) {
  const double res = static_cast<double>(state.range(0));
  GridSpec g(60.0, -10.0, 60.0, 50.0, res);
  DomainState s(g);
  SwSolver solver;
  const double dt = SwSolver::dt_for_resolution_km(res);
  for (auto _ : state) {
    solver.step(s, dt, SwForcing{});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.point_count()));
  state.counters["points"] = static_cast<double>(g.point_count());
}
BENCHMARK(BM_SwStep)->Arg(300)->Arg(192)->Arg(96);

// --- Parallel scaling: persistent pool vs spawn-per-call ---------------
//
// The same 96-km shallow-water step at 1/2/4/8 workers, with the six
// parallel regions per step dispatched either to the persistent pool
// (use_thread_pool=true, the production path) or to fresh std::threads
// per region (the pre-pool behavior, kept as parallel_for_rows_spawn).
// The pool must win at 4+ workers: spawn-per-call pays ~6*(workers-1)
// thread creations per step.

void sw_step_scaling(benchmark::State& state, bool use_pool) {
  const double res = 96.0;
  GridSpec g(60.0, -10.0, 60.0, 50.0, res);
  DomainState s(g);
  SwParams params;
  params.threads = static_cast<int>(state.range(0));
  params.use_thread_pool = use_pool;
  SwSolver solver(params);
  const double dt = SwSolver::dt_for_resolution_km(res);
  for (auto _ : state) {
    solver.step(s, dt, SwForcing{});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.point_count()));
}

void BM_SwStepPool(benchmark::State& state) { sw_step_scaling(state, true); }
BENCHMARK(BM_SwStepPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SwStepSpawn(benchmark::State& state) { sw_step_scaling(state, false); }
BENCHMARK(BM_SwStepSpawn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Raw fork-join dispatch latency of one near-empty region: the fixed
// overhead every parallel call pays under each runtime.
void BM_ParallelForPool(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t sink = 0;
  for (auto _ : state) {
    parallel_for_rows(0, 64, threads, [&](std::size_t lo, std::size_t hi) {
      benchmark::DoNotOptimize(sink += hi - lo);
    });
  }
}
BENCHMARK(BM_ParallelForPool)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelForSpawn(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t sink = 0;
  for (auto _ : state) {
    parallel_for_rows_spawn(0, 64, threads,
                            [&](std::size_t lo, std::size_t hi) {
                              benchmark::DoNotOptimize(sink += hi - lo);
                            });
  }
}
BENCHMARK(BM_ParallelForSpawn)->Arg(2)->Arg(4)->Arg(8);

void BM_ModelFullStep(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = static_cast<double>(state.range(0));
  WeatherModel model(cfg);
  // Deepen until the nest exists so the step includes nest substeps.
  while (!model.nest_active() && model.sim_time() < SimSeconds::hours(30)) {
    model.step();
  }
  for (auto _ : state) {
    model.step();
  }
}
BENCHMARK(BM_ModelFullStep)->Arg(12)->Arg(8);

void BM_FrameEncodeDecode(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  const NclFile frame = model.make_frame();
  for (auto _ : state) {
    std::stringstream ss;
    frame.encode(ss);
    benchmark::DoNotOptimize(NclFile::decode(ss));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.encoded_size()));
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_RenderFrame(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  while (model.sim_time() < SimSeconds::hours(16)) model.step();
  const NclFile frame = model.make_frame();
  RenderOptions opts;
  opts.width = static_cast<std::size_t>(state.range(0));
  const FrameRenderer renderer(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(frame, nullptr));
  }
}
BENCHMARK(BM_RenderFrame)->Arg(240)->Arg(480);

// Base-layer render scaling: terrain + pseudocolor only (the band-parallel
// layer), 480 px wide, at 1/2/4/8 pool workers.
void BM_RenderBaseThreads(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  while (model.sim_time() < SimSeconds::hours(16)) model.step();
  const NclFile frame = model.make_frame();
  RenderOptions opts;
  opts.width = 480;
  opts.draw_contours = false;
  opts.draw_glyphs = false;
  opts.draw_nest_box = false;
  opts.draw_track = false;
  opts.draw_eye = false;
  opts.threads = static_cast<int>(state.range(0));
  const FrameRenderer renderer(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(frame, nullptr));
  }
}
BENCHMARK(BM_RenderBaseThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

std::shared_ptr<PerformanceModel> micro_perf() {
  GroundTruthMachine machine(inter_department_site().machine, 1);
  BenchmarkProfiler profiler;
  return std::make_shared<PerformanceModel>(profiler.profile(machine, 1.0),
                                            48);
}

DecisionInput micro_input(const PerformanceModel& perf) {
  DecisionInput in;
  in.free_disk_percent = 45.0;
  in.disk_capacity = Bytes::gigabytes(182);
  in.free_disk_bytes = in.disk_capacity * 0.45;
  in.observed_bandwidth = Bandwidth::megabytes_per_second(2.0);
  in.io_bandwidth = Bandwidth::megabytes_per_second(150.0);
  in.work_units = 0.6;
  in.frame_bytes = Bytes::megabytes(900);
  in.integration_step = SimSeconds(60.0);
  in.remaining_sim_time = SimSeconds::hours(30.0);
  in.current_processors = 48;
  in.current_output_interval = SimSeconds::minutes(3.0);
  in.perf = &perf;
  in.min_processors = 4;
  in.max_processors = 48;
  return in;
}

void BM_GreedyDecision(benchmark::State& state) {
  auto perf = micro_perf();
  GreedyThresholdAlgorithm algo;
  const DecisionInput in = micro_input(*perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.decide(in));
  }
}
BENCHMARK(BM_GreedyDecision);

void BM_OptimizerDecision(benchmark::State& state) {
  auto perf = micro_perf();
  LpOptimizerAlgorithm algo;
  const DecisionInput in = micro_input(*perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.decide(in));
  }
}
BENCHMARK(BM_OptimizerDecision);

// --- Kernel speedup + determinism gate (BENCH_kernels.json) ------------

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t state_digest(const DomainState& s) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a_bytes(h, s.h.data().data(), s.h.size() * sizeof(double));
  h = fnv1a_bytes(h, s.u.data().data(), s.u.size() * sizeof(double));
  h = fnv1a_bytes(h, s.v.data().data(), s.v.size() * sizeof(double));
  return h;
}

/// A smooth, non-trivial initial condition (Gaussian depression with a
/// weak cyclonic circulation) so the kernels chew on real numbers.
DomainState kernel_initial_state(const GridSpec& g) {
  DomainState s(g);
  const double cx = 0.5 * static_cast<double>(g.nx());
  const double cy = 0.5 * static_cast<double>(g.ny());
  const double r2 = 0.02 * static_cast<double>(g.nx() * g.ny());
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const double dx = static_cast<double>(i) - cx;
      const double dy = static_cast<double>(j) - cy;
      const double bump = std::exp(-(dx * dx + dy * dy) / r2);
      s.h(i, j) = -120.0 * bump;
      s.u(i, j) = 8.0 * dy / 30.0 * bump;
      s.v(i, j) = -8.0 * dx / 30.0 * bump;
    }
  }
  return s;
}

/// Best-of-`reps` seconds per step for one kernel/thread configuration.
double seconds_per_step(const DomainState& init, SwKernel kernel, int threads,
                        int steps, int reps) {
  SwParams params;
  params.kernel = kernel;
  params.threads = threads;
  const double dt = SwSolver::dt_for_resolution_km(init.grid.resolution_km());
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    DomainState s = init;
    SwSolver solver(params);
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < steps; ++k) solver.step(s, dt, SwForcing{});
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(s.h.data().data());
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count() /
                              static_cast<double>(steps));
  }
  return best;
}

std::uint64_t digest_after_steps(const DomainState& init, SwKernel kernel,
                                 int threads, int steps) {
  SwParams params;
  params.kernel = kernel;
  params.threads = threads;
  DomainState s = init;
  SwSolver solver(params);
  const double dt = SwSolver::dt_for_resolution_km(init.grid.resolution_km());
  for (int k = 0; k < steps; ++k) solver.step(s, dt, SwForcing{});
  return state_digest(s);
}

/// Runs the kernel case, appends its rows to `report`, and returns the
/// number of hard failures (digest mismatch anywhere; speedup below the
/// 1.5x floor on hardware where the floor is enforced).
int run_kernel_report(benchio::BenchReport& report, bool quick) {
  const double res_km = 96.0;
  const GridSpec g(60.0, -10.0, 60.0, 50.0, res_km);
  const DomainState init = kernel_initial_state(g);
  const int steps = quick ? 60 : 400;
  const int reps = quick ? 3 : 5;

  const double scalar_s =
      seconds_per_step(init, SwKernel::kScalarReference, 1, steps, reps);
  const double row_s =
      seconds_per_step(init, SwKernel::kRowKernel, 1, steps, reps);
  const double speedup = scalar_s / row_s;

  report.add("kernel_step", "96km", "scalar_step_seconds", scalar_s, "s");
  report.add("kernel_step", "96km", "row_step_seconds", row_s, "s");
  report.add("kernel_step", "96km", "speedup", speedup, "x");

  // Bitwise determinism: the row kernels must reproduce the scalar
  // reference exactly, at every worker count.
  const int digest_steps = 10;
  const std::uint64_t golden =
      digest_after_steps(init, SwKernel::kScalarReference, 1, digest_steps);
  bool digests_match = true;
  for (const int threads : {1, 2, 8}) {
    digests_match &= digest_after_steps(init, SwKernel::kRowKernel, threads,
                                        digest_steps) == golden;
  }
  report.add("kernel_step", "96km", "digest_match",
             digests_match ? 1.0 : 0.0, "flag");

  int failures = 0;
  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: row kernel digests diverge from the scalar "
                 "reference\n");
    ++failures;
  }

  // The 1.5x floor is enforced only where wide SIMD is compiled in
  // (-march=native on AVX2+ hardware, as in the CI kernel job); a baseline
  // SSE2 build still reports the measurement without gating on it.
#if defined(__AVX2__) || defined(__AVX512F__)
  const bool enforce_speedup = true;
#else
  const bool enforce_speedup = false;
#endif
  report.add("kernel_step", "96km", "speedup_floor_enforced",
             enforce_speedup ? 1.0 : 0.0, "flag");
  std::printf("kernel_step 96km: scalar %.3g s/step, row %.3g s/step, "
              "speedup %.2fx (floor %s), digests %s\n",
              scalar_s, row_s, speedup,
              enforce_speedup ? "enforced" : "report-only",
              digests_match ? "match" : "DIVERGE");
  if (enforce_speedup && speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: row-kernel speedup %.2fx is below the 1.5x floor\n",
                 speedup);
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  benchio::BenchArgs args = benchio::parse_bench_args(argc, argv);
  const std::string json_path =
      args.json_path.empty() ? "BENCH_kernels.json" : args.json_path;

  benchio::BenchReport report;
  const int failures = run_kernel_report(report, args.quick);
  report.save(json_path);
  std::printf("wrote %s (%zu rows)\n", json_path.c_str(),
              report.rows().size());
  if (failures != 0) return 1;
  if (args.quick) return 0;

  int rest_argc = static_cast<int>(args.rest.size());
  benchmark::Initialize(&rest_argc, args.rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, args.rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
