// Microbenchmarks (google-benchmark): the per-operation costs behind the
// framework — LP solve, shallow-water step at several compute resolutions,
// nest substep cycle, frame encode/decode, render, and decision latency.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/greedy_threshold.hpp"
#include "core/lp_optimizer.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "perf/perf_model.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"
#include "vis/renderer.hpp"
#include "weather/model.hpp"

namespace {

using namespace adaptviz;

void BM_LpSolve(benchmark::State& state) {
  lp::Problem p;
  const int t = p.add_variable("t", 30.0, 300.0, 1.0);
  const int z = p.add_variable("z", 0.04, 0.33, -1e-4);
  const int y = p.add_variable("y", 0.0, lp::kInfinity, 0.0);
  p.add_constraint("y_le_z", {{y, 1.0}, {z, -1.0}}, lp::Relation::kLessEqual,
                   0.0);
  p.add_constraint("eq5", {{t, 1.0}, {z, 6.0}, {y, -880.0}},
                   lp::Relation::kLessEqual, 0.0);
  p.add_constraint("eq6", {{t, 1.0}, {z, -424.0}},
                   lp::Relation::kGreaterEqual, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(p));
  }
}
BENCHMARK(BM_LpSolve);

void BM_SwStep(benchmark::State& state) {
  const double res = static_cast<double>(state.range(0));
  GridSpec g(60.0, -10.0, 60.0, 50.0, res);
  DomainState s(g);
  SwSolver solver;
  const double dt = SwSolver::dt_for_resolution_km(res);
  for (auto _ : state) {
    solver.step(s, dt, SwForcing{});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.point_count()));
  state.counters["points"] = static_cast<double>(g.point_count());
}
BENCHMARK(BM_SwStep)->Arg(300)->Arg(192)->Arg(96);

// --- Parallel scaling: persistent pool vs spawn-per-call ---------------
//
// The same 96-km shallow-water step at 1/2/4/8 workers, with the six
// parallel regions per step dispatched either to the persistent pool
// (use_thread_pool=true, the production path) or to fresh std::threads
// per region (the pre-pool behavior, kept as parallel_for_rows_spawn).
// The pool must win at 4+ workers: spawn-per-call pays ~6*(workers-1)
// thread creations per step.

void sw_step_scaling(benchmark::State& state, bool use_pool) {
  const double res = 96.0;
  GridSpec g(60.0, -10.0, 60.0, 50.0, res);
  DomainState s(g);
  SwParams params;
  params.threads = static_cast<int>(state.range(0));
  params.use_thread_pool = use_pool;
  SwSolver solver(params);
  const double dt = SwSolver::dt_for_resolution_km(res);
  for (auto _ : state) {
    solver.step(s, dt, SwForcing{});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.point_count()));
}

void BM_SwStepPool(benchmark::State& state) { sw_step_scaling(state, true); }
BENCHMARK(BM_SwStepPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SwStepSpawn(benchmark::State& state) { sw_step_scaling(state, false); }
BENCHMARK(BM_SwStepSpawn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Raw fork-join dispatch latency of one near-empty region: the fixed
// overhead every parallel call pays under each runtime.
void BM_ParallelForPool(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t sink = 0;
  for (auto _ : state) {
    parallel_for_rows(0, 64, threads, [&](std::size_t lo, std::size_t hi) {
      benchmark::DoNotOptimize(sink += hi - lo);
    });
  }
}
BENCHMARK(BM_ParallelForPool)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelForSpawn(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::size_t sink = 0;
  for (auto _ : state) {
    parallel_for_rows_spawn(0, 64, threads,
                            [&](std::size_t lo, std::size_t hi) {
                              benchmark::DoNotOptimize(sink += hi - lo);
                            });
  }
}
BENCHMARK(BM_ParallelForSpawn)->Arg(2)->Arg(4)->Arg(8);

void BM_ModelFullStep(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = static_cast<double>(state.range(0));
  WeatherModel model(cfg);
  // Deepen until the nest exists so the step includes nest substeps.
  while (!model.nest_active() && model.sim_time() < SimSeconds::hours(30)) {
    model.step();
  }
  for (auto _ : state) {
    model.step();
  }
}
BENCHMARK(BM_ModelFullStep)->Arg(12)->Arg(8);

void BM_FrameEncodeDecode(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  const NclFile frame = model.make_frame();
  for (auto _ : state) {
    std::stringstream ss;
    frame.encode(ss);
    benchmark::DoNotOptimize(NclFile::decode(ss));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.encoded_size()));
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_RenderFrame(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  while (model.sim_time() < SimSeconds::hours(16)) model.step();
  const NclFile frame = model.make_frame();
  RenderOptions opts;
  opts.width = static_cast<std::size_t>(state.range(0));
  const FrameRenderer renderer(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(frame, nullptr));
  }
}
BENCHMARK(BM_RenderFrame)->Arg(240)->Arg(480);

// Base-layer render scaling: terrain + pseudocolor only (the band-parallel
// layer), 480 px wide, at 1/2/4/8 pool workers.
void BM_RenderBaseThreads(benchmark::State& state) {
  ModelConfig cfg;
  cfg.compute_scale = 8.0;
  WeatherModel model(cfg);
  while (model.sim_time() < SimSeconds::hours(16)) model.step();
  const NclFile frame = model.make_frame();
  RenderOptions opts;
  opts.width = 480;
  opts.draw_contours = false;
  opts.draw_glyphs = false;
  opts.draw_nest_box = false;
  opts.draw_track = false;
  opts.draw_eye = false;
  opts.threads = static_cast<int>(state.range(0));
  const FrameRenderer renderer(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.render(frame, nullptr));
  }
}
BENCHMARK(BM_RenderBaseThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

std::shared_ptr<PerformanceModel> micro_perf() {
  GroundTruthMachine machine(inter_department_site().machine, 1);
  BenchmarkProfiler profiler;
  return std::make_shared<PerformanceModel>(profiler.profile(machine, 1.0),
                                            48);
}

DecisionInput micro_input(const PerformanceModel& perf) {
  DecisionInput in;
  in.free_disk_percent = 45.0;
  in.disk_capacity = Bytes::gigabytes(182);
  in.free_disk_bytes = in.disk_capacity * 0.45;
  in.observed_bandwidth = Bandwidth::megabytes_per_second(2.0);
  in.io_bandwidth = Bandwidth::megabytes_per_second(150.0);
  in.work_units = 0.6;
  in.frame_bytes = Bytes::megabytes(900);
  in.integration_step = SimSeconds(60.0);
  in.remaining_sim_time = SimSeconds::hours(30.0);
  in.current_processors = 48;
  in.current_output_interval = SimSeconds::minutes(3.0);
  in.perf = &perf;
  in.min_processors = 4;
  in.max_processors = 48;
  return in;
}

void BM_GreedyDecision(benchmark::State& state) {
  auto perf = micro_perf();
  GreedyThresholdAlgorithm algo;
  const DecisionInput in = micro_input(*perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.decide(in));
  }
}
BENCHMARK(BM_GreedyDecision);

void BM_OptimizerDecision(benchmark::State& state) {
  auto perf = micro_perf();
  LpOptimizerAlgorithm algo;
  const DecisionInput in = micro_input(*perf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.decide(in));
  }
}
BENCHMARK(BM_OptimizerDecision);

}  // namespace

BENCHMARK_MAIN();
