// Figure 8 (a, b) — "Adaptivity of the framework".
//
// Plots the two knobs over wall-clock time for the inter-department and
// cross-continent configurations: number of processors (left axis in the
// paper) and output interval in simulated minutes (right axis). Shape
// criteria: greedy starts at maximum processors and a 3-minute interval,
// then stretches the interval and sheds processors as the disk fills, with
// visible oscillation; the optimization method holds an almost constant
// output interval and (disk permitting) the maximum processor count.
#include <algorithm>
#include <cstdio>

#include "experiment_common.hpp"

using namespace adaptviz;
using namespace adaptviz::bench;

namespace {

void print_series(const std::string& site, const SitePair& pair) {
  std::printf("\n--- Fig 8: %s ---\n", site.c_str());
  std::printf("%-8s | %-9s %-9s | %-9s %-9s\n", "", "greedy", "", "optim",
              "");
  std::printf("%-8s | %-9s %-9s | %-9s %-9s\n", "wall", "procs", "OI(min)",
              "procs", "OI(min)");

  CsvTable csv({"wall_hours", "greedy_procs", "greedy_oi_min",
                "optimization_procs", "optimization_oi_min"});

  auto knobs_at = [](const ExperimentResult& r, double wall_h) {
    std::pair<int, double> out{0, 0.0};
    for (const auto& s : r.samples) {
      if (s.wall_time.as_hours() <= wall_h + 1e-9) {
        out = {s.processors, s.output_interval.as_minutes()};
      }
    }
    return out;
  };

  const double end_h =
      std::max(pair.greedy.summary.wall_elapsed.as_hours(),
               pair.optimization.summary.wall_elapsed.as_hours());
  for (double h = 0.0; h <= end_h + 1e-9; h += 2.0) {
    const auto g = knobs_at(pair.greedy, h);
    const auto o = knobs_at(pair.optimization, h);
    std::printf("%-8s | %-9d %-9.1f | %-9d %-9.1f\n",
                hh_mm(WallSeconds::hours(h)).c_str(), g.first, g.second,
                o.first, o.second);
    csv.add_row({h, static_cast<long>(g.first), g.second,
                 static_cast<long>(o.first), o.second});
  }
  save_csv(csv, "fig8_" + site);

  // Variability summary: the paper notes the optimizer's interval is
  // "almost constant" while greedy's swings.
  auto oi_range = [](const ExperimentResult& r) {
    double lo = 1e18;
    double hi = -1e18;
    for (const auto& s : r.samples) {
      lo = std::min(lo, s.output_interval.as_minutes());
      hi = std::max(hi, s.output_interval.as_minutes());
    }
    return std::pair{lo, hi};
  };
  const auto g = oi_range(pair.greedy);
  const auto o = oi_range(pair.optimization);
  std::printf("  output-interval range: greedy %.1f..%.1f min, "
              "optimization %.1f..%.1f min\n",
              g.first, g.second, o.first, o.second);
  std::printf("  restarts (adaptations): greedy %d, optimization %d\n",
              pair.greedy.summary.restarts,
              pair.optimization.summary.restarts);
}

}  // namespace

int main() {
  std::printf("=== Figure 8: processor count and output interval adaptation "
              "===\n");
  // The paper shows (a) inter-department and (b) cross-continent.
  for (const auto& [name, site] : table4_sites()) {
    if (name == "intra-country") continue;
    print_series(name, run_site(name, site));
  }
  return 0;
}
