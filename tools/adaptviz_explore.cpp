// adaptviz_explore — adversarial scenario explorer CLI.
//
//   $ adaptviz_explore scenarios/explore_smoke.ini [output_dir]
//
// Loads an INI scenario plus its [explore] section (see
// src/explore/explorer.hpp for the schema), runs the branch-and-bound
// snapshot/backtrack search over the adversary's discretized choices at
// every decision boundary, prints the report, and writes it to
// <output_dir>/<name>_explore.txt. Every reported violation carries the
// exact adversary plan that produced it; paste that plan into a plain
// scenario's `[adversary] plan =` key to replay the branch bit for bit.
//
// Options:
//   --naive             re-execute every node from t = 0 instead of
//                       restoring snapshots (the bench_explore baseline;
//                       same report, much slower)
//   --no-prune          disable branch-and-bound pruning
//   --expect-violation  invert the exit-code convention for CI smoke
//                       tests: exit 0 iff the search found at least one
//                       violation
//
// Exit codes: 0 — search ran and met the expectation (no violations, or
// with --expect-violation at least one); 1 — expectation missed; 2 — the
// search could not run (bad usage, unreadable scenario).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/scenario.hpp"
#include "explore/explorer.hpp"
#include "tool_args.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main(int argc, char** argv) {
  const auto args =
      tools::ArgSpec("<scenario.ini> [output_dir] [--verbose] [--naive] "
                     "[--no-prune] [--expect-violation]")
          .flag("--naive")
          .flag("--no-prune")
          .flag("--expect-violation")
          .parse(argc, argv);
  if (!args) return 2;
  set_log_level(args->verbose ? LogLevel::kInfo : LogLevel::kWarn);

  try {
    ExperimentConfig cfg = load_scenario(args->input);
    ExploreSpec spec = explore_spec_from_ini(IniDocument::load(args->input));
    if (args->has("--naive")) spec.use_snapshots = false;
    if (args->has("--no-prune")) spec.prune = false;

    std::printf(
        "explore '%s': %s on %s, depth %d, <=%d branches, %s%s\n",
        cfg.name.c_str(), to_string(cfg.algorithm),
        cfg.site.machine.name.c_str(), spec.max_depth, spec.max_branches,
        spec.use_snapshots ? "snapshot/backtrack" : "naive re-execution",
        spec.prune ? "" : ", pruning off");

    const std::string name = cfg.name;
    ScenarioExplorer explorer(std::move(cfg), spec);
    const ExploreReport report = explorer.explore();
    const std::string rendered = to_string(report);
    std::fputs(rendered.c_str(), stdout);

    std::filesystem::create_directories(args->out_dir);
    const std::string report_path =
        args->out_dir + "/" + name + "_explore.txt";
    std::ofstream out(report_path);
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", report_path.c_str());
      return 2;
    }
    std::printf("report written to %s\n", report_path.c_str());

    const bool found = !report.violations.empty();
    if (args->has("--expect-violation")) {
      if (!found) std::fprintf(stderr, "error: expected a violation\n");
      return found ? 0 : 1;
    }
    return found ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
