// adaptviz_sweep — campaign-driven multi-experiment runner.
//
//   $ adaptviz_sweep scenarios/paper_suite.ini [output_dir] [--jobs N]
//   $ adaptviz_sweep scenarios/paper_suite.ini [output_dir] --workers N
//
// Loads a campaign file — a normal INI scenario plus a [campaign] section
// declaring override axes (see src/campaign/campaign.hpp for the schema) —
// expands the cross-product grid, and executes the runs. Two execution
// modes produce bitwise-identical results:
//
//  * in-process (default, or --jobs N): CampaignRunner thread pool.
//  * distributed (--workers N, or `[campaign] workers`): a coordinator
//    shards the grid across N `adaptviz_sweep --worker` child processes
//    (campaign/dispatch.hpp) with crash re-dispatch and
//    resume-from-manifest; --no-resume forces a fresh start.
//
// Each run streams its usual result CSVs into the output directory as it
// finishes (default: results/), and the campaign ends by writing an
// aggregated campaign_summary.csv with one row per run.
//
// Exit codes: 0 — every run executed without failure (runs that legally
// did not finish their simulated window still count as executed); 1 — at
// least one run is recorded as failed (a failed-run summary is printed);
// 2 — the sweep itself could not run (bad usage, unreadable campaign,
// coordinator-level dispatch failure).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "campaign/campaign.hpp"
#include "campaign/dispatch.hpp"
#include "tool_args.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

namespace {

void print_progress(const CampaignProgress& p) {
  const CampaignRunRecord& r = *p.record;
  if (r.failed) {
    std::printf("[%zu/%zu] %s: FAILED (%s)\n", p.finished, p.total,
                r.label.c_str(), r.error.c_str());
  } else {
    std::printf(
        "[%zu/%zu] %s: completed=%s sim=%.1fh wall=%.1fh "
        "min-free=%.1f%% frames w/s/v=%lld/%lld/%lld\n",
        p.finished, p.total, r.label.c_str(),
        r.summary.completed ? "yes" : "NO", r.summary.sim_reached.as_hours(),
        r.summary.sim_finished_wall.as_hours(),
        r.summary.min_free_disk_percent,
        static_cast<long long>(r.summary.frames_written),
        static_cast<long long>(r.summary.frames_sent),
        static_cast<long long>(r.summary.frames_visualized));
  }
  std::fflush(stdout);
}

/// Prints the per-run failure report and returns the process exit code:
/// 1 when any run failed, 0 otherwise.
int report_and_exit_code(const std::string& name,
                         const std::vector<CampaignRunRecord>& records,
                         const std::string& out_dir) {
  std::size_t completed = 0;
  std::vector<const CampaignRunRecord*> failures;
  for (const CampaignRunRecord& r : records) {
    if (r.failed) {
      failures.push_back(&r);
    } else if (r.summary.completed) {
      ++completed;
    }
  }
  const std::size_t did_not_finish =
      records.size() - completed - failures.size();
  std::printf("campaign '%s': %zu/%zu completed, %zu did not finish, "
              "%zu failed\n",
              name.c_str(), completed, records.size(), did_not_finish,
              failures.size());
  std::printf("summary written to %s/campaign_summary.csv\n", out_dir.c_str());
  if (failures.empty()) return 0;
  std::printf("failed runs:\n");
  for (const CampaignRunRecord* r : failures) {
    std::printf("  %s: %s\n", r->label.c_str(), r->error.c_str());
  }
  std::fflush(stdout);
  return 1;
}

int worker_main(int argc, char** argv) {
  // argv layout (appended by the coordinator):
  //   --worker <campaign.ini> [output_dir] [--no-per-run-csvs]
  //            [--verbose] [--crash-next-task]
  WorkerOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-per-run-csvs") {
      options.write_per_run_csvs = false;
    } else if (arg == "--verbose") {
      // Same mapping as the in-process runner's --verbose.
      options.run_log_level = LogLevel::kWarn;
    } else if (arg == "--crash-next-task") {
      options.crash_next_task = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown worker option '%s'\n", arg.c_str());
      return 2;
    } else if (options.campaign_path.empty()) {
      options.campaign_path = arg;
    } else {
      options.output_dir = arg;
    }
  }
  if (options.campaign_path.empty()) {
    std::fprintf(stderr, "error: --worker needs a campaign file\n");
    return 2;
  }
  return run_dispatch_worker(options, std::cin, std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--worker") {
    return worker_main(argc, argv);
  }

  // --crash-inject-worker / --max-task-attempts are undocumented test
  // hooks (integration tests drive the dispatch failure ladder through
  // the real binary), so the usage line omits them.
  const auto args = tools::ArgSpec("<campaign.ini> [output_dir] [--jobs N] "
                                   "[--workers N] [--no-resume] [--verbose]")
                        .flag("--no-resume")
                        .value("--jobs")
                        .value("--workers")
                        .value("--crash-inject-worker")
                        .value("--max-task-attempts")
                        .parse(argc, argv);
  if (!args) return 2;
  const std::string& campaign_path = args->input;
  const std::string& out_dir = args->out_dir;
  const bool resume = !args->has("--no-resume");
  const bool verbose = args->verbose;
  const int crash_inject_worker =
      std::atoi(args->value_or("--crash-inject-worker", "-1").c_str());
  const int max_task_attempts =
      std::atoi(args->value_or("--max-task-attempts", "0").c_str());
  // 0 = defer to the campaign file's `concurrency`; -1 = defer to its
  // `workers`.
  const int jobs = std::atoi(args->value_or("--jobs", "0").c_str());
  const int workers = std::atoi(args->value_or("--workers", "-1").c_str());
  if (args->values.count("--jobs") != 0 && jobs < 1) {
    std::fprintf(stderr, "error: --jobs needs a non-negative count\n");
    return 2;
  }
  if (args->values.count("--workers") != 0 && workers < 0) {
    std::fprintf(stderr, "error: --workers needs a non-negative count\n");
    return 2;
  }
  set_log_level(verbose ? LogLevel::kInfo : LogLevel::kWarn);

  try {
    const CampaignSpec spec = load_campaign(campaign_path);
    const std::vector<CampaignRun> runs = spec.expand();
    const int worker_count = workers >= 0 ? workers : spec.workers;

    if (worker_count > 0) {
      std::printf("campaign '%s': %zu runs across %d workers -> %s/\n",
                  spec.name.c_str(), runs.size(), worker_count,
                  out_dir.c_str());
      DispatchOptions options;
      options.workers = worker_count;
      options.output_dir = out_dir;
      options.resume = resume;
      options.verbose_workers = verbose;
      options.crash_inject_worker = crash_inject_worker;
      if (max_task_attempts > 0) options.max_task_attempts = max_task_attempts;
      options.on_progress = print_progress;
      CampaignDispatcher dispatcher({argv[0]}, std::move(options));
      const DispatchResult result = dispatcher.run(campaign_path);
      if (result.resumed > 0) {
        std::printf("resumed: %zu runs already complete, %zu executed\n",
                    result.resumed, result.executed);
      }
      return report_and_exit_code(spec.name, result.records, out_dir);
    }

    const int k = jobs > 0 ? jobs : std::max(1, spec.concurrency);
    std::printf("campaign '%s': %zu runs, %d in flight -> %s/\n",
                spec.name.c_str(), runs.size(), k, out_dir.c_str());

    CampaignOptions options;
    options.concurrency = k;
    options.output_dir = out_dir;
    options.run_log_level = verbose ? LogLevel::kWarn : LogLevel::kError;
    options.on_progress = print_progress;

    CampaignRunner runner(std::move(options));
    const std::vector<CampaignRunRecord> records = runner.run(runs);
    return report_and_exit_code(spec.name, records, out_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
