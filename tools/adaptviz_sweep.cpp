// adaptviz_sweep — campaign-driven multi-experiment runner.
//
//   $ adaptviz_sweep scenarios/paper_suite.ini [output_dir] [--jobs N]
//
// Loads a campaign file — a normal INI scenario plus a [campaign] section
// declaring override axes (see src/campaign/campaign.hpp for the schema) —
// expands the cross-product grid, and executes the runs with up to N
// experiments in flight. Each run streams its usual result CSVs into the
// output directory as it finishes (default: results/), and the campaign
// ends by writing an aggregated campaign_summary.csv with one row per run.
//
// Per-run contexts keep concurrent runs' metrics and logs disjoint, so
// every CSV is bitwise identical whatever --jobs is.
#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main(int argc, char** argv) {
  const auto usage = [&argv] {
    std::fprintf(stderr,
                 "usage: %s <campaign.ini> [output_dir] [--jobs N] "
                 "[--verbose]\n",
                 argv[0]);
  };
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string campaign_path = argv[1];
  std::string out_dir = "results";
  int jobs = 0;  // 0 = defer to the campaign file's `concurrency`
  bool verbose = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs a count\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "error: --jobs needs a positive count\n");
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      out_dir = arg;
    }
  }
  set_log_level(verbose ? LogLevel::kInfo : LogLevel::kWarn);

  try {
    const CampaignSpec spec = load_campaign(campaign_path);
    const std::vector<CampaignRun> runs = spec.expand();
    const int k = jobs > 0 ? jobs : std::max(1, spec.concurrency);
    std::printf("campaign '%s': %zu runs, %d in flight -> %s/\n",
                spec.name.c_str(), runs.size(), k, out_dir.c_str());

    CampaignOptions options;
    options.concurrency = k;
    options.output_dir = out_dir;
    options.run_log_level = verbose ? LogLevel::kWarn : LogLevel::kError;
    options.on_progress = [](const CampaignProgress& p) {
      const CampaignRunRecord& r = *p.record;
      if (r.failed) {
        std::printf("[%zu/%zu] %s: FAILED (%s)\n", p.finished, p.total,
                    r.label.c_str(), r.error.c_str());
      } else {
        std::printf(
            "[%zu/%zu] %s: completed=%s sim=%.1fh wall=%.1fh "
            "min-free=%.1f%% frames w/s/v=%lld/%lld/%lld\n",
            p.finished, p.total, r.label.c_str(),
            r.summary.completed ? "yes" : "NO",
            r.summary.sim_reached.as_hours(),
            r.summary.sim_finished_wall.as_hours(),
            r.summary.min_free_disk_percent,
            static_cast<long long>(r.summary.frames_written),
            static_cast<long long>(r.summary.frames_sent),
            static_cast<long long>(r.summary.frames_visualized));
      }
      std::fflush(stdout);
    };

    CampaignRunner runner(std::move(options));
    const std::vector<CampaignRunRecord> records = runner.run(runs);

    std::size_t completed = 0, failed = 0;
    for (const CampaignRunRecord& r : records) {
      if (r.failed) {
        ++failed;
      } else if (r.summary.completed) {
        ++completed;
      }
    }
    std::printf("campaign '%s': %zu/%zu completed, %zu failed\n",
                spec.name.c_str(), completed, records.size(), failed);
    std::printf("summary written to %s/campaign_summary.csv\n",
                out_dir.c_str());
    return completed == records.size() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
