// adaptviz_run — scenario-driven experiment runner.
//
//   $ adaptviz_run scenarios/inter_department_opt.ini [output_dir]
//
// Loads an INI scenario (see src/core/scenario.hpp for the schema), runs
// the full adaptive framework, prints the summary, and writes the result
// series (samples / visualization / decisions / track CSVs + summary INI)
// into the output directory (default: results/). Scenarios with a [serve]
// section additionally emit <name>_clients.csv — one delivery row per
// frame per viewer client — and print the serving summary.
//
// --metrics-out <path> switches the observability layer on (regardless of
// the scenario's [obs] section) and dumps the metrics registry + stage
// trace as one JSON document to <path> after the run.
//
// --steer-replay <path> applies a recorded/scripted steering_log.jsonl to
// the run (each event at exactly its logged wall time); --steer-record
// <path> saves the run's applied steering stream. Recording a steered run
// and replaying the saved log reproduces it bit for bit — the CI
// steering-smoke step asserts exactly that with cmp(1).
#include <cstdio>

#include "core/scenario.hpp"
#include "obs/export.hpp"
#include "tool_args.hpp"
#include "util/logging.hpp"

using namespace adaptviz;

int main(int argc, char** argv) {
  const auto args = tools::ArgSpec("<scenario.ini> [output_dir] [--verbose] "
                                   "[--metrics-out <path>] "
                                   "[--steer-record <path>] "
                                   "[--steer-replay <path>]")
                        .value("--metrics-out")
                        .value("--steer-record")
                        .value("--steer-replay")
                        .parse(argc, argv);
  if (!args) return 2;
  const std::string& scenario_path = args->input;
  const std::string& out_dir = args->out_dir;
  const std::string metrics_out = args->value_or("--metrics-out");
  const std::string steer_record = args->value_or("--steer-record");
  const std::string steer_replay = args->value_or("--steer-replay");
  set_log_level(args->verbose ? LogLevel::kInfo : LogLevel::kWarn);

  try {
    ExperimentConfig cfg = load_scenario(scenario_path);
    if (!metrics_out.empty()) cfg.observability = true;
    if (!steer_record.empty()) cfg.steering.record_log_path = steer_record;
    if (!steer_replay.empty()) cfg.steering.replay_log_path = steer_replay;
    std::printf("scenario '%s': %s on %s (%d cores, %s disk, %s WAN)\n",
                cfg.name.c_str(), to_string(cfg.algorithm),
                cfg.site.machine.name.c_str(), cfg.site.machine.max_cores,
                to_string(cfg.site.disk_capacity).c_str(),
                to_string(cfg.site.wan_nominal).c_str());

    const ExperimentResult result = run_experiment(cfg);
    write_result(result, out_dir);

    const ExperimentSummary& s = result.summary;
    std::printf(
        "%s: completed=%s sim=%.1fh wall=%.1fh min-free=%.1f%% "
        "stall=%.1fh frames w/s/v=%lld/%lld/%lld restarts=%d\n",
        cfg.name.c_str(), s.completed ? "yes" : "NO",
        s.sim_reached.as_hours(), s.sim_finished_wall.as_hours(),
        s.min_free_disk_percent, s.total_stall_time.as_hours(),
        static_cast<long long>(s.frames_written),
        static_cast<long long>(s.frames_sent),
        static_cast<long long>(s.frames_visualized), s.restarts);
    if (s.viewers > 0) {
      std::printf(
          "serve: %d clients, %lld deliveries, cache hits/misses=%lld/%lld "
          "(%.1f%% hit), evictions=%lld, rerenders=%lld, peak cache %s\n",
          s.viewers, static_cast<long long>(s.frames_served),
          static_cast<long long>(s.cache_hits),
          static_cast<long long>(s.cache_misses),
          s.cache_hits + s.cache_misses == 0
              ? 100.0
              : 100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(s.cache_hits + s.cache_misses),
          static_cast<long long>(s.cache_evictions),
          static_cast<long long>(s.rerenders),
          to_string(s.peak_cache_bytes).c_str());
      std::printf("per-client deliveries written to %s/%s_clients.csv\n",
                  out_dir.c_str(), cfg.name.c_str());
    }
    if (s.steering_events > 0) {
      std::printf(
          "steering: %lld events applied, %lld steer re-renders "
          "(%lld deduped), peak observers=%d%s%s\n",
          static_cast<long long>(s.steering_events),
          static_cast<long long>(s.steer_renders),
          static_cast<long long>(s.steer_dedup), s.observers_peak,
          steer_record.empty() ? "" : ", log recorded to ",
          steer_record.c_str());
    }
    if (s.tree_tiers > 0) {
      std::printf(
          "tree: %d tiers, %d leaves, %lld modeled viewers, "
          "%lld viewer frames, origin WAN %s, retries=%lld, "
          "degraded_events=%lld\n",
          s.tree_tiers, s.tree_leaves,
          static_cast<long long>(s.tree_viewers),
          static_cast<long long>(s.tree_frames_delivered),
          to_string(s.tree_origin_wan_bytes).c_str(),
          static_cast<long long>(s.tree_fill_retries),
          static_cast<long long>(s.tree_degraded_events));
    }
    if (!result.samples.empty()) {
      // Final-state line rendered off the declarative telemetry schema.
      std::printf("final: %s\n",
                  telemetry_summary(result.samples.back(),
                                    CalendarEpoch::aila_start())
                      .c_str());
    }
    if (!metrics_out.empty()) {
      obs::save_json(metrics_out, result.metrics, result.trace);
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    std::printf("results written to %s/%s_*.csv\n", out_dir.c_str(),
                cfg.name.c_str());
    return s.completed ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
