// Shared argv handling for the adaptviz_* CLI tools.
//
// Every tool has the same surface: a required input file, an optional
// output directory, `--verbose`, plus a handful of tool-specific flags
// and `--opt <value>` options. adaptviz_run and adaptviz_sweep used to
// carry independent copies of that loop; this helper is the single
// implementation all three tools (run, sweep, explore) share.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace adaptviz::tools {

/// The parsed command line. Positionals: the first is the input file,
/// any later one replaces the output directory (last wins — the
/// behaviour the tools always had).
struct ParsedArgs {
  std::string input;
  std::string out_dir = "results";
  bool verbose = false;

  [[nodiscard]] bool has(const std::string& flag) const {
    return flags.count(flag) != 0;
  }
  /// Value of `--opt <value>`, or `def` when the option was not given.
  [[nodiscard]] std::string value_or(const std::string& opt,
                                     std::string def = "") const {
    auto it = values.find(opt);
    return it == values.end() ? std::move(def) : it->second;
  }

  std::set<std::string> flags;
  std::map<std::string, std::string> values;
};

/// Declarative description of one tool's command line.
class ArgSpec {
 public:
  /// `usage` is the full usage line printed on errors (without the
  /// program name), e.g. "<scenario.ini> [output_dir] [--verbose]".
  explicit ArgSpec(std::string usage);

  /// Registers a boolean `--name` flag. `--verbose` is built in.
  ArgSpec& flag(const std::string& name);
  /// Registers a `--name <value>` option.
  ArgSpec& value(const std::string& name);

  /// Parses argv. On any error (missing input, unknown `--` option,
  /// value option without a value) prints the error and the usage line
  /// to stderr and returns nullopt — the tool should exit 2.
  [[nodiscard]] std::optional<ParsedArgs> parse(int argc,
                                                char** argv) const;

 private:
  std::string usage_;
  std::set<std::string> flags_;
  std::set<std::string> values_;
};

}  // namespace adaptviz::tools
