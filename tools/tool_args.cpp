#include "tool_args.hpp"

#include <cstdio>

namespace adaptviz::tools {

ArgSpec::ArgSpec(std::string usage) : usage_(std::move(usage)) {
  flags_.insert("--verbose");
}

ArgSpec& ArgSpec::flag(const std::string& name) {
  flags_.insert(name);
  return *this;
}

ArgSpec& ArgSpec::value(const std::string& name) {
  values_.insert(name);
  return *this;
}

std::optional<ParsedArgs> ArgSpec::parse(int argc, char** argv) const {
  const auto usage = [&] {
    std::fprintf(stderr, "usage: %s %s\n", argv[0], usage_.c_str());
  };
  if (argc < 2) {
    usage();
    return std::nullopt;
  }
  ParsedArgs out;
  out.input = argv[1];
  if (out.input.rfind("--", 0) == 0) {
    std::fprintf(stderr, "error: the first argument must be the input file\n");
    usage();
    return std::nullopt;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      out.verbose = true;
    } else if (flags_.count(arg) != 0) {
      out.flags.insert(arg);
    } else if (values_.count(arg) != 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return std::nullopt;
      }
      out.values[arg] = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage();
      return std::nullopt;
    } else {
      out.out_dir = arg;
    }
  }
  return out;
}

}  // namespace adaptviz::tools
