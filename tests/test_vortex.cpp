#include "weather/vortex.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

HollandVortex aila_like() {
  return HollandVortex{.center = LatLon{14.0, 88.5},
                       .deficit_hpa = 20.0,
                       .r_max_km = 80.0,
                       .b = 1.5};
}

TEST(Distance, PlanarKm) {
  EXPECT_NEAR(distance_km(LatLon{0, 0}, LatLon{0, 1}), kKmPerDegree, 1e-9);
  EXPECT_NEAR(distance_km(LatLon{10, 88}, LatLon{11, 88}), kKmPerDegree,
              1e-9);
  // Longitude shrinks with cos(lat).
  const double at60 = distance_km(LatLon{60, 0}, LatLon{60, 1});
  EXPECT_NEAR(at60, kKmPerDegree * 0.5, 0.5);
  EXPECT_DOUBLE_EQ(distance_km(LatLon{5, 5}, LatLon{5, 5}), 0.0);
}

TEST(Holland, PressureProfileShape) {
  const HollandVortex v = aila_like();
  // Full deficit at the centre, ~0 far away, monotone in between.
  EXPECT_NEAR(v.pressure_anomaly_hpa(0.1), -20.0, 0.01);
  EXPECT_GT(v.pressure_anomaly_hpa(2000.0), -0.2);
  double prev = v.pressure_anomaly_hpa(1.0);
  for (double r = 20.0; r <= 1000.0; r += 20.0) {
    const double cur = v.pressure_anomaly_hpa(r);
    EXPECT_GE(cur, prev - 1e-12) << "not monotone at r=" << r;
    prev = cur;
  }
}

TEST(Holland, HeightMatchesPressureMapping) {
  const HollandVortex v = aila_like();
  EXPECT_NEAR(v.height_anomaly_m(50.0),
              v.pressure_anomaly_hpa(50.0) / kHpaPerMetre, 1e-12);
}

TEST(Holland, BalancedWindPeaksNearRmax) {
  const HollandVortex v = aila_like();
  const double f = coriolis(14.0);
  double peak = 0.0;
  double peak_r = 0.0;
  for (double r = 5.0; r <= 600.0; r += 5.0) {
    const double w = v.balanced_tangential_wind(r, f);
    EXPECT_GE(w, 0.0);
    if (w > peak) {
      peak = w;
      peak_r = r;
    }
  }
  // A 20 hPa storm blows tropical-storm to cyclone-force winds at its core.
  EXPECT_GT(peak, 15.0);
  EXPECT_LT(peak, 70.0);
  EXPECT_NEAR(peak_r, v.r_max_km, 25.0);
  // Far field decays.
  EXPECT_LT(v.balanced_tangential_wind(600.0, f), 0.5 * peak);
}

TEST(Holland, DepositCreatesCyclonicLow) {
  GridSpec g(80.0, 5.0, 18.0, 18.0, 40.0);
  DomainState s(g);
  const HollandVortex v = aila_like();
  v.deposit(s);

  // Minimum pressure at the centre.
  double hmin = 1e300;
  std::size_t bi = 0, bj = 0;
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i)
      if (s.h(i, j) < hmin) {
        hmin = s.h(i, j);
        bi = i;
        bj = j;
      }
  const LatLon eye = g.at(bi, bj);
  EXPECT_LT(distance_km(eye, v.center), 1.5 * g.resolution_km());
  EXPECT_NEAR(hmin, -20.0 / kHpaPerMetre, 6.0);

  // Cyclonic (counterclockwise) circulation: east of the eye the wind blows
  // north (v > 0), west of it south (v < 0).
  const std::size_t east = bi + 3;
  const std::size_t west = bi - 3;
  EXPECT_GT(s.v(east, bj), 1.0);
  EXPECT_LT(s.v(west, bj), -1.0);
  // North of the eye the wind blows west (u < 0).
  EXPECT_LT(s.u(bi, bj + 3), -1.0);
}

TEST(Holland, DepositIsLocal) {
  GridSpec g(60.0, -10.0, 60.0, 50.0, 200.0);
  DomainState s(g);
  aila_like().deposit(s);
  // Far corner untouched.
  EXPECT_DOUBLE_EQ(s.h(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.u(g.nx() - 1, g.ny() - 1), 0.0);
}

TEST(Coriolis, SignAndMagnitude) {
  EXPECT_NEAR(coriolis(90.0), 1.458e-4, 1e-6);
  EXPECT_NEAR(coriolis(14.0), 3.53e-5, 1e-6);
  EXPECT_NEAR(coriolis(0.0), 0.0, 1e-12);
  EXPECT_LT(coriolis(-14.0), 0.0);
}

}  // namespace
}  // namespace adaptviz
