#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "resources/event_queue.hpp"
#include "util/csv.hpp"

namespace adaptviz {
namespace {

// Golden header: the samples CSV header the repo has always emitted.
// The declarative schema must reproduce it byte for byte — downstream
// plotting scripts key on these names and this order.
TEST(TelemetrySchema, GoldenHeader) {
  const std::vector<std::string> golden = {
      "wall_hours",        "sim_label",         "sim_hours",
      "free_disk_percent", "processors",        "output_interval_min",
      "resolution_km",     "min_pressure_hpa",  "stalled",
      "critical",          "paused",            "frames_written",
      "frames_sent",       "frames_visualized", "transfer_failures",
      "transfer_retries",  "link_degraded",     "retry_backoff_s",
      "frames_served",     "serve_hit_percent", "cache_mb",
      "codec_ratio"};
  EXPECT_EQ(telemetry_columns(), golden);
}

TEST(TelemetrySchema, RowMatchesSchemaWidthAndCellKinds) {
  TelemetrySample s;
  s.wall_time = WallSeconds::hours(2.0);
  s.sim_time = SimSeconds::hours(1.0);
  s.processors = 16;
  s.frames_written = 7;
  s.stalled = true;
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  const std::vector<CsvTable::Cell> row = telemetry_row(s, epoch);
  ASSERT_EQ(row.size(), telemetry_schema().size());

  // Cell variant alternatives are part of the golden contract: doubles
  // stay doubles, flags/counters are long, the calendar label a string.
  EXPECT_TRUE(std::holds_alternative<double>(row[0]));       // wall_hours
  EXPECT_TRUE(std::holds_alternative<std::string>(row[1]));  // sim_label
  EXPECT_TRUE(std::holds_alternative<long>(row[4]));         // processors
  EXPECT_TRUE(std::holds_alternative<long>(row[8]));         // stalled
  EXPECT_TRUE(std::holds_alternative<long>(row[11]));  // frames_written
  EXPECT_TRUE(std::holds_alternative<double>(row[20]));  // cache_mb
  EXPECT_TRUE(std::holds_alternative<double>(row[21]));  // codec_ratio

  EXPECT_DOUBLE_EQ(std::get<double>(row[0]), 2.0);
  EXPECT_EQ(std::get<long>(row[4]), 16);
  EXPECT_EQ(std::get<long>(row[8]), 1);
  EXPECT_EQ(std::get<long>(row[11]), 7);
}

TEST(TelemetrySchema, SummaryRendersEveryColumn) {
  TelemetrySample s;
  s.processors = 4;
  const std::string line =
      telemetry_summary(s, CalendarEpoch::aila_start());
  for (const TelemetryColumn& c : telemetry_schema()) {
    EXPECT_NE(line.find(c.name), std::string::npos) << c.name;
  }
  EXPECT_NE(line.find("processors=4"), std::string::npos);
}

// ---- TelemetryRecorder ----

TEST(TelemetryRecorder, SamplesPeriodically) {
  EventQueue queue;
  int calls = 0;
  TelemetryRecorder rec(
      queue,
      [&] {
        ++calls;
        TelemetrySample s;
        s.wall_time = queue.now();
        return s;
      },
      WallSeconds(10.0));
  rec.start();
  queue.run_until(WallSeconds(35.0));
  rec.stop();
  // t = 0, 10, 20, 30.
  EXPECT_EQ(calls, 4);
  ASSERT_EQ(rec.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(rec.samples()[3].wall_time.seconds(), 30.0);
}

// Regression: stop() then start() used to leave the pre-stop scheduled
// tick alive; it saw running_ == true after the restart and spawned a
// second sampling chain, doubling the sample rate from then on.
TEST(TelemetryRecorder, RestartDoesNotDoubleSampleRate) {
  EventQueue queue;
  TelemetryRecorder rec(
      queue,
      [&] {
        TelemetrySample s;
        s.wall_time = queue.now();
        return s;
      },
      WallSeconds(10.0));
  rec.start();
  queue.run_until(WallSeconds(15.0));  // samples at 0, 10; tick pending at 20
  rec.stop();
  rec.start();  // restart mid-period: new chain at 15, 25, 35, ...
  queue.run_until(WallSeconds(50.0));
  rec.stop();
  queue.run_all();

  const std::vector<TelemetrySample>& samples = rec.samples();
  // One sample per chain slot: 0, 10 (first chain), 15, 25, 35, 45
  // (second chain). The stale tick at t=20 must not fire.
  std::vector<double> times;
  times.reserve(samples.size());
  for (const TelemetrySample& s : samples) {
    times.push_back(s.wall_time.seconds());
  }
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 15.0, 25.0, 35.0, 45.0}));
}

TEST(TelemetryRecorder, StartIsIdempotentWhileRunning) {
  EventQueue queue;
  TelemetryRecorder rec(
      queue, [] { return TelemetrySample{}; }, WallSeconds(10.0));
  rec.start();
  rec.start();  // no second chain
  queue.run_until(WallSeconds(25.0));
  rec.stop();
  EXPECT_EQ(rec.samples().size(), 3u);  // 0, 10, 20
}

}  // namespace
}  // namespace adaptviz
