#include "resources/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace adaptviz {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(WallSeconds(3.0), [&] { order.push_back(3); });
  q.schedule_at(WallSeconds(1.0), [&] { order.push_back(1); });
  q.schedule_at(WallSeconds(2.0), [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(WallSeconds(5.0), [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(WallSeconds(10.0), [&] {
    q.schedule_after(WallSeconds(5.0), [&] { fired_at = q.now().seconds(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(WallSeconds(10.0), [&] {
    q.schedule_at(WallSeconds(2.0), [&] { fired_at = q.now().seconds(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
  // Negative delays likewise.
  EventQueue q2;
  q2.schedule_after(WallSeconds(-3.0), [] {});
  q2.run_all();
  EXPECT_DOUBLE_EQ(q2.now().seconds(), 0.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule_at(WallSeconds(1.0), [&] { ran = true; });
  q.cancel(id);
  q.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.executed(), 0u);
  q.cancel(id);      // double-cancel is a no-op
  q.cancel(999999);  // unknown id is a no-op
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(WallSeconds(1.0), [&] { order.push_back(1); });
  const EventId id = q.schedule_at(WallSeconds(2.0), [&] { order.push_back(2); });
  q.schedule_at(WallSeconds(3.0), [&] { order.push_back(3); });
  q.cancel(id);
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunUntilAdvancesClockExactly) {
  EventQueue q;
  int count = 0;
  q.schedule_at(WallSeconds(1.0), [&] { ++count; });
  q.schedule_at(WallSeconds(5.0), [&] { ++count; });
  q.run_until(WallSeconds(3.0));
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(WallSeconds(10.0));
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 10.0);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(WallSeconds(1.0), [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunawayGuardThrows) {
  EventQueue q;
  std::function<void()> self = [&] { q.schedule_after(WallSeconds(1.0), self); };
  q.schedule_after(WallSeconds(1.0), self);
  EXPECT_THROW(q.run_all(1000), std::runtime_error);
}

TEST(EventQueue, NullFunctionRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(WallSeconds(1.0), EventFn{}),
               std::invalid_argument);
}

// Stress sweep: random schedules + cancellations must execute exactly the
// surviving events, in (time, insertion) order.
class EventQueueStress : public testing::TestWithParam<int> {};

TEST_P(EventQueueStress, MatchesReferenceOrdering) {
  Rng rng(31000 + static_cast<std::uint64_t>(GetParam()));
  EventQueue q;
  struct Expected {
    double time;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Expected> expected;
  std::vector<EventId> ids;
  std::vector<int> executed;

  const int n = 50 + static_cast<int>(rng.bounded(100));
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    ids.push_back(q.schedule_at(WallSeconds(t),
                                [&executed, i] { executed.push_back(i); }));
    expected.push_back({t, static_cast<std::uint64_t>(i), i});
  }
  // Cancel a random subset.
  std::vector<bool> cancelled(static_cast<std::size_t>(n), false);
  for (int c = 0; c < n / 4; ++c) {
    const std::size_t k = rng.bounded(static_cast<std::uint64_t>(n));
    q.cancel(ids[k]);
    cancelled[k] = true;
  }
  q.run_all();

  std::vector<Expected> survivors;
  for (const auto& e : expected) {
    if (!cancelled[static_cast<std::size_t>(e.tag)]) survivors.push_back(e);
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Expected& a, const Expected& b) {
                     return a.time < b.time;
                   });
  ASSERT_EQ(executed.size(), survivors.size());
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    EXPECT_EQ(executed[k], survivors[k].tag) << "position " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EventQueueStress, testing::Range(0, 15));

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void(int)> recurse = [&](int d) {
    depth = d;
    if (d < 5) {
      q.schedule_after(WallSeconds(1.0), [&, d] { recurse(d + 1); });
    }
  };
  q.schedule_at(WallSeconds(0.0), [&] { recurse(1); });
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now().seconds(), 4.0);
}

}  // namespace
}  // namespace adaptviz
