// Tests for CSV writing, RNG, and string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace adaptviz {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  CsvTable t({"wall", "value", "label"});
  t.add_row({1.5, 42L, std::string("ok")});
  t.add_row({2.5, 43L, std::string("fine")});
  EXPECT_EQ(t.str(), "wall,value,label\n1.5,42,ok\n2.5,43,fine\n");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvTable t({"a"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has \"quote\"")});
  EXPECT_EQ(t.str(), "a\n\"has,comma\"\n\"has \"\"quote\"\"\"\n");
}

TEST(Csv, RejectsWidthMismatch) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(CsvTable({}), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  EXPECT_NE(Rng(123).next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(99);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BoundedNoModuloBias) {
  Rng r(11);
  int counts[7] = {0};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[r.bounded(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtil, StartsWithAndJoin) {
  EXPECT_TRUE(starts_with("adaptviz", "adapt"));
  EXPECT_FALSE(starts_with("ad", "adapt"));
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d procs, %.1f min", 48, 2.5), "48 procs, 2.5 min");
}

}  // namespace
}  // namespace adaptviz
