#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"

namespace adaptviz::obs {
namespace {

// ---- MetricsRegistry ----

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  reg.counter("a").add();
  reg.counter("a").add(4);
  EXPECT_EQ(reg.counter("a").value(), 5);
  EXPECT_EQ(reg.counter("other").value(), 0);
}

TEST(Metrics, GaugeSetAndSetMax) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(Metrics, StableReferences) {
  MetricsRegistry reg;
  Counter& first = reg.counter("x");
  for (int i = 0; i < 100; ++i) reg.counter("name" + std::to_string(i));
  EXPECT_EQ(&first, &reg.counter("x"));
}

TEST(Metrics, HistogramBucketsAndStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (bound is inclusive)
  h.observe(5.0);   // bucket 1
  h.observe(100.0); // overflow
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2);
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 1);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 106.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 106.5 / 4.0);
}

TEST(Metrics, HistogramKeepsFirstBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0});
  Histogram& again = reg.histogram("h", {99.0, 100.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds(), std::vector<double>{1.0});
}

TEST(Metrics, EmptyHistogramSnapshot) {
  MetricsRegistry reg;
  const Histogram::Snapshot s = reg.histogram("never").snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Metrics, SnapshotLookups) {
  MetricsRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(2.5);
  reg.histogram("h").observe(0.05);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_EQ(snap.counter_or("c"), 7);
  EXPECT_EQ(snap.counter_or("absent", -1), -1);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g"), 2.5);
  EXPECT_DOUBLE_EQ(snap.gauge_or("absent", -2.0), -2.0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(Metrics, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zz").add();
  reg.counter("aa").add();
  reg.counter("mm").add();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aa");
  EXPECT_EQ(snap.counters[1].name, "mm");
  EXPECT_EQ(snap.counters[2].name, "zz");
}

// The concurrent hammer: many threads pound the same and distinct
// instruments while a reader keeps snapshotting. Exact totals must
// survive; TSan (the sanitizer CI job runs this test) must stay silent.
TEST(Metrics, ConcurrentHammer) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = reg.snapshot();
      EXPECT_LE(snap.counter_or("shared"),
                static_cast<std::int64_t>(kThreads) * kOps);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      const std::string own = "own" + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        reg.counter("shared").add();
        reg.counter(own).add();
        reg.gauge("peak").set_max(static_cast<double>(i));
        reg.histogram("durations").observe(1e-4 * (t + 1));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("shared"),
            static_cast<std::int64_t>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counter_or("own" + std::to_string(t)), kOps);
  }
  EXPECT_DOUBLE_EQ(snap.gauge_or("peak"), static_cast<double>(kOps - 1));
  ASSERT_NE(snap.histogram("durations"), nullptr);
  EXPECT_EQ(snap.histogram("durations")->count,
            static_cast<std::int64_t>(kThreads) * kOps);
  EXPECT_DOUBLE_EQ(snap.histogram("durations")->min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.histogram("durations")->max, 1e-4 * kThreads);
}

// ---- StageTracer ----

TEST(Tracer, RecordsInOrder) {
  StageTracer tracer(8);
  tracer.record("a", TraceClock::kHost, 0.0, 1.0);
  tracer.record("b", TraceClock::kSim, 5.0, 2.0, "k=v");
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, "a");
  EXPECT_EQ(events[0].clock, TraceClock::kHost);
  EXPECT_EQ(events[1].stage, "b");
  EXPECT_EQ(events[1].clock, TraceClock::kSim);
  EXPECT_DOUBLE_EQ(events[1].start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(events[1].duration_seconds, 2.0);
  EXPECT_EQ(events[1].metadata, "k=v");
  EXPECT_EQ(tracer.recorded(), 2);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(Tracer, RingOverwritesOldestFirst) {
  StageTracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    tracer.record("e" + std::to_string(i), TraceClock::kHost,
                  static_cast<double>(i), 0.1);
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().stage, "e2");  // e0/e1 overwritten
  EXPECT_EQ(events.back().stage, "e5");
  EXPECT_EQ(tracer.recorded(), 6);
  EXPECT_EQ(tracer.dropped(), 2);
}

TEST(Tracer, HostClockAdvances) {
  StageTracer tracer(4);
  const double t0 = tracer.host_now();
  EXPECT_GE(tracer.host_now(), t0);
}

// ---- Install point + helpers ----

TEST(ObsInstall, HelpersNoopWhenNothingInstalled) {
  ASSERT_EQ(current(), nullptr);
  // None of these may crash or register anything anywhere.
  count("nothing");
  gauge_set("nothing", 1.0);
  gauge_max("nothing", 1.0);
  observe("nothing", 1.0);
  trace_sim("nothing", 0.0, 1.0);
  { ScopedSpan span("nothing"); }
  EXPECT_EQ(current(), nullptr);
}

// Golden test for the deprecated ScopedObservability shim: the only
// remaining in-tree user. Everything else installs a RunContext directly.
TEST(ObsInstall, ScopedInstallAndNestedRestore) {
  ASSERT_EQ(current(), nullptr);
  Observability outer;
  {
    ScopedObservability s1(&outer);
    EXPECT_EQ(current(), &outer);
    Observability inner;
    {
      ScopedObservability s2(&inner);
      EXPECT_EQ(current(), &inner);
      count("hit");
    }
    EXPECT_EQ(current(), &outer);
    count("hit");
    EXPECT_EQ(inner.metrics().snapshot().counter_or("hit"), 1);
  }
  EXPECT_EQ(current(), nullptr);
  EXPECT_EQ(outer.metrics().snapshot().counter_or("hit"), 1);
}

TEST(ObsInstall, HelpersRouteToInstalledBundle) {
  Observability obs;
  {
    RunContext ctx;
    ctx.observability = &obs;
    ScopedRunContext scope(&ctx);
    count("c", 3);
    gauge_set("g", 1.5);
    gauge_max("g", 9.0);
    observe("h", 0.25);
    trace_sim("stage.sim", 10.0, 2.0, "seq=1");
    { ScopedSpan span("stage.host"); }
  }
  const MetricsSnapshot snap = obs.metrics().snapshot();
  EXPECT_EQ(snap.counter_or("c"), 3);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g"), 9.0);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1);
  // trace_sim and ScopedSpan both feed a histogram named like the stage.
  ASSERT_NE(snap.histogram("stage.sim"), nullptr);
  ASSERT_NE(snap.histogram("stage.host"), nullptr);

  const std::vector<TraceEvent> events = obs.tracer().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, "stage.sim");
  EXPECT_EQ(events[0].clock, TraceClock::kSim);
  EXPECT_EQ(events[0].metadata, "seq=1");
  EXPECT_EQ(events[1].stage, "stage.host");
  EXPECT_EQ(events[1].clock, TraceClock::kHost);
  EXPECT_GE(events[1].duration_seconds, 0.0);
}

TEST(ObsInstall, ScopedSpanMetadata) {
  Observability obs;
  {
    RunContext ctx;
    ctx.observability = &obs;
    ScopedRunContext scope(&ctx);
    ScopedSpan span("s");
    span.set_metadata("rows=42");
  }
  const std::vector<TraceEvent> events = obs.tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].metadata, "rows=42");
}

TEST(ObsInstall, HotHandlesFollowTheBundleEpoch) {
  HotCounter hot("hot.counter");
  EXPECT_EQ(hot.resolve(nullptr), nullptr);

  Observability a;
  Observability b;
  EXPECT_NE(a.epoch(), b.epoch());
  hot.resolve(&a)->add(1);
  hot.resolve(&a)->add(1);  // cached path, same instrument
  hot.resolve(&b)->add(5);  // epoch change forces a re-lookup
  hot.resolve(&a)->add(1);  // and back again
  EXPECT_EQ(a.metrics().snapshot().counter_or("hot.counter"), 3);
  EXPECT_EQ(b.metrics().snapshot().counter_or("hot.counter"), 5);

  HotHistogram hist("hot.hist");
  hist.resolve(&a)->observe(0.5);
  {
    RunContext ctx;
    ctx.observability = &a;
    ScopedRunContext scope(&ctx);
    ScopedTimer timer(hist);  // cached histogram, no trace event
  }
  const MetricsSnapshot snap = a.metrics().snapshot();
  const Histogram::Snapshot* h = snap.histogram("hot.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_TRUE(a.tracer().events().empty());
}

// ---- Exporters ----

TEST(Export, JsonContainsInstrumentsAndTrace) {
  Observability obs;
  obs.metrics().counter("sim.steps").add(12);
  obs.metrics().gauge("pool.queue_depth_peak").set(3.0);
  obs.metrics().histogram("sim.step", {0.1, 1.0}).observe(0.05);
  obs.tracer().record("sim.step", TraceClock::kHost, 0.25, 0.05, "k=\"v\"");

  std::ostringstream out;
  write_json(out, obs.metrics().snapshot(), obs.tracer().events());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sim.steps\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"pool.queue_depth_peak\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [1, 0, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"clock\": \"host\""), std::string::npos);
  // Embedded quotes in metadata must be escaped.
  EXPECT_NE(json.find("k=\\\"v\\\""), std::string::npos);
  // Braces balance (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, EmptyBundleIsStillValidJson) {
  std::ostringstream out;
  write_json(out, MetricsSnapshot{}, {});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

TEST(Export, TraceCsvHeaderAndQuoting) {
  std::ostringstream out;
  write_trace_csv(out, {TraceEvent{"s", TraceClock::kSim, 1.0, 2.0, "a\"b"}});
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "stage,clock,start_seconds,duration_seconds,metadata");
  EXPECT_NE(csv.find("\"a\"\"b\""), std::string::npos);
}

TEST(Export, SaveJsonThrowsOnUnwritablePath) {
  EXPECT_THROW(save_json("/nonexistent-dir/x/metrics.json", {}, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace adaptviz::obs
