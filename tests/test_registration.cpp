// Registration server: one serve process fronting N live runs — mailbox
// mechanics, pre-registration buffering, and the end-to-end wiring through
// the framework and the campaign runner.
#include "serve/registration.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/framework.hpp"

namespace adaptviz {
namespace {

SteeringEvent command_event(WallSeconds wall, SteeringCommand::Kind kind,
                            double value = 0.0) {
  SteeringEvent e;
  e.wall = wall;
  e.type = SteeringEvent::Type::kCommand;
  e.command.kind = kind;
  if (kind == SteeringCommand::Kind::kSetResolutionFloor) {
    e.command.resolution_floor_km = value;
  }
  return e;
}

TEST(Registration, RegisterSteerDrainLifecycle) {
  RegistrationServer server;
  EXPECT_THROW(server.register_run(""), std::invalid_argument);
  const ControlPlane::RunId a = server.register_run("run-a");
  EXPECT_THROW(server.register_run("run-a"), std::invalid_argument);
  EXPECT_EQ(server.active_runs(), 1);
  EXPECT_EQ(server.total_registered(), 1);

  // The inbox is FIFO and wall-gated: an event scheduled for later holds
  // everything behind it (in-order delivery, like the channel).
  server.steer(a, command_event(WallSeconds(100.0),
                                SteeringCommand::Kind::kPause));
  server.steer(a,
               command_event(WallSeconds(0.0), SteeringCommand::Kind::kResume));
  EXPECT_TRUE(server.drain(a, WallSeconds(50.0)).empty());
  const auto due = server.drain(a, WallSeconds(100.0));
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].command.kind, SteeringCommand::Kind::kPause);
  EXPECT_EQ(due[1].command.kind, SteeringCommand::Kind::kResume);
  EXPECT_TRUE(server.drain(a, WallSeconds(1e9)).empty());

  // Malformed events are rejected at the server boundary.
  SteeringEvent bad;
  bad.type = SteeringEvent::Type::kView;
  bad.view.zoom = -2.0;
  EXPECT_THROW(server.steer(a, bad), std::invalid_argument);
  EXPECT_THROW(server.steer(ControlPlane::RunId{99},
                            command_event(WallSeconds(0.0),
                                          SteeringCommand::Kind::kPause)),
               std::invalid_argument);

  // Deregistration is idempotent and frees the label for reuse; steering
  // a finished run is an error, not a silent drop.
  server.deregister_run(a);
  server.deregister_run(a);
  EXPECT_EQ(server.active_runs(), 0);
  EXPECT_THROW(server.steer(a, command_event(WallSeconds(0.0),
                                             SteeringCommand::Kind::kPause)),
               std::invalid_argument);
  const ControlPlane::RunId a2 = server.register_run("run-a");
  EXPECT_NE(a2, a);
  EXPECT_EQ(server.total_registered(), 2);
  EXPECT_EQ(server.peak_active_runs(), 1);
}

TEST(Registration, PreRegistrationEventsWaitForTheRun) {
  RegistrationServer server;
  // Script events for a run that has not started yet — both spellings.
  server.steer("late-run", command_event(WallSeconds(5.0),
                                         SteeringCommand::Kind::kPause));
  server.attach("late-run", "watcher", ObserverSpec{});
  EXPECT_EQ(server.active_runs(), 0);

  const ControlPlane::RunId run = server.register_run("late-run");
  const auto events = server.drain(run, WallSeconds(10.0));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, SteeringEvent::Type::kCommand);
  EXPECT_EQ(events[1].type, SteeringEvent::Type::kAttach);
  EXPECT_EQ(events[1].client, "watcher");

  // A second registration of the same label starts with a clean inbox.
  server.deregister_run(run);
  const ControlPlane::RunId again = server.register_run("late-run");
  EXPECT_TRUE(server.drain(again, WallSeconds(1e9)).empty());
}

TEST(Registration, AttachDetachAndObservationsAreTracked) {
  RegistrationServer server;
  const ControlPlane::RunId run = server.register_run("run");
  const ClientId c = server.attach(run, "scientist", ObserverSpec{});
  EXPECT_TRUE(c.valid());
  {
    const auto runs = server.runs();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].label, "run");
    EXPECT_TRUE(runs[0].active);
    EXPECT_EQ(runs[0].observers, 1);
    EXPECT_EQ(runs[0].inbox, 1u);  // the attach event awaits its drain
  }
  server.detach(run, c);
  EXPECT_EQ(server.runs()[0].observers, 0);

  SteeringObservation obs;
  for (int i = 0; i < 100; ++i) {
    obs.sequence = i;
    obs.min_pressure_hpa = 1000.0 - i;
    server.observe(run, obs);
  }
  const auto runs = server.runs();
  EXPECT_EQ(runs[0].observations, 100);
  EXPECT_EQ(runs[0].last_observation.sequence, 99);
  EXPECT_DOUBLE_EQ(runs[0].last_observation.min_pressure_hpa, 901.0);

  server.publish_campaign(CampaignView{.name = "sweep", .finished = 1,
                                       .total = 4});
  EXPECT_EQ(server.campaign().name, "sweep");
  EXPECT_EQ(server.campaign().total, 4u);
}

// --- End-to-end through the framework ---

ExperimentConfig live_config(const std::string& name) {
  ExperimentConfig cfg;
  cfg.name = name;
  cfg.site.machine = MachineSpec{.name = "mini",
                                 .max_cores = 32,
                                 .min_cores = 4,
                                 .serial_seconds = 1.0,
                                 .work_seconds = 4000.0,
                                 .comm_seconds = 0.3,
                                 .noise_sigma = 0.0};
  cfg.site.disk_capacity = Bytes::gigabytes(120);
  cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(150);
  cfg.site.wan_nominal = Bandwidth::mbps(40);
  cfg.site.wan_efficiency = 0.5;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(24.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.seed = 3;
  cfg.log.set_level(LogLevel::kError);
  return cfg;
}

// The acceptance scenario: one server fronts two concurrently registered
// runs; scripted observers steer each by label, before and during the run.
TEST(Registration, OneServerFrontsTwoLiveRuns) {
  RegistrationServer server;

  // Scripted before either run exists: a resolution floor for alpha, an
  // observer session (attach at start, detach mid-run) for beta.
  server.steer("alpha",
               command_event(WallSeconds(0.0),
                             SteeringCommand::Kind::kSetResolutionFloor,
                             18.0));
  server.attach("beta", "watcher", ObserverSpec{.downlink_mbps = 50.0});
  server.detach("beta", "watcher");  // scripted for wall 0: joins, leaves
  {
    SteeringEvent att;
    att.wall = WallSeconds::hours(1.0);
    att.client = "watcher";
    att.type = SteeringEvent::Type::kAttach;
    att.attach = ObserverSpec{.downlink_mbps = 50.0};
    server.steer("beta", att);  // ...and comes back an hour in
  }

  ExperimentConfig alpha_cfg = live_config("alpha");
  alpha_cfg.steering.control_plane = &server;
  ExperimentConfig beta_cfg = live_config("beta");
  beta_cfg.steering.control_plane = &server;

  AdaptiveFramework alpha(alpha_cfg);
  AdaptiveFramework beta(beta_cfg);
  EXPECT_EQ(server.active_runs(), 2);
  EXPECT_EQ(server.peak_active_runs(), 2);

  const ExperimentResult ra = alpha.run();
  const ExperimentResult rb = beta.run();
  EXPECT_EQ(server.active_runs(), 0);

  // Alpha: the scripted floor reached the decision algorithms.
  EXPECT_TRUE(ra.summary.completed);
  EXPECT_EQ(ra.summary.steering_events, 1);
  double finest = 1e9;
  for (const auto& s : ra.samples) finest = std::min(finest, s.resolution_km);
  EXPECT_GE(finest, 18.0 - 1e-9);

  // Beta: attach/detach/re-attach all applied; the watcher saw frames.
  EXPECT_TRUE(rb.summary.completed);
  EXPECT_EQ(rb.summary.steering_events, 3);
  EXPECT_EQ(rb.summary.observers_peak, 1);
  ASSERT_EQ(rb.clients.size(), 1u);
  EXPECT_EQ(rb.clients[0].name, "watcher");
  EXPECT_GT(rb.clients[0].stats.frames_delivered, 0);

  // The runs published their observations to the server as they went.
  for (const RunView& view : server.runs()) {
    EXPECT_FALSE(view.active);
    EXPECT_GT(view.observations, 0);
  }
}

// The campaign runner wires every cell to the shared server and publishes
// sweep progress through it.
TEST(Registration, CampaignRunsRegisterAndPublishProgress) {
  RegistrationServer server;

  CampaignSpec spec;
  spec.name = "steered-sweep";
  spec.base = live_config("base");
  spec.seeds = {7, 8};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 2u);

  // Script a steering session for every cell before the sweep starts.
  for (const CampaignRun& cell : runs) {
    server.attach(cell.label, "observer", ObserverSpec{});
    server.steer(cell.label,
                 command_event(WallSeconds::hours(1.0),
                               SteeringCommand::Kind::kSetResolutionFloor,
                               18.0));
    server.detach(cell.label, "observer");  // delivered at drain time
  }

  CampaignOptions options;
  options.concurrency = 2;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  options.registration = &server;
  const std::vector<CampaignRunRecord> records =
      CampaignRunner(options).run(spec);

  ASSERT_EQ(records.size(), 2u);
  for (const CampaignRunRecord& rec : records) {
    EXPECT_FALSE(rec.failed) << rec.label << ": " << rec.error;
    EXPECT_TRUE(rec.summary.completed) << rec.label;
    EXPECT_EQ(rec.summary.steering_events, 3) << rec.label;
    EXPECT_EQ(rec.summary.observers_peak, 1) << rec.label;
  }

  EXPECT_EQ(server.active_runs(), 0);
  EXPECT_EQ(server.total_registered(), 2);
  EXPECT_GE(server.peak_active_runs(), 1);
  EXPECT_EQ(server.campaign().name, "steered-sweep");
  EXPECT_EQ(server.campaign().finished, 2u);
  EXPECT_EQ(server.campaign().total, 2u);
  EXPECT_FALSE(server.campaign().last_failed);
}

}  // namespace
}  // namespace adaptviz
