#include "core/app_config.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace adaptviz {
namespace {

ApplicationConfiguration sample() {
  ApplicationConfiguration c;
  c.processors = 48;
  c.output_interval = SimSeconds::minutes(3.0);
  c.resolution_km = 24.0;
  c.critical = false;
  c.version = 5;
  return c;
}

TEST(AppConfig, IniRoundTrip) {
  const ApplicationConfiguration c = sample();
  const ApplicationConfiguration d =
      ApplicationConfiguration::from_ini(c.to_ini());
  EXPECT_EQ(c, d);
}

TEST(AppConfig, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/adaptviz_app.cfg";
  ApplicationConfiguration c = sample();
  c.critical = true;
  c.save(path);
  const ApplicationConfiguration d = ApplicationConfiguration::load(path);
  EXPECT_EQ(c, d);
  EXPECT_TRUE(d.critical);
  std::remove(path.c_str());
}

TEST(AppConfig, MissingKeysRejected) {
  IniDocument doc;
  doc.set_int("application", "processors", 4);
  EXPECT_THROW(ApplicationConfiguration::from_ini(doc), std::runtime_error);
}

TEST(AppConfig, InvalidValuesRejected) {
  ApplicationConfiguration c = sample();
  c.processors = 0;
  EXPECT_THROW(ApplicationConfiguration::from_ini(c.to_ini()),
               std::runtime_error);
  c = sample();
  c.output_interval = SimSeconds(0.0);
  EXPECT_THROW(ApplicationConfiguration::from_ini(c.to_ini()),
               std::runtime_error);
}

TEST(AppConfig, RequiresRestartSemantics) {
  const ApplicationConfiguration base = sample();
  ApplicationConfiguration other = base;
  EXPECT_FALSE(base.requires_restart(other));

  other.critical = true;  // CRITICAL toggles pause in place, no restart
  other.version = 99;
  EXPECT_FALSE(base.requires_restart(other));

  other = base;
  other.processors = 24;
  EXPECT_TRUE(base.requires_restart(other));

  other = base;
  other.output_interval = SimSeconds::minutes(25.0);
  EXPECT_TRUE(base.requires_restart(other));

  other = base;
  other.resolution_km = 10.0;
  EXPECT_TRUE(base.requires_restart(other));
}

}  // namespace
}  // namespace adaptviz
