#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/calendar.hpp"

namespace adaptviz {
namespace {

TEST(Bytes, ConstructorsAndAccessors) {
  EXPECT_EQ(Bytes::kilobytes(1).count(), 1000);
  EXPECT_EQ(Bytes::megabytes(1).count(), 1000000);
  EXPECT_EQ(Bytes::gigabytes(2).count(), 2000000000LL);
  EXPECT_EQ(Bytes::terabytes(1).count(), 1000000000000LL);
  EXPECT_DOUBLE_EQ(Bytes::gigabytes(1.5).gb(), 1.5);
  EXPECT_DOUBLE_EQ(Bytes::megabytes(250).mb(), 250.0);
}

TEST(Bytes, Arithmetic) {
  Bytes a = Bytes::megabytes(100);
  Bytes b = Bytes::megabytes(50);
  EXPECT_EQ((a + b).count(), Bytes::megabytes(150).count());
  EXPECT_EQ((a - b).count(), Bytes::megabytes(50).count());
  EXPECT_EQ((a * 2.0).count(), Bytes::megabytes(200).count());
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  a += b;
  EXPECT_EQ(a.count(), Bytes::megabytes(150).count());
  a -= b;
  EXPECT_EQ(a.count(), Bytes::megabytes(100).count());
}

TEST(Bytes, Comparisons) {
  EXPECT_LT(Bytes(1), Bytes(2));
  EXPECT_EQ(Bytes(5), Bytes(5));
  EXPECT_GE(Bytes::gigabytes(1), Bytes::megabytes(999));
}

TEST(Bandwidth, BitByteConversions) {
  // 8 Mbps == 1 MB/s.
  EXPECT_DOUBLE_EQ(Bandwidth::mbps(8).bytes_per_sec(), 1e6);
  EXPECT_DOUBLE_EQ(Bandwidth::kbps(60).bytes_per_sec(), 7500.0);
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(1).bytes_per_sec(), 1.25e8);
  EXPECT_DOUBLE_EQ(Bandwidth::megabytes_per_second(5).megabits_per_sec(),
                   40.0);
}

TEST(Time, TransferMath) {
  // 1 GB over 1 Gbps = 8 seconds.
  const WallSeconds t =
      transfer_time(Bytes::gigabytes(1), Bandwidth::gbps(1));
  EXPECT_NEAR(t.seconds(), 8.0, 1e-9);
  const Bytes moved = transferable(Bandwidth::mbps(8), WallSeconds(10.0));
  EXPECT_EQ(moved.count(), 10000000);
}

TEST(Time, DurationsAreDistinctTypes) {
  const WallSeconds w = WallSeconds::hours(1.5);
  const SimSeconds s = SimSeconds::minutes(30);
  EXPECT_DOUBLE_EQ(w.seconds(), 5400.0);
  EXPECT_DOUBLE_EQ(w.as_hours(), 1.5);
  EXPECT_DOUBLE_EQ(s.as_minutes(), 30.0);
  // WallSeconds + SimSeconds must not compile; verified by design (no
  // common operator). Arithmetic within one axis:
  EXPECT_DOUBLE_EQ((w + WallSeconds(600.0)).as_hours(), 1.0 + 2.0 / 3.0);
  EXPECT_DOUBLE_EQ((s * 2.0).as_minutes(), 60.0);
  EXPECT_DOUBLE_EQ(SimSeconds::days(1.0) / SimSeconds::hours(6.0), 4.0);
}

TEST(Formatting, BytesToString) {
  EXPECT_EQ(to_string(Bytes(12)), "12 B");
  EXPECT_EQ(to_string(Bytes::kilobytes(1.5)), "1.50 KB");
  EXPECT_EQ(to_string(Bytes::megabytes(31)), "31.00 MB");
  EXPECT_EQ(to_string(Bytes::gigabytes(31)), "31.00 GB");
  EXPECT_EQ(to_string(Bytes::terabytes(5)), "5.00 TB");
}

TEST(Formatting, BandwidthToString) {
  EXPECT_EQ(to_string(Bandwidth::kbps(60)), "60.00 Kbps");
  EXPECT_EQ(to_string(Bandwidth::mbps(56)), "56.00 Mbps");
  EXPECT_EQ(to_string(Bandwidth::gbps(10)), "10.00 Gbps");
}

TEST(Formatting, HhMm) {
  EXPECT_EQ(hh_mm(WallSeconds(0.0)), "00:00");
  EXPECT_EQ(hh_mm(WallSeconds::hours(2.6)), "02:36");
  EXPECT_EQ(hh_mm(WallSeconds::hours(26.0)), "26:00");
}

TEST(Calendar, AilaLabels) {
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  EXPECT_EQ(epoch.label(SimSeconds(0.0)), "22-May 18:00");
  EXPECT_EQ(epoch.label(SimSeconds::hours(15.0)), "23-May 09:00");
  EXPECT_EQ(epoch.label(SimSeconds::hours(60.0)), "25-May 06:00");
}

TEST(Calendar, AtIsInverseOfLabel) {
  const CalendarEpoch epoch = CalendarEpoch::aila_start();
  const SimSeconds t = epoch.at(24, 9, 30);
  EXPECT_EQ(epoch.label(t), "24-May 09:30");
  EXPECT_DOUBLE_EQ(epoch.at(22, 18, 0).seconds(), 0.0);
}

TEST(Calendar, RejectsBadDates) {
  EXPECT_THROW(CalendarEpoch(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(CalendarEpoch(22, 24, 0), std::invalid_argument);
  EXPECT_THROW(CalendarEpoch(22, 10, 63), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
