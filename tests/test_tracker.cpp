#include "weather/tracker.hpp"

#include <gtest/gtest.h>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

DomainState state_with_vortex(double deficit, LatLon center) {
  GridSpec g(78.0, 4.0, 20.0, 20.0, 60.0);
  DomainState s(g);
  HollandVortex v{.center = center,
                  .deficit_hpa = deficit,
                  .r_max_km = 150.0,
                  .b = 1.4};
  v.deposit(s);
  return s;
}

TEST(Tracker, FindsTheEye) {
  CycloneTracker tracker;
  const LatLon truth{14.0, 88.5};
  const DomainState s = state_with_vortex(20.0, truth);
  tracker.update(s, SimSeconds(0.0));
  EXPECT_LT(distance_km(tracker.eye(), truth), 2.0 * s.grid.resolution_km());
  EXPECT_NEAR(tracker.min_pressure_hpa(), kEnvPressureHpa - 20.0, 4.0);
  EXPECT_GT(tracker.max_wind_ms(), 10.0);
}

TEST(Tracker, LowestEverIsMonotone) {
  CycloneTracker tracker;
  tracker.update(state_with_vortex(10.0, {14.0, 88.5}), SimSeconds(0.0));
  const double after_weak = tracker.lowest_pressure_ever_hpa();
  tracker.update(state_with_vortex(30.0, {15.0, 88.5}),
                 SimSeconds::hours(6.0));
  const double after_strong = tracker.lowest_pressure_ever_hpa();
  EXPECT_LT(after_strong, after_weak);
  // Weakening later does not raise the record.
  tracker.update(state_with_vortex(5.0, {16.0, 88.5}),
                 SimSeconds::hours(12.0));
  EXPECT_DOUBLE_EQ(tracker.lowest_pressure_ever_hpa(), after_strong);
}

TEST(Tracker, RecordsTrackAtInterval) {
  CycloneTracker tracker(SimSeconds::minutes(30.0));
  for (int m = 0; m <= 120; m += 10) {
    tracker.update(state_with_vortex(15.0, {14.0 + m * 0.01, 88.5}),
                   SimSeconds::minutes(m));
  }
  // Points at 0, 30, 60, 90, 120 minutes.
  ASSERT_EQ(tracker.track().size(), 5u);
  EXPECT_DOUBLE_EQ(tracker.track().front().time.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.track().back().time.as_minutes(), 120.0);
  // Track moves north.
  EXPECT_GT(tracker.track().back().eye.lat, tracker.track().front().eye.lat);
}

TEST(Tracker, RestoreRoundTrip) {
  CycloneTracker tracker;
  tracker.restore(LatLon{17.5, 88.0}, 990.0, 985.0);
  EXPECT_DOUBLE_EQ(tracker.eye().lat, 17.5);
  EXPECT_DOUBLE_EQ(tracker.min_pressure_hpa(), 990.0);
  EXPECT_DOUBLE_EQ(tracker.lowest_pressure_ever_hpa(), 985.0);
}

TEST(Ladder, Table3Schedule) {
  const ResolutionLadder ladder = ResolutionLadder::table3();
  EXPECT_DOUBLE_EQ(ladder.spawn_pressure_hpa(), 995.0);
  EXPECT_EQ(ladder.rungs().size(), 6u);
  // Above the first rung: base resolution.
  EXPECT_DOUBLE_EQ(ladder.resolution_for(1000.0, 24.0), 24.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(995.0, 24.0), 24.0);  // not below
  // Table III mapping.
  EXPECT_DOUBLE_EQ(ladder.resolution_for(994.5, 24.0), 24.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(993.5, 24.0), 21.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(991.5, 24.0), 18.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(989.5, 24.0), 15.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(987.5, 24.0), 12.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(985.0, 24.0), 10.0);
  EXPECT_DOUBLE_EQ(ladder.resolution_for(966.0, 24.0), 10.0);  // floor
}

TEST(Ladder, CustomScheduleValidation) {
  EXPECT_THROW(ResolutionLadder({}), std::invalid_argument);
  // Not strictly decreasing in pressure.
  EXPECT_THROW(ResolutionLadder({{995.0, 24.0}, {995.0, 21.0}}),
               std::invalid_argument);
  // Not strictly decreasing in resolution.
  EXPECT_THROW(ResolutionLadder({{995.0, 24.0}, {990.0, 24.0}}),
               std::invalid_argument);
  EXPECT_THROW(ResolutionLadder({{995.0, -1.0}}), std::invalid_argument);
  // A valid custom two-rung ladder.
  const ResolutionLadder custom({{990.0, 30.0}, {980.0, 15.0}});
  EXPECT_DOUBLE_EQ(custom.resolution_for(985.0, 45.0), 30.0);
  EXPECT_DOUBLE_EQ(custom.resolution_for(979.0, 45.0), 15.0);
}

}  // namespace
}  // namespace adaptviz
