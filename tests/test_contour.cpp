#include "vis/contour.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

TEST(Contour, EmptyWhenLevelOutsideRange) {
  Field2D f(5, 5, 1.0);
  EXPECT_TRUE(marching_squares(f, 2.0).empty());
  EXPECT_TRUE(marching_squares(f, 0.0).empty());
}

TEST(Contour, VerticalFrontProducesStraightLine) {
  // f = x: the iso line f = 1.5 is the vertical line x = 1.5.
  Field2D f(4, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i) f(i, j) = static_cast<double>(i);
  const auto segs = marching_squares(f, 1.5);
  ASSERT_EQ(segs.size(), 3u);  // one per cell row
  for (const auto& s : segs) {
    EXPECT_NEAR(s.x0, 1.5, 1e-12);
    EXPECT_NEAR(s.x1, 1.5, 1e-12);
  }
}

TEST(Contour, InterpolatesCrossingPosition) {
  // Crossing at 1/4 of the way between values 0 and 4 for iso=1.
  Field2D f(2, 2);
  f(0, 0) = 0.0;
  f(1, 0) = 4.0;
  f(0, 1) = 0.0;
  f(1, 1) = 4.0;
  const auto segs = marching_squares(f, 1.0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_NEAR(segs[0].x0, 0.25, 1e-12);
  EXPECT_NEAR(segs[0].x1, 0.25, 1e-12);
}

TEST(Contour, CircleHasRightRadius) {
  // f = distance from grid centre; iso = 8 -> segments near radius 8.
  const std::size_t n = 32;
  Field2D f(n, n);
  const double c = (n - 1) / 2.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i)
      f(i, j) = std::hypot(static_cast<double>(i) - c,
                           static_cast<double>(j) - c);
  const auto segs = marching_squares(f, 8.0);
  EXPECT_GT(segs.size(), 20u);
  for (const auto& s : segs) {
    const double r0 = std::hypot(s.x0 - c, s.y0 - c);
    const double r1 = std::hypot(s.x1 - c, s.y1 - c);
    EXPECT_NEAR(r0, 8.0, 0.35);
    EXPECT_NEAR(r1, 8.0, 0.35);
  }
  // Total contour length approximates the circumference 2*pi*8.
  double len = 0.0;
  for (const auto& s : segs) len += std::hypot(s.x1 - s.x0, s.y1 - s.y0);
  EXPECT_NEAR(len, 2.0 * 3.14159265 * 8.0, 3.0);
}

TEST(Contour, SaddleProducesTwoSegments) {
  // Checkerboard corners force the ambiguous case.
  Field2D f(2, 2);
  f(0, 0) = 1.0;
  f(1, 0) = 0.0;
  f(0, 1) = 0.0;
  f(1, 1) = 1.0;
  const auto segs = marching_squares(f, 0.5);
  EXPECT_EQ(segs.size(), 2u);
}

TEST(Contour, SkipsNanCells) {
  Field2D f(3, 2);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < 3; ++i) f(i, j) = static_cast<double>(i);
  f(1, 0) = std::nan("");
  // Both cells touch the NaN corner: no segments at all.
  EXPECT_TRUE(marching_squares(f, 0.5).empty());
}

TEST(Contour, MultiLevelConcatenates) {
  Field2D f(4, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 4; ++i) f(i, j) = static_cast<double>(i);
  const auto one = marching_squares(f, 0.5);
  const auto both = marching_squares(f, std::vector<double>{0.5, 1.5});
  EXPECT_EQ(both.size(), 2 * one.size());
}

TEST(Contour, DegenerateGrids) {
  Field2D tiny(1, 1, 0.0);
  EXPECT_TRUE(marching_squares(tiny, 0.5).empty());
  Field2D row(5, 1, 0.0);
  EXPECT_TRUE(marching_squares(row, 0.5).empty());
}

}  // namespace
}  // namespace adaptviz
