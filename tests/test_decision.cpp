#include "core/decision.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

const DecisionBounds kBounds{};  // 3..25 simulated minutes

TEST(Quantize, RoundsToMultipleOfStep) {
  const SimSeconds ts = SimSeconds(144.0);  // 24 km step
  const SimSeconds q =
      quantize_output_interval(SimSeconds::minutes(10.0), ts, kBounds);
  EXPECT_NEAR(std::fmod(q.seconds(), ts.seconds()), 0.0, 1e-9);
  EXPECT_NEAR(q.seconds(), 576.0, 1e-9);  // 4 steps = 9.6 min (nearest)
}

TEST(Quantize, ClampsToBounds) {
  const SimSeconds ts = SimSeconds(60.0);
  EXPECT_NEAR(
      quantize_output_interval(SimSeconds::minutes(1.0), ts, kBounds)
          .as_minutes(),
      3.0, 1e-9);
  EXPECT_NEAR(
      quantize_output_interval(SimSeconds::minutes(90.0), ts, kBounds)
          .as_minutes(),
      25.0, 1e-9);
}

TEST(Quantize, StepLargerThanMinBound) {
  // ts = 5 min > min bound 3 min: interval is at least one step.
  const SimSeconds ts = SimSeconds::minutes(5.0);
  const SimSeconds q =
      quantize_output_interval(SimSeconds::minutes(1.0), ts, kBounds);
  EXPECT_NEAR(q.as_minutes(), 5.0, 1e-9);
}

TEST(Quantize, RoundingRespectsCeiling) {
  // 25 min ceiling with a 2.4-min step: 10 steps = 24 min fits; 11 = 26.4
  // does not.
  const SimSeconds ts = SimSeconds(144.0);
  const SimSeconds q =
      quantize_output_interval(SimSeconds::minutes(25.0), ts, kBounds);
  EXPECT_LE(q.as_minutes(), 25.0 + 1e-9);
  EXPECT_NEAR(q.seconds(), 10 * 144.0, 1e-9);
}

TEST(Quantize, OneStepMinimum) {
  const SimSeconds ts = SimSeconds::minutes(30.0);  // step above the ceiling
  const SimSeconds q =
      quantize_output_interval(SimSeconds::minutes(10.0), ts, kBounds);
  EXPECT_NEAR(q.as_minutes(), 30.0, 1e-9);  // can't output mid-step
}

}  // namespace
}  // namespace adaptviz
