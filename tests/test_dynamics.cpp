#include "weather/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

// A mid-ocean test grid: 20x20 degrees at 100 km spacing around the Bay.
GridSpec test_grid(double res_km = 100.0) {
  return GridSpec(75.0, 4.0, 20.0, 20.0, res_km);
}

TEST(Dynamics, RestStateStaysAtRest) {
  SwSolver solver;
  DomainState s(test_grid());
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  for (int k = 0; k < 20; ++k) solver.step(s, dt, SwForcing{});
  EXPECT_NEAR(s.h.min(), 0.0, 1e-12);
  EXPECT_NEAR(s.h.max(), 0.0, 1e-12);
  EXPECT_NEAR(s.u.max(), 0.0, 1e-12);
}

TEST(Dynamics, DtRule) {
  EXPECT_DOUBLE_EQ(SwSolver::dt_for_resolution_km(24.0), 144.0);
  EXPECT_DOUBLE_EQ(SwSolver::dt_for_resolution_km(10.0), 60.0);
}

TEST(Dynamics, GravityWavesPropagateAtSqrtGh) {
  SwSolver solver(SwParams{.diffusion_alpha = 0.0, .sponge_width = 0});
  DomainState s(test_grid());
  const GridSpec& g = s.grid;
  // A small axisymmetric bump in the middle.
  const std::size_t ci = g.nx() / 2;
  const std::size_t cj = g.ny() / 2;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const double dx = (static_cast<double>(i) - ci) * g.dx_m();
      const double dy = (static_cast<double>(j) - cj) * g.dx_m();
      s.h(i, j) = 1.0 * std::exp(-(dx * dx + dy * dy) / (2 * 3e5 * 3e5));
    }
  }
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  const double t_total = 20 * dt;
  for (int k = 0; k < 20; ++k) solver.step(s, dt, SwForcing{});

  // The wavefront (radius of the strongest ring) should sit near
  // c*t with c = sqrt(g*H) ~ 62.6 m/s.
  const double c = std::sqrt(9.81 * kMeanDepthM);
  const double expected_r = c * t_total;
  // Find the radius of max |h| along the +x axis.
  double best = 0.0;
  double best_r = 0.0;
  for (std::size_t i = ci + 2; i < g.nx(); ++i) {
    const double r = (static_cast<double>(i) - ci) * g.dx_m();
    if (std::fabs(s.h(i, cj)) > best) {
      best = std::fabs(s.h(i, cj));
      best_r = r;
    }
  }
  EXPECT_NEAR(best_r, expected_r, 2.5 * g.dx_m());
}

TEST(Dynamics, BalancedVortexPersists) {
  // A gradient-balanced vortex should survive many steps with little decay
  // of its pressure minimum (inertia-gravity adjustment is small).
  SwSolver solver;
  DomainState s(test_grid(60.0));
  HollandVortex v{.center = LatLon{14.0, 85.0},
                  .deficit_hpa = 15.0,
                  .r_max_km = 180.0,
                  .b = 1.4};
  v.deposit(s);
  const double h0 = s.h.min();
  const double dt = SwSolver::dt_for_resolution_km(60.0);
  for (int k = 0; k < 60; ++k) solver.step(s, dt, SwForcing{});  // ~6 hours
  EXPECT_LT(s.h.min(), 0.45 * h0);  // at most ~55% filled
  EXPECT_TRUE(std::isfinite(s.h.min()));
}

TEST(Dynamics, SteeringAdvectsAnomaly) {
  SwSolver solver;
  DomainState s(test_grid(60.0));
  HollandVortex v{.center = LatLon{12.0, 85.0},
                  .deficit_hpa = 12.0,
                  .r_max_km = 180.0,
                  .b = 1.4};
  v.deposit(s);
  SwForcing f;
  f.steering_v = 5.0;  // due north at 5 m/s
  const double dt = SwSolver::dt_for_resolution_km(60.0);
  const int steps = 100;  // ~10 hours
  for (int k = 0; k < steps; ++k) solver.step(s, dt, f);

  // Eye should have moved north by roughly steering * time (beta drift
  // perturbs it some).
  const GridSpec& g = s.grid;
  double hmin = 1e300;
  std::size_t bi = 0, bj = 0;
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i)
      if (s.h(i, j) < hmin) {
        hmin = s.h(i, j);
        bi = i;
        bj = j;
      }
  const double moved_north_km =
      (g.at(bi, bj).lat - 12.0) * kKmPerDegree;
  const double expected_km = 5.0 * steps * dt / 1000.0;
  EXPECT_NEAR(moved_north_km, expected_km, 160.0);
  (void)bi;
}

TEST(Dynamics, RelaxationDampsWinds) {
  SwSolver solver(SwParams{.sponge_width = 0});
  DomainState s(test_grid());
  s.u.fill(10.0);
  Field2D relax(s.grid.nx(), s.grid.ny(), 1.0 / 3600.0);  // 1-hour decay
  SwForcing f;
  f.relaxation = &relax;
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  double t = 0.0;
  for (int k = 0; k < 30; ++k) {
    solver.step(s, dt, f);
    t += dt;
  }
  // Interior wind decays roughly exponentially.
  const double expected = 10.0 * std::exp(-t / 3600.0);
  EXPECT_NEAR(s.u(s.grid.nx() / 2, s.grid.ny() / 2), expected,
              0.35 * expected);
}

TEST(Dynamics, MassTendencyInjectsMass) {
  // Diffusion off: a single-point injection would otherwise be smeared
  // within the very first step.
  SwSolver solver(SwParams{.diffusion_alpha = 0.0, .sponge_width = 0});
  DomainState s(test_grid());
  Field2D q(s.grid.nx(), s.grid.ny(), 0.0);
  q(s.grid.nx() / 2, s.grid.ny() / 2) = -0.001;  // sink: -1 mm/s
  SwForcing f;
  f.mass_tendency = &q;
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  solver.step(s, dt, f);
  // RK3 couples the injected anomaly back through the dynamics within the
  // step, so the result is first-order close to q*dt, not exact.
  EXPECT_NEAR(s.h(s.grid.nx() / 2, s.grid.ny() / 2), -0.001 * dt,
              0.03 * 0.001 * dt);  // ~2% is intra-step gravity-wave adjustment
}

TEST(Dynamics, StableOverLongIntegration) {
  // CFL soak: a strong vortex, 48 simulated hours, no NaN/blowup.
  SwSolver solver;
  DomainState s(test_grid(100.0));
  HollandVortex v{.center = LatLon{14.0, 85.0},
                  .deficit_hpa = 30.0,
                  .r_max_km = 250.0,
                  .b = 1.5};
  v.deposit(s);
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  const int steps = static_cast<int>(48.0 * 3600.0 / dt);
  for (int k = 0; k < steps; ++k) solver.step(s, dt, SwForcing{});
  EXPECT_TRUE(std::isfinite(s.h.min()));
  EXPECT_TRUE(std::isfinite(s.u.max()));
  EXPECT_LT(std::fabs(s.h.min()), 500.0);
  EXPECT_LT(s.wind_speed().max(), 150.0);
}

// Row-decomposed stepping must agree with serial stepping to the last bit,
// for any worker count — the property that makes the shared-memory
// decomposition trustworthy.
class DynamicsThreads : public testing::TestWithParam<int> {};

TEST_P(DynamicsThreads, BitwiseEqualToSerial) {
  auto make_state = [] {
    DomainState s(test_grid(80.0));
    HollandVortex v{.center = LatLon{14.0, 85.0},
                    .deficit_hpa = 20.0,
                    .r_max_km = 250.0,
                    .b = 1.5};
    v.deposit(s);
    return s;
  };
  SwParams serial_params;
  SwParams parallel_params;
  parallel_params.threads = GetParam();
  SwSolver serial(serial_params);
  SwSolver parallel(parallel_params);

  DomainState a = make_state();
  DomainState b = make_state();
  const double dt = SwSolver::dt_for_resolution_km(80.0);
  for (int k = 0; k < 10; ++k) {
    serial.step(a, dt, SwForcing{});
    parallel.step(b, dt, SwForcing{});
  }
  EXPECT_EQ(a.h, b.h);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
}

// 64 exceeds the interior row count of the test grid: the partition must
// clamp to one row per lane and stay bitwise identical.
INSTANTIATE_TEST_SUITE_P(WorkerCounts, DynamicsThreads,
                         testing::Values(2, 3, 4, 7, 64));

TEST(Dynamics, TwoSolversOnOneThreadDontAliasScratch) {
  // Regression for the old `static thread_local` step scratch: two solvers
  // on one thread, alternating between different grids, must produce the
  // same fields as each solver stepping its state alone.
  auto vortex_state = [](double res_km) {
    DomainState s(test_grid(res_km));
    HollandVortex v{.center = LatLon{14.0, 85.0},
                    .deficit_hpa = 18.0,
                    .r_max_km = 220.0,
                    .b = 1.4};
    v.deposit(s);
    return s;
  };
  DomainState ref_a = vortex_state(80.0);
  DomainState ref_b = vortex_state(100.0);
  DomainState mix_a = vortex_state(80.0);
  DomainState mix_b = vortex_state(100.0);
  const double dt_a = SwSolver::dt_for_resolution_km(80.0);
  const double dt_b = SwSolver::dt_for_resolution_km(100.0);

  SwSolver alone_a, alone_b, inter_a, inter_b;
  for (int k = 0; k < 6; ++k) alone_a.step(ref_a, dt_a, SwForcing{});
  for (int k = 0; k < 6; ++k) alone_b.step(ref_b, dt_b, SwForcing{});
  for (int k = 0; k < 6; ++k) {
    inter_a.step(mix_a, dt_a, SwForcing{});
    inter_b.step(mix_b, dt_b, SwForcing{});
  }
  EXPECT_EQ(ref_a.h, mix_a.h);
  EXPECT_EQ(ref_a.u, mix_a.u);
  EXPECT_EQ(ref_b.h, mix_b.h);
  EXPECT_EQ(ref_b.v, mix_b.v);
}

// ---- Kernel refactor regression ----
//
// The row-kernel rewrite of compute_tendency must be a pure layout
// transformation: same bits as the scalar loop it replaced, for every
// forcing combination and worker count. Digests below were generated from
// the pre-refactor scalar build (plain -O2, no FMA contraction — which
// src/weather/CMakeLists.txt pins off for every build).

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* p, std::size_t n) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t state_digest(const DomainState& s) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a_bytes(h, s.h.data().data(), s.h.size() * sizeof(double));
  h = fnv1a_bytes(h, s.u.data().data(), s.u.size() * sizeof(double));
  h = fnv1a_bytes(h, s.v.data().data(), s.v.size() * sizeof(double));
  return h;
}

// A forcing configuration that exercises every optional term at once:
// steering, mass/u/v tendencies, patchy relaxation, plus the default
// sponge. Fields live as members so SwForcing pointers stay valid.
struct FullForcingFixture {
  explicit FullForcingFixture(const GridSpec& g)
      : q(g.nx(), g.ny(), 0.0),
        fu(g.nx(), g.ny(), 0.0),
        fv(g.nx(), g.ny(), 0.0),
        relax(g.nx(), g.ny(), 0.0) {
    for (std::size_t j = 0; j < g.ny(); ++j) {
      for (std::size_t i = 0; i < g.nx(); ++i) {
        const double x = static_cast<double>(i);
        const double y = static_cast<double>(j);
        q(i, j) = 1e-5 * ((i + j) % 7) - 2e-5;
        fu(i, j) = 1e-6 * (x - y);
        fv(i, j) = -5e-7 * (x + 0.5 * y);
        relax(i, j) = (i % 5 == 0) ? 1.0 / 7200.0 : 0.0;
      }
    }
    forcing.steering_u = 2.5;
    forcing.steering_v = -1.5;
    forcing.mass_tendency = &q;
    forcing.u_tendency = &fu;
    forcing.v_tendency = &fv;
    forcing.relaxation = &relax;
  }
  Field2D q, fu, fv, relax;
  SwForcing forcing;
};

DomainState golden_vortex_state() {
  DomainState s(test_grid(80.0));
  HollandVortex v{.center = LatLon{14.0, 85.0},
                  .deficit_hpa = 20.0,
                  .r_max_km = 250.0,
                  .b = 1.5};
  v.deposit(s);
  return s;
}

constexpr std::uint64_t kGoldenInitial = 0x6ae55865ea0ed769ull;
constexpr std::uint64_t kGoldenForcedStep1 = 0xf2f9451fbe3bbc79ull;
constexpr std::uint64_t kGoldenForcedStep10 = 0xc2be132e2571fba1ull;
constexpr std::uint64_t kGoldenPlainStep10 = 0x9f948b9511f94191ull;

class KernelRegression : public testing::TestWithParam<int> {};

TEST_P(KernelRegression, RowKernelMatchesPreRefactorGoldens) {
  SwParams p;
  p.threads = GetParam();
  SwSolver solver(p);
  DomainState s = golden_vortex_state();
  FullForcingFixture fix(s.grid);
  const double dt = SwSolver::dt_for_resolution_km(80.0);
  EXPECT_EQ(state_digest(s), kGoldenInitial);
  solver.step(s, dt, fix.forcing);
  EXPECT_EQ(state_digest(s), kGoldenForcedStep1);
  for (int k = 2; k <= 10; ++k) solver.step(s, dt, fix.forcing);
  EXPECT_EQ(state_digest(s), kGoldenForcedStep10);

  DomainState plain = golden_vortex_state();
  for (int k = 0; k < 10; ++k) solver.step(plain, dt, SwForcing{});
  EXPECT_EQ(state_digest(plain), kGoldenPlainStep10);
}

TEST_P(KernelRegression, ScalarReferenceMatchesPreRefactorGoldens) {
  SwParams p;
  p.threads = GetParam();
  p.kernel = SwKernel::kScalarReference;
  SwSolver solver(p);
  DomainState s = golden_vortex_state();
  FullForcingFixture fix(s.grid);
  const double dt = SwSolver::dt_for_resolution_km(80.0);
  for (int k = 0; k < 10; ++k) solver.step(s, dt, fix.forcing);
  EXPECT_EQ(state_digest(s), kGoldenForcedStep10);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, KernelRegression,
                         testing::Values(1, 2, 8));

// Live oracle: the two kernels stepped side by side stay bitwise equal on
// a grid narrow enough to hit the banded-sponge fallback path too.
TEST(KernelRegression, RowKernelBitwiseEqualsReferenceOnNarrowGrid) {
  // 6x6 points at 400 km: narrower than 2*sponge_width+2, so the sponge
  // bands would overlap and the row path must take its per-point fallback.
  GridSpec narrow(75.0, 4.0, 20.0, 20.0, 400.0);
  ASSERT_LT(narrow.nx(), 2 * static_cast<std::size_t>(SwParams{}.sponge_width) + 2);

  SwParams row_params;
  SwParams ref_params;
  ref_params.kernel = SwKernel::kScalarReference;
  SwSolver row_solver(row_params);
  SwSolver ref_solver(ref_params);

  auto seed_state = [&] {
    DomainState s(narrow);
    for (std::size_t j = 0; j < narrow.ny(); ++j)
      for (std::size_t i = 0; i < narrow.nx(); ++i) {
        s.h(i, j) = 0.3 * static_cast<double>((i * 7 + j * 3) % 5) - 0.5;
        s.u(i, j) = 0.1 * static_cast<double>(i) - 0.2 * static_cast<double>(j);
        s.v(i, j) = 0.05 * static_cast<double>((i + 2 * j) % 4);
      }
    return s;
  };
  DomainState a = seed_state();
  DomainState b = seed_state();
  FullForcingFixture fix(narrow);
  const double dt = SwSolver::dt_for_resolution_km(400.0);
  for (int k = 0; k < 5; ++k) {
    row_solver.step(a, dt, fix.forcing);
    ref_solver.step(b, dt, fix.forcing);
  }
  EXPECT_EQ(a.h, b.h);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
}

TEST(Dynamics, Validation) {
  EXPECT_THROW(SwSolver(SwParams{.mean_depth = -1.0}), std::invalid_argument);
  SwSolver solver;
  DomainState s(test_grid());
  EXPECT_THROW(solver.step(s, 0.0, SwForcing{}), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
