#include "weather/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

// A mid-ocean test grid: 20x20 degrees at 100 km spacing around the Bay.
GridSpec test_grid(double res_km = 100.0) {
  return GridSpec(75.0, 4.0, 20.0, 20.0, res_km);
}

TEST(Dynamics, RestStateStaysAtRest) {
  SwSolver solver;
  DomainState s(test_grid());
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  for (int k = 0; k < 20; ++k) solver.step(s, dt, SwForcing{});
  EXPECT_NEAR(s.h.min(), 0.0, 1e-12);
  EXPECT_NEAR(s.h.max(), 0.0, 1e-12);
  EXPECT_NEAR(s.u.max(), 0.0, 1e-12);
}

TEST(Dynamics, DtRule) {
  EXPECT_DOUBLE_EQ(SwSolver::dt_for_resolution_km(24.0), 144.0);
  EXPECT_DOUBLE_EQ(SwSolver::dt_for_resolution_km(10.0), 60.0);
}

TEST(Dynamics, GravityWavesPropagateAtSqrtGh) {
  SwSolver solver(SwParams{.diffusion_alpha = 0.0, .sponge_width = 0});
  DomainState s(test_grid());
  const GridSpec& g = s.grid;
  // A small axisymmetric bump in the middle.
  const std::size_t ci = g.nx() / 2;
  const std::size_t cj = g.ny() / 2;
  for (std::size_t j = 0; j < g.ny(); ++j) {
    for (std::size_t i = 0; i < g.nx(); ++i) {
      const double dx = (static_cast<double>(i) - ci) * g.dx_m();
      const double dy = (static_cast<double>(j) - cj) * g.dx_m();
      s.h(i, j) = 1.0 * std::exp(-(dx * dx + dy * dy) / (2 * 3e5 * 3e5));
    }
  }
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  const double t_total = 20 * dt;
  for (int k = 0; k < 20; ++k) solver.step(s, dt, SwForcing{});

  // The wavefront (radius of the strongest ring) should sit near
  // c*t with c = sqrt(g*H) ~ 62.6 m/s.
  const double c = std::sqrt(9.81 * kMeanDepthM);
  const double expected_r = c * t_total;
  // Find the radius of max |h| along the +x axis.
  double best = 0.0;
  double best_r = 0.0;
  for (std::size_t i = ci + 2; i < g.nx(); ++i) {
    const double r = (static_cast<double>(i) - ci) * g.dx_m();
    if (std::fabs(s.h(i, cj)) > best) {
      best = std::fabs(s.h(i, cj));
      best_r = r;
    }
  }
  EXPECT_NEAR(best_r, expected_r, 2.5 * g.dx_m());
}

TEST(Dynamics, BalancedVortexPersists) {
  // A gradient-balanced vortex should survive many steps with little decay
  // of its pressure minimum (inertia-gravity adjustment is small).
  SwSolver solver;
  DomainState s(test_grid(60.0));
  HollandVortex v{.center = LatLon{14.0, 85.0},
                  .deficit_hpa = 15.0,
                  .r_max_km = 180.0,
                  .b = 1.4};
  v.deposit(s);
  const double h0 = s.h.min();
  const double dt = SwSolver::dt_for_resolution_km(60.0);
  for (int k = 0; k < 60; ++k) solver.step(s, dt, SwForcing{});  // ~6 hours
  EXPECT_LT(s.h.min(), 0.45 * h0);  // at most ~55% filled
  EXPECT_TRUE(std::isfinite(s.h.min()));
}

TEST(Dynamics, SteeringAdvectsAnomaly) {
  SwSolver solver;
  DomainState s(test_grid(60.0));
  HollandVortex v{.center = LatLon{12.0, 85.0},
                  .deficit_hpa = 12.0,
                  .r_max_km = 180.0,
                  .b = 1.4};
  v.deposit(s);
  SwForcing f;
  f.steering_v = 5.0;  // due north at 5 m/s
  const double dt = SwSolver::dt_for_resolution_km(60.0);
  const int steps = 100;  // ~10 hours
  for (int k = 0; k < steps; ++k) solver.step(s, dt, f);

  // Eye should have moved north by roughly steering * time (beta drift
  // perturbs it some).
  const GridSpec& g = s.grid;
  double hmin = 1e300;
  std::size_t bi = 0, bj = 0;
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i)
      if (s.h(i, j) < hmin) {
        hmin = s.h(i, j);
        bi = i;
        bj = j;
      }
  const double moved_north_km =
      (g.at(bi, bj).lat - 12.0) * kKmPerDegree;
  const double expected_km = 5.0 * steps * dt / 1000.0;
  EXPECT_NEAR(moved_north_km, expected_km, 160.0);
  (void)bi;
}

TEST(Dynamics, RelaxationDampsWinds) {
  SwSolver solver(SwParams{.sponge_width = 0});
  DomainState s(test_grid());
  s.u.fill(10.0);
  Field2D relax(s.grid.nx(), s.grid.ny(), 1.0 / 3600.0);  // 1-hour decay
  SwForcing f;
  f.relaxation = &relax;
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  double t = 0.0;
  for (int k = 0; k < 30; ++k) {
    solver.step(s, dt, f);
    t += dt;
  }
  // Interior wind decays roughly exponentially.
  const double expected = 10.0 * std::exp(-t / 3600.0);
  EXPECT_NEAR(s.u(s.grid.nx() / 2, s.grid.ny() / 2), expected,
              0.35 * expected);
}

TEST(Dynamics, MassTendencyInjectsMass) {
  // Diffusion off: a single-point injection would otherwise be smeared
  // within the very first step.
  SwSolver solver(SwParams{.diffusion_alpha = 0.0, .sponge_width = 0});
  DomainState s(test_grid());
  Field2D q(s.grid.nx(), s.grid.ny(), 0.0);
  q(s.grid.nx() / 2, s.grid.ny() / 2) = -0.001;  // sink: -1 mm/s
  SwForcing f;
  f.mass_tendency = &q;
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  solver.step(s, dt, f);
  // RK3 couples the injected anomaly back through the dynamics within the
  // step, so the result is first-order close to q*dt, not exact.
  EXPECT_NEAR(s.h(s.grid.nx() / 2, s.grid.ny() / 2), -0.001 * dt,
              0.03 * 0.001 * dt);  // ~2% is intra-step gravity-wave adjustment
}

TEST(Dynamics, StableOverLongIntegration) {
  // CFL soak: a strong vortex, 48 simulated hours, no NaN/blowup.
  SwSolver solver;
  DomainState s(test_grid(100.0));
  HollandVortex v{.center = LatLon{14.0, 85.0},
                  .deficit_hpa = 30.0,
                  .r_max_km = 250.0,
                  .b = 1.5};
  v.deposit(s);
  const double dt = SwSolver::dt_for_resolution_km(100.0);
  const int steps = static_cast<int>(48.0 * 3600.0 / dt);
  for (int k = 0; k < steps; ++k) solver.step(s, dt, SwForcing{});
  EXPECT_TRUE(std::isfinite(s.h.min()));
  EXPECT_TRUE(std::isfinite(s.u.max()));
  EXPECT_LT(std::fabs(s.h.min()), 500.0);
  EXPECT_LT(s.wind_speed().max(), 150.0);
}

// Row-decomposed stepping must agree with serial stepping to the last bit,
// for any worker count — the property that makes the shared-memory
// decomposition trustworthy.
class DynamicsThreads : public testing::TestWithParam<int> {};

TEST_P(DynamicsThreads, BitwiseEqualToSerial) {
  auto make_state = [] {
    DomainState s(test_grid(80.0));
    HollandVortex v{.center = LatLon{14.0, 85.0},
                    .deficit_hpa = 20.0,
                    .r_max_km = 250.0,
                    .b = 1.5};
    v.deposit(s);
    return s;
  };
  SwParams serial_params;
  SwParams parallel_params;
  parallel_params.threads = GetParam();
  SwSolver serial(serial_params);
  SwSolver parallel(parallel_params);

  DomainState a = make_state();
  DomainState b = make_state();
  const double dt = SwSolver::dt_for_resolution_km(80.0);
  for (int k = 0; k < 10; ++k) {
    serial.step(a, dt, SwForcing{});
    parallel.step(b, dt, SwForcing{});
  }
  EXPECT_EQ(a.h, b.h);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
}

// 64 exceeds the interior row count of the test grid: the partition must
// clamp to one row per lane and stay bitwise identical.
INSTANTIATE_TEST_SUITE_P(WorkerCounts, DynamicsThreads,
                         testing::Values(2, 3, 4, 7, 64));

TEST(Dynamics, TwoSolversOnOneThreadDontAliasScratch) {
  // Regression for the old `static thread_local` step scratch: two solvers
  // on one thread, alternating between different grids, must produce the
  // same fields as each solver stepping its state alone.
  auto vortex_state = [](double res_km) {
    DomainState s(test_grid(res_km));
    HollandVortex v{.center = LatLon{14.0, 85.0},
                    .deficit_hpa = 18.0,
                    .r_max_km = 220.0,
                    .b = 1.4};
    v.deposit(s);
    return s;
  };
  DomainState ref_a = vortex_state(80.0);
  DomainState ref_b = vortex_state(100.0);
  DomainState mix_a = vortex_state(80.0);
  DomainState mix_b = vortex_state(100.0);
  const double dt_a = SwSolver::dt_for_resolution_km(80.0);
  const double dt_b = SwSolver::dt_for_resolution_km(100.0);

  SwSolver alone_a, alone_b, inter_a, inter_b;
  for (int k = 0; k < 6; ++k) alone_a.step(ref_a, dt_a, SwForcing{});
  for (int k = 0; k < 6; ++k) alone_b.step(ref_b, dt_b, SwForcing{});
  for (int k = 0; k < 6; ++k) {
    inter_a.step(mix_a, dt_a, SwForcing{});
    inter_b.step(mix_b, dt_b, SwForcing{});
  }
  EXPECT_EQ(ref_a.h, mix_a.h);
  EXPECT_EQ(ref_a.u, mix_a.u);
  EXPECT_EQ(ref_b.h, mix_b.h);
  EXPECT_EQ(ref_b.v, mix_b.v);
}

TEST(Dynamics, Validation) {
  EXPECT_THROW(SwSolver(SwParams{.mean_depth = -1.0}), std::invalid_argument);
  SwSolver solver;
  DomainState s(test_grid());
  EXPECT_THROW(solver.step(s, 0.0, SwForcing{}), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
