#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>

namespace adaptviz {
namespace {

IniDocument minimal() {
  return IniDocument::parse(
      "[experiment]\n"
      "name = t\n"
      "algorithm = optimization\n"
      "[site]\n"
      "preset = intra-country\n");
}

TEST(Scenario, PresetAndDefaults) {
  const ExperimentConfig cfg = scenario_from_ini(minimal());
  EXPECT_EQ(cfg.name, "t");
  EXPECT_EQ(cfg.algorithm, AlgorithmKind::kOptimization);
  EXPECT_EQ(cfg.site.machine.name, "gg-blr");
  EXPECT_DOUBLE_EQ(cfg.sim_window.as_hours(), 60.0);  // default window
}

TEST(Scenario, OverridesApply) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[experiment]\n"
      "name = custom\n"
      "algorithm = greedy-threshold\n"
      "sim_window_hours = 12\n"
      "max_wall_hours = 20\n"
      "decision_period_hours = 0.5\n"
      "compute_scale = 12\n"
      "seed = 99\n"
      "vis_workers = 3\n"
      "[site]\n"
      "preset = cross-continent\n"
      "max_cores = 40\n"
      "disk_gb = 64\n"
      "wan_mbps = 1.5\n"
      "wan_efficiency = 0.5\n"
      "io_mbps = 80\n"
      "[bounds]\n"
      "min_output_interval_min = 5\n"
      "max_output_interval_min = 30\n"
      "[model]\n"
      "base_resolution_km = 30\n"
      "nest_extent_deg = 12\n"));
  EXPECT_EQ(cfg.algorithm, AlgorithmKind::kGreedyThreshold);
  EXPECT_DOUBLE_EQ(cfg.sim_window.as_hours(), 12.0);
  EXPECT_DOUBLE_EQ(cfg.max_wall.as_hours(), 20.0);
  EXPECT_DOUBLE_EQ(cfg.decision_period.as_hours(), 0.5);
  EXPECT_DOUBLE_EQ(cfg.model.compute_scale, 12.0);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.vis_workers, 3);
  EXPECT_EQ(cfg.site.machine.max_cores, 40);
  EXPECT_EQ(cfg.site.disk_capacity, Bytes::gigabytes(64));
  EXPECT_DOUBLE_EQ(cfg.site.wan_nominal.megabits_per_sec(), 1.5);
  EXPECT_DOUBLE_EQ(cfg.site.wan_efficiency, 0.5);
  EXPECT_DOUBLE_EQ(cfg.bounds.min_output_interval.as_minutes(), 5.0);
  EXPECT_DOUBLE_EQ(cfg.bounds.max_output_interval.as_minutes(), 30.0);
  EXPECT_DOUBLE_EQ(cfg.model.base_resolution_km, 30.0);
  EXPECT_DOUBLE_EQ(cfg.model.nest_extent_deg, 12.0);
}

TEST(Scenario, DomainAndFilesKeys) {
  const std::string dir = testing::TempDir();
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[site]\npreset = inter-department\n"
      "[model]\nlon0 = 50\nlat0 = -20\nextent_lon_deg = 80\n"
      "extent_lat_deg = 70\nbase_resolution_km = 36\n"
      "[files]\nconfig_file = " + dir + "/app.ini\n"
      "checkpoint_dir = " + dir + "\n"));
  EXPECT_DOUBLE_EQ(cfg.model.lon0, 50.0);
  EXPECT_DOUBLE_EQ(cfg.model.lat0, -20.0);
  EXPECT_DOUBLE_EQ(cfg.model.extent_lon_deg, 80.0);
  EXPECT_DOUBLE_EQ(cfg.model.extent_lat_deg, 70.0);
  EXPECT_DOUBLE_EQ(cfg.model.base_resolution_km, 36.0);
  EXPECT_EQ(cfg.manager.config_file_path, dir + "/app.ini");
  EXPECT_EQ(cfg.job.checkpoint_dir, dir);
}

TEST(Scenario, OutageWindows) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[site]\npreset = intra-country\n"
      "[outages]\nwindows = 6-10, 14-16.5\n"));
  ASSERT_EQ(cfg.wan_outages.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.wan_outages[0].start.as_hours(), 6.0);
  EXPECT_DOUBLE_EQ(cfg.wan_outages[0].end.as_hours(), 10.0);
  EXPECT_DOUBLE_EQ(cfg.wan_outages[1].end.as_hours(), 16.5);
}

TEST(Scenario, FaultsSection) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[faults]\n"
      "transfer_failure_rate = 0.15\n"
      "retry_initial_seconds = 3\n"
      "retry_multiplier = 1.5\n"
      "retry_cap_seconds = 120\n"
      "retry_jitter = 0.1\n"
      "degrade_after = 4\n"));
  EXPECT_DOUBLE_EQ(cfg.faults.transfer_failure_rate, 0.15);
  EXPECT_DOUBLE_EQ(cfg.faults.retry.initial_backoff.seconds(), 3.0);
  EXPECT_DOUBLE_EQ(cfg.faults.retry.multiplier, 1.5);
  EXPECT_DOUBLE_EQ(cfg.faults.retry.max_backoff.seconds(), 120.0);
  EXPECT_DOUBLE_EQ(cfg.faults.retry.jitter, 0.1);
  EXPECT_EQ(cfg.faults.retry.degrade_after, 4);
}

TEST(Scenario, FaultsDefaultToFailureFree) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(""));
  EXPECT_DOUBLE_EQ(cfg.faults.transfer_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(cfg.faults.retry.multiplier, 2.0);
  EXPECT_EQ(cfg.faults.retry.degrade_after, 5);
}

TEST(Scenario, CodecSectionParsesAndDefaultsOff) {
  EXPECT_FALSE(scenario_from_ini(minimal()).codec.enabled);

  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[codec]\n"
      "enabled = true\n"
      "precision = float64\n"
      "verify_roundtrip = false\n"));
  EXPECT_TRUE(cfg.codec.enabled);
  EXPECT_EQ(cfg.codec.precision, CodecPrecision::kFloat64);
  EXPECT_FALSE(cfg.codec.verify_roundtrip);

  // A bare [codec] section turns the codec on with the safe defaults.
  const ExperimentConfig bare =
      scenario_from_ini(IniDocument::parse("[codec]\nenabled = true\n"));
  EXPECT_TRUE(bare.codec.enabled);
  EXPECT_EQ(bare.codec.precision, CodecPrecision::kFloat32);
  EXPECT_TRUE(bare.codec.verify_roundtrip);

  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[codec]\nprecision = float16\n")),
               std::runtime_error);
}

TEST(Scenario, MaxSeriesPoints) {
  EXPECT_EQ(scenario_from_ini(minimal()).max_series_points, 0u);
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[experiment]\nmax_series_points = 500\n"));
  EXPECT_EQ(cfg.max_series_points, 500u);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[experiment]\nmax_series_points = -1\n")),
               std::runtime_error);
}

TEST(Scenario, Validation) {
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[site]\npreset = mars-base\n")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[experiment]\nalgorithm = magic\n")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[experiment]\ncompute_scale = 0.1\n")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[outages]\nwindows = 6..8\n")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[faults]\ntransfer_failure_rate = 1.2\n")),
               std::runtime_error);
  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[faults]\ntransfer_failure_rate = -0.1\n")),
               std::runtime_error);
}

TEST(ScenarioServe, SectionParsesIntoSessionOptions) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[serve]\n"
      "viewers = 4\n"
      "viewer_downlink_mbps = 250\n"
      "catchup_fraction = 0.5\n"
      "catchup_start_hours = 1\n"
      "catchup_join_wall_hours = 2\n"
      "cache_gb = 2\n"
      "cache_frames = 64\n"
      "cache_policy = stride-thin\n"
      "rerender_workers = 3\n"
      "rerender_fixed_seconds = 1.5\n"
      "rerender_seconds_per_gb = 4\n"));
  ASSERT_EQ(cfg.serve.viewers.size(), 4u);
  EXPECT_TRUE(cfg.serve.enabled());
  // round(0.5 * 4) = 2 catch-up viewers, then live tails.
  EXPECT_EQ(cfg.serve.viewers[0].mode, ViewerMode::kCatchUp);
  EXPECT_EQ(cfg.serve.viewers[1].mode, ViewerMode::kCatchUp);
  EXPECT_EQ(cfg.serve.viewers[2].mode, ViewerMode::kLiveTail);
  EXPECT_DOUBLE_EQ(
      cfg.serve.viewers[0].downlink.nominal.megabits_per_sec(), 250.0);
  EXPECT_DOUBLE_EQ(cfg.serve.viewers[0].catchup_start.as_hours(), 1.0);
  EXPECT_EQ(cfg.serve.session.cache.capacity, Bytes::gigabytes(2.0));
  EXPECT_EQ(cfg.serve.session.cache.max_frames, 64u);
  EXPECT_EQ(cfg.serve.session.cache.policy, EvictionPolicy::kStrideThinning);
  EXPECT_EQ(cfg.serve.session.rerender_workers, 3);
  EXPECT_DOUBLE_EQ(cfg.serve.session.rerender_fixed_seconds, 1.5);
  EXPECT_DOUBLE_EQ(cfg.serve.session.rerender_seconds_per_gb, 4.0);

  // No [serve] section: the subsystem stays off, like the seed.
  EXPECT_FALSE(scenario_from_ini(minimal()).serve.enabled());
}

TEST(ScenarioServe, RejectsNonsensicalValues) {
  // Each entry is a config the author plainly mistyped; all must be
  // rejected at parse time instead of silently clamped.
  const char* bad[] = {
      "[serve]\nviewers = -1\n",
      "[serve]\nviewer_downlink_mbps = 0\n",
      "[serve]\nviewer_downlink_mbps = -10\n",
      "[serve]\ncatchup_fraction = 1.5\n",
      "[serve]\ncatchup_fraction = -0.1\n",
      "[serve]\ncatchup_start_hours = -1\n",
      "[serve]\ncatchup_join_wall_hours = -2\n",
      "[serve]\ncache_gb = 0\n",
      "[serve]\ncache_frames = -3\n",
      "[serve]\ncache_policy = banana\n",
      "[serve]\nrerender_workers = 0\n",
      "[serve]\nrerender_fixed_seconds = -1\n",
      "[serve]\nrerender_seconds_per_gb = -0.5\n",
  };
  for (const char* ini : bad) {
    EXPECT_THROW(scenario_from_ini(IniDocument::parse(ini)),
                 std::runtime_error)
        << ini;
  }
}

TEST(ScenarioTree, SectionParsesWithPerTierLists) {
  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[tree]\n"
      "fan_out = 2, 8\n"
      "viewers_per_leaf = 500\n"
      "uplink_mbps = 1000, 200\n"
      "uplink_latency_ms = 40, 5\n"
      "uplink_efficiency = 0.9\n"   // scalar broadcasts to both tiers
      "cache_gb = 8, 2\n"
      "cache_frames = 0, 32\n"
      "codec_ratio = 4\n"
      "failure_rate = 0.1, 0\n"
      "cache_policy = stride-thin\n"
      "retry_initial_seconds = 5\n"
      "retry_multiplier = 2\n"
      "retry_cap_seconds = 120\n"
      "retry_jitter = 0.2\n"
      "degrade_after = 3\n"
      "join_stagger_seconds = 7\n"));
  const TreeSpec& tree = cfg.serve.tree;
  EXPECT_TRUE(tree.enabled());
  ASSERT_EQ(tree.tiers.size(), 2u);
  EXPECT_EQ(tree.tiers[0].fan_out, 2);
  EXPECT_EQ(tree.tiers[1].fan_out, 8);
  EXPECT_DOUBLE_EQ(tree.tiers[0].uplink.nominal.megabits_per_sec(), 1000.0);
  EXPECT_DOUBLE_EQ(tree.tiers[1].uplink.nominal.megabits_per_sec(), 200.0);
  EXPECT_DOUBLE_EQ(tree.tiers[0].uplink.latency.seconds(), 0.040);
  EXPECT_DOUBLE_EQ(tree.tiers[1].uplink.latency.seconds(), 0.005);
  EXPECT_DOUBLE_EQ(tree.tiers[0].uplink.efficiency, 0.9);
  EXPECT_DOUBLE_EQ(tree.tiers[1].uplink.efficiency, 0.9);
  EXPECT_DOUBLE_EQ(tree.tiers[0].uplink.failure_probability, 0.1);
  EXPECT_DOUBLE_EQ(tree.tiers[1].uplink.failure_probability, 0.0);
  EXPECT_EQ(tree.tiers[0].cache.capacity, Bytes::gigabytes(8.0));
  EXPECT_EQ(tree.tiers[1].cache.capacity, Bytes::gigabytes(2.0));
  EXPECT_EQ(tree.tiers[0].cache.max_frames, 0u);
  EXPECT_EQ(tree.tiers[1].cache.max_frames, 32u);
  EXPECT_EQ(tree.tiers[0].cache.policy, EvictionPolicy::kStrideThinning);
  EXPECT_DOUBLE_EQ(tree.tiers[0].codec_ratio, 4.0);
  EXPECT_DOUBLE_EQ(tree.tiers[1].codec_ratio, 4.0);
  EXPECT_EQ(tree.viewers_per_leaf, 500);
  EXPECT_DOUBLE_EQ(tree.retry.initial_backoff.seconds(), 5.0);
  EXPECT_DOUBLE_EQ(tree.retry.multiplier, 2.0);
  EXPECT_DOUBLE_EQ(tree.retry.max_backoff.seconds(), 120.0);
  EXPECT_DOUBLE_EQ(tree.retry.jitter, 0.2);
  EXPECT_EQ(tree.retry.degrade_after, 3);
  EXPECT_DOUBLE_EQ(tree.leaf_join_stagger.seconds(), 7.0);

  // No [tree] section: disabled spec, not an error.
  EXPECT_FALSE(scenario_from_ini(minimal()).serve.tree.enabled());
}

TEST(ScenarioTree, RejectsNonsensicalValues) {
  const char* bad[] = {
      "[tree]\n",                                 // fan_out is required
      "[tree]\nfan_out = 0\n",
      "[tree]\nfan_out = 2.5\n",
      "[tree]\nfan_out = -4\n",
      "[tree]\nfan_out = 2\nuplink_mbps = 1, 2, 3\n",  // length mismatch
      "[tree]\nfan_out = 2\nuplink_mbps = 0\n",
      "[tree]\nfan_out = 2\nuplink_latency_ms = -1\n",
      "[tree]\nfan_out = 2\nuplink_efficiency = 1.5\n",
      "[tree]\nfan_out = 2\nuplink_efficiency = 0\n",
      "[tree]\nfan_out = 2\ncache_gb = 0\n",
      "[tree]\nfan_out = 2\ncache_frames = -1\n",
      "[tree]\nfan_out = 2\ncodec_ratio = 0.5\n",
      "[tree]\nfan_out = 2\nfailure_rate = 1.5\n",
      "[tree]\nfan_out = 2\nfailure_rate = -0.1\n",
      "[tree]\nfan_out = 2\ncache_policy = mru\n",
      "[tree]\nfan_out = 2\nviewers_per_leaf = 0\n",
      "[tree]\nfan_out = 2\nretry_initial_seconds = 0\n",
      "[tree]\nfan_out = 2\nretry_multiplier = 0.5\n",
      "[tree]\nfan_out = 2\nretry_initial_seconds = 60\n"
      "retry_cap_seconds = 5\n",                  // cap below initial
      "[tree]\nfan_out = 2\nretry_jitter = 1\n",
      "[tree]\nfan_out = 2\ndegrade_after = 0\n",
      "[tree]\nfan_out = 2\njoin_stagger_seconds = -1\n",
  };
  for (const char* ini : bad) {
    EXPECT_THROW(scenario_from_ini(IniDocument::parse(ini)),
                 std::runtime_error)
        << ini;
  }
}

TEST(Scenario, ShippedScenarioFilesParse) {
  // The scenarios/ directory must stay loadable.
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(__FILE__).parent_path().parent_path() /
                       "scenarios";
  ASSERT_TRUE(fs::exists(dir));
  int count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    EXPECT_NO_THROW((void)load_scenario(entry.path().string()))
        << entry.path();
    ++count;
  }
  EXPECT_GE(count, 3);
}

TEST(Scenario, WriteResultProducesArtifacts) {
  ExperimentConfig cfg = scenario_from_ini(minimal());
  cfg.name = "unit";
  cfg.sim_window = SimSeconds::hours(4.0);
  cfg.max_wall = WallSeconds::hours(10.0);
  cfg.model.compute_scale = 12.0;
  const ExperimentResult result = run_experiment(cfg);

  const std::string dir = testing::TempDir() + "/adaptviz_scenario_out";
  write_result(result, dir);
  for (const char* suffix :
       {"_samples.csv", "_visualization.csv", "_decisions.csv",
        "_track.csv", "_summary.ini"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/unit" + suffix)) << suffix;
  }
  const IniDocument summary = IniDocument::load(dir + "/unit_summary.ini");
  EXPECT_EQ(summary.get_bool("summary", "completed"), true);
  std::filesystem::remove_all(dir);
}

TEST(ScenarioOutage, FrameworkRidesThroughBlackout) {
  // An outage long enough to back frames up at the simulation site: the
  // run must survive it and still drain afterwards.
  ExperimentConfig cfg = scenario_from_ini(minimal());
  cfg.name = "outage";
  cfg.sim_window = SimSeconds::hours(20.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.model.compute_scale = 12.0;
  cfg.wan_outages = {{WallSeconds::hours(1.0), WallSeconds::hours(4.0)}};
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  // No frame was visualized during the blackout.
  for (const VisRecord& v : r.vis_records) {
    EXPECT_FALSE(v.wall_time.as_hours() > 1.05 &&
                 v.wall_time.as_hours() < 4.0)
        << "frame arrived during outage at " << v.wall_time.as_hours();
  }
  // Everything written eventually reached the scientist.
  EXPECT_EQ(r.summary.frames_visualized, r.summary.frames_written);
}

TEST(ScenarioFaults, FrameworkDeliversEverythingOverFlakyWan) {
  // Transfer failures + retries end to end: every frame written is still
  // visualized exactly once and the run completes.
  ExperimentConfig cfg = scenario_from_ini(minimal());
  cfg.name = "flaky";
  cfg.sim_window = SimSeconds::hours(12.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.model.compute_scale = 12.0;
  cfg.faults.transfer_failure_rate = 0.25;
  cfg.faults.retry.initial_backoff = WallSeconds(5.0);
  cfg.faults.retry.max_backoff = WallSeconds(120.0);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  EXPECT_GT(r.summary.transfer_failures, 0);
  EXPECT_EQ(r.summary.transfer_retries, r.summary.transfer_failures);
  EXPECT_EQ(r.summary.frames_visualized, r.summary.frames_written);
  EXPECT_EQ(r.summary.frames_sent, r.summary.frames_written);
  // Exactly-once: the visualization sequence numbers never repeat.
  std::set<std::int64_t> seen;
  for (const VisRecord& v : r.vis_records) {
    EXPECT_TRUE(seen.insert(v.sequence).second)
        << "frame " << v.sequence << " delivered twice";
  }
}

TEST(ScenarioObs, DefaultsOffAndSectionEnables) {
  EXPECT_FALSE(scenario_from_ini(minimal()).observability);

  const ExperimentConfig cfg = scenario_from_ini(IniDocument::parse(
      "[experiment]\nname = t\n[site]\npreset = intra-country\n"
      "[obs]\nenabled = true\ntrace_capacity = 1024\n"));
  EXPECT_TRUE(cfg.observability);
  EXPECT_EQ(cfg.obs.trace_capacity, 1024u);

  // A bare [obs] section means "on" with defaults.
  EXPECT_TRUE(scenario_from_ini(
                  IniDocument::parse("[experiment]\nname = t\n[site]\n"
                                     "preset = intra-country\n[obs]\n"))
                  .observability);

  EXPECT_THROW(scenario_from_ini(IniDocument::parse(
                   "[experiment]\nname = t\n[site]\npreset = intra-country\n"
                   "[obs]\ntrace_capacity = 0\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace adaptviz
