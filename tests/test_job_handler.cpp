#include "core/job_handler.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace adaptviz {
namespace {

struct Rig {
  EventQueue queue;
  GroundTruthMachine machine{MachineSpec{.name = "t",
                                         .max_cores = 64,
                                         .min_cores = 4,
                                         .serial_seconds = 1.0,
                                         .work_seconds = 30000.0,
                                         .comm_seconds = 0.0,
                                         .noise_sigma = 0.0},
                             1};
  DiskModel disk{Bytes::gigabytes(100), Bandwidth::megabytes_per_second(500)};
  NetworkLink link{LinkSpec{.nominal = Bandwidth::megabytes_per_second(5),
                            .latency = WallSeconds(0.0)},
                   2};
  FrameCatalog catalog;
  BandwidthEstimator estimator{0.3};
  ApplicationConfiguration config;

  std::unique_ptr<FrameSender> sender;
  std::unique_ptr<SimulationProcess> process;
  std::unique_ptr<JobHandler> handler;

  explicit Rig(SimSeconds end = SimSeconds::hours(48.0)) {
    config.processors = 64;
    config.output_interval = SimSeconds::minutes(12.0);
    sender = std::make_unique<FrameSender>(queue, link, catalog, disk,
                                           estimator, [](const Frame&) {});
    SimulationProcess::Options opts;
    opts.end_time = end;
    SimulationProcess::Callbacks cbs;
    cbs.on_resolution_signal = [this](double r) {
      handler->on_resolution_signal(r);
    };
    process = std::make_unique<SimulationProcess>(
        queue, machine, disk, catalog, *sender, config, opts, std::move(cbs));
    ModelConfig mcfg;
    mcfg.compute_scale = 12.0;
    JobHandler::Options jopts;
    jopts.restart_overhead = WallSeconds(90.0);
    handler = std::make_unique<JobHandler>(queue, *process, config, disk,
                                           mcfg, ResolutionLadder::table3(),
                                           jopts);
  }
};

TEST(JobHandler, LaunchStartsSimulation) {
  Rig rig;
  rig.handler->launch_initial();
  EXPECT_TRUE(rig.process->running());
  EXPECT_DOUBLE_EQ(rig.config.resolution_km, 24.0);
  rig.queue.run_until(WallSeconds::minutes(5.0));
  EXPECT_GT(rig.process->steps_executed(), 0);
}

TEST(JobHandler, NotificationsBeforeLaunchIgnored) {
  Rig rig;
  rig.config.processors = 16;
  ++rig.config.version;
  rig.handler->on_configuration_changed();  // must not crash or restart
  rig.handler->on_resolution_signal(21.0);
  EXPECT_EQ(rig.handler->restarts(), 0);
  EXPECT_FALSE(rig.handler->restart_in_progress());
}

TEST(JobHandler, RestartsOnProcessorChange) {
  Rig rig;
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(10.0));
  const auto t0 = rig.process->sim_time();

  rig.config.processors = 16;
  ++rig.config.version;
  rig.handler->on_configuration_changed();
  EXPECT_TRUE(rig.handler->restart_in_progress());
  rig.queue.run_until(WallSeconds::minutes(30.0));
  EXPECT_EQ(rig.handler->restarts(), 1);
  EXPECT_FALSE(rig.handler->restart_in_progress());
  EXPECT_TRUE(rig.process->running());
  // Simulation continued from the checkpoint, not from zero.
  EXPECT_GE(rig.process->sim_time().seconds(), t0.seconds());
}

TEST(JobHandler, RestartChargesOverhead) {
  Rig rig;
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(10.0));
  const double t_request = rig.queue.now().seconds();
  rig.config.processors = 8;
  ++rig.config.version;
  rig.handler->on_configuration_changed();
  // Drain until the restart lands.
  while (rig.handler->restart_in_progress() && rig.queue.step()) {
  }
  // At least the fixed overhead passed (plus checkpoint I/O and the step in
  // flight).
  EXPECT_GE(rig.queue.now().seconds(), t_request + 90.0);
}

TEST(JobHandler, CriticalOnlyChangeDoesNotRestart) {
  Rig rig;
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(5.0));
  rig.config.critical = true;
  ++rig.config.version;
  rig.handler->on_configuration_changed();
  EXPECT_FALSE(rig.handler->restart_in_progress());
  EXPECT_EQ(rig.handler->restarts(), 0);
  rig.queue.run_until(WallSeconds::minutes(20.0));
  EXPECT_TRUE(rig.process->stalled());  // the flag took effect in place
}

TEST(JobHandler, ResolutionSignalUpdatesConfigAndRestarts) {
  Rig rig;
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(10.0));
  const long v0 = rig.config.version;
  rig.handler->on_resolution_signal(21.0);
  EXPECT_DOUBLE_EQ(rig.config.resolution_km, 21.0);
  EXPECT_GT(rig.config.version, v0);
  rig.queue.run_until(WallSeconds::hours(1.0));
  EXPECT_EQ(rig.handler->restarts(), 1);
  // The relaunched model runs at the new modeled resolution.
  ASSERT_NE(rig.process->model(), nullptr);
  EXPECT_DOUBLE_EQ(rig.process->model()->modeled_resolution_km(), 21.0);
}

TEST(JobHandler, IgnoresSignalsWhileRestarting) {
  Rig rig;
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(10.0));
  rig.handler->on_resolution_signal(21.0);
  ASSERT_TRUE(rig.handler->restart_in_progress());
  rig.handler->on_resolution_signal(18.0);  // swallowed
  rig.handler->on_configuration_changed();  // swallowed
  rig.queue.run_until(WallSeconds::hours(1.0));
  EXPECT_EQ(rig.handler->restarts(), 1);
  EXPECT_DOUBLE_EQ(rig.config.resolution_km, 21.0);
}

TEST(JobHandler, FileBasedCheckpointRoundTrip) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "/adaptviz_ckpt_test";
  fs::create_directories(dir);

  Rig rig;
  // Rebuild the handler with a checkpoint directory.
  JobHandler::Options jopts;
  jopts.restart_overhead = WallSeconds(30.0);
  jopts.checkpoint_dir = dir;
  ModelConfig mcfg;
  mcfg.compute_scale = 12.0;
  rig.handler = std::make_unique<JobHandler>(rig.queue, *rig.process,
                                             rig.config, rig.disk, mcfg,
                                             ResolutionLadder::table3(),
                                             jopts);
  rig.handler->launch_initial();
  rig.queue.run_until(WallSeconds::minutes(10.0));
  const SimSeconds t0 = rig.process->sim_time();

  rig.config.processors = 16;
  ++rig.config.version;
  rig.handler->on_configuration_changed();
  rig.queue.run_until(WallSeconds::minutes(40.0));

  EXPECT_EQ(rig.handler->restarts(), 1);
  EXPECT_TRUE(fs::exists(dir + "/checkpoint_0.ncl"));
  // The restored run continued from the file, not from scratch.
  EXPECT_GE(rig.process->sim_time().seconds(), t0.seconds());
  // The persisted checkpoint is a valid, loadable NCL file.
  const NclFile ckpt = NclFile::load(dir + "/checkpoint_0.ncl");
  EXPECT_TRUE(ckpt.has_variable("parent_h"));
  fs::remove_all(dir);
}

TEST(JobHandler, FullLadderThroughRealSignals) {
  // End-to-end: let the storm deepen and verify the handler walks the
  // resolution ladder via real model signals.
  Rig rig(SimSeconds::hours(24.0));
  rig.handler->launch_initial();
  rig.sender->start();
  rig.queue.run_until(WallSeconds::hours(10.0));
  EXPECT_GE(rig.handler->restarts(), 1);
  ASSERT_NE(rig.process->model(), nullptr);
  EXPECT_LT(rig.process->model()->modeled_resolution_km(), 24.0);
}

}  // namespace
}  // namespace adaptviz
