// Computational steering: channel semantics, the unified control plane
// (event codec, record/replay determinism) and end-to-end behaviour
// through the full framework.
#include "steering/steering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "core/telemetry.hpp"
#include "steering/control_plane.hpp"
#include "util/calendar.hpp"
#include "util/csv.hpp"

namespace adaptviz {
namespace {

// Golden tests for the deprecated SteeringChannel shim — the only in-tree
// users of send()/send_after(). New code speaks ControlPlane directly.
TEST(SteeringChannel, DeliversAfterLatencyInOrder) {
  EventQueue queue;
  std::vector<std::pair<double, SteeringCommand::Kind>> got;
  SteeringChannel ch(queue, WallSeconds(2.0), [&](const SteeringCommand& c) {
    got.push_back({queue.now().seconds(), c.kind});
  });
  ch.send(SteeringCommand{.kind = SteeringCommand::Kind::kPause});
  queue.run_until(WallSeconds(1.0));
  ch.send(SteeringCommand{.kind = SteeringCommand::Kind::kResume});
  queue.run_until(WallSeconds(10.0));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].first, 2.0);
  EXPECT_EQ(got[0].second, SteeringCommand::Kind::kPause);
  EXPECT_DOUBLE_EQ(got[1].first, 3.0);
  EXPECT_EQ(got[1].second, SteeringCommand::Kind::kResume);
  EXPECT_EQ(ch.commands_sent(), 2);
  EXPECT_EQ(ch.commands_delivered(), 2);
}

TEST(SteeringChannel, Validation) {
  EventQueue queue;
  EXPECT_THROW(SteeringChannel(queue, WallSeconds(1.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(SteeringChannel(queue, WallSeconds(-1.0),
                               [](const SteeringCommand&) {}),
               std::invalid_argument);
}

// Malformed commands are rejected at send() time — they never reach the
// channel, the log, or the decision algorithms.
TEST(SteeringChannel, MalformedCommandsRejectedAtSendTime) {
  EventQueue queue;
  int delivered = 0;
  SteeringChannel ch(queue, WallSeconds(1.0),
                     [&delivered](const SteeringCommand&) { ++delivered; });

  SteeringCommand inverted;
  inverted.kind = SteeringCommand::Kind::kSetOutputBounds;
  inverted.bounds.min_output_interval = SimSeconds::minutes(25.0);
  inverted.bounds.max_output_interval = SimSeconds::minutes(3.0);
  EXPECT_THROW(ch.send(inverted), std::invalid_argument);

  SteeringCommand nonpositive;
  nonpositive.kind = SteeringCommand::Kind::kSetOutputBounds;
  nonpositive.bounds.min_output_interval = SimSeconds(0.0);
  nonpositive.bounds.max_output_interval = SimSeconds::minutes(3.0);
  EXPECT_THROW(ch.send(nonpositive), std::invalid_argument);

  SteeringCommand floor;
  floor.kind = SteeringCommand::Kind::kSetResolutionFloor;
  floor.resolution_floor_km = -1.0;
  EXPECT_THROW(ch.send(floor), std::invalid_argument);

  SteeringCommand extent;
  extent.kind = SteeringCommand::Kind::kSetNestExtent;
  extent.nest_extent_deg = -9.0;
  EXPECT_THROW(ch.send(extent), std::invalid_argument);

  SteeringCommand pause;
  pause.kind = SteeringCommand::Kind::kPause;
  pause.auto_resume_after = WallSeconds(-5.0);
  EXPECT_THROW(ch.send(pause), std::invalid_argument);

  EXPECT_THROW(
      ch.send_after(WallSeconds(-1.0),
                    SteeringCommand{.kind = SteeringCommand::Kind::kResume}),
      std::invalid_argument);

  // Nothing was queued by the rejected sends.
  queue.run_all();
  EXPECT_EQ(ch.commands_sent(), 0);
  EXPECT_EQ(delivered, 0);
}

// --- Control-plane event stream: validation and the JSONL codec ---

TEST(ControlPlaneEvents, PayloadValidationMatchesType) {
  SteeringEvent e;
  e.wall = WallSeconds(-1.0);
  EXPECT_THROW(validate(e), std::invalid_argument);
  e.wall = WallSeconds(0.0);
  EXPECT_NO_THROW(validate(e));  // default pause command is fine

  SteeringEvent view;
  view.type = SteeringEvent::Type::kView;
  view.view.zoom = 0.0;
  EXPECT_THROW(validate(view), std::invalid_argument);
  view.view.zoom = 2.0;
  view.view.center_lat = 91.0;
  EXPECT_THROW(validate(view), std::invalid_argument);
  view.view.center_lat = 21.0;
  view.view.center_lon = -181.0;
  EXPECT_THROW(validate(view), std::invalid_argument);
  view.view.center_lon = 89.0;
  view.view.field.clear();
  EXPECT_THROW(validate(view), std::invalid_argument);
  view.view.field = "pressure";
  EXPECT_NO_THROW(validate(view));

  SteeringEvent proposal;
  proposal.type = SteeringEvent::Type::kProposal;
  proposal.proposal.resolution_floor_km = -3.0;
  EXPECT_THROW(validate(proposal), std::invalid_argument);
  proposal.proposal.resolution_floor_km = 12.0;
  proposal.proposal.max_output_interval = SimSeconds(-1.0);
  EXPECT_THROW(validate(proposal), std::invalid_argument);

  SteeringEvent attach;
  attach.type = SteeringEvent::Type::kAttach;
  attach.attach.mode = "push";
  EXPECT_THROW(validate(attach), std::invalid_argument);
  attach.attach.mode = "catch-up";
  attach.attach.downlink_mbps = 0.0;
  EXPECT_THROW(validate(attach), std::invalid_argument);
  attach.attach.downlink_mbps = 56.0;
  EXPECT_THROW(validate(attach), std::invalid_argument);  // no client name
  attach.client = "scientist";
  EXPECT_NO_THROW(validate(attach));

  SteeringEvent detach;
  detach.type = SteeringEvent::Type::kDetach;
  EXPECT_THROW(validate(detach), std::invalid_argument);  // no client name
  detach.client = "scientist";
  EXPECT_NO_THROW(validate(detach));
}

TEST(ControlPlaneEvents, TypeNamesRoundTrip) {
  for (const auto type :
       {SteeringEvent::Type::kCommand, SteeringEvent::Type::kView,
        SteeringEvent::Type::kProposal, SteeringEvent::Type::kAttach,
        SteeringEvent::Type::kDetach}) {
    EXPECT_EQ(steering_event_type_from(to_string(type)), type);
  }
  EXPECT_THROW(steering_event_type_from("telemetry"), std::runtime_error);
}

// The codec round-trips exactly: hexfloat doubles survive bit for bit and
// percent-encoded strings survive arbitrary bytes.
TEST(ControlPlaneCodec, JsonlRoundTripIsExact) {
  std::vector<SteeringEvent> events;

  SteeringEvent cmd;
  cmd.wall = WallSeconds(0.1);  // not exactly representable: hexfloat must
  cmd.client = "viewer 007, \"the\nsteerer\"";
  cmd.type = SteeringEvent::Type::kCommand;
  cmd.command.kind = SteeringCommand::Kind::kSetOutputBounds;
  cmd.command.bounds.min_output_interval = SimSeconds(180.0 + 1e-9);
  cmd.command.bounds.max_output_interval = SimSeconds(1500.0);
  cmd.command.reason = "storm near landfall: 100%/~{}[]";
  events.push_back(cmd);

  SteeringEvent view;
  view.wall = WallSeconds(7200.0);
  view.client = "scientist";
  view.type = SteeringEvent::Type::kView;
  view.view = ViewCommand{.field = "wind-speed",
                          .colormap = "viridis",
                          .zoom = 2.5,
                          .center_lat = 21.625,
                          .center_lon = 89.0 + 1.0 / 3.0};
  events.push_back(view);

  SteeringEvent proposal;
  proposal.wall = WallSeconds(4.9406564584124654e-324);  // denormal min
  proposal.type = SteeringEvent::Type::kProposal;
  proposal.proposal.max_output_interval = SimSeconds(360.0);
  proposal.proposal.resolution_floor_km = 12.000000000000002;
  proposal.proposal.reason = "budget";
  events.push_back(proposal);

  SteeringEvent attach;
  attach.wall = WallSeconds(1.0e17);
  attach.client = "straggler";
  attach.type = SteeringEvent::Type::kAttach;
  attach.attach = ObserverSpec{.mode = "catch-up",
                               .downlink_mbps = 0.056,
                               .catchup_start_hours = 1.0 / 7.0};
  events.push_back(attach);

  SteeringEvent detach;
  detach.wall = WallSeconds(86400.0);
  detach.client = "straggler";
  detach.type = SteeringEvent::Type::kDetach;
  events.push_back(detach);

  for (const SteeringEvent& e : events) {
    const std::string line = to_jsonl(e);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const SteeringEvent back = steering_event_from_jsonl(line);
    EXPECT_EQ(back.wall.seconds(), e.wall.seconds());  // exact, not near
    EXPECT_EQ(back.client, e.client);
    EXPECT_EQ(back.type, e.type);
    // Re-encoding is the full-fidelity equality check: every payload field
    // participates in the line.
    EXPECT_EQ(to_jsonl(back), line);
  }

  const SteeringEvent v = steering_event_from_jsonl(to_jsonl(view));
  EXPECT_EQ(v.view.field, "wind-speed");
  EXPECT_EQ(v.view.zoom, 2.5);
  EXPECT_EQ(v.view.center_lon, 89.0 + 1.0 / 3.0);
}

TEST(ControlPlaneCodec, MalformedLinesAreRejected) {
  const std::string good = to_jsonl(SteeringEvent{});
  EXPECT_NO_THROW(steering_event_from_jsonl(good));
  EXPECT_THROW(steering_event_from_jsonl(""), std::runtime_error);
  EXPECT_THROW(steering_event_from_jsonl("{"), std::runtime_error);
  EXPECT_THROW(steering_event_from_jsonl("{}"), std::runtime_error);
  EXPECT_THROW(
      steering_event_from_jsonl(
          R"({"wall":"0x0p+0","client":"","type":"command","kind":"pause",)"
          R"("bounds_min_s":"0x0p+0","bounds_max_s":"0x0p+0",)"
          R"("floor_km":"0x0p+0","nest_deg":"0x0p+0",)"
          R"("auto_resume_s":"0x0p+0","reason":"","surprise":"1"})"),
      std::runtime_error);  // unknown key
  EXPECT_THROW(
      steering_event_from_jsonl(R"({"wall":"0x0p+0","type":"warp"})"),
      std::runtime_error);  // unknown type
  EXPECT_THROW(
      steering_event_from_jsonl(R"({"wall":"fast","type":"detach"})"),
      std::runtime_error);  // unparseable double
}

TEST(ControlPlaneCodec, SaveLoadRoundTripAndBlankLines) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "adaptviz_steering_codec";
  fs::create_directories(dir);
  const std::string path = (dir / "log.jsonl").string();

  std::vector<SteeringEvent> events(3);
  events[0].wall = WallSeconds(1.5);
  events[1].wall = WallSeconds(2.5);
  events[1].type = SteeringEvent::Type::kView;
  events[1].client = "a";
  events[2].wall = WallSeconds(3.5);
  events[2].type = SteeringEvent::Type::kDetach;
  events[2].client = "a";
  save_steering_log(path, events);

  // Hand-edited logs may carry blank separator lines: skipped on load.
  {
    std::ofstream out(path, std::ios::app);
    out << "\n\n";
  }
  const std::vector<SteeringEvent> back = load_steering_log(path);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(to_jsonl(back[i]), to_jsonl(events[i]));
  }
  EXPECT_THROW(load_steering_log((dir / "missing.jsonl").string()),
               std::runtime_error);
  fs::remove_all(dir);
}

// --- LocalControlPlane mechanics ---

TEST(ControlPlaneLocal, DeliversInOrderAndCounts) {
  EventQueue queue;
  std::vector<std::pair<double, SteeringEvent::Type>> applied;
  LocalControlPlane plane(queue, WallSeconds(2.0),
                          [&applied, &queue](const SteeringEvent& e) {
                            applied.push_back({queue.now().seconds(), e.type});
                          });
  EXPECT_THROW(LocalControlPlane(queue, WallSeconds(1.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(
      LocalControlPlane(queue, WallSeconds(-1.0), [](const SteeringEvent&) {}),
      std::invalid_argument);

  const ControlPlane::RunId run = plane.register_run("run-a");
  EXPECT_THROW(plane.register_run("run-b"), std::invalid_argument);

  const ClientId c = plane.attach(run, "scientist", ObserverSpec{});
  EXPECT_TRUE(c.valid());
  SteeringEvent view;
  view.type = SteeringEvent::Type::kView;
  view.client = "scientist";
  view.view.zoom = 2.0;
  plane.steer(run, view);
  plane.detach(run, c);
  EXPECT_THROW(plane.detach(run, ClientId{99}), std::invalid_argument);
  queue.run_all();

  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0].second, SteeringEvent::Type::kAttach);
  EXPECT_EQ(applied[1].second, SteeringEvent::Type::kView);
  EXPECT_EQ(applied[2].second, SteeringEvent::Type::kDetach);
  for (const auto& [at, type] : applied) EXPECT_DOUBLE_EQ(at, 2.0);
  EXPECT_EQ(plane.events_sent(), 3);
  EXPECT_EQ(plane.events_applied(), 3);
  EXPECT_TRUE(plane.drain(run, WallSeconds(10.0)).empty());
}

TEST(ControlPlaneLocal, ReplayAppliesAtExactlyTheLoggedWall) {
  EventQueue queue;
  std::vector<double> at;
  LocalControlPlane plane(queue, WallSeconds(2.0),
                          [&at, &queue](const SteeringEvent& e) {
                            at.push_back(queue.now().seconds());
                            EXPECT_EQ(e.wall.seconds(), queue.now().seconds());
                          });
  SteeringEvent e;
  e.wall = WallSeconds(7.25);
  plane.schedule_replay(e);  // no channel latency added: 7.25, not 9.25
  queue.run_all();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 7.25);
}

TEST(SteeringChannel, KindNames) {
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kPause), "pause");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kResume), "resume");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetOutputBounds),
               "set-output-bounds");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetResolutionFloor),
               "set-resolution-floor");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetNestExtent),
               "set-nest-extent");
}

// --- End-to-end through the framework ---

ExperimentConfig steer_config() {
  ExperimentConfig cfg;
  cfg.name = "steering-test";
  cfg.site.machine = MachineSpec{.name = "mini",
                                 .max_cores = 32,
                                 .min_cores = 4,
                                 .serial_seconds = 1.0,
                                 .work_seconds = 4000.0,
                                 .comm_seconds = 0.3,
                                 .noise_sigma = 0.0};
  cfg.site.disk_capacity = Bytes::gigabytes(120);
  cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(150);
  cfg.site.wan_nominal = Bandwidth::mbps(40);
  cfg.site.wan_efficiency = 0.5;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(24.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.seed = 3;
  return cfg;
}

TEST(SteeringEndToEnd, TightenOutputBoundsProducesMoreFrames) {
  // Baseline: default bounds.
  const ExperimentResult base = run_experiment(steer_config());

  // Steered: once the storm is seen below 995 hPa, require frames at least
  // every 6 simulated minutes.
  ExperimentConfig cfg = steer_config();
  bool requested = false;
  cfg.steering_policy =
      [&requested](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!requested && obs.min_pressure_hpa < 995.0) {
      requested = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetOutputBounds;
      c.bounds.min_output_interval = SimSeconds::minutes(3.0);
      c.bounds.max_output_interval = SimSeconds::minutes(6.0);
      c.reason = "storm intensifying: need dense frames";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult steered = run_experiment(cfg);

  ASSERT_FALSE(steered.steering.empty());
  EXPECT_EQ(steered.steering[0].command.kind,
            SteeringCommand::Kind::kSetOutputBounds);
  EXPECT_GT(steered.summary.frames_written, base.summary.frames_written);
}

TEST(SteeringEndToEnd, ResolutionFloorStopsTheLadder) {
  ExperimentConfig cfg = steer_config();
  bool sent = false;
  cfg.steering_policy = [&sent](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!sent && obs.sequence == 0) {
      sent = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetResolutionFloor;
      c.resolution_floor_km = 18.0;
      c.reason = "budget guard";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.steering.empty());
  double finest = 1e9;
  for (const auto& s : r.samples) finest = std::min(finest, s.resolution_km);
  EXPECT_GE(finest, 18.0 - 1e-9);
}

TEST(SteeringEndToEnd, PauseWithAutoResumeHoldsTheSimulation) {
  ExperimentConfig cfg = steer_config();
  int frames_seen = 0;
  cfg.steering_policy = [&frames_seen](const SteeringObservation&)
      -> std::optional<SteeringCommand> {
    if (++frames_seen == 3) {
      // A paused simulation emits no frames, so the policy schedules its
      // own wake-up: inspect for two (virtual) hours, then continue.
      return SteeringCommand{
          .kind = SteeringCommand::Kind::kPause,
          .auto_resume_after = WallSeconds::hours(2.0),
          .reason = "inspecting the genesis frames",
      };
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  // The hold shows up as ~2 h of stall.
  EXPECT_GT(r.summary.total_stall_time.as_hours(), 1.5);
  EXPECT_LT(r.summary.total_stall_time.as_hours(), 3.0);
  bool saw_paused_sample = false;
  for (const auto& s : r.samples) saw_paused_sample |= s.paused;
  EXPECT_TRUE(saw_paused_sample);
}

TEST(SteeringEndToEnd, NestExtentChangeRestarts) {
  ExperimentConfig cfg = steer_config();
  bool sent = false;
  cfg.steering_policy = [&sent](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!sent && obs.nest_active) {
      sent = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetNestExtent;
      c.nest_extent_deg = 12.0;
      c.reason = "wider context around the eye";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.steering.empty());
  EXPECT_TRUE(r.summary.completed);
  // The extent change adds one restart beyond the ladder's.
  EXPECT_GE(r.summary.restarts, 2);
}

// --- Record / replay determinism through the full framework ---

// Exact-byte views of a result (the test_campaign.cpp pattern): identity
// is asserted on serialized artifacts, not approximate summaries.
std::string telemetry_csv(const ExperimentResult& r) {
  CsvTable table(telemetry_columns());
  for (const TelemetrySample& s : r.samples) {
    table.add_row(telemetry_row(s, CalendarEpoch::aila_start()));
  }
  return table.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The deprecated top-level steering_policy/steering_latency fields and the
// new SteeringOptions spelling are the same run, byte for byte.
TEST(SteeringGolden, DeprecatedFieldsMatchSteeringOptions) {
  auto policy = [](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (obs.sequence == 2) {
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetResolutionFloor;
      c.resolution_floor_km = 18.0;
      return c;
    }
    return std::nullopt;
  };

  ExperimentConfig legacy = steer_config();
  legacy.steering_policy = policy;
  legacy.steering_latency = WallSeconds(1.25);
  const ExperimentResult a = run_experiment(legacy);

  ExperimentConfig modern = steer_config();
  modern.steering.policy = policy;
  modern.steering.latency = WallSeconds(1.25);
  const ExperimentResult b = run_experiment(modern);

  ASSERT_FALSE(a.steering.empty());
  EXPECT_EQ(telemetry_csv(a), telemetry_csv(b));
  ASSERT_EQ(a.steering.size(), b.steering.size());
  for (std::size_t i = 0; i < a.steering.size(); ++i) {
    EXPECT_EQ(a.steering[i].delivered_at.seconds(),
              b.steering[i].delivered_at.seconds());
    EXPECT_EQ(to_jsonl(a.steering[i].event), to_jsonl(b.steering[i].event));
  }
}

TEST(SteeringReplay, RecordedLogReplaysBitwiseIdentical) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "adaptviz_steering_replay";
  fs::create_directories(dir);
  const std::string recorded = (dir / "live.jsonl").string();
  const std::string rerecorded = (dir / "replayed.jsonl").string();

  // Live leg: an in-run policy steers; the applied stream is recorded.
  ExperimentConfig live = steer_config();
  live.steering.record_log_path = recorded;
  bool requested = false;
  live.steering.policy =
      [&requested](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!requested && obs.min_pressure_hpa < 995.0) {
      requested = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetOutputBounds;
      c.bounds.min_output_interval = SimSeconds::minutes(3.0);
      c.bounds.max_output_interval = SimSeconds::minutes(6.0);
      c.reason = "storm intensifying";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult first = run_experiment(live);
  ASSERT_FALSE(first.steering.empty());
  ASSERT_GT(first.summary.steering_events, 0);

  // Replay leg: no policy — the log carries what the policy decided — and
  // the replayed run re-records its own applied stream.
  ExperimentConfig replay = steer_config();
  replay.steering.replay_log_path = recorded;
  replay.steering.record_log_path = rerecorded;
  const ExperimentResult second = run_experiment(replay);

  EXPECT_EQ(telemetry_csv(first), telemetry_csv(second));
  EXPECT_EQ(first.summary.steering_events, second.summary.steering_events);
  EXPECT_EQ(first.summary.frames_written, second.summary.frames_written);
  // The re-recorded log is byte-identical: apply walls are reproduced
  // exactly, so a replay of the replay would be too.
  EXPECT_EQ(read_file(recorded), read_file(rerecorded));

  // Configuring both a policy and a replay double-steers: rejected.
  ExperimentConfig both = steer_config();
  both.steering.policy = live.steering.policy;
  both.steering.replay_log_path = recorded;
  EXPECT_THROW(run_experiment(both), std::invalid_argument);
  fs::remove_all(dir);
}

TEST(SteeringReplay, ScriptedAttachDetachMidRun) {
  ExperimentConfig cfg = steer_config();
  cfg.name = "scripted-session";

  SteeringEvent attach;
  attach.wall = WallSeconds::hours(0.5);
  attach.client = "scientist";
  attach.type = SteeringEvent::Type::kAttach;
  attach.attach = ObserverSpec{.mode = "live-tail", .downlink_mbps = 50.0};
  cfg.steering.replay.push_back(attach);

  SteeringEvent view;
  view.wall = WallSeconds::hours(1.5);
  view.client = "scientist";
  view.type = SteeringEvent::Type::kView;
  view.view = ViewCommand{.field = "pressure",
                          .colormap = "viridis",
                          .zoom = 2.0,
                          .center_lat = 21.0,
                          .center_lon = 89.0};
  cfg.steering.replay.push_back(view);

  SteeringEvent pause;
  pause.wall = WallSeconds::hours(2.0);
  pause.client = "scientist";
  pause.type = SteeringEvent::Type::kCommand;
  pause.command.kind = SteeringCommand::Kind::kPause;
  pause.command.auto_resume_after = WallSeconds::hours(2.0);
  pause.command.reason = "inspecting";
  cfg.steering.replay.push_back(pause);

  // After the 2 h auto-resume the unsteered ~3.9 h run stretches past
  // ~5.9 h; the detach at 5 h is still mid-run.
  SteeringEvent detach;
  detach.wall = WallSeconds::hours(5.0);
  detach.client = "scientist";
  detach.type = SteeringEvent::Type::kDetach;
  cfg.steering.replay.push_back(detach);

  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  EXPECT_EQ(r.summary.steering_events, 4);
  EXPECT_EQ(r.summary.observers_peak, 1);

  // The observer existed and received frames between attach and detach.
  ASSERT_EQ(r.clients.size(), 1u);
  EXPECT_EQ(r.clients[0].name, "scientist");
  EXPECT_GT(r.clients[0].stats.frames_delivered, 0);

  // The view change re-rendered the scientist's current frame.
  EXPECT_GE(r.summary.steer_renders, 1);

  // The pause held the simulation ~2 h (auto-resume).
  EXPECT_GT(r.summary.total_stall_time.as_hours(), 1.5);
  EXPECT_LT(r.summary.total_stall_time.as_hours(), 3.0);

  // Pause commands also land in the legacy command log.
  ASSERT_EQ(r.steering.size(), 1u);
  EXPECT_EQ(r.steering[0].command.kind, SteeringCommand::Kind::kPause);
}

// An attached observer's knob proposal is the third decision input: the
// strictest proposal tightens the bounds the algorithms work within.
TEST(SteeringReplay, ObserverProposalTightensDecisions) {
  const ExperimentResult base = run_experiment(steer_config());

  ExperimentConfig cfg = steer_config();
  SteeringEvent attach;
  attach.wall = WallSeconds::hours(1.0);
  attach.client = "forecaster";
  attach.type = SteeringEvent::Type::kAttach;
  cfg.steering.replay.push_back(attach);

  SteeringEvent proposal;
  proposal.wall = WallSeconds::hours(1.5);
  proposal.client = "forecaster";
  proposal.type = SteeringEvent::Type::kProposal;
  proposal.proposal.max_output_interval = SimSeconds::minutes(6.0);
  proposal.proposal.reason = "need dense frames for the landfall brief";
  cfg.steering.replay.push_back(proposal);

  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  EXPECT_GT(r.summary.frames_written, base.summary.frames_written);
}

}  // namespace
}  // namespace adaptviz
