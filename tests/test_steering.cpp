// Computational steering: channel semantics and end-to-end behaviour
// through the full framework.
#include "steering/steering.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/framework.hpp"

namespace adaptviz {
namespace {

TEST(SteeringChannel, DeliversAfterLatencyInOrder) {
  EventQueue queue;
  std::vector<std::pair<double, SteeringCommand::Kind>> got;
  SteeringChannel ch(queue, WallSeconds(2.0), [&](const SteeringCommand& c) {
    got.push_back({queue.now().seconds(), c.kind});
  });
  ch.send(SteeringCommand{.kind = SteeringCommand::Kind::kPause});
  queue.run_until(WallSeconds(1.0));
  ch.send(SteeringCommand{.kind = SteeringCommand::Kind::kResume});
  queue.run_until(WallSeconds(10.0));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].first, 2.0);
  EXPECT_EQ(got[0].second, SteeringCommand::Kind::kPause);
  EXPECT_DOUBLE_EQ(got[1].first, 3.0);
  EXPECT_EQ(got[1].second, SteeringCommand::Kind::kResume);
  EXPECT_EQ(ch.commands_sent(), 2);
  EXPECT_EQ(ch.commands_delivered(), 2);
}

TEST(SteeringChannel, Validation) {
  EventQueue queue;
  EXPECT_THROW(SteeringChannel(queue, WallSeconds(1.0), nullptr),
               std::invalid_argument);
  EXPECT_THROW(SteeringChannel(queue, WallSeconds(-1.0),
                               [](const SteeringCommand&) {}),
               std::invalid_argument);
}

TEST(SteeringChannel, KindNames) {
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kPause), "pause");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kResume), "resume");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetOutputBounds),
               "set-output-bounds");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetResolutionFloor),
               "set-resolution-floor");
  EXPECT_STREQ(to_string(SteeringCommand::Kind::kSetNestExtent),
               "set-nest-extent");
}

// --- End-to-end through the framework ---

ExperimentConfig steer_config() {
  ExperimentConfig cfg;
  cfg.name = "steering-test";
  cfg.site.machine = MachineSpec{.name = "mini",
                                 .max_cores = 32,
                                 .min_cores = 4,
                                 .serial_seconds = 1.0,
                                 .work_seconds = 4000.0,
                                 .comm_seconds = 0.3,
                                 .noise_sigma = 0.0};
  cfg.site.disk_capacity = Bytes::gigabytes(120);
  cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(150);
  cfg.site.wan_nominal = Bandwidth::mbps(40);
  cfg.site.wan_efficiency = 0.5;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(24.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.seed = 3;
  return cfg;
}

TEST(SteeringEndToEnd, TightenOutputBoundsProducesMoreFrames) {
  // Baseline: default bounds.
  const ExperimentResult base = run_experiment(steer_config());

  // Steered: once the storm is seen below 995 hPa, require frames at least
  // every 6 simulated minutes.
  ExperimentConfig cfg = steer_config();
  bool requested = false;
  cfg.steering_policy =
      [&requested](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!requested && obs.min_pressure_hpa < 995.0) {
      requested = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetOutputBounds;
      c.bounds.min_output_interval = SimSeconds::minutes(3.0);
      c.bounds.max_output_interval = SimSeconds::minutes(6.0);
      c.reason = "storm intensifying: need dense frames";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult steered = run_experiment(cfg);

  ASSERT_FALSE(steered.steering.empty());
  EXPECT_EQ(steered.steering[0].command.kind,
            SteeringCommand::Kind::kSetOutputBounds);
  EXPECT_GT(steered.summary.frames_written, base.summary.frames_written);
}

TEST(SteeringEndToEnd, ResolutionFloorStopsTheLadder) {
  ExperimentConfig cfg = steer_config();
  bool sent = false;
  cfg.steering_policy = [&sent](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!sent && obs.sequence == 0) {
      sent = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetResolutionFloor;
      c.resolution_floor_km = 18.0;
      c.reason = "budget guard";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.steering.empty());
  double finest = 1e9;
  for (const auto& s : r.samples) finest = std::min(finest, s.resolution_km);
  EXPECT_GE(finest, 18.0 - 1e-9);
}

TEST(SteeringEndToEnd, PauseWithAutoResumeHoldsTheSimulation) {
  ExperimentConfig cfg = steer_config();
  int frames_seen = 0;
  cfg.steering_policy = [&frames_seen](const SteeringObservation&)
      -> std::optional<SteeringCommand> {
    if (++frames_seen == 3) {
      // A paused simulation emits no frames, so the policy schedules its
      // own wake-up: inspect for two (virtual) hours, then continue.
      return SteeringCommand{
          .kind = SteeringCommand::Kind::kPause,
          .auto_resume_after = WallSeconds::hours(2.0),
          .reason = "inspecting the genesis frames",
      };
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  // The hold shows up as ~2 h of stall.
  EXPECT_GT(r.summary.total_stall_time.as_hours(), 1.5);
  EXPECT_LT(r.summary.total_stall_time.as_hours(), 3.0);
  bool saw_paused_sample = false;
  for (const auto& s : r.samples) saw_paused_sample |= s.paused;
  EXPECT_TRUE(saw_paused_sample);
}

TEST(SteeringEndToEnd, NestExtentChangeRestarts) {
  ExperimentConfig cfg = steer_config();
  bool sent = false;
  cfg.steering_policy = [&sent](const SteeringObservation& obs)
      -> std::optional<SteeringCommand> {
    if (!sent && obs.nest_active) {
      sent = true;
      SteeringCommand c;
      c.kind = SteeringCommand::Kind::kSetNestExtent;
      c.nest_extent_deg = 12.0;
      c.reason = "wider context around the eye";
      return c;
    }
    return std::nullopt;
  };
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.steering.empty());
  EXPECT_TRUE(r.summary.completed);
  // The extent change adds one restart beyond the ladder's.
  EXPECT_GE(r.summary.restarts, 2);
}

}  // namespace
}  // namespace adaptviz
