#include "core/simulation_process.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

// Full simulation-side rig: machine + disk + catalog + sender with an
// attached link, plus a shared configuration the tests mutate.
struct Rig {
  EventQueue queue;
  GroundTruthMachine machine{MachineSpec{.name = "t",
                                         .max_cores = 64,
                                         .min_cores = 4,
                                         .serial_seconds = 1.0,
                                         .work_seconds = 30000.0,
                                         .comm_seconds = 0.0,
                                         .noise_sigma = 0.0},
                             1};
  DiskModel disk{Bytes::gigabytes(50), Bandwidth::megabytes_per_second(500)};
  NetworkLink link{LinkSpec{.nominal = Bandwidth::megabytes_per_second(5),
                            .latency = WallSeconds(0.0)},
                   2};
  FrameCatalog catalog;
  BandwidthEstimator estimator{0.3};
  ApplicationConfiguration config;
  int delivered = 0;
  int resolution_signals = 0;
  double last_signal_res = 0.0;
  bool finished_cb = false;

  std::unique_ptr<FrameSender> sender;
  std::unique_ptr<SimulationProcess> process;

  explicit Rig(SimSeconds end = SimSeconds::hours(4.0)) {
    config.processors = 64;
    config.output_interval = SimSeconds::minutes(12.0);
    config.resolution_km = 24.0;
    sender = std::make_unique<FrameSender>(
        queue, link, catalog, disk, estimator,
        [this](const Frame&) { ++delivered; });
    SimulationProcess::Options opts;
    opts.end_time = end;
    opts.stall_poll = WallSeconds::minutes(5.0);
    SimulationProcess::Callbacks cbs;
    cbs.on_resolution_signal = [this](double r) {
      ++resolution_signals;
      last_signal_res = r;
    };
    cbs.on_finished = [this] { finished_cb = true; };
    process = std::make_unique<SimulationProcess>(
        queue, machine, disk, catalog, *sender, config, opts, std::move(cbs));
  }

  std::unique_ptr<WeatherModel> make_model() {
    ModelConfig cfg;
    cfg.compute_scale = 12.0;
    return std::make_unique<WeatherModel>(cfg);
  }
};

TEST(SimProcess, RunsToCompletion) {
  Rig rig(SimSeconds::hours(2.0));
  rig.process->start(rig.make_model());
  rig.sender->start();
  rig.queue.run_until(WallSeconds::hours(12.0));
  EXPECT_TRUE(rig.process->finished());
  EXPECT_TRUE(rig.finished_cb);
  EXPECT_GE(rig.process->sim_time().as_hours(), 2.0);
  // 2 h at a 12-min interval: ~10 frames.
  EXPECT_NEAR(static_cast<double>(rig.process->frames_written()), 10.0, 2.0);
  EXPECT_EQ(rig.process->total_stall_time().seconds(), 0.0);
}

TEST(SimProcess, StepCostMatchesMachine) {
  Rig rig(SimSeconds::hours(1.0));
  rig.process->start(rig.make_model());
  // First step completes exactly at the machine's step time for 64 cores.
  const double work = rig.process->model()->work_units();
  const double expected =
      rig.machine.expected_step_time(64, work).seconds();
  // Run a single event (the step completion).
  rig.queue.step();
  EXPECT_NEAR(rig.queue.now().seconds(), expected, 1e-9);
  EXPECT_EQ(rig.process->steps_executed(), 1);
}

TEST(SimProcess, FramesLandInCatalogAndShip) {
  Rig rig(SimSeconds::hours(1.0));
  rig.process->start(rig.make_model());
  rig.sender->start();
  rig.queue.run_until(WallSeconds::hours(6.0));
  EXPECT_GE(rig.process->frames_written(), 4);
  EXPECT_EQ(rig.delivered, rig.process->frames_written());
  // Everything shipped frees the disk.
  EXPECT_EQ(rig.disk.used(), Bytes(0));
}

TEST(SimProcess, CriticalFlagStallsAndResumes) {
  Rig rig(SimSeconds::hours(3.0));
  rig.config.critical = true;  // critical before start
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::hours(1.0));
  EXPECT_TRUE(rig.process->stalled());
  EXPECT_EQ(rig.process->steps_executed(), 0);
  EXPECT_GT(rig.process->total_stall_time().as_hours(), 0.9);

  rig.config.critical = false;
  rig.queue.run_until(WallSeconds::hours(8.0));
  EXPECT_FALSE(rig.process->stalled());
  EXPECT_TRUE(rig.process->finished());
  EXPECT_GT(rig.process->steps_executed(), 0);
}

TEST(SimProcess, DiskFullStallsUntilSpaceFrees) {
  Rig rig(SimSeconds::hours(2.0));
  // Fill the disk almost completely; no sender -> nothing drains.
  ASSERT_TRUE(rig.disk.allocate(Bytes::gigabytes(49.9)));
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::hours(2.0));
  EXPECT_TRUE(rig.process->stalled());
  const auto written_before = rig.process->frames_written();
  // Free space; the stalled process resumes on its next poll.
  rig.disk.release(Bytes::gigabytes(30));
  rig.queue.run_until(WallSeconds::hours(8.0));
  EXPECT_TRUE(rig.process->finished());
  EXPECT_GT(rig.process->frames_written(), written_before);
}

TEST(SimProcess, StopDeliversCheckpoint) {
  Rig rig(SimSeconds::hours(10.0));
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::minutes(30.0));
  ASSERT_TRUE(rig.process->running());

  bool stopped = false;
  rig.process->request_stop([&](NclFile ckpt) {
    stopped = true;
    EXPECT_TRUE(ckpt.has_variable("parent_h"));
  });
  rig.queue.run_until(WallSeconds::hours(1.0));
  EXPECT_TRUE(stopped);
  EXPECT_FALSE(rig.process->running());
  // No further progress after the stop.
  const auto steps = rig.process->steps_executed();
  rig.queue.run_until(WallSeconds::hours(2.0));
  EXPECT_EQ(rig.process->steps_executed(), steps);
}

TEST(SimProcess, StopDuringStallIsHonoured) {
  Rig rig(SimSeconds::hours(3.0));
  rig.config.critical = true;
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::minutes(20.0));
  ASSERT_TRUE(rig.process->stalled());
  bool stopped = false;
  rig.process->request_stop([&](NclFile) { stopped = true; });
  rig.queue.run_until(WallSeconds::hours(1.0));
  EXPECT_TRUE(stopped);
}

TEST(SimProcess, RestartContinuesFromCheckpoint) {
  Rig rig(SimSeconds::hours(3.0));
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::minutes(40.0));
  const SimSeconds t_before = rig.process->sim_time();
  ASSERT_GT(t_before.seconds(), 0.0);

  NclFile saved;
  rig.process->request_stop([&](NclFile ckpt) { saved = std::move(ckpt); });
  rig.queue.run_until(WallSeconds::minutes(50.0));

  // Restart with fewer processors.
  rig.config.processors = 16;
  auto model = std::make_unique<WeatherModel>(WeatherModel::restore(
      ModelConfig{.compute_scale = 12.0}, ResolutionLadder::table3(), saved));
  rig.process->start(std::move(model));
  EXPECT_GE(rig.process->sim_time().seconds(), t_before.seconds() - 1.0);
  rig.queue.run_until(WallSeconds::hours(24.0));
  EXPECT_TRUE(rig.process->finished());
}

TEST(SimProcess, SignalsResolutionOnceDeepEnough) {
  // Long window so the storm crosses 995 hPa (~12-14 h in).
  Rig rig(SimSeconds::hours(20.0));
  rig.process->start(rig.make_model());
  rig.queue.run_until(WallSeconds::hours(24.0));
  EXPECT_GE(rig.resolution_signals, 1);
  EXPECT_LT(rig.last_signal_res, 24.0);
  // The signal does not stop the run by itself.
  EXPECT_TRUE(rig.process->finished() || rig.process->running());
}

TEST(SimProcess, Validation) {
  Rig rig;
  EXPECT_THROW(rig.process->start(nullptr), std::invalid_argument);
  rig.process->start(rig.make_model());
  EXPECT_THROW(rig.process->start(rig.make_model()), std::logic_error);
  EXPECT_THROW(rig.process->request_stop(nullptr), std::invalid_argument);
  rig.process->request_stop([](NclFile) {});
  EXPECT_THROW(rig.process->request_stop([](NclFile) {}), std::logic_error);
}

}  // namespace
}  // namespace adaptviz
