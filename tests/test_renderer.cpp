// FrameRenderer and VisualizationProcess tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "vis/renderer.hpp"
#include "vis/vis_process.hpp"
#include "weather/model.hpp"

namespace adaptviz {
namespace {

// One shared model frame for the render tests (deepened enough for a nest).
const NclFile& storm_frame() {
  static const NclFile frame = [] {
    ModelConfig cfg;
    cfg.compute_scale = 10.0;
    WeatherModel m(cfg);
    while (m.sim_time() < SimSeconds::hours(18.0)) m.step();
    return m.make_frame();
  }();
  return frame;
}

TEST(Renderer, ProducesDomainAspectImage) {
  RenderOptions opts;
  opts.width = 300;
  const FrameRenderer renderer(opts);
  const Image img = renderer.render(storm_frame(), nullptr);
  EXPECT_EQ(img.width(), 300u);
  // Parent domain is 60 x 50 degrees -> height = width * 50/60.
  EXPECT_EQ(img.height(), 250u);
}

TEST(Renderer, DrawsNestBoxInYellow) {
  RenderOptions opts;
  opts.width = 300;
  opts.draw_glyphs = false;
  opts.draw_contours = false;
  const FrameRenderer renderer(opts);
  const Image img = renderer.render(storm_frame(), nullptr);
  // Count bright yellow pixels (the nest rectangle).
  int yellow = 0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const Rgb c = img.at(x, y);
      if (c.r > 200 && c.g > 200 && c.b < 120) ++yellow;
    }
  }
  EXPECT_GT(yellow, 50);  // a 9-degree box at this scale is ~45 px a side
}

TEST(Renderer, EyeMarkerPresent) {
  RenderOptions opts;
  opts.width = 300;
  opts.draw_glyphs = false;
  const FrameRenderer renderer(opts);
  const Image img = renderer.render(storm_frame(), nullptr);
  int red = 0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const Rgb c = img.at(x, y);
      if (c.r > 200 && c.g < 90 && c.b < 90) ++red;
    }
  }
  EXPECT_GE(red, 10);  // a radius-3 disc plus glyph tips
}

TEST(Renderer, FieldChoicesAllRender) {
  for (RenderField field :
       {RenderField::kPressure, RenderField::kWindSpeed,
        RenderField::kVorticity, RenderField::kHeight}) {
    RenderOptions opts;
    opts.width = 120;
    opts.field = field;
    const FrameRenderer renderer(opts);
    const Image img = renderer.render(storm_frame(), nullptr);
    // Image is not uniform: the storm shows up.
    const Rgb first = img.at(0, 0);
    bool varied = false;
    for (std::size_t y = 0; y < img.height() && !varied; y += 3) {
      for (std::size_t x = 0; x < img.width() && !varied; x += 3) {
        if (!(img.at(x, y) == first)) varied = true;
      }
    }
    EXPECT_TRUE(varied) << "field " << static_cast<int>(field);
  }
}

TEST(Renderer, TrackOverlayDrawsOnlyPastPoints) {
  std::vector<TrackPoint> track;
  for (int h = 0; h <= 40; h += 2) {
    track.push_back(TrackPoint{SimSeconds::hours(h),
                               LatLon{14.0 + 0.2 * h, 88.5}, 1000.0, 20.0});
  }
  RenderOptions opts;
  opts.width = 200;
  opts.draw_glyphs = false;
  opts.draw_contours = false;
  const FrameRenderer renderer(opts);
  const Image with = renderer.render(storm_frame(), &track);
  const Image without = renderer.render(storm_frame(), nullptr);
  int differing = 0;
  for (std::size_t y = 0; y < with.height(); ++y)
    for (std::size_t x = 0; x < with.width(); ++x)
      if (!(with.at(x, y) == without.at(x, y))) ++differing;
  EXPECT_GT(differing, 10);  // the polyline painted something
}

TEST(Renderer, StreamlineOverlayDrawsInk) {
  RenderOptions base;
  base.width = 160;
  base.field = RenderField::kWindSpeed;
  base.draw_glyphs = false;
  base.draw_contours = false;
  RenderOptions with_lines = base;
  with_lines.draw_streamlines = true;
  const Image plain = FrameRenderer(base).render(storm_frame(), nullptr);
  const Image lined =
      FrameRenderer(with_lines).render(storm_frame(), nullptr);
  int differing = 0;
  for (std::size_t y = 0; y < plain.height(); ++y)
    for (std::size_t x = 0; x < plain.width(); ++x)
      if (!(plain.at(x, y) == lined.at(x, y))) ++differing;
  EXPECT_GT(differing, 100);  // the cyclonic circulation paints many pixels
}

TEST(Renderer, ParallelThreadsMatchSerialExactly) {
  // Streamlines and the cloud volume on: every parallel layer (base bands,
  // volume compositing, seed-chunked streamline tracing) must be bitwise
  // identical to its serial result.
  RenderOptions serial_opts;
  serial_opts.width = 180;
  serial_opts.draw_streamlines = true;
  serial_opts.draw_cloud_volume = true;
  RenderOptions parallel_opts = serial_opts;
  parallel_opts.threads = 4;
  const Image a = FrameRenderer(serial_opts).render(storm_frame(), nullptr);
  const Image b = FrameRenderer(parallel_opts).render(storm_frame(), nullptr);
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (std::size_t y = 0; y < a.height(); ++y) {
    for (std::size_t x = 0; x < a.width(); ++x) {
      ASSERT_EQ(a.at(x, y), b.at(x, y)) << x << "," << y;
    }
  }
}

TEST(VisProcess, RecordsProgressAndCost) {
  EventQueue queue;
  VisualizationProcess::Options opts;
  opts.fixed_seconds = 2.0;
  opts.seconds_per_gb = 4.0;
  VisualizationProcess vis(queue, opts);
  Frame f;
  f.sequence = 7;
  f.sim_time = SimSeconds::hours(3.0);
  f.size = Bytes::gigabytes(0.5);
  const WallSeconds cost = vis.visualize(f);
  EXPECT_NEAR(cost.seconds(), 4.0, 1e-9);
  ASSERT_EQ(vis.records().size(), 1u);
  EXPECT_EQ(vis.records()[0].sequence, 7);
  EXPECT_DOUBLE_EQ(vis.latest_visualized_sim_time().as_hours(), 3.0);
}

TEST(VisProcess, RendersPayloadToDisk) {
  EventQueue queue;
  const std::string dir = testing::TempDir() + "/adaptviz_vis_test";
  std::filesystem::create_directories(dir);
  VisualizationProcess::Options opts;
  opts.render_images = true;
  opts.output_dir = dir;
  opts.render_options.width = 100;
  VisualizationProcess vis(queue, opts);

  Frame f;
  f.sequence = 3;
  f.sim_time = SimSeconds::hours(1.0);
  f.size = Bytes::megabytes(10);
  f.payload = std::make_shared<NclFile>(storm_frame());
  (void)vis.visualize(f);
  EXPECT_TRUE(std::filesystem::exists(dir + "/frame_000003.ppm"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace adaptviz
