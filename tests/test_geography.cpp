#include "weather/geography.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

TEST(Geography, BayOfBengalIsOcean) {
  // Aila's genesis region and track points over water.
  EXPECT_LT(land_fraction(LatLon{14.0, 88.5}), 0.2);  // central Bay
  EXPECT_LT(land_fraction(LatLon{18.0, 88.0}), 0.2);
  EXPECT_LT(land_fraction(LatLon{10.0, 85.0}), 0.2);
  EXPECT_FALSE(is_land(LatLon{14.0, 88.5}));
}

TEST(Geography, ArabianSeaIsOcean) {
  EXPECT_LT(land_fraction(LatLon{15.0, 68.0}), 0.2);
  EXPECT_LT(land_fraction(LatLon{10.0, 65.0}), 0.2);
}

TEST(Geography, IndianSubcontinentIsLand) {
  EXPECT_GT(land_fraction(LatLon{17.0, 78.5}), 0.8);  // Hyderabad
  EXPECT_GT(land_fraction(LatLon{13.0, 77.6}), 0.8);  // Bangalore
  EXPECT_GT(land_fraction(LatLon{21.0, 79.0}), 0.8);  // Nagpur
  EXPECT_TRUE(is_land(LatLon{17.0, 78.5}));
}

TEST(Geography, NorthernLandmass) {
  EXPECT_GT(land_fraction(LatLon{27.0, 88.3}), 0.8);  // Darjeeling hills
  EXPECT_GT(land_fraction(LatLon{23.0, 90.0}), 0.8);  // Bangladesh
  EXPECT_GT(land_fraction(LatLon{30.0, 100.0}), 0.8);
}

TEST(Geography, EasternRim) {
  EXPECT_GT(land_fraction(LatLon{18.0, 96.0}), 0.8);  // Myanmar
  EXPECT_LT(land_fraction(LatLon{12.0, 92.0}), 0.3);  // Andaman Sea (approx)
}

TEST(Geography, CoastIsSmooth) {
  // Crossing the east coast near 16N: the fraction ramps, no step.
  double prev = land_fraction(LatLon{16.0, 84.5});
  for (double lon = 84.4; lon >= 80.0; lon -= 0.1) {
    const double cur = land_fraction(LatLon{16.0, lon});
    EXPECT_LE(std::abs(cur - prev), 0.45) << "jump at lon " << lon;
    prev = cur;
  }
  // And it actually transitions ocean -> land.
  EXPECT_LT(land_fraction(LatLon{16.0, 84.5}), 0.3);
  EXPECT_GT(land_fraction(LatLon{16.0, 80.5}), 0.7);
}

TEST(Geography, SstWarmPool) {
  EXPECT_NEAR(sea_surface_temp(LatLon{10.0, 88.0}), 31.0, 0.01);
  EXPECT_GT(sea_surface_temp(LatLon{14.0, 88.0}), 29.0);
  EXPECT_LT(sea_surface_temp(LatLon{35.0, 88.0}), sea_surface_temp(LatLon{14.0, 88.0}));
}

TEST(Geography, LandMaskMatchesPointwise) {
  GridSpec g(80.0, 10.0, 15.0, 15.0, 150.0);
  const Field2D mask = land_mask(g);
  ASSERT_EQ(mask.nx(), g.nx());
  ASSERT_EQ(mask.ny(), g.ny());
  for (std::size_t j = 0; j < g.ny(); j += 5) {
    for (std::size_t i = 0; i < g.nx(); i += 5) {
      EXPECT_DOUBLE_EQ(mask(i, j), land_fraction(g.at(i, j)));
    }
  }
}

}  // namespace
}  // namespace adaptviz
