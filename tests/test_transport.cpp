// Frame sender/receiver daemons and bandwidth estimator over the event
// queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <utility>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "transport/bandwidth_estimator.hpp"
#include "transport/receiver.hpp"
#include "transport/sender.hpp"

namespace adaptviz {
namespace {

struct Rig {
  EventQueue queue;
  // 1 MB/s link, no latency, no jitter: transfer times are exact.
  NetworkLink link{LinkSpec{.nominal = Bandwidth::megabytes_per_second(1),
                            .latency = WallSeconds(0.0)},
                   1};
  FrameCatalog catalog;
  DiskModel disk{Bytes::gigabytes(1), Bandwidth::megabytes_per_second(100)};
  BandwidthEstimator estimator{0.5};
  std::vector<std::pair<double, std::int64_t>> delivered;  // (time, seq)

  std::unique_ptr<FrameSender> sender;

  Rig() {
    sender = std::make_unique<FrameSender>(
        queue, link, catalog, disk, estimator,
        [this](const Frame& f) {
          delivered.push_back({queue.now().seconds(), f.sequence});
        },
        WallSeconds(10.0));
  }

  Frame frame(std::int64_t seq, double mb) {
    Frame f;
    f.sequence = seq;
    f.size = Bytes::megabytes(mb);
    f.sim_time = SimSeconds(static_cast<double>(seq));
    EXPECT_TRUE(disk.allocate(f.size));
    return f;
  }
};

TEST(Sender, ShipsOldestFirstAndFreesDisk) {
  Rig rig;
  rig.catalog.push(rig.frame(0, 5));
  rig.catalog.push(rig.frame(1, 3));
  rig.sender->start();
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.delivered[0].second, 0);
  EXPECT_NEAR(rig.delivered[0].first, 5.0, 1e-9);  // 5 MB at 1 MB/s
  EXPECT_EQ(rig.delivered[1].second, 1);
  EXPECT_NEAR(rig.delivered[1].first, 8.0, 1e-9);
  EXPECT_EQ(rig.disk.used(), Bytes(0));
  EXPECT_EQ(rig.sender->frames_sent(), 2);
  EXPECT_EQ(rig.sender->bytes_sent(), Bytes::megabytes(8));
}

TEST(Sender, PollsWhenIdleAndKickWakesImmediately) {
  Rig rig;
  rig.sender->start();
  rig.queue.run_until(WallSeconds(25.0));  // a few empty polls pass
  EXPECT_TRUE(rig.delivered.empty());
  rig.catalog.push(rig.frame(0, 1));
  rig.sender->kick();
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_NEAR(rig.delivered[0].first, 26.0, 1e-9);
}

TEST(Sender, WithoutKickThePollPicksItUp) {
  Rig rig;
  rig.sender->start();
  rig.queue.run_until(WallSeconds(1.0));
  rig.catalog.push(rig.frame(0, 1));
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_EQ(rig.delivered.size(), 1u);
  // Poll fires at t=10, transfer takes 1 s.
  EXPECT_NEAR(rig.delivered[0].first, 11.0, 1e-9);
}

TEST(Sender, EstimatorLearnsFromTransfers) {
  Rig rig;
  rig.catalog.push(rig.frame(0, 10));
  rig.sender->start();
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_TRUE(rig.estimator.estimate().has_value());
  EXPECT_NEAR(rig.estimator.estimate()->bytes_per_sec(), 1e6, 1.0);
}

TEST(Sender, StopAbandonsInFlightTransferAndRequeuesTheFrame) {
  // A completion event already scheduled at stop() time must not mutate
  // disk or the estimator, nor invoke the delivery callback, on a stopped
  // sender. The undelivered frame returns to the catalog head.
  Rig rig;
  rig.catalog.push(rig.frame(0, 5));
  rig.catalog.push(rig.frame(1, 5));
  rig.sender->start();
  EXPECT_TRUE(rig.sender->transfer_in_flight());
  rig.sender->stop();
  rig.queue.run_until(WallSeconds(100.0));
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_FALSE(rig.sender->transfer_in_flight());
  ASSERT_EQ(rig.catalog.count(), 2u);
  EXPECT_EQ(rig.catalog.oldest()->sequence, 0);  // back at the head
  EXPECT_EQ(rig.catalog.total_bytes(), Bytes::megabytes(10));
  EXPECT_EQ(rig.disk.used(), Bytes::megabytes(10));  // nothing released
  EXPECT_FALSE(rig.estimator.estimate().has_value());
  EXPECT_EQ(rig.sender->frames_sent(), 0);
  // A restarted sender ships the requeued frame first, in order.
  rig.sender->start();
  rig.queue.run_until(WallSeconds(200.0));
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.delivered[0].second, 0);
  EXPECT_EQ(rig.delivered[1].second, 1);
  EXPECT_EQ(rig.disk.used(), Bytes(0));
}

TEST(Sender, KickStormWhileIdleKeepsASinglePollChain) {
  // kick() and poll_event() both funnel into try_send(); the
  // poll_scheduled_ guard must keep any number of kicks from stacking up
  // duplicate poll chains.
  Rig rig;
  rig.sender->start();  // empty catalog: one poll pending
  EXPECT_EQ(rig.queue.pending(), 1u);
  for (int i = 0; i < 20; ++i) rig.sender->kick();
  EXPECT_EQ(rig.queue.pending(), 1u);
  rig.queue.run_until(WallSeconds(95.0));  // nine empty polls re-arm
  EXPECT_EQ(rig.queue.pending(), 1u);
  // The cadence is intact: a frame written now waits for the t=100 poll.
  rig.catalog.push(rig.frame(0, 1));
  rig.queue.run_until(WallSeconds(200.0));
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_NEAR(rig.delivered[0].first, 101.0, 1e-9);
}

TEST(Sender, KickStormMidTransferNeitherDuplicatesNorReorders) {
  Rig rig;
  rig.catalog.push(rig.frame(0, 5));
  rig.catalog.push(rig.frame(1, 3));
  rig.sender->start();
  EXPECT_TRUE(rig.sender->transfer_in_flight());
  for (int i = 0; i < 50; ++i) rig.sender->kick();
  // Only the in-flight completion is scheduled; kicks were no-ops.
  EXPECT_EQ(rig.queue.pending(), 1u);
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_NEAR(rig.delivered[0].first, 5.0, 1e-9);
  EXPECT_NEAR(rig.delivered[1].first, 8.0, 1e-9);
  EXPECT_EQ(rig.sender->frames_sent(), 2);
}

TEST(Sender, StalePollDuringKickStartedTransferStaysHarmless) {
  // A kick can start a transfer while an idle-poll is already pending. The
  // stale poll then fires mid-flight (or after): it must neither start a
  // second transfer nor orphan the poll chain.
  Rig rig;
  rig.sender->start();  // poll armed for t=10
  rig.queue.run_until(WallSeconds(2.0));
  rig.catalog.push(rig.frame(0, 6));
  rig.catalog.push(rig.frame(1, 1));
  rig.sender->kick();  // transfer #0 runs [2, 8), #1 runs [8, 9)
  rig.queue.run_until(WallSeconds(9.5));
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_NEAR(rig.delivered[0].first, 8.0, 1e-9);
  EXPECT_NEAR(rig.delivered[1].first, 9.0, 1e-9);
  // The t=10 poll fired into an idle sender and re-armed the chain: a
  // frame written at t=15 is picked up by the t=20 poll, exactly once.
  rig.queue.run_until(WallSeconds(15.0));
  rig.catalog.push(rig.frame(2, 1));
  rig.queue.run_until(WallSeconds(100.0));
  ASSERT_EQ(rig.delivered.size(), 3u);
  EXPECT_NEAR(rig.delivered[2].first, 21.0, 1e-9);
  EXPECT_EQ(rig.sender->frames_sent(), 3);
}

// Rig with an injectable failure rate and a tight, jitter-free retry
// policy so backoff arithmetic is exact.
struct FaultRig {
  EventQueue queue;
  NetworkLink link;
  FrameCatalog catalog;
  DiskModel disk{Bytes::gigabytes(1), Bandwidth::megabytes_per_second(100)};
  BandwidthEstimator estimator{0.5};
  std::vector<std::pair<double, std::int64_t>> delivered;
  std::unique_ptr<FrameSender> sender;

  explicit FaultRig(double failure_probability, std::uint64_t link_seed = 1,
                    double jitter = 0.0)
      : link(LinkSpec{.nominal = Bandwidth::megabytes_per_second(1),
                      .latency = WallSeconds(0.0),
                      .failure_probability = failure_probability},
             link_seed) {
    FrameSender::Options opts;
    opts.poll_interval = WallSeconds(10.0);
    opts.retry.initial_backoff = WallSeconds(2.0);
    opts.retry.multiplier = 2.0;
    opts.retry.max_backoff = WallSeconds(16.0);
    opts.retry.jitter = jitter;
    opts.retry.degrade_after = 3;
    opts.seed = 99;
    sender = std::make_unique<FrameSender>(
        queue, link, catalog, disk, estimator,
        [this](const Frame& f) {
          delivered.push_back({queue.now().seconds(), f.sequence});
        },
        opts);
  }

  void push(std::int64_t seq, double mb) {
    Frame f;
    f.sequence = seq;
    f.size = Bytes::megabytes(mb);
    f.sim_time = SimSeconds(static_cast<double>(seq));
    ASSERT_TRUE(disk.allocate(f.size));
    catalog.push(f);
  }

  void step_until_failures(std::int64_t n) {
    while (sender->transfer_failures() < n) ASSERT_TRUE(queue.step());
  }
};

TEST(SenderRetry, BackoffGrowsExponentiallyCapsAndDegrades) {
  FaultRig rig(/*failure_probability=*/1.0);
  rig.push(0, 4);
  rig.sender->start();

  rig.step_until_failures(1);
  EXPECT_TRUE(rig.sender->retry_pending());
  EXPECT_DOUBLE_EQ(rig.sender->current_backoff().seconds(), 2.0);
  EXPECT_FALSE(rig.sender->link_degraded());
  // The failed frame went back to the catalog head; disk stays allocated.
  EXPECT_EQ(rig.catalog.count(), 1u);
  EXPECT_EQ(rig.disk.used(), Bytes::megabytes(4));
  // A kick during backoff must not jump the queue.
  rig.sender->kick();
  EXPECT_FALSE(rig.sender->transfer_in_flight());

  rig.step_until_failures(2);
  EXPECT_DOUBLE_EQ(rig.sender->current_backoff().seconds(), 4.0);
  rig.step_until_failures(3);
  EXPECT_DOUBLE_EQ(rig.sender->current_backoff().seconds(), 8.0);
  EXPECT_TRUE(rig.sender->link_degraded());  // degrade_after = 3
  rig.step_until_failures(6);
  // 2 * 2^5 = 64 s, capped at 16 s.
  EXPECT_DOUBLE_EQ(rig.sender->current_backoff().seconds(), 16.0);

  // A dead link loses nothing: no delivery, no disk release, no EMA
  // sample, and the retry count tracks the re-attempts.
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.sender->frames_sent(), 0);
  EXPECT_EQ(rig.disk.used(), Bytes::megabytes(4));
  EXPECT_FALSE(rig.estimator.estimate().has_value());
  EXPECT_EQ(rig.sender->transfer_retries(), 5);
  EXPECT_EQ(rig.sender->consecutive_failures(), 6);
}

TEST(SenderRetry, FlakyLinkDeliversEveryFrameExactlyOnceInOrder) {
  FaultRig rig(/*failure_probability=*/0.3, /*link_seed=*/7,
               /*jitter=*/0.2);
  constexpr int kFrames = 30;
  for (int i = 0; i < kFrames; ++i) rig.push(i, 1.0 + (i % 5));
  rig.sender->start();
  rig.queue.run_until(WallSeconds::hours(3.0));

  ASSERT_EQ(rig.delivered.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) EXPECT_EQ(rig.delivered[i].second, i);
  // Failures actually fired (seed-dependent but deterministic) and every
  // byte was eventually released — exactly-once, zero loss.
  EXPECT_GT(rig.sender->transfer_failures(), 0);
  EXPECT_EQ(rig.sender->frames_sent(), kFrames);
  EXPECT_EQ(rig.disk.used(), Bytes(0));
  EXPECT_EQ(rig.catalog.count(), 0u);
  // The last transfer succeeded, so the escalation state is clear.
  EXPECT_EQ(rig.sender->consecutive_failures(), 0);
  EXPECT_FALSE(rig.sender->link_degraded());
  EXPECT_TRUE(rig.estimator.estimate().has_value());
}

TEST(SenderRetry, FixedSeedsReplayBitwiseIdentically) {
  auto run = [] {
    FaultRig rig(0.4, 11, 0.3);
    for (int i = 0; i < 12; ++i) rig.push(i, 2.0);
    rig.sender->start();
    rig.queue.run_until(WallSeconds::hours(2.0));
    return rig.delivered;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 12u);
  ASSERT_EQ(a, b);
}

TEST(SenderRetry, StopDuringBackoffKeepsFrameAndRestartResumes) {
  FaultRig rig(1.0);
  rig.push(0, 4);
  rig.sender->start();
  rig.step_until_failures(1);
  EXPECT_TRUE(rig.sender->retry_pending());
  rig.sender->stop();
  rig.queue.run_until(WallSeconds(1000.0));  // pending retry fires, no-ops
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.catalog.count(), 1u);
  EXPECT_EQ(rig.disk.used(), Bytes::megabytes(4));
}

TEST(SenderRetry, PolicyValidation) {
  FaultRig rig(0.0);
  auto make = [&](FrameSender::RetryPolicy retry) {
    FrameSender::Options opts;
    opts.retry = retry;
    return FrameSender(rig.queue, rig.link, rig.catalog, rig.disk,
                       rig.estimator, [](const Frame&) {}, opts);
  };
  EXPECT_THROW(make({.initial_backoff = WallSeconds(0.0)}),
               std::invalid_argument);
  EXPECT_THROW(make({.initial_backoff = WallSeconds(10.0),
                     .max_backoff = WallSeconds(5.0)}),
               std::invalid_argument);
  EXPECT_THROW(make({.multiplier = 0.5}), std::invalid_argument);
  EXPECT_THROW(make({.jitter = 1.0}), std::invalid_argument);
  EXPECT_THROW(make({.degrade_after = 0}), std::invalid_argument);
}

TEST(Sender, Validation) {
  Rig rig;
  EXPECT_THROW(FrameSender(rig.queue, rig.link, rig.catalog, rig.disk,
                           rig.estimator, nullptr),
               std::invalid_argument);
  EXPECT_THROW(FrameSender(
                   rig.queue, rig.link, rig.catalog, rig.disk, rig.estimator,
                   [](const Frame&) {}, WallSeconds(0.0)),
               std::invalid_argument);
}

TEST(Receiver, QueuesWhileRendering) {
  EventQueue queue;
  std::vector<double> visualized_at;
  FrameReceiver receiver(queue, [&](const Frame&) {
    visualized_at.push_back(queue.now().seconds());
    return WallSeconds(4.0);  // render cost
  });
  Frame f;
  f.sequence = 0;
  receiver.on_frame_arrival(f);
  f.sequence = 1;
  receiver.on_frame_arrival(f);  // arrives while #0 renders
  EXPECT_EQ(receiver.backlog(), 1u);
  queue.run_all();
  EXPECT_EQ(receiver.frames_received(), 2);
  EXPECT_EQ(receiver.frames_visualized(), 2);
  ASSERT_EQ(visualized_at.size(), 2u);
  EXPECT_NEAR(visualized_at[0], 0.0, 1e-9);
  EXPECT_NEAR(visualized_at[1], 4.0, 1e-9);  // starts after #0 finishes
}

TEST(Receiver, NullCallbackRejected) {
  EventQueue queue;
  EXPECT_THROW(FrameReceiver(queue, nullptr), std::invalid_argument);
  EXPECT_THROW(FrameReceiver(
                   queue, [](const Frame&) { return WallSeconds(1.0); }, 0),
               std::invalid_argument);
}

TEST(Receiver, ParallelWorkersDrainBacklogFaster) {
  // Four frames, 4-second renders. One worker: last done at 16 s.
  // Two workers: last done at 8 s.
  for (const auto& [workers, expect_end] : {std::pair{1, 16.0}, {2, 8.0}}) {
    EventQueue queue;
    FrameReceiver receiver(
        queue, [](const Frame&) { return WallSeconds(4.0); }, workers);
    for (int i = 0; i < 4; ++i) {
      Frame f;
      f.sequence = i;
      receiver.on_frame_arrival(f);
    }
    EXPECT_EQ(receiver.workers_busy(), std::min(workers, 4));
    queue.run_all();
    EXPECT_EQ(receiver.frames_visualized(), 4);
    EXPECT_DOUBLE_EQ(queue.now().seconds(), expect_end) << workers;
  }
}

TEST(Receiver, DispatchStaysInArrivalOrder) {
  EventQueue queue;
  std::vector<std::int64_t> order;
  FrameReceiver receiver(
      queue,
      [&order](const Frame& f) {
        order.push_back(f.sequence);
        return WallSeconds(2.0);
      },
      3);
  for (int i = 0; i < 6; ++i) {
    Frame f;
    f.sequence = i;
    receiver.on_frame_arrival(f);
  }
  queue.run_all();
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(Receiver, PooledRenderRunsOncePerFrameBeforeBookkeeping) {
  // With a pool and a RenderFn, every dispatched frame's heavy render runs
  // exactly once (possibly on a pool lane) before its serial bookkeeping
  // callback, and the virtual-time behavior is unchanged.
  EventQueue queue;
  ThreadPool pool(2);
  std::array<std::atomic<int>, 6> rendered{};
  std::vector<std::int64_t> order;
  FrameReceiver receiver(
      queue,
      [&](const Frame& f) {
        // The render must already have happened when bookkeeping fires.
        EXPECT_EQ(rendered[static_cast<std::size_t>(f.sequence)].load(), 1);
        order.push_back(f.sequence);
        return WallSeconds(2.0);
      },
      3, &pool,
      [&](const Frame& f) {
        rendered[static_cast<std::size_t>(f.sequence)].fetch_add(1);
      });
  for (int i = 0; i < 6; ++i) {
    Frame f;
    f.sequence = i;
    receiver.on_frame_arrival(f);
  }
  queue.run_all();
  EXPECT_EQ(receiver.frames_visualized(), 6);
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5}));
  for (const auto& r : rendered) EXPECT_EQ(r.load(), 1);
  EXPECT_DOUBLE_EQ(queue.now().seconds(), 4.0);  // two batches of 3 at 2 s
}

TEST(Receiver, BurstyArrivalsKeepBacklogAndBusyAccountsExact) {
  // Two workers, 4 s renders, a burst of five frames at t=0 and three more
  // landing mid-render at t=6: backlog() and workers_busy() must track the
  // queue through every dispatch batch.
  EventQueue queue;
  std::vector<std::int64_t> order;
  FrameReceiver receiver(
      queue,
      [&order](const Frame& f) {
        order.push_back(f.sequence);
        return WallSeconds(4.0);
      },
      2);
  for (int i = 0; i < 5; ++i) {
    Frame f;
    f.sequence = i;
    receiver.on_frame_arrival(f);
  }
  EXPECT_EQ(receiver.workers_busy(), 2);
  EXPECT_EQ(receiver.backlog(), 3u);
  queue.schedule_at(WallSeconds(5.0), [&] {
    // #0/#1 finished at t=4 and #2/#3 dispatched immediately.
    EXPECT_EQ(receiver.workers_busy(), 2);
    EXPECT_EQ(receiver.backlog(), 1u);
    EXPECT_EQ(receiver.frames_visualized(), 2);
  });
  queue.schedule_at(WallSeconds(6.0), [&] {
    for (int i = 5; i < 8; ++i) {
      Frame f;
      f.sequence = i;
      receiver.on_frame_arrival(f);
    }
    EXPECT_EQ(receiver.workers_busy(), 2);  // burst queues, doesn't preempt
    EXPECT_EQ(receiver.backlog(), 4u);
  });
  queue.run_all();
  EXPECT_EQ(receiver.frames_received(), 8);
  EXPECT_EQ(receiver.frames_visualized(), 8);
  EXPECT_EQ(receiver.workers_busy(), 0);
  EXPECT_EQ(receiver.backlog(), 0u);
  // Dispatch stayed in arrival order across both bursts.
  EXPECT_EQ(order, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Batches of two every 4 s: {0,1}@0 {2,3}@4 {4,5}@8 {6,7}@12, done at 16.
  EXPECT_DOUBLE_EQ(queue.now().seconds(), 16.0);
}

TEST(Estimator, EmaSmoothsAndProbeCounts) {
  BandwidthEstimator est(0.5);
  EXPECT_FALSE(est.estimate().has_value());
  est.record_probe(Bandwidth::megabytes_per_second(2));
  est.record_transfer(Bytes::megabytes(4), WallSeconds(1.0));
  EXPECT_NEAR(est.estimate()->bytes_per_sec(), 3e6, 1.0);
  EXPECT_EQ(est.observation_count(), 2u);
}

TEST(Estimator, DegenerateSamplesAreIgnoredNotFatal) {
  // A zero-byte frame or a zero-elapsed completion arrives from inside an
  // event-loop callback; throwing there would crash the run. The samples
  // carry no information, so they are dropped.
  BandwidthEstimator est(0.5);
  est.record_transfer(Bytes(1), WallSeconds(0.0));
  est.record_transfer(Bytes(1), WallSeconds(-1.0));
  est.record_transfer(Bytes(0), WallSeconds(5.0));
  EXPECT_FALSE(est.estimate().has_value());
  EXPECT_EQ(est.observation_count(), 0u);
  est.record_transfer(Bytes::megabytes(2), WallSeconds(1.0));
  EXPECT_NEAR(est.estimate()->bytes_per_sec(), 2e6, 1.0);
  // The degenerate samples left the EMA untouched.
  est.record_transfer(Bytes(1), WallSeconds(0.0));
  EXPECT_NEAR(est.estimate()->bytes_per_sec(), 2e6, 1.0);
  EXPECT_EQ(est.observation_count(), 1u);
}

}  // namespace
}  // namespace adaptviz
