// Tests for the persistent worker-pool runtime: coverage/disjointness of
// both schedulers, degenerate inputs, nested-call safety, concurrent
// callers, and clean shutdown with no leaked threads.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/parallel_for.hpp"

namespace adaptviz {
namespace {

// Counts this process's OS threads via /proc/self/task (Linux).
int os_thread_count() {
  int count = 0;
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  closedir(dir);
  return count;
}

// Runs a parallel_for and returns how many times each index was visited.
template <typename Launch>
std::vector<int> visit_counts(std::size_t n, const Launch& launch) {
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  launch([&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = hits[i].load();
  return out;
}

TEST(ThreadPool, EmptyRangeNeverCalls) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 4, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for(7, 3, 4, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for_chunked(5, 5, 4, 2,
                            [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    for (const int threads : {1, 2, 3, 8}) {
      const auto counts = visit_counts(n, [&](auto body) {
        pool.parallel_for(0, n, threads, body);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i], 1) << "n=" << n << " threads=" << threads
                                << " index=" << i;
      }
    }
  }
}

TEST(ThreadPool, ChunkedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const std::size_t chunk : {1u, 3u, 16u, 1000u}) {
    const std::size_t n = 257;
    const auto counts = visit_counts(n, [&](auto body) {
      pool.parallel_for_chunked(10, 10 + n, 4, chunk,
                                [&](std::size_t lo, std::size_t hi) {
                                  body(lo - 10, hi - 10);
                                });
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(counts[i], 1) << "chunk=" << chunk << " index=" << i;
    }
  }
}

TEST(ThreadPool, MoreThreadsThanRows) {
  ThreadPool pool(8);
  const std::size_t n = 3;
  const auto counts = visit_counts(
      n, [&](auto body) { pool.parallel_for(0, n, 64, body); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(ThreadPool, NonPositiveThreadsRunsSerially) {
  ThreadPool pool(2);
  for (const int threads : {0, -1, -100}) {
    int calls = 0;
    std::size_t lo = 99, hi = 0;
    pool.parallel_for(2, 12, threads, [&](std::size_t b, std::size_t e) {
      ++calls;
      lo = b;
      hi = e;
    });
    EXPECT_EQ(calls, 1);  // one inline call covering the whole range
    EXPECT_EQ(lo, 2u);
    EXPECT_EQ(hi, 12u);
  }
}

TEST(ThreadPool, ZeroWorkerPoolStillCompletes) {
  ThreadPool pool(0);
  const std::size_t n = 100;
  const auto counts = visit_counts(
      n, [&](auto body) { pool.parallel_for(0, n, 8, body); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested region must not deadlock; it runs inline on this lane.
      pool.parallel_for(0, 10, 4, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, ConcurrentTopLevelCallersSerialize) {
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr std::size_t kN = 512;
  std::vector<std::atomic<int>> hits(kCallers);
  for (auto& h : hits) h.store(0);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.parallel_for(0, kN, 4, [&](std::size_t lo, std::size_t hi) {
          hits[c].fetch_add(static_cast<int>(hi - lo));
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(hits[c].load(), 20 * static_cast<int>(kN));
  }
}

TEST(ThreadPool, RepeatedConstructionLeaksNoThreads) {
  const int before = os_thread_count();
  for (int rep = 0; rep < 32; ++rep) {
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.parallel_for(0, 100, 4, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(total.load(), 100);
  }
  // All workers joined in the destructors: the OS thread count is back to
  // where it started.
  const int after = os_thread_count();
  if (before > 0 && after > 0) EXPECT_EQ(after, before);
}

TEST(ThreadPool, SharedSingletonIsStable) {
  ThreadPool* a = &ThreadPool::shared();
  ThreadPool* b = &ThreadPool::shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->worker_count(), 1);
}

TEST(ParallelForRows, TemplateAndFunctionOverloadsAgree) {
  const std::size_t n = 37;
  const auto lambda_counts = visit_counts(n, [&](auto body) {
    parallel_for_rows(0, n, 4, body);  // templated fast path
  });
  const auto fn_counts = visit_counts(n, [&](auto body) {
    const std::function<void(std::size_t, std::size_t)> f = body;
    parallel_for_rows(0, n, 4, f);  // ABI-stable wrapper
  });
  EXPECT_EQ(lambda_counts, fn_counts);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(lambda_counts[i], 1);
}

TEST(ParallelForRows, SpawnBaselineCoversRange) {
  const std::size_t n = 53;
  const auto counts = visit_counts(n, [&](auto body) {
    parallel_for_rows_spawn(0, n, 4, body);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i], 1);
}

// The static partition must match the historical spawn-per-call partition:
// min(threads, n) bands of ceil(n / W), in-range, disjoint, ordered.
TEST(ThreadPool, StaticPartitionMatchesLegacyBands) {
  ThreadPool pool(7);
  const std::size_t n = 23;
  const int threads = 5;
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> bands;
  pool.parallel_for(0, n, threads, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(m);
    bands.emplace_back(lo, hi);
  });
  std::sort(bands.begin(), bands.end());
  ASSERT_EQ(bands.size(), 5u);  // ceil(23/5)=5 -> bands at 0,5,10,15,20
  for (std::size_t b = 0; b < bands.size(); ++b) {
    EXPECT_EQ(bands[b].first, b * 5);
    EXPECT_EQ(bands[b].second, std::min<std::size_t>(n, (b + 1) * 5));
  }
}

}  // namespace
}  // namespace adaptviz
