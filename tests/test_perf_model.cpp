#include "perf/perf_model.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

MachineSpec test_machine(double noise = 0.0) {
  return MachineSpec{.name = "test",
                     .max_cores = 64,
                     .min_cores = 4,
                     .serial_seconds = 2.0,
                     .work_seconds = 1500.0,
                     .comm_seconds = 0.4,
                     .noise_sigma = noise};
}

TEST(Profiler, SamplesSpanTheMachine) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler;
  const ProfileData data = profiler.profile(m, 1.0);
  ASSERT_GE(data.samples.size(), 4u);
  EXPECT_EQ(data.samples.front().processors, 4);
  EXPECT_EQ(data.samples.back().processors, 64);
}

TEST(Profiler, ExplicitCountsRespected) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler(ProfilerConfig{.processor_counts = {4, 16, 64},
                                            .steps_per_sample = 5});
  const ProfileData data = profiler.profile(m, 1.0);
  ASSERT_EQ(data.samples.size(), 3u);
  EXPECT_NEAR(data.samples[0].seconds_per_step,
              m.expected_step_time(4, 1.0).seconds(), 1e-9);
  // Profiling at a different workload normalizes per work unit; serial and
  // comm terms make that an approximation, not an identity.
  const ProfileData heavy = profiler.profile(m, 2.0);
  EXPECT_NEAR(heavy.samples[0].seconds_per_step,
              data.samples[0].seconds_per_step,
              0.02 * data.samples[0].seconds_per_step);
}

TEST(Profiler, Validation) {
  EXPECT_THROW(BenchmarkProfiler(ProfilerConfig{.steps_per_sample = 0}),
               std::invalid_argument);
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler p;
  EXPECT_THROW((void)p.profile(m, 0.0), std::invalid_argument);
}

TEST(PerfModel, RecoversGroundTruthWithoutNoise) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler;
  const PerformanceModel model(profiler.profile(m, 1.0), 64);
  for (int p : {4, 10, 32, 64}) {
    const double truth = m.expected_step_time(p, 1.0).seconds();
    EXPECT_NEAR(model.step_time(p, 1.0).seconds(), truth, 1e-6) << p;
  }
  // Work scaling is multiplicative.
  EXPECT_NEAR(model.step_time(16, 3.0).seconds(),
              3.0 * model.step_time(16, 1.0).seconds(), 1e-9);
}

TEST(PerfModel, NoisyProfileStillClose) {
  GroundTruthMachine m(test_machine(0.05), 99);
  BenchmarkProfiler profiler(ProfilerConfig{.steps_per_sample = 50});
  const PerformanceModel model(profiler.profile(m, 1.0), 64);
  for (int p : {4, 16, 64}) {
    const double truth = m.expected_step_time(p, 1.0).seconds();
    EXPECT_NEAR(model.step_time(p, 1.0).seconds(), truth, 0.1 * truth) << p;
  }
}

TEST(PerfModel, FastestAndSlowest) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler;
  const PerformanceModel model(profiler.profile(m, 1.0), 64);
  EXPECT_NEAR(model.fastest_step_time(1.0).seconds(),
              m.expected_step_time(64, 1.0).seconds(), 0.5);
  EXPECT_NEAR(model.slowest_step_time(1.0, 4).seconds(),
              m.expected_step_time(4, 1.0).seconds(), 0.5);
  EXPECT_LT(model.fastest_step_time(1.0), model.slowest_step_time(1.0, 4));
}

TEST(PerfModel, ProcessorsForInvertsStepTime) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler;
  const PerformanceModel model(profiler.profile(m, 1.0), 64);
  const WallSeconds target = model.step_time(24, 1.0);
  const int p = model.processors_for(target, 1.0);
  EXPECT_LE(model.step_time(p, 1.0).seconds(), target.seconds() + 1e-9);
  EXPECT_LE(p, 24);
  // Impossible target returns the whole machine.
  EXPECT_EQ(model.processors_for(WallSeconds(1e-6), 1.0), 64);
}

TEST(PerfModel, Validation) {
  GroundTruthMachine m(test_machine(), 1);
  BenchmarkProfiler profiler;
  const ProfileData data = profiler.profile(m, 1.0);
  EXPECT_THROW(PerformanceModel(data, 0), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
