#include "weather/track_metrics.hpp"

#include <gtest/gtest.h>

#include "weather/model.hpp"

namespace adaptviz {
namespace {

std::vector<TrackPoint> straight_track() {
  // Due north at 1 degree per 6 hours along 88E, deepening 2 hPa per point.
  std::vector<TrackPoint> t;
  for (int k = 0; k <= 8; ++k) {
    t.push_back(TrackPoint{SimSeconds::hours(6.0 * k),
                           LatLon{14.0 + k, 88.0}, 1000.0 - 2.0 * k,
                           15.0 + k});
  }
  return t;
}

TEST(TrackInterp, ExactAtNodesLinearBetween) {
  const auto t = straight_track();
  const TrackPoint at12 = interpolate_track(t, SimSeconds::hours(12.0));
  EXPECT_DOUBLE_EQ(at12.eye.lat, 16.0);
  EXPECT_DOUBLE_EQ(at12.min_pressure_hpa, 996.0);
  const TrackPoint at15 = interpolate_track(t, SimSeconds::hours(15.0));
  EXPECT_DOUBLE_EQ(at15.eye.lat, 16.5);
  EXPECT_DOUBLE_EQ(at15.min_pressure_hpa, 995.0);
  EXPECT_DOUBLE_EQ(at15.max_wind_ms, 17.5);
}

TEST(TrackInterp, ClampsOutsideSpan) {
  const auto t = straight_track();
  EXPECT_DOUBLE_EQ(interpolate_track(t, SimSeconds::hours(-5.0)).eye.lat,
                   14.0);
  EXPECT_DOUBLE_EQ(interpolate_track(t, SimSeconds::hours(500.0)).eye.lat,
                   22.0);
  EXPECT_THROW(interpolate_track({}, SimSeconds(0.0)), std::invalid_argument);
}

TEST(TrackVerify, ZeroErrorAgainstItself) {
  const auto t = straight_track();
  const auto errors = verify_track(t, t);
  ASSERT_EQ(errors.size(), t.size());
  for (const auto& e : errors) {
    EXPECT_NEAR(e.position_error_km, 0.0, 1e-9);
    EXPECT_NEAR(e.pressure_error_hpa, 0.0, 1e-9);
  }
  EXPECT_NEAR(mean_position_error_km(errors), 0.0, 1e-9);
}

TEST(TrackVerify, KnownOffset) {
  const auto sim = straight_track();
  auto ref = straight_track();
  for (auto& p : ref) p.eye.lat += 1.0;  // 1 degree north = ~111 km
  const auto errors = verify_track(sim, ref);
  ASSERT_FALSE(errors.empty());
  EXPECT_NEAR(mean_position_error_km(errors), kKmPerDegree, 0.5);
}

TEST(TrackVerify, SkipsPointsOutsideSimSpan) {
  const auto sim = straight_track();  // 0..48 h
  std::vector<TrackPoint> ref{
      TrackPoint{SimSeconds::hours(-6.0), LatLon{13.0, 88.0}, 1004.0, 10.0},
      TrackPoint{SimSeconds::hours(24.0), LatLon{18.0, 88.0}, 992.0, 19.0},
      TrackPoint{SimSeconds::hours(96.0), LatLon{30.0, 88.0}, 1004.0, 8.0},
  };
  const auto errors = verify_track(sim, ref);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NEAR(errors[0].position_error_km, 0.0, 1e-9);
  EXPECT_THROW(mean_position_error_km({}), std::invalid_argument);
}

TEST(TrackVerify, SimulatedAilaStaysNearReference) {
  // End-to-end: the simulated storm should track the coarse Aila reference
  // within a couple of hundred kilometres on average — the same qualitative
  // agreement the paper's Fig 4 demonstrates.
  ModelConfig cfg;
  cfg.compute_scale = 10.0;
  WeatherModel m(cfg);
  while (m.sim_time() < SimSeconds::hours(60.0)) {
    m.step();
    if (m.resolution_change_pending()) {
      m.set_modeled_resolution(m.recommended_resolution_km());
    }
  }
  const auto errors =
      verify_track(m.tracker().track(), aila_reference_track());
  ASSERT_GE(errors.size(), 4u);
  EXPECT_LT(mean_position_error_km(errors), 250.0);
  // Deepening trend agrees too: pressure error within ~8 hPa everywhere.
  for (const auto& e : errors) {
    EXPECT_LT(std::abs(e.pressure_error_hpa), 8.0)
        << "at t=" << e.time.as_hours();
  }
}

}  // namespace
}  // namespace adaptviz
