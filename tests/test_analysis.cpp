#include "weather/analysis.hpp"

#include <gtest/gtest.h>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

TEST(Steering, TransitionsEarlyToLate) {
  SteeringProfile s;  // defaults
  EXPECT_NEAR(s.v(SimSeconds::hours(0)), s.v_early, 0.1);
  EXPECT_NEAR(s.v(SimSeconds::hours(60)), s.v_late, 0.1);
  EXPECT_NEAR(s.u(SimSeconds::hours(0)), s.u_early, 0.1);
  // Midpoint of the sigmoid.
  EXPECT_NEAR(s.v(SimSeconds::hours(s.transition_hour)),
              0.5 * (s.v_early + s.v_late), 1e-9);
  // Monotone northward strengthening.
  double prev = s.v(SimSeconds::hours(0));
  for (int h = 4; h <= 60; h += 4) {
    const double cur = s.v(SimSeconds::hours(h));
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(Analysis, OneDegreeGrid) {
  const AnalysisConfig cfg;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  EXPECT_EQ(a.grid().nx(), 61u);
  EXPECT_EQ(a.grid().ny(), 51u);
  EXPECT_DOUBLE_EQ(a.grid().resolution_km(), kKmPerDegree);
}

TEST(Analysis, ContainsBogusDepression) {
  const AnalysisConfig cfg;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  const DomainState& s = a.coarse_state();
  // Minimum height near the configured vortex centre.
  double hmin = 1e300;
  std::size_t bi = 0, bj = 0;
  for (std::size_t j = 0; j < s.grid.ny(); ++j)
    for (std::size_t i = 0; i < s.grid.nx(); ++i)
      if (s.h(i, j) < hmin) {
        hmin = s.h(i, j);
        bi = i;
        bj = j;
      }
  EXPECT_LT(distance_km(s.grid.at(bi, bj), cfg.initial_vortex.center), 250.0);
  EXPECT_LT(hmin, -0.3 * cfg.initial_vortex.deficit_hpa / kHpaPerMetre);
}

TEST(Analysis, PerturbationsAreBounded) {
  AnalysisConfig cfg;
  cfg.perturbation_m = 2.0;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  // Far from the vortex the field is pure perturbation: within ~5 modes
  // of the configured amplitude.
  const DomainState& s = a.coarse_state();
  EXPECT_LT(std::abs(s.h(0, 0)), 5 * cfg.perturbation_m + 1e-9);
}

TEST(Analysis, DeterministicPerSeed) {
  AnalysisConfig cfg;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  const auto b = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  EXPECT_EQ(a.coarse_state().h, b.coarse_state().h);
  cfg.seed += 1;
  const auto c = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  EXPECT_NE(a.coarse_state().h, c.coarse_state().h);
}

TEST(Preprocess, InterpolatesOntoFinerGrid) {
  const AnalysisConfig cfg;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  const GridSpec fine(80.0, 5.0, 20.0, 20.0, 50.0);
  const DomainState s = preprocess(a, fine);
  EXPECT_EQ(s.grid, fine);
  // Values at shared locations agree closely with the coarse analysis.
  const GridSpec& cg = a.grid();
  const LatLon p{12.0, 86.0};
  const double coarse_val =
      a.coarse_state().h.sample(cg.x_of_lon(p.lon), cg.y_of_lat(p.lat));
  const double fine_val =
      s.h.sample(fine.x_of_lon(p.lon), fine.y_of_lat(p.lat));
  EXPECT_NEAR(fine_val, coarse_val, 1.5);
}

TEST(Preprocess, DepressionSurvivesInterpolation) {
  const AnalysisConfig cfg;
  const auto a = SyntheticAnalysis::generate(60, -10, 60, 50, cfg);
  const GridSpec fine(82.0, 8.0, 14.0, 14.0, 40.0);
  const DomainState s = preprocess(a, fine);
  EXPECT_LT(s.h.min(), -0.25 * cfg.initial_vortex.deficit_hpa / kHpaPerMetre);
}

}  // namespace
}  // namespace adaptviz
