#include "numerics/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace adaptviz {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  Matrix at = a.transpose();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  const std::vector<double> v = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, IdentityAndAddSub) {
  Matrix i = Matrix::identity(3);
  Matrix a(3, 3, 2.0);
  Matrix s = a + i;
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 2.0);
  Matrix d = s - i;
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
}

TEST(LuSolve, KnownSystem) {
  Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  const std::vector<double> x = lu_solve(a, {8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, {1, 2}), std::runtime_error);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> x = lu_solve(a, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LeastSquares, ExactOnSquareSystem) {
  Matrix a{{1, 1}, {1, 2}};
  const std::vector<double> x = least_squares(a, {3, 5});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedLineFit) {
  // Fit y = 2x + 1 through noisy-free points: exact recovery.
  Matrix a(5, 2);
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 1.0 + 2.0 * i;
  }
  const std::vector<double> x = least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquares, RankDeficientThrows) {
  Matrix a(4, 2);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is a multiple of the first
  }
  EXPECT_THROW(least_squares(a, {1, 2, 3, 4}), std::runtime_error);
}

// Property sweep: random well-conditioned systems solve to small residual.
class LuSolveRandom : public testing::TestWithParam<int> {};

TEST_P(LuSolveRandom, ResidualIsSmall) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + GetParam() % 7;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const std::vector<double> x = lu_solve(a, b);
  const std::vector<double> ax = a * x;
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) resid += std::fabs(ax[i] - b[i]);
  EXPECT_LT(resid, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, LuSolveRandom, testing::Range(0, 25));

// Property sweep: least-squares solution satisfies the normal equations.
class LeastSquaresRandom : public testing::TestWithParam<int> {};

TEST_P(LeastSquaresRandom, SatisfiesNormalEquations) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 6 + GetParam() % 10;
  const std::size_t n = 2 + GetParam() % 4;
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
  std::vector<double> b(m);
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);

  const std::vector<double> x = least_squares(a, b);
  // A^T (A x - b) == 0.
  const std::vector<double> ax = a * x;
  std::vector<double> r(m);
  for (std::size_t i = 0; i < m; ++i) r[i] = ax[i] - b[i];
  const Matrix at = a.transpose();
  const std::vector<double> atr = at * r;
  EXPECT_LT(norm2(atr), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, LeastSquaresRandom,
                         testing::Range(0, 25));

}  // namespace
}  // namespace adaptviz
