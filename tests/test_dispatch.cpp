// Distributed dispatch tests: the record/manifest wire codec round-trips
// exactly, and the coordinator/worker split over real processes produces
// a campaign_summary.csv bitwise-identical to the in-process
// CampaignRunner — through worker crashes (re-dispatch), coordinator
// restarts (resume-from-manifest), and truncated per-run CSVs.
//
// The worker binary is the real tool: ADAPTVIZ_SWEEP_BIN is the built
// adaptviz_sweep, ADAPTVIZ_SCENARIO_DIR the source scenarios/ directory.
#include "campaign/dispatch.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"

namespace adaptviz {
namespace {

namespace fs = std::filesystem;

std::string smoke_ini() {
  return std::string(ADAPTVIZ_SCENARIO_DIR) + "/sweep_smoke.ini";
}

std::vector<std::string> worker_command() {
  return {ADAPTVIZ_SWEEP_BIN};
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Fresh scratch dir per test, removed up front so reruns start clean.
fs::path scratch_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / "adaptviz_dispatch_tests" /
                       name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The reference output: the in-process CampaignRunner on the same
/// campaign. Computed once per test that needs it (sub-second runs).
std::string in_process_summary(const fs::path& dir) {
  CampaignOptions options;
  options.output_dir = dir.string();
  CampaignRunner runner(options);
  runner.run(load_campaign(smoke_ini()));
  return slurp(dir / "campaign_summary.csv");
}

CampaignRunRecord nasty_record() {
  CampaignRunRecord r;
  r.label = "cells with spaces, commas & 100%";
  r.site = "intra country\n(second line)";
  r.algorithm = static_cast<AlgorithmKind>(42);  // invalid enums survive
  r.seed = 0xFFFFFFFFFFFFFFFFull;
  r.disk_gb = 0.1;  // not exactly representable: hexfloat must round-trip
  r.failure_rate = 1.0 / 3.0;
  r.codec_enabled = true;
  r.failed = true;
  r.error = "worker crashed (3 attempts) \"quoted\"";
  r.summary.completed = true;
  r.summary.wall_elapsed = WallSeconds(118085.7301234567);
  r.summary.sim_reached = SimSeconds(86400.0000001);
  r.summary.peak_disk_used = Bytes(29999999999);
  r.summary.min_free_disk_percent = 0.23456789012345678;
  r.summary.frames_written = 276;
  r.summary.transfer_retries = 12;
  r.summary.codec_mean_ratio = 2.0 / 7.0;
  r.summary.tree_origin_wan_bytes = Bytes(1234567890123);
  return r;
}

// ---- codec ----

TEST(DispatchCodec, RunRecordRoundTripsExactly) {
  const CampaignRunRecord a = nasty_record();
  const CampaignRunRecord b = decode_run_record(encode_run_record(a));

  EXPECT_EQ(b.label, a.label);
  EXPECT_EQ(b.site, a.site);
  EXPECT_EQ(b.algorithm, a.algorithm);
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.disk_gb, a.disk_gb);  // exact, not near: hexfloat transport
  EXPECT_EQ(b.failure_rate, a.failure_rate);
  EXPECT_EQ(b.codec_enabled, a.codec_enabled);
  EXPECT_EQ(b.failed, a.failed);
  EXPECT_EQ(b.error, a.error);
  EXPECT_EQ(b.summary.completed, a.summary.completed);
  EXPECT_EQ(b.summary.wall_elapsed.seconds(), a.summary.wall_elapsed.seconds());
  EXPECT_EQ(b.summary.sim_reached.seconds(), a.summary.sim_reached.seconds());
  EXPECT_EQ(b.summary.peak_disk_used.count(), a.summary.peak_disk_used.count());
  EXPECT_EQ(b.summary.min_free_disk_percent, a.summary.min_free_disk_percent);
  EXPECT_EQ(b.summary.frames_written, a.summary.frames_written);
  EXPECT_EQ(b.summary.transfer_retries, a.summary.transfer_retries);
  EXPECT_EQ(b.summary.codec_mean_ratio, a.summary.codec_mean_ratio);
  EXPECT_EQ(b.summary.tree_origin_wan_bytes.count(),
            a.summary.tree_origin_wan_bytes.count());

  // The summary CSV row — the artifact the byte-identity guarantee is
  // stated on — must be identical through the codec.
  EXPECT_EQ(campaign_summary_row(a), campaign_summary_row(b));
  // The encoded line is pipe-protocol safe.
  EXPECT_EQ(encode_run_record(a).find('\n'), std::string::npos);
}

TEST(DispatchCodec, ManifestEntryCarriesIndexAndFileStamps) {
  ManifestEntry entry;
  entry.index = 17;
  entry.record = nasty_record();
  entry.files = {{"run one_samples.csv", 48211}, {"run one_summary.ini", 512}};

  const ManifestEntry back = decode_manifest_entry(encode_manifest_entry(entry));
  EXPECT_EQ(back.index, 17u);
  ASSERT_EQ(back.files.size(), 2u);
  EXPECT_EQ(back.files[0].path, "run one_samples.csv");
  EXPECT_EQ(back.files[0].bytes, 48211);
  EXPECT_EQ(back.files[1].path, "run one_summary.ini");
  EXPECT_EQ(back.files[1].bytes, 512);
  EXPECT_EQ(campaign_summary_row(back.record),
            campaign_summary_row(entry.record));
}

TEST(DispatchCodec, MalformedLinesThrow) {
  EXPECT_THROW(decode_run_record("label=x bogus_key=1"), std::runtime_error);
  EXPECT_THROW(decode_run_record("label=%ZZ"), std::runtime_error);
  EXPECT_THROW(decode_run_record("seed=notanumber"), std::runtime_error);
  EXPECT_THROW(decode_manifest_entry("files= label=x"), std::runtime_error);
}

// ---- manifest document ----

TEST(CampaignManifest, JsonRoundTripsAndLoadNeverThrows) {
  CampaignManifest m;
  m.campaign = "sweep \"smoke\"";
  m.grid = 4;
  ManifestEntry entry;
  entry.index = 2;
  entry.record = nasty_record();
  entry.files = {{"a_samples.csv", 123}};
  m.upsert(entry);

  const CampaignManifest back = CampaignManifest::from_json(m.to_json());
  EXPECT_EQ(back.campaign, m.campaign);
  EXPECT_EQ(back.grid, 4u);
  ASSERT_EQ(back.entries.count(2), 1u);
  const ManifestEntry& e = back.entries.at(2);
  ASSERT_EQ(e.files.size(), 1u);
  EXPECT_EQ(e.files[0].path, "a_samples.csv");
  EXPECT_EQ(e.files[0].bytes, 123);
  EXPECT_EQ(campaign_summary_row(e.record),
            campaign_summary_row(entry.record));

  const fs::path dir = scratch_dir("manifest_load");
  EXPECT_FALSE(CampaignManifest::load((dir / "absent.json").string())
                   .has_value());
  std::ofstream(dir / "torn.json") << "{\"version\": 1, \"campaign";
  EXPECT_FALSE(CampaignManifest::load((dir / "torn.json").string())
                   .has_value());

  m.save((dir / "m.json").string());
  const auto loaded = CampaignManifest::load((dir / "m.json").string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->entries.size(), 1u);
}

TEST(CampaignManifest, OutputIntactRejectsTruncationAndResizing) {
  const fs::path dir = scratch_dir("intact");
  std::ofstream(dir / "r_samples.csv", std::ios::binary) << "h1,h2\n1,2\n";

  ManifestEntry entry;
  entry.files = {{"r_samples.csv", 10}};
  EXPECT_TRUE(entry_output_intact(entry, dir.string()));

  entry.files[0].bytes = 9;  // size mismatch
  EXPECT_FALSE(entry_output_intact(entry, dir.string()));

  // Mid-row truncation with a colliding stamp: the trailing-newline
  // marker catches what the byte count alone would miss.
  std::ofstream(dir / "r_samples.csv", std::ios::binary) << "h1,h2\n1,2,";
  entry.files[0].bytes = 10;
  EXPECT_FALSE(entry_output_intact(entry, dir.string()));

  entry.files[0].path = "gone.csv";
  EXPECT_FALSE(entry_output_intact(entry, dir.string()));
}

// ---- worker protocol (in-process, no fork) ----

TEST(DispatchWorker, SpeaksHelloRowExit) {
  const fs::path dir = scratch_dir("worker_proto");
  WorkerOptions options;
  options.campaign_path = smoke_ini();
  options.output_dir = dir.string();

  std::istringstream in("TASK 2\nEXIT\n");
  std::ostringstream out;
  EXPECT_EQ(run_dispatch_worker(options, in, out), 0);

  std::istringstream lines(out.str());
  std::string hello, row;
  ASSERT_TRUE(std::getline(lines, hello));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(hello, "HELLO v1 grid=4");
  ASSERT_EQ(row.rfind("ROW ", 0), 0u);

  const ManifestEntry entry = decode_manifest_entry(row.substr(4));
  EXPECT_EQ(entry.index, 2u);
  EXPECT_FALSE(entry.record.failed);
  EXPECT_FALSE(entry.files.empty());
  // The worker stamped exactly the files it renamed into place, and each
  // passes the integrity check it will be held to on resume.
  EXPECT_TRUE(entry_output_intact(entry, dir.string()));
  // No scratch dir left behind.
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_NE(e.path().filename().string().rfind(".tmp-", 0), 0u);
  }
}

TEST(DispatchWorker, RejectsBadCommandsWithErr) {
  const fs::path dir = scratch_dir("worker_err");
  WorkerOptions options;
  options.campaign_path = smoke_ini();
  options.output_dir = dir.string();

  std::istringstream in("TASK 99\n");
  std::ostringstream out;
  EXPECT_EQ(run_dispatch_worker(options, in, out), 2);
  EXPECT_NE(out.str().find("ERR "), std::string::npos);
}

// ---- coordinator integration (real worker processes) ----

TEST(DispatchIntegration, TwoWorkersMatchInProcessRunnerBitwise) {
  const fs::path ref = scratch_dir("ref_inproc");
  const fs::path dist = scratch_dir("dist_clean");
  const std::string expected = in_process_summary(ref);

  DispatchOptions options;
  options.workers = 2;
  options.output_dir = dist.string();
  CampaignDispatcher dispatcher(worker_command(), options);
  const DispatchResult result = dispatcher.run(smoke_ini());

  ASSERT_EQ(result.records.size(), 4u);
  EXPECT_EQ(result.executed, 4u);
  EXPECT_EQ(result.resumed, 0u);
  for (const CampaignRunRecord& r : result.records) {
    EXPECT_FALSE(r.failed) << r.label << ": " << r.error;
  }
  EXPECT_EQ(slurp(dist / "campaign_summary.csv"), expected);

  // Per-run CSVs are the same bytes the in-process runner wrote.
  for (const auto& e : fs::directory_iterator(ref)) {
    const std::string name = e.path().filename().string();
    if (name == "campaign_summary.csv") continue;
    EXPECT_EQ(slurp(dist / name), slurp(e.path())) << name;
  }

  EXPECT_EQ(result.metrics.counter_or("dispatch.tasks_completed", 0), 4);
  EXPECT_EQ(result.metrics.counter_or("dispatch.worker_failures", 0), 0);
  EXPECT_EQ(result.metrics.counter_or("dispatch.duplicate_rows", 0), 0);
  EXPECT_GE(result.metrics.counter_or("dispatch.workers_spawned", 0), 2);
  EXPECT_TRUE(fs::exists(dist / "campaign_manifest.json"));
  EXPECT_TRUE(fs::exists(dist / "dispatch_metrics.json"));
}

TEST(DispatchIntegration, KilledWorkerIsRedispatchedAndSummaryIdentical) {
  const fs::path ref = scratch_dir("ref_crash");
  const fs::path dist = scratch_dir("dist_crash");
  const std::string expected = in_process_summary(ref);

  DispatchOptions options;
  options.workers = 2;
  options.output_dir = dist.string();
  options.crash_inject_worker = 0;  // first worker dies on its first TASK
  options.retry.initial_backoff = WallSeconds(0.05);
  CampaignDispatcher dispatcher(worker_command(), options);
  const DispatchResult result = dispatcher.run(smoke_ini());

  for (const CampaignRunRecord& r : result.records) {
    EXPECT_FALSE(r.failed) << r.label << ": " << r.error;
  }
  EXPECT_EQ(slurp(dist / "campaign_summary.csv"), expected);
  EXPECT_GE(result.metrics.counter_or("dispatch.worker_failures", 0), 1);
  EXPECT_GE(result.metrics.counter_or("dispatch.tasks_redispatched", 0), 1);
  // The crashed task completed exactly once despite the re-dispatch.
  EXPECT_EQ(result.metrics.counter_or("dispatch.tasks_completed", 0), 4);
}

TEST(DispatchIntegration, CrashEveryAttemptYieldsTerminalFailedRow) {
  const fs::path dist = scratch_dir("dist_fail");

  DispatchOptions options;
  options.workers = 1;
  options.output_dir = dist.string();
  options.crash_inject_worker = 0;
  options.max_task_attempts = 1;     // first crash is terminal
  options.worker_respawn_budget = 2;
  options.retry.initial_backoff = WallSeconds(0.05);
  CampaignDispatcher dispatcher(worker_command(), options);
  const DispatchResult result = dispatcher.run(smoke_ini());

  ASSERT_EQ(result.records.size(), 4u);  // rows == grid, failure included
  std::size_t failed = 0;
  for (const CampaignRunRecord& r : result.records) failed += r.failed ? 1 : 0;
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(result.metrics.counter_or("dispatch.tasks_failed", 0), 1);
  EXPECT_NE(result.records[0].error.find("worker crashed"),
            std::string::npos);
}

TEST(DispatchIntegration, ResumeReexecutesOnlyMissingRuns) {
  const fs::path dist = scratch_dir("dist_resume");

  DispatchOptions options;
  options.workers = 2;
  options.output_dir = dist.string();
  CampaignDispatcher dispatcher(worker_command(), options);
  const DispatchResult first = dispatcher.run(smoke_ini());
  ASSERT_EQ(first.executed, 4u);
  const std::string summary = slurp(dist / "campaign_summary.csv");

  // Simulate a coordinator that died after two runs: drop two manifest
  // entries, keep the outputs on disk.
  const std::string manifest_path =
      (dist / CampaignManifest::filename()).string();
  auto manifest = CampaignManifest::load(manifest_path);
  ASSERT_TRUE(manifest.has_value());
  manifest->entries.erase(1);
  manifest->entries.erase(3);
  manifest->save(manifest_path);

  const DispatchResult second = dispatcher.run(smoke_ini());
  EXPECT_EQ(second.resumed, 2u);
  EXPECT_EQ(second.executed, 2u);  // only the dropped runs re-ran
  EXPECT_EQ(second.metrics.counter_or("dispatch.tasks_dispatched", 0), 2);
  EXPECT_EQ(slurp(dist / "campaign_summary.csv"), summary);
}

TEST(DispatchIntegration, ResumeReexecutesTruncatedPerRunCsv) {
  const fs::path dist = scratch_dir("dist_truncate");

  DispatchOptions options;
  options.workers = 2;
  options.output_dir = dist.string();
  CampaignDispatcher dispatcher(worker_command(), options);
  const DispatchResult first = dispatcher.run(smoke_ini());
  ASSERT_EQ(first.executed, 4u);
  const std::string summary = slurp(dist / "campaign_summary.csv");

  // Crash-style damage: one run's samples CSV cut off mid-row (no
  // trailing newline), another's reduced to its header. The manifest
  // still lists both runs as complete.
  const std::string label = first.records[2].label;
  const fs::path samples = dist / (label + "_samples.csv");
  const std::string intact_bytes = slurp(samples);
  std::ofstream(samples, std::ios::binary | std::ios::trunc)
      << intact_bytes.substr(0, intact_bytes.size() / 2);

  const DispatchResult second = dispatcher.run(smoke_ini());
  EXPECT_EQ(second.resumed, 3u);
  EXPECT_EQ(second.executed, 1u);
  EXPECT_EQ(slurp(samples), intact_bytes);  // re-run restored the bytes
  EXPECT_EQ(slurp(dist / "campaign_summary.csv"), summary);
}

// ---- sweep CLI exit codes ----

int run_cli(const std::string& args, const fs::path& log) {
  const std::string cmd = std::string(ADAPTVIZ_SWEEP_BIN) + " " + args +
                          " > " + log.string() + " 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SweepCli, ExitCodeReflectsFailedRunsNotJustIncompleteOnes) {
  const fs::path clean = scratch_dir("cli_clean");
  const fs::path log = clean / "cli.log";
  EXPECT_EQ(run_cli(smoke_ini() + " " + clean.string() + " --workers 2", log),
            0);

  // One injected crash with a one-attempt cap: the run becomes a failed
  // row, the binary must exit 1 and name the run.
  const fs::path crash = scratch_dir("cli_crash");
  const fs::path crash_log = crash / "cli.log";
  EXPECT_EQ(run_cli(smoke_ini() + " " + crash.string() +
                        " --workers 1 --crash-inject-worker 0"
                        " --max-task-attempts 1",
                    crash_log),
            1);
  const std::string output = slurp(crash_log);
  EXPECT_NE(output.find("failed runs:"), std::string::npos);
  EXPECT_NE(output.find("worker crashed"), std::string::npos);

  EXPECT_EQ(run_cli("/nonexistent.ini", log), 2);  // fatal, not per-run
}

}  // namespace
}  // namespace adaptviz
