#include "util/ini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adaptviz {
namespace {

TEST(Ini, ParsesSectionsAndValues) {
  const auto doc = IniDocument::parse(
      "# comment\n"
      "[application]\n"
      "processors = 48\n"
      "ratio = 2.5\n"
      "name = fire cluster\n"
      "; another comment\n"
      "[other]\n"
      "flag = true\n");
  EXPECT_EQ(doc.get_int("application", "processors"), 48);
  EXPECT_EQ(doc.get_double("application", "ratio"), 2.5);
  EXPECT_EQ(doc.get("application", "name"), "fire cluster");
  EXPECT_EQ(doc.get_bool("other", "flag"), true);
}

TEST(Ini, MissingKeysReturnNullopt) {
  const auto doc = IniDocument::parse("[a]\nk = 1\n");
  EXPECT_FALSE(doc.get("a", "missing").has_value());
  EXPECT_FALSE(doc.get("nosection", "k").has_value());
  EXPECT_EQ(doc.get_or("a", "missing", "fallback"), "fallback");
}

TEST(Ini, TypedGettersThrowOnMalformed) {
  const auto doc = IniDocument::parse("[a]\nk = notanumber\nb = maybe\n");
  EXPECT_THROW((void)doc.get_int("a", "k"), std::runtime_error);
  EXPECT_THROW((void)doc.get_double("a", "k"), std::runtime_error);
  EXPECT_THROW((void)doc.get_bool("a", "b"), std::runtime_error);
}

TEST(Ini, ParseErrorsCarryLineNumbers) {
  try {
    (void)IniDocument::parse("[a]\nvalid = 1\nnot-a-kv-line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
  EXPECT_THROW((void)IniDocument::parse("[unclosed\n"), std::runtime_error);
  EXPECT_THROW((void)IniDocument::parse("= value\n"), std::runtime_error);
}

TEST(Ini, RoundTripsThroughStr) {
  IniDocument doc;
  doc.set("s", "key", "value");
  doc.set_int("s", "n", -42);
  doc.set_double("s", "d", 0.125);
  doc.set_bool("s", "b", true);
  const IniDocument again = IniDocument::parse(doc.str());
  EXPECT_EQ(doc, again);
  EXPECT_EQ(again.get_int("s", "n"), -42);
  EXPECT_EQ(again.get_double("s", "d"), 0.125);
}

TEST(Ini, PreservesExactDoubles) {
  IniDocument doc;
  doc.set_double("s", "pi", 3.14159265358979311600);
  const auto again = IniDocument::parse(doc.str());
  EXPECT_DOUBLE_EQ(*again.get_double("s", "pi"), 3.14159265358979311600);
}

TEST(Ini, SaveAndLoadFile) {
  const std::string path = testing::TempDir() + "/adaptviz_ini_test.ini";
  IniDocument doc;
  doc.set("application", "key", "value with spaces");
  doc.save(path);
  const auto loaded = IniDocument::load(path);
  EXPECT_EQ(loaded.get("application", "key"), "value with spaces");
  std::remove(path.c_str());
  EXPECT_THROW((void)IniDocument::load(path), std::runtime_error);
}

TEST(Ini, WhitespaceIsTrimmed) {
  const auto doc = IniDocument::parse("  [ sec ]  \n  key  =  value  \n");
  EXPECT_EQ(doc.get("sec", "key"), "value");
}

TEST(Ini, EmptySectionAllowed) {
  const auto doc = IniDocument::parse("[empty]\n");
  EXPECT_TRUE(doc.has_section("empty"));
  EXPECT_FALSE(doc.has_section("other"));
}

}  // namespace
}  // namespace adaptviz
