#include "numerics/statistics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace adaptviz {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Descriptive, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 25), 2.0);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Ema, FirstSampleInitializes) {
  ExponentialMovingAverage ema(0.5);
  EXPECT_TRUE(ema.empty());
  EXPECT_THROW((void)ema.value(), std::logic_error);
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
  EXPECT_EQ(ema.count(), 1u);
}

TEST(Ema, SmoothsTowardNewSamples) {
  ExponentialMovingAverage ema(0.25);
  ema.add(100.0);
  ema.add(0.0);
  EXPECT_DOUBLE_EQ(ema.value(), 75.0);
  ema.add(0.0);
  EXPECT_DOUBLE_EQ(ema.value(), 56.25);
}

TEST(Ema, AlphaOneTracksLatest) {
  ExponentialMovingAverage ema(1.0);
  ema.add(5.0);
  ema.add(9.0);
  EXPECT_DOUBLE_EQ(ema.value(), 9.0);
}

TEST(Ema, RejectsBadAlpha) {
  EXPECT_THROW(ExponentialMovingAverage(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialMovingAverage(1.5), std::invalid_argument);
}

TEST(Running, MatchesDirectComputation) {
  Rng rng(3);
  std::vector<double> v;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    v.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(v), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(v.begin(), v.end()));
  EXPECT_EQ(rs.count(), v.size());
}

TEST(Running, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW((void)rs.min(), std::logic_error);
  EXPECT_THROW((void)rs.stddev(), std::logic_error);
}

TEST(Running, SingleValue) {
  RunningStats rs;
  rs.add(4.2);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.2);
  EXPECT_DOUBLE_EQ(rs.min(), 4.2);
  EXPECT_DOUBLE_EQ(rs.max(), 4.2);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace adaptviz
