// Campaign engine tests: grid expansion, the [campaign] INI schema, and
// the load-bearing guarantee — every run in a concurrent campaign is
// bitwise identical to the same configuration run alone, because per-run
// contexts keep observability, logging and results disjoint.
#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/run_context.hpp"
#include "util/calendar.hpp"

namespace adaptviz {
namespace {

// The test_framework.cpp mini fixture: a compact resource-constrained
// site whose full experiment runs in well under a second.
ExperimentConfig mini_config(AlgorithmKind algorithm) {
  ExperimentConfig cfg;
  cfg.name = "mini";
  cfg.algorithm = algorithm;
  cfg.site.machine = MachineSpec{.name = "mini",
                                 .max_cores = 32,
                                 .min_cores = 4,
                                 .serial_seconds = 1.0,
                                 .work_seconds = 4000.0,
                                 .comm_seconds = 0.3,
                                 .noise_sigma = 0.02};
  cfg.site.disk_capacity = Bytes::gigabytes(30);
  cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(150);
  cfg.site.wan_nominal = Bandwidth::mbps(8);
  cfg.site.wan_efficiency = 0.5;
  cfg.site.wan_fluctuation_sigma = 0.1;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(24.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.sample_period = WallSeconds::minutes(15.0);
  cfg.seed = 7;
  return cfg;
}

// Exact-byte views of a result: the identity guarantee is stated on the
// serialized artifacts, not on approximate summaries.
std::string telemetry_csv(const ExperimentResult& r) {
  CsvTable table(telemetry_columns());
  for (const TelemetrySample& s : r.samples) {
    table.add_row(telemetry_row(s, CalendarEpoch::aila_start()));
  }
  return table.str();
}

std::string decision_series(const ExperimentResult& r) {
  std::string out;
  for (const DecisionRecord& d : r.decisions) {
    out += std::to_string(d.wall_time.seconds()) + "," +
           std::to_string(d.decision.processors) + "," +
           std::to_string(d.decision.output_interval.seconds()) + "," +
           (d.decision.critical ? "1" : "0") + "\n";
  }
  return out;
}

TEST(CampaignSpec, EmptyAxesExpandToSingleBaseRun) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kGreedyThreshold);
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "mini");
  EXPECT_EQ(runs[0].config.name, "mini");
  EXPECT_EQ(runs[0].config.algorithm, AlgorithmKind::kGreedyThreshold);
  EXPECT_EQ(runs[0].config.seed, 7u);
  EXPECT_TRUE(runs[0].site.empty());
}

TEST(CampaignSpec, CrossProductCoversEveryCellInGridOrder) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.sites = {{"a", inter_department_site()}, {"b", intra_country_site()}};
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  spec.seeds = {1, 2};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 8u);
  // Rightmost axis varies fastest: sites x algorithms x seeds.
  EXPECT_EQ(runs[0].label, "a-greedy-threshold-s1");
  EXPECT_EQ(runs[1].label, "a-greedy-threshold-s2");
  EXPECT_EQ(runs[2].label, "a-optimization-s1");
  EXPECT_EQ(runs[7].label, "b-optimization-s2");
  EXPECT_EQ(runs[7].site, "b");
  EXPECT_EQ(runs[7].config.algorithm, AlgorithmKind::kOptimization);
  EXPECT_EQ(runs[7].config.seed, 2u);
  // The label doubles as config.name, so per-run CSVs cannot collide.
  for (const CampaignRun& run : runs) {
    EXPECT_EQ(run.config.name, run.label);
  }
}

TEST(CampaignSpec, OverrideAxesRewriteTheBaseConfig) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.disk_caps = {Bytes::gigabytes(10), Bytes::gigabytes(20)};
  spec.failure_rates = {0.0, 0.25};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_DOUBLE_EQ(runs[0].config.site.disk_capacity.gb(), 10.0);
  EXPECT_DOUBLE_EQ(runs[0].config.faults.transfer_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(runs[3].config.site.disk_capacity.gb(), 20.0);
  EXPECT_DOUBLE_EQ(runs[3].config.faults.transfer_failure_rate, 0.25);
  EXPECT_EQ(runs[0].label, "d10-f0");
  EXPECT_EQ(runs[3].label, "d20-f0.25");
  // Inherited axes keep the base values.
  EXPECT_EQ(runs[3].config.algorithm, AlgorithmKind::kOptimization);
  EXPECT_EQ(runs[3].config.seed, 7u);
}

TEST(CampaignSpec, DecisionPeriodAndVisWorkerAxesExpandTheGrid) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  spec.decision_periods = {WallSeconds::hours(0.5), WallSeconds::hours(1.5)};
  spec.vis_workers = {1, 4};
  const std::vector<CampaignRun> runs = spec.expand();
  // 2 algorithms x 2 periods x 2 worker counts; workers vary fastest.
  ASSERT_EQ(runs.size(), 8u);
  EXPECT_EQ(runs[0].label, "greedy-threshold-p0.5-w1");
  EXPECT_EQ(runs[1].label, "greedy-threshold-p0.5-w4");
  EXPECT_EQ(runs[2].label, "greedy-threshold-p1.5-w1");
  EXPECT_EQ(runs[7].label, "optimization-p1.5-w4");
  EXPECT_DOUBLE_EQ(runs[0].config.decision_period.as_hours(), 0.5);
  EXPECT_EQ(runs[0].config.vis_workers, 1);
  EXPECT_DOUBLE_EQ(runs[7].config.decision_period.as_hours(), 1.5);
  EXPECT_EQ(runs[7].config.vis_workers, 4);
  // Undeclared axes inherit base values in every cell.
  for (const CampaignRun& run : runs) {
    EXPECT_EQ(run.config.seed, spec.base.seed);
    EXPECT_DOUBLE_EQ(run.config.site.disk_capacity.gb(),
                     spec.base.site.disk_capacity.gb());
  }
}

TEST(CampaignSpec, CodecAxisTogglesTheFrameCodec) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.seeds = {1, 2};
  spec.codecs = {false, true};
  const std::vector<CampaignRun> runs = spec.expand();
  // seeds x codecs, codec varying fastest (it sits right of the fault
  // axis and left of the decision-period axis).
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].label, "s1-raw");
  EXPECT_EQ(runs[1].label, "s1-codec");
  EXPECT_EQ(runs[2].label, "s2-raw");
  EXPECT_EQ(runs[3].label, "s2-codec");
  EXPECT_FALSE(runs[0].config.codec.enabled);
  EXPECT_TRUE(runs[1].config.codec.enabled);
  EXPECT_FALSE(runs[2].config.codec.enabled);
  EXPECT_TRUE(runs[3].config.codec.enabled);

  // An empty codec axis inherits the base setting and names no cell.
  CampaignSpec plain;
  plain.base = mini_config(AlgorithmKind::kOptimization);
  plain.base.codec.enabled = true;
  const std::vector<CampaignRun> inherited = plain.expand();
  ASSERT_EQ(inherited.size(), 1u);
  EXPECT_TRUE(inherited[0].config.codec.enabled);
  EXPECT_EQ(inherited[0].label.find("codec"), std::string::npos);
}

TEST(CampaignIni, CodecAxisParsesAndRejectsUnknownStates) {
  const CampaignSpec spec = campaign_from_ini(IniDocument::parse(
      "[campaign]\n"
      "name = c\n"
      "seeds = 1, 2\n"
      "codec = off, on\n"));
  ASSERT_EQ(spec.codecs.size(), 2u);
  EXPECT_FALSE(spec.codecs[0]);
  EXPECT_TRUE(spec.codecs[1]);
  EXPECT_EQ(spec.expand().size(), 4u);

  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\ncodec = maybe\n")),
               std::runtime_error);
}

TEST(Campaign, SummarySchemaCarriesCodecColumns) {
  const std::vector<std::string> columns = campaign_summary_columns();
  const auto has = [&columns](const char* name) {
    return std::find(columns.begin(), columns.end(), name) != columns.end();
  };
  EXPECT_TRUE(has("codec"));
  EXPECT_TRUE(has("codec_mean_ratio"));
  EXPECT_TRUE(has("codec_saved_gb"));
}

TEST(CampaignSpec, BaseValuesFlowWhenPeriodAndWorkerAxesAreEmpty) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.base.decision_period = WallSeconds::hours(2.0);
  spec.base.vis_workers = 3;
  spec.seeds = {1, 2};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 2u);
  for (const CampaignRun& run : runs) {
    EXPECT_DOUBLE_EQ(run.config.decision_period.as_hours(), 2.0);
    EXPECT_EQ(run.config.vis_workers, 3);
    // The label names only the declared axis.
    EXPECT_EQ(run.label.find('p'), std::string::npos);
    EXPECT_EQ(run.label.find('w'), std::string::npos);
  }
}

TEST(CampaignSpec, DuplicateAxisEntriesStillGetUniqueLabels) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.seeds = {7, 7};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_NE(runs[0].label, runs[1].label);
  EXPECT_NE(runs[0].config.name, runs[1].config.name);
}

TEST(CampaignIni, ParsesAxesAndBaseScenario) {
  const IniDocument doc = IniDocument::parse(
      "[campaign]\n"
      "name = suite\n"
      "sites = inter-department, cross-continent\n"
      "algorithms = greedy-threshold, optimization\n"
      "seeds = 1, 2\n"
      "disk_gb = 50\n"
      "failure_rates = 0.1\n"
      "decision_period_hours = 0.75, 1.5\n"
      "vis_workers = 1, 2\n"
      "concurrency = 3\n"
      "[experiment]\n"
      "name = base\n"
      "sim_window_hours = 12\n"
      "seed = 9\n");
  ASSERT_TRUE(is_campaign_ini(doc));
  const CampaignSpec spec = campaign_from_ini(doc);
  EXPECT_EQ(spec.name, "suite");
  ASSERT_EQ(spec.sites.size(), 2u);
  EXPECT_EQ(spec.sites[0].first, "inter-department");
  EXPECT_EQ(spec.sites[1].first, "cross-continent");
  ASSERT_EQ(spec.algorithms.size(), 2u);
  EXPECT_EQ(spec.algorithms[0], AlgorithmKind::kGreedyThreshold);
  ASSERT_EQ(spec.seeds.size(), 2u);
  EXPECT_EQ(spec.seeds[1], 2u);
  ASSERT_EQ(spec.disk_caps.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.disk_caps[0].gb(), 50.0);
  ASSERT_EQ(spec.failure_rates.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.failure_rates[0], 0.1);
  ASSERT_EQ(spec.decision_periods.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.decision_periods[0].as_hours(), 0.75);
  ASSERT_EQ(spec.vis_workers.size(), 2u);
  EXPECT_EQ(spec.vis_workers[1], 2);
  EXPECT_EQ(spec.concurrency, 3);
  // Base scenario comes from the ordinary sections, untouched.
  EXPECT_EQ(spec.base.name, "base");
  EXPECT_DOUBLE_EQ(spec.base.sim_window.as_hours(), 12.0);
  EXPECT_EQ(spec.base.seed, 9u);
  // 2 sites x 2 algorithms x 2 seeds x 1 disk x 1 rate x 2 periods x
  // 2 worker counts.
  EXPECT_EQ(spec.expand().size(), 32u);
}

TEST(CampaignIni, RejectsMalformedDocuments) {
  EXPECT_FALSE(is_campaign_ini(IniDocument::parse("[experiment]\nseed=1\n")));
  EXPECT_THROW(
      (void)campaign_from_ini(IniDocument::parse("[experiment]\nseed=1\n")),
      std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\ndecision_period_hours = 0\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\nvis_workers = 1.5\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\nsites = atlantis\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\nalgorithms = quantum\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(
                   IniDocument::parse("[campaign]\nseeds = -3\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(
                   IniDocument::parse("[campaign]\ndisk_gb = 0\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\nfailure_rates = 1.5\n")),
               std::runtime_error);
  EXPECT_THROW((void)campaign_from_ini(
                   IniDocument::parse("[campaign]\nconcurrency = 0\n")),
               std::runtime_error);
}

// Satellite regression guard: the framework itself is deterministic —
// two back-to-back runs of one config yield byte-identical series. The
// campaign guarantee below builds on this.
TEST(Campaign, RepeatedRunsAreByteIdentical) {
  const ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  const ExperimentResult first = run_experiment(cfg);
  const ExperimentResult second = run_experiment(cfg);
  ASSERT_FALSE(first.samples.empty());
  EXPECT_EQ(telemetry_csv(first), telemetry_csv(second));
  EXPECT_EQ(decision_series(first), decision_series(second));
}

// The load-bearing guarantee: a K=4 campaign's per-run telemetry and
// decision series are bitwise identical to the K=1 sequential baseline
// AND to a direct run_experiment() of the same config on this thread.
TEST(Campaign, ConcurrentRunsAreBitwiseIdenticalToSequential) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  spec.seeds = {7, 8, 9, 10};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 8u);

  auto sweep = [&runs](int k) {
    CampaignOptions options;
    options.concurrency = k;
    options.write_per_run_csvs = false;
    options.write_summary_csv = false;
    std::vector<std::string> series(runs.size());
    const auto records =
        CampaignRunner(std::move(options))
            .run(runs, [&series](std::size_t i, const CampaignRun&,
                                 const ExperimentResult& r) {
              series[i] = telemetry_csv(r) + "|" + decision_series(r);
            });
    for (const CampaignRunRecord& rec : records) {
      EXPECT_FALSE(rec.failed) << rec.label << ": " << rec.error;
    }
    return series;
  };

  const std::vector<std::string> sequential = sweep(1);
  const std::vector<std::string> concurrent = sweep(4);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_FALSE(sequential[i].empty());
    EXPECT_EQ(sequential[i], concurrent[i]) << runs[i].label;
    const std::string direct =
        [&] {
          ExperimentConfig cfg = runs[i].config;
          cfg.log.set_level(LogLevel::kError);  // quiet, like the campaign
          const ExperimentResult r = run_experiment(cfg);
          return telemetry_csv(r) + "|" + decision_series(r);
        }();
    EXPECT_EQ(direct, concurrent[i]) << runs[i].label;
  }
}

// Per-run contexts keep concurrent observability disjoint: each result's
// metrics snapshot matches its own summary, not a merged global registry.
TEST(Campaign, ConcurrentRunsKeepDisjointMetrics) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.base.observability = true;
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     AlgorithmKind::kOptimization};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 2u);

  CampaignOptions options;
  options.concurrency = 2;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  std::vector<ExperimentResult> results(runs.size());
  CampaignRunner(std::move(options))
      .run(runs, [&results](std::size_t i, const CampaignRun&,
                            const ExperimentResult& r) { results[i] = r; });

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    ASSERT_FALSE(r.metrics.empty()) << runs[i].label;
    // Counters belong to THIS run: they reconcile with its own summary.
    EXPECT_EQ(r.metrics.counter_or("transport.frames_sent"),
              r.summary.frames_sent)
        << runs[i].label;
    EXPECT_EQ(r.metrics.counter_or("receiver.frames_visualized"),
              r.summary.frames_visualized)
        << runs[i].label;
  }
  // The two algorithms behave differently; a shared registry would have
  // produced merged (equal) counters.
  EXPECT_NE(results[0].metrics.counter_or("transport.frames_sent"),
            results[1].metrics.counter_or("transport.frames_sent"));
}

// Without a context installed, the caller's thread stays context-free
// before, during (sink runs on worker threads) and after a campaign, and
// the obs helpers stay no-ops.
TEST(Campaign, CallerThreadKeepsNoContext) {
  EXPECT_EQ(current_run_context(), nullptr);
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.seeds = {7, 8};
  CampaignOptions options;
  options.concurrency = 2;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  CampaignRunner(std::move(options)).run(spec);
  EXPECT_EQ(current_run_context(), nullptr);
  EXPECT_EQ(obs::current(), nullptr);
  // No-op helpers are safe with no context installed.
  obs::count("campaign.test_counter");
  obs::gauge_set("campaign.test_gauge", 1.0);
  EXPECT_EQ(obs::current(), nullptr);
}

// A run that throws is recorded as failed; the rest of the campaign
// completes and keeps its results.
TEST(Campaign, FailedRunIsRecordedAndCampaignContinues) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.seeds = {7, 8};
  CampaignOptions options;
  options.concurrency = 1;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  const auto records =
      CampaignRunner(std::move(options))
          .run(spec.expand(), [](std::size_t i, const CampaignRun&,
                                 const ExperimentResult&) {
            if (i == 0) throw std::runtime_error("sink exploded");
          });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].failed);
  EXPECT_EQ(records[0].error, "sink exploded");
  EXPECT_FALSE(records[1].failed);
  EXPECT_TRUE(records[1].summary.completed);
}

// A config that fails validation at framework-construction time (before
// run_experiment does any work) must still produce its failed summary
// row — every expanded label yields exactly one row, no silent drops.
TEST(Campaign, InvalidCellStillEmitsItsRow) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.algorithms = {AlgorithmKind::kGreedyThreshold,
                     static_cast<AlgorithmKind>(42)};
  spec.seeds = {7, 8};
  const std::vector<CampaignRun> runs = spec.expand();
  ASSERT_EQ(runs.size(), 4u);  // the invalid cell survives expansion

  CampaignOptions options;
  options.concurrency = 2;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  const auto records = CampaignRunner(std::move(options)).run(runs);

  ASSERT_EQ(records.size(), runs.size());  // rows == expand().size()
  std::size_t failed = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].label, runs[i].label);
    if (records[i].failed) {
      ++failed;
      EXPECT_EQ(records[i].error, "unknown algorithm kind");
    }
  }
  EXPECT_EQ(failed, 2u);  // both seeds of the invalid algorithm

  // The summary row for an invalid cell must serialize, not throw
  // (to_string on the enum would): the whole CSV depends on it.
  ASSERT_TRUE(records[2].failed);
  const auto row = campaign_summary_row(records[2]);
  EXPECT_EQ(row.size(), campaign_summary_schema().size());
}

TEST(CampaignIni, WorkersKeyParsesAndRejectsNegative) {
  const CampaignSpec spec = campaign_from_ini(IniDocument::parse(
      "[campaign]\n"
      "name = c\n"
      "seeds = 1, 2\n"
      "workers = 3\n"));
  EXPECT_EQ(spec.workers, 3);
  EXPECT_EQ(campaign_from_ini(IniDocument::parse("[campaign]\nname = c\n"))
                .workers,
            0);
  EXPECT_THROW((void)campaign_from_ini(IniDocument::parse(
                   "[campaign]\nworkers = -1\n")),
               std::runtime_error);
}

// Progress callbacks arrive once per run with a monotone finished count.
TEST(Campaign, ProgressReportsEveryRun) {
  CampaignSpec spec;
  spec.base = mini_config(AlgorithmKind::kOptimization);
  spec.seeds = {7, 8, 9};
  CampaignOptions options;
  options.concurrency = 2;
  options.write_per_run_csvs = false;
  options.write_summary_csv = false;
  std::vector<std::size_t> finished;
  options.on_progress = [&finished](const CampaignProgress& p) {
    EXPECT_EQ(p.total, 3u);
    ASSERT_NE(p.record, nullptr);
    finished.push_back(p.finished);
  };
  CampaignRunner(std::move(options)).run(spec);
  ASSERT_EQ(finished.size(), 3u);
  for (std::size_t i = 0; i < finished.size(); ++i) {
    EXPECT_EQ(finished[i], i + 1);
  }
}

// The declarative schema is the single source of truth for the summary
// CSV: header order and row contents both derive from it.
TEST(Campaign, SummarySchemaDrivesCsvRows) {
  const auto& schema = campaign_summary_schema();
  const std::vector<std::string> columns = campaign_summary_columns();
  ASSERT_EQ(columns.size(), schema.size());
  EXPECT_EQ(columns.front(), "label");
  CampaignRunRecord record;
  record.label = "x";
  record.seed = 5;
  record.summary.frames_written = 12;
  const auto row = campaign_summary_row(record);
  ASSERT_EQ(row.size(), schema.size());
  EXPECT_EQ(std::get<std::string>(row[0]), "x");
}

}  // namespace
}  // namespace adaptviz
