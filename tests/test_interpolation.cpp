#include "numerics/interpolation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

// A linear field a + b*x + c*y sampled on an (nx, ny) grid.
std::vector<double> linear_field(std::size_t nx, std::size_t ny, double a,
                                 double b, double c) {
  std::vector<double> f(nx * ny);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i)
      f[j * nx + i] = a + b * static_cast<double>(i) + c * static_cast<double>(j);
  return f;
}

TEST(Bilinear, ExactOnGridPoints) {
  const auto f = linear_field(4, 3, 1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(bilinear(f, 4, 3, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(bilinear(f, 4, 3, 3, 2), 1.0 + 6.0 + 6.0);
}

TEST(Bilinear, ExactOnLinearFields) {
  const auto f = linear_field(5, 5, -1.0, 0.5, 2.0);
  EXPECT_NEAR(bilinear(f, 5, 5, 1.25, 3.75), -1.0 + 0.5 * 1.25 + 2.0 * 3.75,
              1e-12);
}

TEST(Bilinear, ClampsOutsideGrid) {
  const auto f = linear_field(4, 4, 0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(bilinear(f, 4, 4, -5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bilinear(f, 4, 4, 10.0, 0.0), 3.0);
}

TEST(Bilinear, RejectsShapeMismatch) {
  EXPECT_THROW(bilinear({1.0, 2.0}, 3, 3, 0, 0), std::invalid_argument);
}

TEST(Bicubic, ExactOnLinearFieldsInInterior) {
  // Catmull-Rom reproduces polynomials up to degree 3 wherever its full
  // 4-point stencil is available (1 <= coord <= n-2); the clamped border
  // band is only approximate.
  const auto f = linear_field(8, 8, 2.0, -1.0, 0.25);
  for (double x : {1.0, 2.3, 5.9}) {
    for (double y : {1.1, 3.5, 5.2}) {
      EXPECT_NEAR(bicubic(f, 8, 8, x, y), 2.0 - x + 0.25 * y, 1e-10);
    }
  }
  // Near the border it still stays close (clamping, not garbage).
  EXPECT_NEAR(bicubic(f, 8, 8, 0.3, 0.2), 2.0 - 0.3 + 0.25 * 0.2, 0.2);
}

TEST(Bicubic, ReproducesQuadraticsInInterior) {
  // Catmull-Rom reproduces quadratics exactly away from clamped edges.
  std::vector<double> f(10 * 10);
  for (std::size_t j = 0; j < 10; ++j)
    for (std::size_t i = 0; i < 10; ++i)
      f[j * 10 + i] = static_cast<double>(i * i);
  EXPECT_NEAR(bicubic(f, 10, 10, 4.5, 5.0), 4.5 * 4.5, 1e-10);
}

TEST(Resample, IdentityWhenSameSize) {
  const auto f = linear_field(6, 4, 1.0, 2.0, 3.0);
  const auto g = resample_bilinear(f, 6, 4, 6, 4);
  for (std::size_t k = 0; k < f.size(); ++k) EXPECT_NEAR(g[k], f[k], 1e-12);
}

TEST(Resample, CornersMapOntoCorners) {
  const auto f = linear_field(5, 5, 0.0, 1.0, 10.0);
  const auto g = resample_bilinear(f, 5, 5, 9, 9);
  EXPECT_NEAR(g[0], f[0], 1e-12);
  EXPECT_NEAR(g[8], f[4], 1e-12);                // top-right
  EXPECT_NEAR(g[8 * 9], f[4 * 5], 1e-12);        // bottom-left
  EXPECT_NEAR(g[8 * 9 + 8], f[4 * 5 + 4], 1e-12);  // bottom-right
}

TEST(Resample, LinearFieldsSurviveRefinement) {
  const auto f = linear_field(4, 4, 0.0, 3.0, -1.0);
  const auto g = resample_bilinear(f, 4, 4, 10, 7);
  // Sample mid-grid: value should match the linear function in the
  // destination's own coordinates.
  const double sx = 3.0 / 9.0;
  const double sy = 3.0 / 6.0;
  for (std::size_t j = 0; j < 7; ++j) {
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(g[j * 10 + i], 3.0 * (i * sx) - 1.0 * (j * sy), 1e-10);
    }
  }
}

TEST(RestrictMean, AveragesBlocks) {
  // 4x4 fine grid of 1..16, ratio 2: each coarse cell = mean of 4.
  std::vector<double> f(16);
  for (int k = 0; k < 16; ++k) f[static_cast<size_t>(k)] = k + 1;
  const auto c = restrict_mean(f, 4, 4, 2);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0], (1 + 2 + 5 + 6) / 4.0);
  EXPECT_DOUBLE_EQ(c[1], (3 + 4 + 7 + 8) / 4.0);
  EXPECT_DOUBLE_EQ(c[2], (9 + 10 + 13 + 14) / 4.0);
  EXPECT_DOUBLE_EQ(c[3], (11 + 12 + 15 + 16) / 4.0);
}

TEST(RestrictMean, PreservesConstantFields) {
  std::vector<double> f(36, 7.5);
  const auto c = restrict_mean(f, 6, 6, 3);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(RestrictMean, RejectsBadShapes) {
  std::vector<double> f(12, 0.0);
  EXPECT_THROW(restrict_mean(f, 4, 3, 2), std::invalid_argument);  // 3 % 2
  EXPECT_THROW(restrict_mean(f, 5, 2, 2), std::invalid_argument);
  EXPECT_THROW(restrict_mean(f, 4, 4, 2), std::invalid_argument);  // size
}

}  // namespace
}  // namespace adaptviz
