// Greedy-Threshold algorithm: every branch of the paper's Algorithm 1.
#include "core/greedy_threshold.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace adaptviz {
namespace {

using testing_helpers::make_input;
using testing_helpers::make_perf_model;

class GreedyTest : public testing::Test {
 protected:
  std::shared_ptr<PerformanceModel> perf_ = make_perf_model();
  GreedyThresholdAlgorithm algo_;
};

TEST_F(GreedyTest, CriticalBelowTenPercent) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 8.0;
  const Decision d = algo_.decide(in);
  EXPECT_TRUE(d.critical);
  // Knobs untouched while critical.
  EXPECT_EQ(d.processors, in.current_processors);
}

TEST_F(GreedyTest, StretchesIntervalBetween25And50) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 40.0;
  in.current_output_interval = SimSeconds::minutes(3.0);
  const Decision d = algo_.decide(in);
  EXPECT_FALSE(d.critical);
  // newOI = 3 + (50-40)/25 * (25-3) = 11.8 min, quantized to the step.
  EXPECT_NEAR(d.output_interval.as_minutes(), 11.8, 1.0);
  EXPECT_EQ(d.processors, in.current_processors);
}

TEST_F(GreedyTest, StretchReachesMaxAtLowerThreshold) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 25.0;
  in.current_output_interval = SimSeconds::minutes(3.0);
  const Decision d = algo_.decide(in);
  EXPECT_NEAR(d.output_interval.as_minutes(), 25.0, 1.0);
}

TEST_F(GreedyTest, ShedsProcessorsWhenIntervalMaxed) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 18.0;
  in.current_output_interval = SimSeconds::minutes(25.0);
  const Decision d = algo_.decide(in);
  EXPECT_FALSE(d.critical);
  EXPECT_LT(d.processors, in.current_processors);
  EXPECT_GE(d.processors, in.min_processors);
}

TEST_F(GreedyTest, JumpsToMaxIntervalWhenDiveSkipsTheBand) {
  // D < 25 with the interval not yet maxed (a fast dive skipped the
  // [25, 50] band between invocations): the stretch saturates at maxOI —
  // the value its own formula yields at D == 25 — instead of idling into
  // CRITICAL.
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 18.0;
  in.current_output_interval = SimSeconds::minutes(10.0);
  const Decision d = algo_.decide(in);
  EXPECT_EQ(d.processors, in.current_processors);
  EXPECT_NEAR(d.output_interval.as_minutes(), 25.0, 1.0);
}

TEST_F(GreedyTest, ShedsProcessorsNearMaxIntervalDespiteQuantization) {
  // OI quantized one step below the bound still counts as "at max" for the
  // line-7 slowdown branch.
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 18.0;
  in.integration_step = SimSeconds(144.0);       // 24-km step: 2.4 min
  in.current_output_interval = SimSeconds(1440.0);  // 10 steps = 24 min
  const Decision d = algo_.decide(in);
  EXPECT_LT(d.processors, in.current_processors);
}

TEST_F(GreedyTest, HoldsBetween50And60) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 55.0;
  in.current_output_interval = SimSeconds::minutes(12.0);
  const Decision d = algo_.decide(in);
  EXPECT_EQ(d.processors, in.current_processors);
  EXPECT_NEAR(d.output_interval.as_minutes(), 12.0, 0.5);
}

TEST_F(GreedyTest, SpeedsUpFirstWhenDiskRecovers) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 80.0;
  in.current_processors = 16;  // previously slowed down
  in.current_output_interval = SimSeconds::minutes(25.0);
  const Decision d = algo_.decide(in);
  EXPECT_GT(d.processors, 16);
  // Interval untouched on this branch: rate recovery has priority.
  EXPECT_NEAR(d.output_interval.as_minutes(), 25.0, 1.0);
}

TEST_F(GreedyTest, ShrinksIntervalOnceRateIsMax) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 80.0;
  in.current_processors = 64;  // already fastest
  in.current_output_interval = SimSeconds::minutes(25.0);
  const Decision d = algo_.decide(in);
  EXPECT_EQ(d.processors, 64);
  EXPECT_LT(d.output_interval.as_minutes(), 25.0);
}

TEST_F(GreedyTest, SteadyStateAtMaxRateAndFrequency) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 95.0;
  in.current_processors = 64;
  in.current_output_interval = SimSeconds::minutes(3.0);
  const Decision d = algo_.decide(in);
  EXPECT_EQ(d.processors, 64);
  EXPECT_NEAR(d.output_interval.as_minutes(), 3.0, 0.5);
  EXPECT_FALSE(d.critical);
}

TEST_F(GreedyTest, FullRecoveryCycleConverges) {
  // Simulate recovery invocations from a degraded state with a full disk
  // slowly clearing: greedy must walk back to max procs and min interval.
  DecisionInput in = make_input(*perf_);
  in.current_processors = 8;
  in.current_output_interval = SimSeconds::minutes(25.0);
  for (int i = 0; i < 20; ++i) {
    in.free_disk_percent = 90.0;
    const Decision d = algo_.decide(in);
    in.current_processors = d.processors;
    in.current_output_interval = d.output_interval;
  }
  EXPECT_EQ(in.current_processors, 64);
  EXPECT_NEAR(in.current_output_interval.as_minutes(), 3.0, 0.5);
}

TEST_F(GreedyTest, ProcessorsRespectUsableLimit) {
  DecisionInput in = make_input(*perf_);
  in.free_disk_percent = 90.0;
  in.max_processors = 20;  // WRF decomposition limit
  in.current_processors = 20;
  in.current_output_interval = SimSeconds::minutes(25.0);
  const Decision d = algo_.decide(in);
  EXPECT_LE(d.processors, 20);
}

TEST(GreedyThresholds, ValidationAndCustomSets) {
  EXPECT_THROW(GreedyThresholdAlgorithm({.low_upper = 20.0,
                                         .low_lower = 25.0,
                                         .critical = 10.0,
                                         .high = 60.0}),
               std::invalid_argument);
  // The paper's sets: {50, 25}, {60}, critical 10.
  GreedyThresholdAlgorithm algo;
  EXPECT_DOUBLE_EQ(algo.thresholds().low_upper, 50.0);
  EXPECT_DOUBLE_EQ(algo.thresholds().low_lower, 25.0);
  EXPECT_DOUBLE_EQ(algo.thresholds().high, 60.0);
  EXPECT_DOUBLE_EQ(algo.thresholds().critical, 10.0);
  EXPECT_EQ(algo.name(), "greedy-threshold");
}

// Property sweep: for any disk level the decision is always within bounds.
class GreedySweep : public testing::TestWithParam<int> {};

TEST_P(GreedySweep, DecisionAlwaysWithinBounds) {
  auto perf = make_perf_model();
  GreedyThresholdAlgorithm algo;
  DecisionInput in = make_input(*perf);
  in.free_disk_percent = static_cast<double>(GetParam());
  in.current_processors = 4 + (GetParam() * 7) % 61;
  in.current_output_interval =
      SimSeconds::minutes(3.0 + (GetParam() % 23));
  const Decision d = algo.decide(in);
  EXPECT_GE(d.processors, in.min_processors);
  EXPECT_LE(d.processors, in.max_processors);
  EXPECT_GE(d.output_interval.as_minutes(), 3.0 - 1e-9);
  EXPECT_LE(d.output_interval.as_minutes(), 25.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(DiskLevels, GreedySweep,
                         testing::Range(0, 101, 5));

}  // namespace
}  // namespace adaptviz
