// Frame cache and multi-client serving subsystem (src/serve).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "serve/frame_cache.hpp"
#include "serve/session_manager.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {
namespace {

Frame mkframe(std::int64_t seq, double mb, double sim_seconds) {
  Frame f;
  f.sequence = seq;
  f.size = Bytes::megabytes(mb);
  f.sim_time = SimSeconds(sim_seconds);
  return f;
}

// ---------------------------------------------------------------- FrameCache

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  FrameCache cache({.capacity = Bytes::megabytes(3),
                    .policy = EvictionPolicy::kLru});
  cache.insert(mkframe(0, 1, 0));
  cache.insert(mkframe(1, 1, 100));
  cache.insert(mkframe(2, 1, 200));
  ASSERT_TRUE(cache.lookup(0).has_value());  // touch 0: now 1 is coldest
  cache.insert(mkframe(3, 1, 300));
  EXPECT_EQ(cache.resident_sequences(),
            (std::vector<std::int64_t>{0, 2, 3}));
  EXPECT_EQ(cache.stats().insertions, 4);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(Cache, StrideThinningPreservesEndpointsAndCoverage) {
  // 1 MB frames at sim times 0,10,...: capacity four frames.
  FrameCache cache({.capacity = Bytes::megabytes(4),
                    .policy = EvictionPolicy::kStrideThinning});
  for (int i = 0; i < 4; ++i) cache.insert(mkframe(i, 1, 10.0 * i));
  // Insert 4: interior victims are 1 (gap 20-0) and 2 (gap 30-10); the tie
  // breaks toward the lower sequence.
  cache.insert(mkframe(4, 1, 40));
  EXPECT_EQ(cache.resident_sequences(),
            (std::vector<std::int64_t>{0, 2, 3, 4}));
  // Insert 5: removing 2 opens a 30 s gap, removing 3 or 4 a 20 s gap; the
  // tie between 3 and 4 evicts 3. Endpoints 0 and 5 stay anchored.
  cache.insert(mkframe(5, 1, 50));
  EXPECT_EQ(cache.resident_sequences(),
            (std::vector<std::int64_t>{0, 2, 4, 5}));
}

TEST(Cache, EvictsBeforeInsertSoBytesStayBounded) {
  FrameCache cache({.capacity = Bytes::megabytes(10),
                    .policy = EvictionPolicy::kLru});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cache.insert(mkframe(i, 3, 10.0 * i)));
    EXPECT_LE(cache.bytes_cached(), Bytes::megabytes(10)) << i;
  }
  EXPECT_EQ(cache.frame_count(), 3u);
  EXPECT_LE(cache.stats().peak_bytes, Bytes::megabytes(10));
}

TEST(Cache, OversizeFrameIsRejected) {
  FrameCache cache({.capacity = Bytes::megabytes(2)});
  cache.insert(mkframe(0, 1, 0));
  EXPECT_FALSE(cache.insert(mkframe(1, 3, 100)));
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(0));  // nothing was evicted for the reject
  EXPECT_EQ(cache.bytes_cached(), Bytes::megabytes(1));
}

TEST(Cache, ReinsertRefreshesRecencyWithoutRecounting) {
  FrameCache cache({.capacity = Bytes::megabytes(3),
                    .policy = EvictionPolicy::kLru});
  cache.insert(mkframe(0, 1, 0));
  cache.insert(mkframe(1, 1, 100));
  cache.insert(mkframe(0, 1, 0));  // refresh, not a second insertion
  EXPECT_EQ(cache.stats().insertions, 2);
  EXPECT_EQ(cache.frame_count(), 2u);
  cache.insert(mkframe(2, 1, 200));
  cache.insert(mkframe(3, 1, 300));  // evicts 1: 0 was refreshed above it
  EXPECT_EQ(cache.resident_sequences(),
            (std::vector<std::int64_t>{0, 2, 3}));
}

TEST(Cache, MaxFramesBoundsCountIndependentlyOfBytes) {
  FrameCache cache({.capacity = Bytes::gigabytes(1), .max_frames = 2});
  for (int i = 0; i < 3; ++i) cache.insert(mkframe(i, 1, 10.0 * i));
  EXPECT_EQ(cache.frame_count(), 2u);
  EXPECT_EQ(cache.resident_sequences(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(Cache, CountersAndContainsSideEffects) {
  FrameCache cache({.capacity = Bytes::megabytes(4)});
  cache.insert(mkframe(0, 1, 0));
  EXPECT_TRUE(cache.lookup(0).has_value());
  EXPECT_FALSE(cache.lookup(7).has_value());
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  // contains() is a pure probe: no counter movement.
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(7));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(Cache, PolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "lru");
  EXPECT_STREQ(to_string(EvictionPolicy::kStrideThinning), "stride-thin");
  EXPECT_EQ(eviction_policy_from("lru"), EvictionPolicy::kLru);
  EXPECT_EQ(eviction_policy_from("stride-thin"),
            EvictionPolicy::kStrideThinning);
  EXPECT_THROW(eviction_policy_from("mru"), std::runtime_error);
  EXPECT_THROW(FrameCache({.capacity = Bytes(0)}), std::invalid_argument);
}

// ----------------------------------------------------- ViewerSessionManager

/// A viewer on an exact link: no latency, no jitter, so delivery times are
/// arithmetic.
ViewerConfig exact_viewer(double megabytes_per_sec,
                          ViewerMode mode = ViewerMode::kLiveTail) {
  ViewerConfig v;
  v.downlink.nominal = Bandwidth::megabytes_per_second(megabytes_per_sec);
  v.downlink.latency = WallSeconds(0.0);
  v.mode = mode;
  return v;
}

TEST(Sessions, LiveTailDeliversEveryFrameWhenTheDownlinkKeepsUp) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  const int fast = manager.add_viewer(exact_viewer(1.0));
  for (int i = 0; i < 4; ++i) {
    queue.schedule_at(WallSeconds(1.0 * i), [&manager, i] {
      manager.on_frame(mkframe(i, 1, 100.0 * i));
    });
  }
  queue.run_all();
  const auto& records = manager.deliveries(fast);
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].sequence, i);
    EXPECT_NEAR(records[static_cast<std::size_t>(i)].wall_time.seconds(),
                i + 1.0, 1e-9);  // 1 MB at 1 MB/s, back to back
    EXPECT_TRUE(records[static_cast<std::size_t>(i)].cache_hit);
  }
  EXPECT_EQ(manager.stats(fast).frames_skipped, 0);
  EXPECT_TRUE(manager.idle());
}

TEST(Sessions, SlowLiveTailSkipsToNewestAndCountsIt) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  // 0.25 MB/s: each 1 MB frame takes 4 s, but frames arrive every second.
  const int slow = manager.add_viewer(exact_viewer(0.25));
  for (int i = 0; i < 4; ++i) {
    queue.schedule_at(WallSeconds(1.0 * i), [&manager, i] {
      manager.on_frame(mkframe(i, 1, 100.0 * i));
    });
  }
  queue.run_all();
  // Delivers #0 at t=4; #1 and #2 were superseded by then, so it jumps to
  // #3 and finishes at t=8 with a lag bounded by one frame.
  const auto& records = manager.deliveries(slow);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, 0);
  EXPECT_NEAR(records[0].wall_time.seconds(), 4.0, 1e-9);
  EXPECT_EQ(records[1].sequence, 3);
  EXPECT_NEAR(records[1].wall_time.seconds(), 8.0, 1e-9);
  EXPECT_EQ(manager.stats(slow).frames_skipped, 2);
  EXPECT_EQ(manager.stats(slow).frames_delivered, 2);
}

TEST(Sessions, CatchUpReplaysInOrderFromTheRequestedSimTime) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  for (int i = 0; i < 5; ++i) manager.on_frame(mkframe(i, 1, 100.0 * i));
  ViewerConfig v = exact_viewer(1.0, ViewerMode::kCatchUp);
  v.catchup_start = SimSeconds(150.0);  // first frame at or after: #2
  const int idx = manager.add_viewer(v);
  queue.run_all();
  const auto& records = manager.deliveries(idx);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].sequence, 2);
  EXPECT_EQ(records[1].sequence, 3);
  EXPECT_EQ(records[2].sequence, 4);
  EXPECT_NEAR(records[2].wall_time.seconds(), 3.0, 1e-9);
  EXPECT_EQ(manager.stats(idx).cache_hits, 3);
  EXPECT_EQ(manager.stats(idx).frames_skipped, 0);  // catch-up never skips
}

TEST(Sessions, LiveTailJoiningMidRunStartsAtTheHead) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  for (int i = 0; i < 3; ++i) manager.on_frame(mkframe(i, 1, 100.0 * i));
  const int idx = manager.add_viewer(exact_viewer(1.0));
  queue.run_all();
  const auto& records = manager.deliveries(idx);
  ASSERT_EQ(records.size(), 1u);  // the newest frame, not a replay
  EXPECT_EQ(records[0].sequence, 2);
  EXPECT_EQ(manager.stats(idx).frames_skipped, 0);
}

TEST(Sessions, JoinWallDefersActivation) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  ViewerConfig v = exact_viewer(1.0);
  v.join_wall = WallSeconds(100.0);
  const int idx = manager.add_viewer(v);
  for (int i = 0; i < 5; ++i) {
    queue.schedule_at(WallSeconds(1.0 * i), [&manager, i] {
      manager.on_frame(mkframe(i, 1, 100.0 * i));
    });
  }
  queue.run_until(WallSeconds(50.0));
  EXPECT_EQ(manager.deliveries(idx).size(), 0u);
  EXPECT_FALSE(manager.idle());  // the join is still owed
  queue.run_all();
  const auto& records = manager.deliveries(idx);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, 4);
  EXPECT_NEAR(records[0].wall_time.seconds(), 101.0, 1e-9);
  EXPECT_TRUE(manager.idle());
}

TEST(Sessions, SlowClientNeverPerturbsAFastOne) {
  // The fast client's delivery series must be identical whether or not a
  // near-stalled straggler shares the manager.
  auto run = [](bool with_straggler) {
    EventQueue queue;
    ViewerSessionManager manager(queue, {}, /*seed=*/1);
    const int fast = manager.add_viewer(exact_viewer(1.0));
    if (with_straggler) manager.add_viewer(exact_viewer(0.01));
    for (int i = 0; i < 4; ++i) {
      queue.schedule_at(WallSeconds(2.0 * i), [&manager, i] {
        manager.on_frame(mkframe(i, 1, 100.0 * i));
      });
    }
    queue.run_all();
    return manager.deliveries(fast);
  };
  const std::vector<DeliveryRecord> alone = run(false);
  const std::vector<DeliveryRecord> shared = run(true);
  ASSERT_EQ(alone.size(), shared.size());
  for (std::size_t i = 0; i < alone.size(); ++i) {
    EXPECT_EQ(alone[i].sequence, shared[i].sequence);
    EXPECT_DOUBLE_EQ(alone[i].wall_time.seconds(),
                     shared[i].wall_time.seconds());
  }
}

TEST(Sessions, EvictedFramesAreRerenderedOnceAndSharedByWaiters) {
  EventQueue queue;
  ViewerSessionManager::Options opts;
  opts.cache.max_frames = 1;  // almost everything a replay needs is evicted
  ViewerSessionManager manager(queue, opts, /*seed=*/1);
  for (int i = 0; i < 4; ++i) manager.on_frame(mkframe(i, 1, 100.0 * i));
  ViewerConfig v = exact_viewer(1.0, ViewerMode::kCatchUp);
  const int a = manager.add_viewer(v);
  const int b = manager.add_viewer(v);
  queue.run_all();
  // Both replay 0..3 in lockstep; every sequence is re-rendered exactly
  // once and fans out to both waiters, so 8 deliveries cost 4 re-renders.
  EXPECT_EQ(manager.rerenders(), 4);
  EXPECT_EQ(manager.frames_served(), 8);
  for (const int idx : {a, b}) {
    const auto& records = manager.deliveries(idx);
    ASSERT_EQ(records.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(records[static_cast<std::size_t>(i)].sequence, i);
      EXPECT_FALSE(records[static_cast<std::size_t>(i)].cache_hit);
    }
    EXPECT_EQ(manager.stats(idx).rerender_waits, 4);
    EXPECT_EQ(manager.stats(idx).cache_hits, 0);
  }
  EXPECT_TRUE(manager.idle());
}

TEST(Sessions, RerenderedFramesReenterTheCache) {
  EventQueue queue;
  ViewerSessionManager::Options opts;
  opts.cache.max_frames = 1;  // one resident frame: every re-insert visible
  opts.rerender_fixed_seconds = 1.0;
  opts.rerender_seconds_per_gb = 0.0;
  ViewerSessionManager manager(queue, opts, /*seed=*/1);
  for (int i = 0; i < 4; ++i) manager.on_frame(mkframe(i, 1, 10.0 * i));
  ASSERT_EQ(manager.cache().resident_sequences(),
            (std::vector<std::int64_t>{3}));
  manager.add_viewer(exact_viewer(1.0, ViewerMode::kCatchUp));
  // Replay cadence: re-render #k completes at t=2k+1 and is inserted into
  // the cache, then transfers over [2k+1, 2k+2).
  queue.schedule_at(WallSeconds(3.5), [&manager] {
    EXPECT_TRUE(manager.cache().contains(1));   // re-inserted at t=3
    EXPECT_FALSE(manager.cache().contains(0));  // displaced by #1
    EXPECT_FALSE(manager.cache().contains(3));  // displaced back at t=1
  });
  queue.run_all();
  EXPECT_EQ(manager.rerenders(), 4);
  // The last re-render is resident again: #3 was evicted at t=1 and owes
  // its residency to the re-insert path.
  EXPECT_EQ(manager.cache().resident_sequences(),
            (std::vector<std::int64_t>{3}));
  EXPECT_EQ(manager.cache().stats().insertions, 8);
}

TEST(Sessions, DeliveriesAreBitwiseIdenticalAcrossPoolSizes) {
  auto run = [](int pool_workers) {
    EventQueue queue;
    ThreadPool pool(pool_workers);
    std::atomic<int> rendered{0};
    ViewerSessionManager::Options opts;
    opts.cache.max_frames = 3;
    opts.cache.policy = EvictionPolicy::kStrideThinning;
    opts.rerender_workers = 2;
    ViewerSessionManager manager(
        queue, opts, /*seed=*/5, &pool,
        [&rendered](const Frame&) {
          rendered.fetch_add(1, std::memory_order_relaxed);
        });
    for (const ViewerConfig& v : make_viewer_fleet(
             10, Bandwidth::mbps(40.0), /*catchup_fraction=*/0.5,
             SimSeconds(0.0), /*catchup_join=*/WallSeconds(500.0))) {
      manager.add_viewer(v);
    }
    for (int i = 0; i < 20; ++i) {
      queue.schedule_at(WallSeconds(30.0 * i), [&manager, i] {
        manager.on_frame(mkframe(i, 1, 100.0 * i));
      });
    }
    queue.run_all();
    std::vector<DeliveryRecord> all;
    for (int c = 0; c < manager.viewer_count(); ++c) {
      const auto& records = manager.deliveries(c);
      all.insert(all.end(), records.begin(), records.end());
    }
    EXPECT_EQ(rendered.load(), static_cast<int>(manager.rerenders()));
    return all;
  };
  const std::vector<DeliveryRecord> serial = run(0);
  EXPECT_FALSE(serial.empty());
  for (const int workers : {2, 5}) {
    const std::vector<DeliveryRecord> pooled = run(workers);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].sequence, pooled[i].sequence);
      // Exact double equality: virtual time must not depend on the pool.
      EXPECT_EQ(serial[i].wall_time.seconds(), pooled[i].wall_time.seconds());
      EXPECT_EQ(serial[i].sim_time.seconds(), pooled[i].sim_time.seconds());
      EXPECT_EQ(serial[i].cache_hit, pooled[i].cache_hit);
    }
  }
}

TEST(Sessions, StrideThinningSurvivesConcurrentRerenderReinsertion) {
  // The re-insert race: catch-up replays force re-renders whose completions
  // re-insert old frames into a stride-thinned cache *while* live publishes
  // keep inserting new ones at the same virtual times. The thinning
  // victim-selection must stay consistent (endpoints anchored, bytes
  // bounded, no lost insertions) with both writers interleaved.
  EventQueue queue;
  ViewerSessionManager::Options opts;
  opts.cache.capacity = Bytes::megabytes(3);
  opts.cache.policy = EvictionPolicy::kStrideThinning;
  opts.rerender_fixed_seconds = 10.0;  // completions land mid-stream
  opts.rerender_seconds_per_gb = 0.0;
  opts.rerender_workers = 2;
  ViewerSessionManager manager(queue, opts, /*seed=*/3);
  // Seed a history the cache has already thinned, then start the replay.
  for (int i = 0; i < 6; ++i) manager.on_frame(mkframe(i, 1, 10.0 * i));
  const int replayer = manager.add_viewer(exact_viewer(1.0,
                                                       ViewerMode::kCatchUp));
  // Live stream continues at exactly the re-render completion cadence, so
  // re-insertions and fresh insertions hit the same virtual instants.
  for (int i = 6; i < 12; ++i) {
    queue.schedule_at(WallSeconds(10.0 * (i - 5)), [&manager, i] {
      manager.on_frame(mkframe(i, 1, 10.0 * i));
    });
  }
  queue.run_all();
  // The replay delivered the full history exactly once, in order, despite
  // every re-inserted frame being an eviction candidate again.
  const auto& records = manager.deliveries(replayer);
  ASSERT_EQ(records.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].sequence, i);
  }
  EXPECT_GT(manager.rerenders(), 0);
  // Boundedness held through the interleaving, and the stride invariant
  // (newest endpoint resident) survived the re-insertions.
  EXPECT_LE(manager.cache().stats().peak_bytes, Bytes::megabytes(3));
  EXPECT_TRUE(manager.cache().contains(11));
  EXPECT_EQ(manager.cache().stats().insertions,
            12 + static_cast<std::int64_t>(manager.rerenders()));
  EXPECT_TRUE(manager.idle());
}

TEST(Sessions, RerenderRaceIsDeterministicAcrossPoolSizes) {
  // Same rig as above but with the heavy re-render body on a real pool:
  // the interleaving of re-insertions and live insertions — and therefore
  // the delivery series — must not depend on worker count.
  auto run = [](int pool_workers) {
    EventQueue queue;
    ThreadPool pool(pool_workers);
    ViewerSessionManager::Options opts;
    opts.cache.capacity = Bytes::megabytes(3);
    opts.cache.policy = EvictionPolicy::kStrideThinning;
    opts.rerender_fixed_seconds = 10.0;
    opts.rerender_seconds_per_gb = 0.0;
    opts.rerender_workers = 2;
    ViewerSessionManager manager(queue, opts, /*seed=*/3, &pool,
                                 [](const Frame& f) {
                                   volatile std::int64_t acc = 0;
                                   for (int i = 0; i < 5000; ++i) {
                                     acc = acc + (f.sequence * 31 + i) % 97;
                                   }
                                 });
    for (int i = 0; i < 6; ++i) manager.on_frame(mkframe(i, 1, 10.0 * i));
    const int replayer =
        manager.add_viewer(exact_viewer(1.0, ViewerMode::kCatchUp));
    for (int i = 6; i < 12; ++i) {
      queue.schedule_at(WallSeconds(10.0 * (i - 5)), [&manager, i] {
        manager.on_frame(mkframe(i, 1, 10.0 * i));
      });
    }
    queue.run_all();
    return manager.deliveries(replayer);
  };
  const std::vector<DeliveryRecord> serial = run(0);
  ASSERT_EQ(serial.size(), 12u);
  for (const int workers : {2, 5}) {
    const std::vector<DeliveryRecord> pooled = run(workers);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].sequence, pooled[i].sequence);
      EXPECT_EQ(serial[i].wall_time.seconds(), pooled[i].wall_time.seconds());
      EXPECT_EQ(serial[i].cache_hit, pooled[i].cache_hit);
    }
  }
}

TEST(Sessions, Validation) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  manager.on_frame(mkframe(3, 1, 0));
  EXPECT_THROW(manager.on_frame(mkframe(3, 1, 100)), std::invalid_argument);
  EXPECT_THROW(manager.on_frame(mkframe(1, 1, 100)), std::invalid_argument);

  ViewerSessionManager::Options bad;
  bad.rerender_workers = 0;
  EXPECT_THROW(ViewerSessionManager(queue, bad, 1), std::invalid_argument);
  bad.rerender_workers = 1;
  bad.rerender_fixed_seconds = -1.0;
  EXPECT_THROW(ViewerSessionManager(queue, bad, 1), std::invalid_argument);

  EXPECT_THROW(make_viewer_fleet(-1, Bandwidth::mbps(1), 0.0, SimSeconds(0)),
               std::invalid_argument);
}

// ---------------------------------------- ClientId handles & control plane

TEST(Sessions, ClientIdHandlesAreValidatedAtTheBoundary) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  ViewerConfig cfg = exact_viewer(1.0);
  cfg.name = "alice";
  const ClientId alice = manager.attach(cfg);
  EXPECT_TRUE(alice.valid());
  EXPECT_EQ(manager.viewer(alice).name, "alice");

  // Stale/invalid handles throw instead of UB — including through the
  // deprecated int accessors.
  EXPECT_THROW(manager.stats(ClientId{}), std::invalid_argument);
  EXPECT_THROW(manager.deliveries(ClientId{99}), std::invalid_argument);
  EXPECT_THROW(manager.viewer(-1), std::invalid_argument);
  EXPECT_THROW(manager.stats(7), std::invalid_argument);
  EXPECT_THROW(manager.detach(ClientId{42}), std::invalid_argument);
  EXPECT_THROW(manager.steer_view(ClientId{42}, ViewCommand{}),
               std::invalid_argument);

  // Name lookup resolves to the same handle; unknown names are nullopt.
  const auto found = manager.find_client("alice");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, alice);
  EXPECT_FALSE(manager.find_client("bob").has_value());

  // The deprecated index API and the handle API are the same session.
  const int as_int = manager.add_viewer(exact_viewer(1.0));
  EXPECT_EQ(ClientId{as_int}, ClientId{manager.viewer_count() - 1});
  EXPECT_FALSE(manager.attached(ClientId{99}));
}

TEST(Sessions, DetachStopsDeliveriesAndReattachResumes) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  const ClientId c = manager.attach(exact_viewer(1.0));
  manager.on_frame(mkframe(0, 1, 0.0));
  queue.run_all();
  ASSERT_EQ(manager.deliveries(c).size(), 1u);
  EXPECT_TRUE(manager.attached(c));

  // Gone: frames published while detached are never delivered, and the
  // detached session does not hold idle() open.
  manager.detach(c);
  EXPECT_FALSE(manager.attached(c));
  EXPECT_THROW(manager.detach(c), std::invalid_argument);  // already gone
  manager.on_frame(mkframe(1, 1, 100.0));
  manager.on_frame(mkframe(2, 1, 200.0));
  queue.run_all();
  EXPECT_EQ(manager.deliveries(c).size(), 1u);
  EXPECT_TRUE(manager.idle());
  EXPECT_EQ(manager.attached_count(), 0);

  // Back: the same handle resumes at the live head (live-tail skips the
  // missed era; the skips are counted).
  manager.reattach(c);
  EXPECT_TRUE(manager.attached(c));
  queue.run_all();
  const auto& records = manager.deliveries(c);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].sequence, 2);
  EXPECT_EQ(manager.stats(c).frames_skipped, 1);  // frame #1, missed
  manager.reattach(c);  // idempotent
  EXPECT_EQ(manager.attached_count(), 1);
}

TEST(Sessions, DetachMidTransferAbandonsTheFrame) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  const ClientId c = manager.attach(exact_viewer(1.0));
  manager.on_frame(mkframe(0, 1, 0.0));  // 1 MB at 1 MB/s: lands at t=1
  queue.schedule_at(WallSeconds(0.5), [&manager, c] { manager.detach(c); });
  queue.run_all();
  // The in-flight transfer completed after the detach: no record, no stats.
  EXPECT_EQ(manager.deliveries(c).size(), 0u);
  EXPECT_EQ(manager.stats(c).frames_delivered, 0);
  EXPECT_EQ(manager.frames_served(), 0);
}

TEST(Sessions, SteerViewRerendersOnceAndDedupsAcrossClients) {
  EventQueue queue;
  std::vector<std::int64_t> rendered;
  ViewerSessionManager manager(
      queue, {}, /*seed=*/1, /*pool=*/nullptr,
      [&rendered](const Frame& f) { rendered.push_back(f.sequence); });
  const ClientId a = manager.attach(exact_viewer(1.0));
  const ClientId b = manager.attach(exact_viewer(1.0));
  manager.on_frame(mkframe(0, 1, 0.0));
  queue.run_all();
  ASSERT_EQ(manager.deliveries(a).size(), 1u);
  ASSERT_EQ(manager.deliveries(b).size(), 1u);

  // Malformed views are rejected before any state changes.
  EXPECT_THROW(manager.steer_view(a, ViewCommand{.zoom = -1.0}),
               std::invalid_argument);

  // Both clients steer to the same view of the same frame: one render.
  ViewCommand zoomed;
  zoomed.field = "pressure";
  zoomed.zoom = 2.0;
  manager.steer_view(a, zoomed);
  manager.steer_view(a, zoomed);  // unchanged view: no second request
  manager.steer_view(b, zoomed);
  EXPECT_EQ(manager.steer_renders(), 1);
  EXPECT_EQ(manager.steer_dedup(), 1);
  EXPECT_EQ(manager.view(a).zoom, 2.0);
  queue.run_all();

  // Each client received the steered frame as a re-render delivery.
  ASSERT_EQ(manager.deliveries(a).size(), 2u);
  ASSERT_EQ(manager.deliveries(b).size(), 2u);
  EXPECT_EQ(manager.deliveries(a)[1].sequence, 0);
  EXPECT_FALSE(manager.deliveries(a)[1].cache_hit);
  EXPECT_EQ(rendered, (std::vector<std::int64_t>{0}));

  // A different view is a different render — no dedup.
  ViewCommand other = zoomed;
  other.colormap = "viridis";
  manager.steer_view(b, other);
  queue.run_all();
  EXPECT_EQ(manager.steer_renders(), 2);
  EXPECT_EQ(manager.steer_dedup(), 1);
  ASSERT_EQ(manager.deliveries(b).size(), 3u);

  // Steering back to the default view re-renders under the shared
  // default key — and a detached client's steer is recorded but renders
  // nothing until it reattaches.
  manager.detach(a);
  manager.steer_view(a, ViewCommand{});
  queue.run_all();
  EXPECT_EQ(manager.steer_renders(), 2);  // no render for the detached one
  EXPECT_EQ(manager.deliveries(a).size(), 2u);
}

TEST(Sessions, SteeredRendersNeverPolluteTheSharedCache) {
  EventQueue queue;
  ViewerSessionManager manager(queue, {}, /*seed=*/1);
  const ClientId c = manager.attach(exact_viewer(1.0));
  manager.on_frame(mkframe(0, 1, 0.0));
  queue.run_all();
  const std::int64_t before = manager.cache().stats().insertions;
  ViewCommand v;
  v.zoom = 3.0;
  manager.steer_view(c, v);
  queue.run_all();
  ASSERT_EQ(manager.deliveries(c).size(), 2u);
  // The zoomed render is client-specific: the shared sequence-keyed cache
  // must not have been touched by it.
  EXPECT_EQ(manager.cache().stats().insertions, before);
}

TEST(Sessions, SteerAndDetachChurnIsDeterministicAcrossPoolSizes) {
  // A replayed control-plane session — view steers, a detach and a
  // reattach at fixed virtual times, heavy renders on a real pool — must
  // produce the same delivery series for any worker count.
  auto run = [](int pool_workers) {
    EventQueue queue;
    ThreadPool pool(pool_workers);
    ViewerSessionManager::Options opts;
    opts.cache.capacity = Bytes::megabytes(3);
    opts.cache.policy = EvictionPolicy::kStrideThinning;
    opts.rerender_fixed_seconds = 10.0;
    opts.rerender_seconds_per_gb = 0.0;
    opts.rerender_workers = 2;
    ViewerSessionManager manager(queue, opts, /*seed=*/3, &pool,
                                 [](const Frame& f) {
                                   volatile std::int64_t acc = 0;
                                   for (int i = 0; i < 5000; ++i) {
                                     acc = acc + (f.sequence * 31 + i) % 97;
                                   }
                                 });
    for (int i = 0; i < 6; ++i) manager.on_frame(mkframe(i, 1, 10.0 * i));
    const ClientId replayer =
        manager.attach(exact_viewer(1.0, ViewerMode::kCatchUp));
    const ClientId tail = manager.attach(exact_viewer(1.0));
    for (int i = 6; i < 12; ++i) {
      queue.schedule_at(WallSeconds(10.0 * (i - 5)), [&manager, i] {
        manager.on_frame(mkframe(i, 1, 10.0 * i));
      });
    }
    queue.schedule_at(WallSeconds(15.0), [&manager, tail] {
      ViewCommand v;
      v.field = "wind-speed";
      v.zoom = 2.0;
      manager.steer_view(tail, v);
    });
    queue.schedule_at(WallSeconds(25.0), [&manager, replayer] {
      ViewCommand v;
      v.field = "wind-speed";
      v.zoom = 2.0;
      manager.steer_view(replayer, v);
    });
    queue.schedule_at(WallSeconds(31.0),
                      [&manager, tail] { manager.detach(tail); });
    queue.schedule_at(WallSeconds(47.0),
                      [&manager, tail] { manager.reattach(tail); });
    queue.run_all();
    std::vector<DeliveryRecord> all = manager.deliveries(replayer);
    const auto& t = manager.deliveries(tail);
    all.insert(all.end(), t.begin(), t.end());
    EXPECT_GT(manager.steer_renders(), 0);
    return all;
  };
  const std::vector<DeliveryRecord> serial = run(0);
  EXPECT_FALSE(serial.empty());
  for (const int workers : {2, 5}) {
    const std::vector<DeliveryRecord> pooled = run(workers);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].sequence, pooled[i].sequence);
      EXPECT_EQ(serial[i].wall_time.seconds(), pooled[i].wall_time.seconds());
      EXPECT_EQ(serial[i].cache_hit, pooled[i].cache_hit);
    }
  }
}

TEST(Sessions, FleetBuilderSplitsModes) {
  const std::vector<ViewerConfig> fleet = make_viewer_fleet(
      4, Bandwidth::mbps(10.0), /*catchup_fraction=*/0.5, SimSeconds(7.0),
      /*catchup_join=*/WallSeconds(99.0));
  ASSERT_EQ(fleet.size(), 4u);
  EXPECT_EQ(fleet[0].mode, ViewerMode::kCatchUp);
  EXPECT_EQ(fleet[1].mode, ViewerMode::kCatchUp);
  EXPECT_EQ(fleet[2].mode, ViewerMode::kLiveTail);
  EXPECT_EQ(fleet[3].mode, ViewerMode::kLiveTail);
  EXPECT_DOUBLE_EQ(fleet[0].join_wall.seconds(), 99.0);
  EXPECT_DOUBLE_EQ(fleet[2].join_wall.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(fleet[1].catchup_start.seconds(), 7.0);
  EXPECT_EQ(fleet[3].name, "viewer003");
}

}  // namespace
}  // namespace adaptviz
