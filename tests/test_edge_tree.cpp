// Edge-cache distribution tree (src/serve/edge_tree.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/run_context.hpp"
#include "serve/edge_tree.hpp"

namespace adaptviz {
namespace {

Frame mkframe(std::int64_t seq, double mb, double sim_seconds) {
  Frame f;
  f.sequence = seq;
  f.size = Bytes::megabytes(mb);
  f.sim_time = SimSeconds(sim_seconds);
  return f;
}

/// A tier on an exact uplink: no latency, no fluctuation, so fill timing
/// is arithmetic and tests are about protocol, not noise.
EdgeTierSpec exact_tier(int fan_out, double mbps = 800.0,
                        double failure_rate = 0.0) {
  EdgeTierSpec tier;
  tier.fan_out = fan_out;
  tier.uplink.nominal = Bandwidth::mbps(mbps);
  tier.uplink.latency = WallSeconds(0.0);
  tier.uplink.failure_probability = failure_rate;
  tier.cache.capacity = Bytes::gigabytes(4.0);
  return tier;
}

TreeSpec small_spec(std::vector<EdgeTierSpec> tiers,
                    double stagger_seconds = 0.0) {
  TreeSpec spec;
  spec.tiers = std::move(tiers);
  spec.leaf_join_stagger = WallSeconds(stagger_seconds);
  spec.retry.initial_backoff = WallSeconds(2.0);
  spec.retry.max_backoff = WallSeconds(30.0);
  spec.retry.jitter = 0.0;  // exact backoff arithmetic
  return spec;
}

void publish_cadence(EventQueue& queue, EdgeTree& tree, int frames,
                     double period_seconds = 10.0, double mb = 10.0) {
  for (int i = 0; i < frames; ++i) {
    queue.schedule_at(WallSeconds(period_seconds * i), [&tree, i, mb] {
      tree.publish(mkframe(i, mb, 100.0 * i));
    });
  }
}

// ------------------------------------------------------------- construction

TEST(EdgeTree, ValidationRejectsNonsensicalSpecs) {
  EventQueue queue;
  EXPECT_THROW(EdgeTree(queue, TreeSpec{}, 1), std::invalid_argument);

  TreeSpec spec = small_spec({exact_tier(2)});
  spec.viewers_per_leaf = 0;
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  spec = small_spec({exact_tier(0)});
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  spec = small_spec({exact_tier(2)});
  spec.tiers[0].codec_ratio = 0.5;
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  spec = small_spec({exact_tier(2)});
  spec.retry.jitter = 1.0;
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  spec = small_spec({exact_tier(2)});
  spec.retry.degrade_after = 0;
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  spec = small_spec({exact_tier(2)});
  spec.leaf_join_stagger = WallSeconds(-1.0);
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);

  // 100^3 = 1M is the cap; one more tier must be rejected, not allocated.
  spec = small_spec({exact_tier(100), exact_tier(100), exact_tier(100),
                     exact_tier(2)});
  EXPECT_THROW(EdgeTree(queue, spec, 1), std::invalid_argument);
}

TEST(EdgeTree, TopologyMultipliesFanOutTierByTier) {
  EventQueue queue;
  TreeSpec spec = small_spec({exact_tier(2), exact_tier(3)});
  spec.viewers_per_leaf = 50;
  EdgeTree tree(queue, spec, /*seed=*/1);
  EXPECT_EQ(tree.tier_count(), 2);
  EXPECT_EQ(tree.nodes_in_tier(0), 2);
  EXPECT_EQ(tree.nodes_in_tier(1), 6);
  EXPECT_EQ(tree.leaf_count(), 6);
  EXPECT_EQ(tree.modeled_viewers(), 300);
  EXPECT_EQ(tree.node(1, 5).name(), "tree.t1.n5");
}

TEST(EdgeTree, PublishRejectsNonIncreasingSequences) {
  EventQueue queue;
  EdgeTree tree(queue, small_spec({exact_tier(1)}), /*seed=*/1);
  tree.publish(mkframe(3, 1, 0));
  EXPECT_THROW(tree.publish(mkframe(3, 1, 100)), std::invalid_argument);
  EXPECT_THROW(tree.publish(mkframe(1, 1, 100)), std::invalid_argument);
}

// ----------------------------------------------------------------- delivery

TEST(EdgeTree, EveryLeafReplaysEveryFrameInOrder) {
  EventQueue queue;
  TreeSpec spec = small_spec({exact_tier(1), exact_tier(2)});
  spec.viewers_per_leaf = 100;
  EdgeTree tree(queue, spec, /*seed=*/1);
  publish_cadence(queue, tree, 5);
  queue.run_all();
  EXPECT_TRUE(tree.idle());
  EXPECT_EQ(tree.frames_published(), 5);
  EXPECT_EQ(tree.leaf_frames_delivered(), 10);
  EXPECT_EQ(tree.frames_delivered(), 1000);  // x viewers_per_leaf
  for (int leaf = 0; leaf < tree.leaf_count(); ++leaf) {
    const auto& records = tree.leaf_deliveries(leaf);
    ASSERT_EQ(records.size(), 5u);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].sequence, static_cast<std::int64_t>(i));
      EXPECT_GE(records[i].staleness.seconds(), 0.0);
    }
  }
}

TEST(EdgeTree, SingleFlightCoalescesConcurrentFills) {
  // Two leaves under one regional cache, joining at the same instant: for
  // every frame both leaf nodes miss and fetch from the parent, whose
  // second request must piggyback on the first's in-flight WAN transfer.
  EventQueue queue;
  EdgeTree tree(queue, small_spec({exact_tier(1), exact_tier(2)}),
                /*seed=*/1);
  publish_cadence(queue, tree, 4);
  queue.run_all();
  const EdgeNode::Stats& parent = tree.node(0, 0).stats();
  EXPECT_EQ(parent.fills, 4);           // one upstream flight per frame
  EXPECT_EQ(parent.fill_coalesced, 4);  // the sibling's request, every time
  EXPECT_EQ(tree.origin_requests(), 4);
  // The origin moved each frame exactly once; the leaf tier moved it once
  // per leaf.
  EXPECT_EQ(tree.origin_bytes_on_wan(), Bytes::megabytes(10.0) * 4.0);
  EXPECT_EQ(tree.tier_stats(1).bytes_filled, Bytes::megabytes(10.0) * 8.0);
}

TEST(EdgeTree, LateLeavesHitCachesEarlierSiblingsWarmed) {
  // Leaf 1 joins 500 s in, after leaf 0 pulled everything through the
  // shared parent: its replay is parent-cache hits, zero new origin bytes.
  EventQueue queue;
  EdgeTree tree(queue,
                small_spec({exact_tier(1), exact_tier(2)}, /*stagger=*/500.0),
                /*seed=*/1);
  publish_cadence(queue, tree, 4);
  queue.run_all();
  EXPECT_TRUE(tree.idle());
  const EdgeNode::Stats& parent = tree.node(0, 0).stats();
  EXPECT_EQ(parent.fills, 4);
  EXPECT_EQ(parent.fill_coalesced, 0);
  EXPECT_EQ(tree.node(0, 0).cache().stats().hits, 4);
  EXPECT_EQ(tree.origin_bytes_on_wan(), Bytes::megabytes(10.0) * 4.0);
  ASSERT_EQ(tree.leaf_deliveries(1).size(), 4u);
}

// ------------------------------------------------------- faults and retries

TEST(EdgeTree, FailingFillKeepsWaitersCoalescedAndLatchesDegraded) {
  // Origin uplink aborts every attempt: the single flight for frame 0
  // retries forever on the backoff ladder. Leaf 1's request, arriving
  // mid-backoff, must coalesce onto the failing flight (never start a
  // second one), and the node latches link_degraded after degrade_after
  // consecutive failures.
  EventQueue queue;
  TreeSpec spec =
      small_spec({exact_tier(1, 800.0, /*failure_rate=*/1.0), exact_tier(2)},
                 /*stagger=*/3.0);
  spec.retry.degrade_after = 3;
  EdgeTree tree(queue, spec, /*seed=*/1);
  tree.publish(mkframe(0, 10, 0));
  queue.run_until(WallSeconds(200.0));

  const EdgeNode& parent = tree.node(0, 0);
  EXPECT_EQ(parent.stats().fills, 1);  // still the one single flight
  EXPECT_GE(parent.stats().fill_failures, 3);
  EXPECT_EQ(parent.stats().fill_retries, parent.stats().fill_failures - 1);
  EXPECT_EQ(parent.stats().fill_coalesced, 1);  // leaf 1, during a backoff
  EXPECT_TRUE(parent.link_degraded());
  EXPECT_EQ(parent.stats().degraded_events, 1);  // latched once, not per fail
  EXPECT_TRUE(parent.busy());
  EXPECT_FALSE(tree.idle());
  EXPECT_EQ(tree.tier_stats(0).links_degraded, 1);
  EXPECT_EQ(tree.leaf_frames_delivered(), 0);
  // Aborted attempts still burned wire bytes.
  EXPECT_GT(tree.tier_stats(0).bytes_wasted, Bytes(0));
}

TEST(EdgeTree, RetriesRecoverToExactlyOnceDeliveryAndClearDegraded) {
  EventQueue queue;
  TreeSpec spec =
      small_spec({exact_tier(1, 800.0, /*failure_rate=*/0.5), exact_tier(2)});
  spec.retry.degrade_after = 1;  // every failure latches, every success clears
  EdgeTree tree(queue, spec, /*seed=*/7);
  publish_cadence(queue, tree, 10);
  queue.run_all();
  EXPECT_TRUE(tree.idle());

  const EdgeTierStats t0 = tree.tier_stats(0);
  EXPECT_GT(t0.fill_failures, 0);
  EXPECT_EQ(t0.fill_retries, t0.fill_failures);  // every abort was retried
  EXPECT_GT(t0.degraded_events, 0);
  EXPECT_EQ(t0.links_degraded, 0);  // the last fill succeeded and cleared it
  EXPECT_FALSE(tree.node(0, 0).link_degraded());
  // Single-flight survived the retries: one successful fill per frame.
  EXPECT_EQ(t0.fills, 10);
  EXPECT_EQ(t0.bytes_filled, Bytes::megabytes(10.0) * 10.0);
  for (int leaf = 0; leaf < tree.leaf_count(); ++leaf) {
    const auto& records = tree.leaf_deliveries(leaf);
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].sequence, static_cast<std::int64_t>(i));
    }
  }
}

// ----------------------------------------------- shapes, codec, boundedness

TEST(EdgeTree, DeliveredContentIsIdenticalAcrossShapesWithEqualLeaves) {
  auto run = [](std::vector<EdgeTierSpec> tiers) {
    EventQueue queue;
    EdgeTree tree(queue, small_spec(std::move(tiers), /*stagger=*/5.0),
                  /*seed=*/42);
    publish_cadence(queue, tree, 6);
    queue.run_all();
    return std::make_pair(tree.delivery_digest(/*include_wall_times=*/false),
                          tree.origin_bytes_on_wan());
  };
  const auto flat = run({exact_tier(4)});
  const auto tiered = run({exact_tier(2), exact_tier(2)});
  EXPECT_EQ(flat.first, tiered.first);
  // Four origin pulls per frame flat, two through the regional caches.
  EXPECT_EQ(flat.second, Bytes::megabytes(10.0) * 24.0);
  EXPECT_EQ(tiered.second, Bytes::megabytes(10.0) * 12.0);
}

TEST(EdgeTree, CodecRatioShrinksWireBytesNotCachedBytes) {
  EventQueue queue;
  TreeSpec spec = small_spec({exact_tier(1)});
  spec.tiers[0].codec_ratio = 4.0;
  EdgeTree tree(queue, spec, /*seed=*/1);
  tree.publish(mkframe(0, 8, 0));
  queue.run_all();
  EXPECT_EQ(tree.origin_bytes_on_wan(), Bytes::megabytes(2.0));
  EXPECT_EQ(tree.node(0, 0).cache().bytes_cached(), Bytes::megabytes(8.0));
}

TEST(EdgeTree, NodeCachesStayBoundedUnderEvictionPressure) {
  EventQueue queue;
  TreeSpec spec = small_spec({exact_tier(2)});
  spec.tiers[0].cache.capacity = Bytes::megabytes(25.0);  // two 10 MB frames
  spec.tiers[0].cache.policy = EvictionPolicy::kStrideThinning;
  EdgeTree tree(queue, spec, /*seed=*/1);
  publish_cadence(queue, tree, 12);
  queue.run_all();
  EXPECT_TRUE(tree.idle());
  const EdgeTierStats t0 = tree.tier_stats(0);
  EXPECT_LE(t0.peak_node_bytes, Bytes::megabytes(25.0));
  EXPECT_GT(t0.cache_evictions, 0);
  for (int leaf = 0; leaf < tree.leaf_count(); ++leaf) {
    EXPECT_EQ(tree.leaf_deliveries(leaf).size(), 12u);
  }
}

// ------------------------------------------------------------ observability

TEST(EdgeTree, PerTierMetricsLandInTheInstalledRegistry) {
  obs::Observability obs;
  RunContext ctx;
  ctx.observability = &obs;
  ScopedRunContext scope(&ctx);

  EventQueue queue;
  TreeSpec spec =
      small_spec({exact_tier(1, 800.0, /*failure_rate=*/0.5), exact_tier(2)});
  spec.retry.degrade_after = 1;
  spec.viewers_per_leaf = 10;
  EdgeTree tree(queue, spec, /*seed=*/7);
  publish_cadence(queue, tree, 10);
  queue.run_all();

  obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.counter("tree.published").value(), 10);
  EXPECT_EQ(m.counter("tree.viewer_frames").value(), 200);  // 2 leaves x 10
  // Tier-0 fill protocol, including the retry/degraded series the fault
  // ladder produces.
  const EdgeTierStats t0 = tree.tier_stats(0);
  EXPECT_EQ(m.counter("tree.t0.fills").value(), t0.fills);
  EXPECT_EQ(m.counter("tree.t0.fill_failures").value(), t0.fill_failures);
  EXPECT_GT(m.counter("tree.t0.fill_retries").value(), 0);
  EXPECT_EQ(m.counter("tree.t0.fill_retries").value(), t0.fill_retries);
  EXPECT_GT(m.counter("tree.t0.degraded_events").value(), 0);
  EXPECT_DOUBLE_EQ(m.gauge("tree.t0.links_degraded").value(), 0.0);
  EXPECT_EQ(m.counter("tree.t0.wan_bytes").value(),
            tree.origin_bytes_on_wan().count());
  // Staleness histograms fill per tier; leaf-tier cache counters carry the
  // obs_prefix wired through FrameCacheConfig (fan-out hits included).
  EXPECT_EQ(m.histogram("tree.t0.staleness_s").count(), t0.fills);
  EXPECT_GT(m.histogram("tree.t1.staleness_s").count(), 0);
  EXPECT_EQ(m.counter("tree.t1.cache_hits").value(),
            tree.tier_stats(1).cache_hits);
}

}  // namespace
}  // namespace adaptviz
