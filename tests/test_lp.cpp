#include <gtest/gtest.h>

#include <cmath>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace adaptviz::lp {
namespace {

TEST(Problem, BuildsAndPrints) {
  Problem p;
  const int x = p.add_variable("x", 0.0, 10.0, 1.0);
  p.add_constraint("c1", {{x, 2.0}}, Relation::kLessEqual, 8.0);
  EXPECT_EQ(p.variable_count(), 1);
  EXPECT_EQ(p.constraint_count(), 1);
  EXPECT_NE(p.str().find("minimize"), std::string::npos);
  EXPECT_NE(p.str().find("c1"), std::string::npos);
}

TEST(Problem, Validation) {
  Problem p;
  EXPECT_THROW(p.add_variable("x", 5.0, 1.0), std::invalid_argument);
  const int x = p.add_variable("x");
  EXPECT_THROW(p.add_constraint("bad", {{x + 1, 1.0}}, Relation::kEqual, 0.0),
               std::invalid_argument);
  EXPECT_THROW(p.set_objective(7, 1.0), std::invalid_argument);
}

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  (=> min -3x - 2y)
  // Optimum at (4, 0), objective -12.
  Problem p;
  const int x = p.add_variable("x", 0.0, kInfinity, -3.0);
  const int y = p.add_variable("y", 0.0, kInfinity, -2.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 6.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -12.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 4.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 0.0, 1e-9);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + y  s.t. x + y >= 2, x - y == 1  ->  x=1.5, y=0.5.
  Problem p;
  const int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  const int y = p.add_variable("y", 0.0, kInfinity, 1.0);
  p.add_constraint("ge", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2.0);
  p.add_constraint("eq", {{x, 1.0}, {y, -1.0}}, Relation::kEqual, 1.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 1.5, 1e-9);
  EXPECT_NEAR(s.values[1], 0.5, 1e-9);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, VariableBoundsRespected) {
  // min -x with 1 <= x <= 3: optimum x = 3.
  Problem p;
  (void)p.add_variable("x", 1.0, 3.0, -1.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Simplex, NonzeroLowerBoundShift) {
  // min x with x >= 2.5 and x + y <= 10, y >= 4: x stays at 2.5.
  Problem p;
  const int x = p.add_variable("x", 2.5, kInfinity, 1.0);
  const int y = p.add_variable("y", 4.0, kInfinity, 0.0);
  p.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.5, 1e-9);
  EXPECT_GE(s.values[static_cast<size_t>(y)], 4.0 - 1e-9);
}

TEST(Simplex, FreeVariable) {
  // min x, x free, x >= -7 via constraint: optimum -7.
  Problem p;
  const int x = p.add_variable("x", -kInfinity, kInfinity, 1.0);
  p.add_constraint("lb", {{x, 1.0}}, Relation::kGreaterEqual, -7.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], -7.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  const int x = p.add_variable("x", 0.0, 1.0, 1.0);
  p.add_constraint("impossible", {{x, 1.0}}, Relation::kGreaterEqual, 5.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  const int x = p.add_variable("x", 0.0, kInfinity, -1.0);  // min -x
  p.add_constraint("loose", {{x, -1.0}}, Relation::kLessEqual, 5.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  Problem p;
  const int x = p.add_variable("x", 0.0, kInfinity, 1.0);
  p.add_constraint("a", {{x, 1.0}}, Relation::kGreaterEqual, 3.0);
  p.add_constraint("b", {{x, 2.0}}, Relation::kGreaterEqual, 6.0);  // same
  p.add_constraint("c", {{x, 1.0}}, Relation::kEqual, 3.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
}

TEST(Simplex, StatusToString) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
}

TEST(Simplex, PaperShapedInstance) {
  // The Section IV-B LP at realistic magnitudes: ensure it solves and
  // honours its constraints. Physically drain = D/n + b >= b, hence
  // O/drain <= O/b.
  const double tio = 6.0, o_over_b = 880.0, o_over_drain = 430.0;
  const double t_lb = 33.0, t_ub = 290.0, z_lb = 0.04, z_ub = 0.333;
  Problem p;
  const int t = p.add_variable("t", t_lb, t_ub, 1.0);
  const int z = p.add_variable("z", z_lb, z_ub, 0.0);
  const int y = p.add_variable("y", 0.0, kInfinity, 0.0);
  p.add_constraint("y_le_z", {{y, 1.0}, {z, -1.0}}, Relation::kLessEqual, 0.0);
  p.add_constraint("eq5", {{t, 1.0}, {z, tio}, {y, -o_over_b}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint("eq6", {{t, 1.0}, {z, tio - o_over_drain}},
                   Relation::kGreaterEqual, 0.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  const double tv = s.values[static_cast<size_t>(t)];
  const double zv = s.values[static_cast<size_t>(z)];
  const double yv = s.values[static_cast<size_t>(y)];
  EXPECT_GE(tv, t_lb - 1e-9);
  EXPECT_LE(tv, t_ub + 1e-9);
  EXPECT_GE(zv, z_lb - 1e-9);
  EXPECT_LE(zv, z_ub + 1e-9);
  EXPECT_LE(yv, zv + 1e-9);
  EXPECT_LE(tv + tio * zv, o_over_b * yv + 1e-6);
  EXPECT_GE(tv + tio * zv, (o_over_drain - tio) * zv - 1e-6);
}

// Property sweep: random bounded LPs — when the solver says optimal, the
// point must satisfy every constraint; when a trivially feasible point
// exists, the solver must not report infeasible.
class RandomLp : public testing::TestWithParam<int> {};

TEST_P(RandomLp, OptimalPointsAreFeasible) {
  Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const int nvars = 2 + static_cast<int>(rng.bounded(3));
  const int ncons = 1 + static_cast<int>(rng.bounded(4));
  Problem p;
  for (int v = 0; v < nvars; ++v) {
    p.add_variable("x" + std::to_string(v), 0.0, rng.uniform(1.0, 10.0),
                   rng.uniform(-2.0, 2.0));
  }
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  for (int c = 0; c < ncons; ++c) {
    Row row;
    for (int v = 0; v < nvars; ++v) {
      row.terms.push_back({v, rng.uniform(-1.0, 1.0)});
    }
    // rhs chosen so that the origin (all lower bounds = 0) is feasible for
    // <= rows; mix in some >= rows with negative rhs (also origin-feasible).
    if (rng.uniform() < 0.5) {
      row.rel = Relation::kLessEqual;
      row.rhs = rng.uniform(0.0, 5.0);
    } else {
      row.rel = Relation::kGreaterEqual;
      row.rhs = rng.uniform(-5.0, 0.0);
    }
    rows.push_back(row);
    p.add_constraint("c" + std::to_string(c), rows.back().terms,
                     rows.back().rel, rows.back().rhs);
  }
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal()) << "origin is feasible, must not be infeasible";
  for (const Row& row : rows) {
    double lhs = 0.0;
    for (const auto& [v, coeff] : row.terms) {
      lhs += coeff * s.values[static_cast<size_t>(v)];
    }
    if (row.rel == Relation::kLessEqual) {
      EXPECT_LE(lhs, row.rhs + 1e-6);
    } else {
      EXPECT_GE(lhs, row.rhs - 1e-6);
    }
  }
  for (int v = 0; v < nvars; ++v) {
    EXPECT_GE(s.values[static_cast<size_t>(v)], -1e-9);
    EXPECT_LE(s.values[static_cast<size_t>(v)],
              p.variable(v).upper + 1e-9);
  }
  // Objective must not beat the best corner of the box by definition of
  // optimality: check against a brute-force sample of random feasible
  // points.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(static_cast<size_t>(nvars));
    for (int v = 0; v < nvars; ++v) {
      x[static_cast<size_t>(v)] = rng.uniform(0.0, p.variable(v).upper);
    }
    bool feasible = true;
    for (const Row& row : rows) {
      double lhs = 0.0;
      for (const auto& [v, coeff] : row.terms) {
        lhs += coeff * x[static_cast<size_t>(v)];
      }
      if ((row.rel == Relation::kLessEqual && lhs > row.rhs) ||
          (row.rel == Relation::kGreaterEqual && lhs < row.rhs)) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (int v = 0; v < nvars; ++v) {
      obj += p.variable(v).objective * x[static_cast<size_t>(v)];
    }
    EXPECT_GE(obj, s.objective - 1e-6)
        << "solver returned a non-optimal point";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLp, testing::Range(0, 30));

}  // namespace
}  // namespace adaptviz::lp
