#include "vis/streamlines.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

// Uniform eastward flow: streamlines are horizontal lines.
TEST(Streamlines, UniformFlowIsStraight) {
  Field2D u(30, 20, 5.0);
  Field2D v(30, 20, 0.0);
  const Streamline line = trace_streamline(u, v, 15.0, 10.0);
  ASSERT_GT(line.size(), 20u);
  for (const auto& [x, y] : line) {
    EXPECT_NEAR(y, 10.0, 1e-9);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 29.0);
  }
  // Upstream half reaches toward the west edge, downstream toward the east.
  EXPECT_LT(line.front().first, 2.0);
  EXPECT_GT(line.back().first, 27.0);
}

// Solid-body rotation: streamlines are circles around the centre.
TEST(Streamlines, RotationalFlowCircles) {
  const std::size_t n = 41;
  Field2D u(n, n), v(n, n);
  const double c = (n - 1) / 2.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - c;
      const double dy = static_cast<double>(j) - c;
      u(i, j) = -dy;
      v(i, j) = dx;
    }
  }
  const double r0 = 8.0;
  const Streamline line = trace_streamline(u, v, c + r0, c);
  ASSERT_GT(line.size(), 50u);
  for (const auto& [x, y] : line) {
    EXPECT_NEAR(std::hypot(x - c, y - c), r0, 0.25);
  }
}

TEST(Streamlines, StopsAtStagnation) {
  Field2D u(20, 20, 0.0);
  Field2D v(20, 20, 0.0);
  EXPECT_EQ(trace_streamline(u, v, 10.0, 10.0).size(), 1u);  // seed only
}

TEST(Streamlines, SeedOutsideReturnsEmpty) {
  Field2D u(10, 10, 1.0);
  Field2D v(10, 10, 0.0);
  EXPECT_TRUE(trace_streamline(u, v, -1.0, 5.0).empty());
  EXPECT_TRUE(trace_streamline(u, v, 5.0, 100.0).empty());
}

TEST(Streamlines, Validation) {
  Field2D u(10, 10, 1.0);
  Field2D v(8, 10, 0.0);
  EXPECT_THROW(trace_streamline(u, v, 1.0, 1.0), std::invalid_argument);
  Field2D v2(10, 10, 0.0);
  StreamlineOptions bad;
  bad.step_cells = 0.0;
  EXPECT_THROW(trace_streamline(u, v2, 1.0, 1.0, bad),
               std::invalid_argument);
  EXPECT_THROW(streamline_field(u, v2, 0.0), std::invalid_argument);
}

TEST(Streamlines, FieldSeedingCoversDomain) {
  Field2D u(40, 30, 3.0);
  Field2D v(40, 30, 0.0);
  const auto lines = streamline_field(u, v, 6.0);
  EXPECT_GE(lines.size(), 15u);
  for (const auto& line : lines) EXPECT_GE(line.size(), 8u);
}

TEST(Streamlines, MaxStepsBounded) {
  // Rotational flow never leaves the domain: the cap must stop it.
  const std::size_t n = 21;
  Field2D u(n, n), v(n, n);
  const double c = (n - 1) / 2.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      u(i, j) = -(static_cast<double>(j) - c);
      v(i, j) = static_cast<double>(i) - c;
    }
  }
  StreamlineOptions opt;
  opt.max_steps = 50;
  const Streamline line = trace_streamline(u, v, c + 5.0, c, opt);
  EXPECT_LE(line.size(), 2u * 50u + 1u);
}

}  // namespace
}  // namespace adaptviz
