// Disk, network link, and cluster ground-truth tests.
#include <gtest/gtest.h>

#include <cmath>

#include "resources/cluster.hpp"
#include "resources/disk.hpp"
#include "resources/network.hpp"

namespace adaptviz {
namespace {

// --- DiskModel ---

TEST(Disk, AllocateAndRelease) {
  DiskModel d(Bytes::gigabytes(100), Bandwidth::megabytes_per_second(100));
  EXPECT_TRUE(d.allocate(Bytes::gigabytes(40)));
  EXPECT_EQ(d.used(), Bytes::gigabytes(40));
  EXPECT_EQ(d.free_space(), Bytes::gigabytes(60));
  EXPECT_DOUBLE_EQ(d.free_percent(), 60.0);
  d.release(Bytes::gigabytes(10));
  EXPECT_DOUBLE_EQ(d.free_percent(), 70.0);
}

TEST(Disk, AllocationFailsAtomically) {
  DiskModel d(Bytes::gigabytes(10), Bandwidth::megabytes_per_second(100));
  EXPECT_TRUE(d.allocate(Bytes::gigabytes(9)));
  EXPECT_FALSE(d.allocate(Bytes::gigabytes(2)));
  EXPECT_EQ(d.used(), Bytes::gigabytes(9));  // unchanged by the failure
  EXPECT_TRUE(d.allocate(Bytes::gigabytes(1)));
  EXPECT_DOUBLE_EQ(d.free_percent(), 0.0);
}

TEST(Disk, PeakTracksHighWaterMark) {
  DiskModel d(Bytes::gigabytes(10), Bandwidth::megabytes_per_second(100));
  (void)d.allocate(Bytes::gigabytes(7));
  d.release(Bytes::gigabytes(5));
  (void)d.allocate(Bytes::gigabytes(2));
  EXPECT_EQ(d.peak_used(), Bytes::gigabytes(7));
}

TEST(Disk, WriteTimeUsesIoBandwidth) {
  DiskModel d(Bytes::gigabytes(10), Bandwidth::megabytes_per_second(200));
  EXPECT_NEAR(d.write_time(Bytes::megabytes(900)).seconds(), 4.5, 1e-9);
}

TEST(Disk, Validation) {
  EXPECT_THROW(DiskModel(Bytes(0), Bandwidth::mbps(1)), std::invalid_argument);
  EXPECT_THROW(DiskModel(Bytes(10), Bandwidth(0.0)), std::invalid_argument);
  DiskModel d(Bytes::gigabytes(1), Bandwidth::mbps(1));
  EXPECT_THROW(d.release(Bytes(1)), std::logic_error);
  EXPECT_THROW((void)d.allocate(Bytes(-1)), std::invalid_argument);
}

// --- NetworkLink ---

TEST(Network, ConstantLinkTransferTime) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .latency = WallSeconds(0.0)},
                   1);
  // 8 Mbps = 1 MB/s -> 10 MB in 10 s.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(10), WallSeconds(0.0))
                  .seconds(),
              10.0, 1e-9);
}

TEST(Network, EfficiencyScalesThroughput) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .efficiency = 0.5,
                            .latency = WallSeconds(0.0)},
                   1);
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(10), WallSeconds(0.0))
                  .seconds(),
              20.0, 1e-9);
}

TEST(Network, LatencyAdds) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .latency = WallSeconds(0.25)},
                   1);
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(1), WallSeconds(0.0))
                  .seconds(),
              1.25, 1e-9);
}

TEST(Network, ProbeMeasuresBandwidth) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(80),
                            .latency = WallSeconds(0.0)},
                   1);
  const auto probe = link.probe(WallSeconds(0.0), Bytes::megabytes(100));
  EXPECT_NEAR(probe.measured.bytes_per_sec(), 1e7, 1e-3);
  EXPECT_NEAR(probe.elapsed.seconds(), 10.0, 1e-9);
}

TEST(Network, FluctuationStaysNearNominal) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(56),
                            .fluctuation_sigma = 0.2,
                            .persistence = 0.9},
                   12345);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sum += link.current_bandwidth(WallSeconds::hours(0.25 * (i + 1)))
               .bytes_per_sec();
  }
  const double nominal = Bandwidth::mbps(56).bytes_per_sec();
  EXPECT_NEAR(sum / n, nominal, 0.15 * nominal);
}

TEST(Network, FluctuationIsDeterministicPerSeed) {
  const LinkSpec spec{.nominal = Bandwidth::mbps(10),
                      .fluctuation_sigma = 0.3};
  NetworkLink a(spec, 7);
  NetworkLink b(spec, 7);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(
        a.current_bandwidth(WallSeconds::hours(i)).bytes_per_sec(),
        b.current_bandwidth(WallSeconds::hours(i)).bytes_per_sec());
  }
}

TEST(Network, OutageZeroesBandwidth) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(10.0), WallSeconds(20.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  EXPECT_GT(link.current_bandwidth(WallSeconds(5.0)).bytes_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(link.current_bandwidth(WallSeconds(15.0)).bytes_per_sec(),
                   0.0);
  EXPECT_TRUE(link.in_outage(WallSeconds(10.0)));
  EXPECT_FALSE(link.in_outage(WallSeconds(20.0)));  // half-open window
}

TEST(Network, TransferPausesAcrossOutage) {
  // 1 MB/s link, outage [10, 25): a 15 MB transfer started at t=0 serves
  // 10 MB before the outage, waits 15 s, then serves the last 5 MB.
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(10.0), WallSeconds(25.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(15), WallSeconds(0.0))
                  .seconds(),
              30.0, 1e-9);
  // A transfer that finishes before the outage is unaffected.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(5), WallSeconds(0.0))
                  .seconds(),
              5.0, 1e-9);
  // Starting mid-outage: wait for the link, then serve.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(5), WallSeconds(12.0))
                  .seconds(),
              13.0 + 5.0, 1e-9);
}

TEST(Network, TransferSpansMultipleOutages) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(2.0), WallSeconds(4.0)},
                                        {WallSeconds(6.0), WallSeconds(9.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  // 6 MB at 1 MB/s: serve [0,2), wait [2,4), serve [4,6), wait [6,9),
  // serve [9,11) -> done at t=11.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(6), WallSeconds(0.0))
                  .seconds(),
              11.0, 1e-9);
}

TEST(Network, ProbeDuringOutageWaitsAndMeasuresLow) {
  // 1 MB/s link, outage [5, 10). A probe launched at t=6 waits out the
  // remaining 4 s of blackout before its 1 MB moves: the measurement is
  // honest about the wait (0.2 MB/s), exactly what collapses the paper's
  // bandwidth estimate during a storm.
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(5.0), WallSeconds(10.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  const auto during = link.probe(WallSeconds(6.0), Bytes::megabytes(1));
  EXPECT_NEAR(during.elapsed.seconds(), 5.0, 1e-9);
  EXPECT_NEAR(during.measured.bytes_per_sec(), 0.2e6, 1e-3);
  // The same probe after the window sees the true rate again.
  const auto after = link.probe(WallSeconds(10.0), Bytes::megabytes(1));
  EXPECT_NEAR(after.elapsed.seconds(), 1.0, 1e-9);
  EXPECT_NEAR(after.measured.bytes_per_sec(), 1e6, 1e-3);
}

TEST(Network, OutageStormWindowsAtUnitLevel) {
  // The outage_storm scenario's failure injection: blackouts at wall hours
  // [6, 10) and [14, 16). Unit-level on a 1 MB/s link.
  NetworkLink link(
      LinkSpec{.nominal = Bandwidth::mbps(8),
               .outages = {{WallSeconds::hours(6), WallSeconds::hours(10)},
                           {WallSeconds::hours(14), WallSeconds::hours(16)}},
               .latency = WallSeconds(0.0)},
      1);
  // Dead inside both windows, live between and after them.
  EXPECT_EQ(link.current_bandwidth(WallSeconds::hours(7)).bytes_per_sec(), 0.0);
  EXPECT_EQ(link.current_bandwidth(WallSeconds::hours(15)).bytes_per_sec(),
            0.0);
  EXPECT_NEAR(link.current_bandwidth(WallSeconds::hours(12)).bytes_per_sec(),
              1e6, 1e-3);
  EXPECT_NEAR(link.current_bandwidth(WallSeconds::hours(20)).bytes_per_sec(),
              1e6, 1e-3);
  // A transfer spanning *both* windows: 53 000 MB started at t=0 moves
  // 21 600 MB before hour 6, resumes at hour 10 and moves 14 400 MB more by
  // hour 14, waits again, and finishes the last 17 000 MB after hour 16:
  // done at 57 600 s + 17 000 s.
  EXPECT_NEAR(
      link.transfer_duration(Bytes::megabytes(53000), WallSeconds(0.0))
          .seconds(),
      74600.0, 1e-6);
  // Started inside the first window, big enough to reach into the second.
  EXPECT_NEAR(
      link.transfer_duration(Bytes::megabytes(15000), WallSeconds::hours(8))
          .seconds(),
      // Waits [8h, 10h) = 7200 s, serves 14 400 MB by hour 14, waits
      // [14h, 16h) = 7200 s, serves the last 600 MB.
      7200.0 + 14400.0 + 7200.0 + 600.0, 1e-6);
}

TEST(Network, OutageWindowBoundaries) {
  // 1 MB/s link, outage [10, 20). The boundaries are half-open, and
  // transfer_duration must agree with in_outage at the window edges.
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(10.0), WallSeconds(20.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  EXPECT_TRUE(link.in_outage(WallSeconds(10.0)));
  EXPECT_FALSE(link.in_outage(WallSeconds(20.0)));
  // Starting exactly at o.start: the link is dead, wait out the whole
  // window, then serve — done at t = 20 + 4.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(4), WallSeconds(10.0))
                  .seconds(),
              14.0, 1e-9);
  // Starting exactly at o.end: the link is live again, no wait at all.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(4), WallSeconds(20.0))
                  .seconds(),
              4.0, 1e-9);
  // A transfer whose last byte would land exactly at o.start just fits:
  // 10 MB starting at t=0 completes at t=10 with no outage pause.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(10), WallSeconds(0.0))
                  .seconds(),
              10.0, 1e-9);
  // One byte more spills across the window: 10 MB by t=10, wait to t=20,
  // then the remainder.
  EXPECT_NEAR(
      link.transfer_duration(Bytes::megabytes(10) + Bytes(1), WallSeconds(0.0))
          .seconds(),
      20.0 + 1e-6, 1e-9);
}

TEST(Network, TransferSpansBackToBackOutages) {
  // Two adjacent windows [2, 4) and [4, 6) are legal (sorted,
  // non-overlapping) and behave like one 4-second blackout.
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .outages = {{WallSeconds(2.0), WallSeconds(4.0)},
                                        {WallSeconds(4.0), WallSeconds(6.0)}},
                            .latency = WallSeconds(0.0)},
                   1);
  EXPECT_TRUE(link.in_outage(WallSeconds(3.999)));
  EXPECT_TRUE(link.in_outage(WallSeconds(4.0)));  // seam is still dead
  EXPECT_FALSE(link.in_outage(WallSeconds(6.0)));
  // 4 MB from t=0: serve [0,2), dead [2,6), serve [6,8).
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(4), WallSeconds(0.0))
                  .seconds(),
              8.0, 1e-9);
  // Starting at the seam (t=4, inside the second window): wait to 6.
  EXPECT_NEAR(link.transfer_duration(Bytes::megabytes(1), WallSeconds(4.0))
                  .seconds(),
              3.0, 1e-9);
}

TEST(Network, ProbeWithDegeneratePayloadDoesNotDivideByZero) {
  // Zero bytes over a zero-latency link completes in zero time; the probe
  // must report a finite figure (the instantaneous rate) instead of
  // inf/nan from size / 0.
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(8),
                            .latency = WallSeconds(0.0)},
                   1);
  const auto probe = link.probe(WallSeconds(0.0), Bytes(0));
  EXPECT_TRUE(std::isfinite(probe.measured.bytes_per_sec()));
  EXPECT_NEAR(probe.measured.bytes_per_sec(), 1e6, 1e-3);
  EXPECT_DOUBLE_EQ(probe.elapsed.seconds(), 0.0);
}

TEST(Network, LongStallCatchUpIsFastAndPreservesStationaryLaw) {
  // The AR(1) catch-up used to spin O(idle_gap / update_period); a
  // multi-day stall with a 1-second period meant millions of iterations.
  // The closed-form jump must return promptly and leave the stationary
  // distribution of the log-factor intact: mean 0, stddev sigma.
  const double sigma = 0.25;
  NetworkLink link(LinkSpec{.nominal = Bandwidth::megabytes_per_second(1),
                            .fluctuation_sigma = sigma,
                            .persistence = 0.9,
                            .update_period = WallSeconds(1.0),
                            .latency = WallSeconds(0.0)},
                   4242);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 4000;
  for (int i = 1; i <= n; ++i) {
    // Each call jumps ~1e7 periods — the old loop would take ~hours total.
    const double bw =
        link.current_bandwidth(WallSeconds(1e7 * i)).bytes_per_sec();
    const double log_factor = std::log(bw / 1e6);
    sum += log_factor;
    sum_sq += log_factor * log_factor;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(stddev, sigma, 0.03);
}

TEST(Network, ShortCatchUpUnchangedByClosedFormPath) {
  // Gaps below the catch-up cap must replay the historical per-period
  // loop bitwise: a link advanced in small steps and one advanced with
  // the same seed through the same times agree exactly.
  const LinkSpec spec{.nominal = Bandwidth::mbps(10),
                      .fluctuation_sigma = 0.3,
                      .update_period = WallSeconds::hours(0.25)};
  NetworkLink a(spec, 7);
  NetworkLink b(spec, 7);
  for (int i = 1; i <= 40; ++i) {
    EXPECT_DOUBLE_EQ(
        a.current_bandwidth(WallSeconds::hours(0.5 * i)).bytes_per_sec(),
        b.current_bandwidth(WallSeconds::hours(0.5 * i)).bytes_per_sec());
  }
}

// --- Failure injection ---

TEST(Network, FailureFreeLinkNeverAborts) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::megabytes_per_second(1),
                            .latency = WallSeconds(0.0)},
                   1);
  for (int i = 0; i < 50; ++i) {
    const auto attempt =
        link.plan_transfer(Bytes::megabytes(5), WallSeconds(i));
    EXPECT_FALSE(attempt.failed);
    EXPECT_EQ(attempt.bytes_moved, Bytes::megabytes(5));
    EXPECT_NEAR(attempt.duration.seconds(), 5.0, 1e-9);
  }
}

TEST(Network, CertainFailureAbortsMidTransfer) {
  NetworkLink link(LinkSpec{.nominal = Bandwidth::megabytes_per_second(1),
                            .latency = WallSeconds(0.0),
                            .failure_probability = 1.0},
                   9);
  for (int i = 0; i < 50; ++i) {
    const auto attempt =
        link.plan_transfer(Bytes::megabytes(10), WallSeconds(0.0));
    EXPECT_TRUE(attempt.failed);
    EXPECT_LT(attempt.bytes_moved, Bytes::megabytes(10));
    EXPECT_GE(attempt.bytes_moved, Bytes(0));
    // Time burned equals the time the partial payload takes.
    EXPECT_NEAR(attempt.duration.seconds(),
                attempt.bytes_moved.as_double() / 1e6, 1e-9);
  }
}

TEST(Network, FailureDrawsAreDeterministicPerSeed) {
  const LinkSpec spec{.nominal = Bandwidth::megabytes_per_second(1),
                      .latency = WallSeconds(0.0),
                      .failure_probability = 0.5};
  NetworkLink a(spec, 21);
  NetworkLink b(spec, 21);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const auto pa = a.plan_transfer(Bytes::megabytes(3), WallSeconds(0.0));
    const auto pb = b.plan_transfer(Bytes::megabytes(3), WallSeconds(0.0));
    EXPECT_EQ(pa.failed, pb.failed);
    EXPECT_EQ(pa.bytes_moved, pb.bytes_moved);
    EXPECT_DOUBLE_EQ(pa.duration.seconds(), pb.duration.seconds());
    failures += pa.failed ? 1 : 0;
  }
  // ~50% fail; wide deterministic band.
  EXPECT_GT(failures, 60);
  EXPECT_LT(failures, 140);
}

TEST(Network, FailureStreamDoesNotPerturbFluctuationPath) {
  // Failure draws come from a dedicated RNG stream: switching injection
  // on must not change the AR(1) bandwidth path, so a faulty run remains
  // comparable to its failure-free baseline.
  const LinkSpec clean{.nominal = Bandwidth::mbps(56),
                       .fluctuation_sigma = 0.2};
  LinkSpec faulty = clean;
  faulty.failure_probability = 0.5;
  NetworkLink a(clean, 33);
  NetworkLink b(faulty, 33);
  for (int i = 1; i <= 30; ++i) {
    (void)b.plan_transfer(Bytes::megabytes(1), WallSeconds::hours(i - 1));
    EXPECT_DOUBLE_EQ(
        a.current_bandwidth(WallSeconds::hours(i)).bytes_per_sec(),
        b.current_bandwidth(WallSeconds::hours(i)).bytes_per_sec());
  }
}

TEST(Network, FailureProbabilityValidation) {
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .failure_probability = -0.1},
                           1),
               std::invalid_argument);
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .failure_probability = 1.5},
                           1),
               std::invalid_argument);
}

TEST(Network, OutageValidation) {
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .outages = {{WallSeconds(5.0),
                                                 WallSeconds(5.0)}}},
                           1),
               std::invalid_argument);
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .outages = {{WallSeconds(5.0),
                                                 WallSeconds(9.0)},
                                                {WallSeconds(8.0),
                                                 WallSeconds(12.0)}}},
                           1),
               std::invalid_argument);
}

TEST(Network, Validation) {
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth(0.0)}, 1),
               std::invalid_argument);
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .efficiency = 0.0},
                           1),
               std::invalid_argument);
  EXPECT_THROW(NetworkLink(LinkSpec{.nominal = Bandwidth::mbps(1),
                                    .fluctuation_sigma = -1.0},
                           1),
               std::invalid_argument);
}

// --- GroundTruthMachine ---

TEST(Machine, ExpectedStepTimeFormula) {
  MachineSpec spec{.name = "test",
                   .max_cores = 64,
                   .min_cores = 1,
                   .serial_seconds = 2.0,
                   .work_seconds = 1000.0,
                   .comm_seconds = 0.5,
                   .noise_sigma = 0.0};
  GroundTruthMachine m(spec, 1);
  EXPECT_NEAR(m.expected_step_time(10, 1.0).seconds(),
              2.0 + 100.0 + 0.5 * std::log2(10.0), 1e-12);
  // Work scales linearly.
  EXPECT_NEAR(m.expected_step_time(10, 2.0).seconds(),
              2.0 + 200.0 + 0.5 * std::log2(10.0), 1e-12);
  // Noise off: step_time == expectation.
  EXPECT_DOUBLE_EQ(m.step_time(10, 1.0).seconds(),
                   m.expected_step_time(10, 1.0).seconds());
}

TEST(Machine, ClampsProcessorCount) {
  MachineSpec spec{.name = "t",
                   .max_cores = 8,
                   .min_cores = 1,
                   .serial_seconds = 0.0,
                   .work_seconds = 80.0,
                   .comm_seconds = 0.0,
                   .noise_sigma = 0.0};
  GroundTruthMachine m(spec, 1);
  EXPECT_DOUBLE_EQ(m.expected_step_time(1000, 1.0).seconds(), 10.0);
  EXPECT_DOUBLE_EQ(m.expected_step_time(0, 1.0).seconds(), 80.0);
}

TEST(Machine, NoiseHasUnitMean) {
  MachineSpec spec{.name = "t",
                   .max_cores = 8,
                   .min_cores = 1,
                   .serial_seconds = 0.0,
                   .work_seconds = 8.0,
                   .comm_seconds = 0.0,
                   .noise_sigma = 0.1};
  GroundTruthMachine m(spec, 77);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += m.step_time(8, 1.0).seconds();
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Machine, Validation) {
  MachineSpec bad{.name = "b", .max_cores = 4, .min_cores = 8};
  EXPECT_THROW(GroundTruthMachine(bad, 1), std::invalid_argument);
  MachineSpec neg{.name = "n",
                  .max_cores = 4,
                  .min_cores = 1,
                  .serial_seconds = -1.0};
  EXPECT_THROW(GroundTruthMachine(neg, 1), std::invalid_argument);
}

TEST(Sites, TableIvPresets) {
  const SiteSpec inter = inter_department_site();
  EXPECT_EQ(inter.machine.name, "fire");
  EXPECT_EQ(inter.machine.max_cores, 48);
  EXPECT_EQ(inter.disk_capacity, Bytes::gigabytes(182));
  EXPECT_DOUBLE_EQ(inter.wan_nominal.megabits_per_sec(), 56.0);

  const SiteSpec intra = intra_country_site();
  EXPECT_EQ(intra.machine.name, "gg-blr");
  EXPECT_EQ(intra.machine.max_cores, 90);
  EXPECT_EQ(intra.disk_capacity, Bytes::gigabytes(150));
  EXPECT_DOUBLE_EQ(intra.wan_nominal.megabits_per_sec(), 40.0);

  const SiteSpec cross = cross_continent_site();
  EXPECT_EQ(cross.machine.name, "moria");
  EXPECT_EQ(cross.machine.max_cores, 56);
  EXPECT_EQ(cross.disk_capacity, Bytes::gigabytes(100));
  EXPECT_NEAR(cross.wan_nominal.megabits_per_sec(), 0.06, 1e-12);

  // gg-blr at its full 90 cores solves faster than fire at its full 48
  // (the paper's intra-country "faster solve time" narrative).
  GroundTruthMachine fire(inter.machine, 1);
  GroundTruthMachine ggblr(intra.machine, 1);
  EXPECT_LT(ggblr.expected_step_time(90, 1.0).seconds(),
            fire.expected_step_time(48, 1.0).seconds());
}

}  // namespace
}  // namespace adaptviz
