#include "core/application_manager.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/greedy_threshold.hpp"
#include "test_helpers.hpp"

namespace adaptviz {
namespace {

using testing_helpers::make_perf_model;

// A scripted algorithm whose next decision the test controls.
class ScriptedAlgorithm final : public DecisionAlgorithm {
 public:
  Decision next;
  std::vector<DecisionInput> seen;

  Decision decide(const DecisionInput& in) override {
    seen.push_back(in);
    return next;
  }
  std::string name() const override { return "scripted"; }
};

class ManagerTest : public testing::Test {
 protected:
  ManagerTest() {
    opts_.period = WallSeconds::hours(1.5);
    status_.work_units = 0.6;
    status_.frame_bytes = Bytes::megabytes(900);
    status_.integration_step = SimSeconds(60.0);
    status_.remaining_sim_time = SimSeconds::hours(40.0);
    status_.resolution_km = 10.0;
    status_.max_usable_processors = 64;
    algo_.next.processors = 64;
    algo_.next.output_interval = SimSeconds::minutes(3.0);
    manager_ = std::make_unique<ApplicationManager>(
        queue_, algo_, *perf_, disk_, link_, estimator_, config_,
        [this] { return status_; }, [this] { ++notifications_; }, opts_);
  }

  EventQueue queue_;
  std::shared_ptr<PerformanceModel> perf_ = make_perf_model();
  DiskModel disk_{Bytes::gigabytes(182), Bandwidth::megabytes_per_second(150)};
  NetworkLink link_{LinkSpec{.nominal = Bandwidth::mbps(56),
                             .latency = WallSeconds(0.0)},
                    1};
  BandwidthEstimator estimator_{0.3};
  ApplicationConfiguration config_;
  ApplicationStatus status_;
  ScriptedAlgorithm algo_;
  ApplicationManager::Options opts_;
  int notifications_ = 0;
  std::unique_ptr<ApplicationManager> manager_;
};

TEST_F(ManagerTest, InvokesPeriodically) {
  manager_->start();
  EXPECT_EQ(manager_->decisions().size(), 1u);  // immediate first call
  queue_.run_until(WallSeconds::hours(6.1));
  // t=0, 1.5, 3.0, 4.5, 6.0.
  EXPECT_EQ(manager_->decisions().size(), 5u);
  manager_->stop();
  queue_.run_until(WallSeconds::hours(12.0));
  EXPECT_EQ(manager_->decisions().size(), 5u);
}

TEST_F(ManagerTest, AssemblesObservationsCorrectly) {
  (void)disk_.allocate(Bytes::gigabytes(91));
  manager_->invoke();
  ASSERT_EQ(algo_.seen.size(), 1u);
  const DecisionInput& in = algo_.seen[0];
  EXPECT_NEAR(in.free_disk_percent, 50.0, 1e-9);
  EXPECT_EQ(in.disk_capacity, Bytes::gigabytes(182));
  EXPECT_DOUBLE_EQ(in.work_units, 0.6);
  EXPECT_EQ(in.frame_bytes, Bytes::megabytes(900));
  EXPECT_EQ(in.max_processors, 64);
  EXPECT_EQ(in.perf, perf_.get());
}

TEST_F(ManagerTest, ForwardsLinkDegradedToAlgorithm) {
  manager_->invoke();
  status_.link_degraded = true;
  manager_->invoke();
  ASSERT_EQ(algo_.seen.size(), 2u);
  EXPECT_FALSE(algo_.seen[0].link_degraded);
  EXPECT_TRUE(algo_.seen[1].link_degraded);
}

TEST_F(ManagerTest, ProbesWhenNoTransfersObserved) {
  manager_->invoke();
  // The estimator was empty: a probe seeded it.
  EXPECT_GE(estimator_.observation_count(), 1u);
  ASSERT_EQ(algo_.seen.size(), 1u);
  EXPECT_NEAR(algo_.seen[0].observed_bandwidth.bytes_per_sec(),
              Bandwidth::mbps(56).bytes_per_sec(),
              0.1 * Bandwidth::mbps(56).bytes_per_sec());
}

TEST_F(ManagerTest, PrefersObservedTransfers) {
  estimator_.record_transfer(Bytes::megabytes(100), WallSeconds(50.0));
  manager_->invoke();
  EXPECT_NEAR(algo_.seen[0].observed_bandwidth.bytes_per_sec(), 2e6, 1.0);
}

TEST_F(ManagerTest, WritesConfigAndBumpsVersion) {
  algo_.next.processors = 32;
  algo_.next.output_interval = SimSeconds::minutes(10.0);
  const long v0 = config_.version;
  manager_->invoke();
  EXPECT_EQ(config_.processors, 32);
  EXPECT_NEAR(config_.output_interval.as_minutes(), 10.0, 1e-9);
  EXPECT_EQ(config_.version, v0 + 1);
  EXPECT_EQ(notifications_, 1);
  // Unchanged decision: no version bump, no notification.
  manager_->invoke();
  EXPECT_EQ(config_.version, v0 + 1);
  EXPECT_EQ(notifications_, 1);
}

TEST_F(ManagerTest, PersistsConfigFileOnChange) {
  const std::string path = testing::TempDir() + "/adaptviz_mgr_cfg.ini";
  std::remove(path.c_str());
  opts_.config_file_path = path;
  manager_ = std::make_unique<ApplicationManager>(
      queue_, algo_, *perf_, disk_, link_, estimator_, config_,
      [this] { return status_; }, [this] { ++notifications_; }, opts_);
  algo_.next.processors = 24;
  algo_.next.output_interval = SimSeconds::minutes(12.0);
  manager_->invoke();
  const ApplicationConfiguration on_disk =
      ApplicationConfiguration::load(path);
  EXPECT_EQ(on_disk, config_);
  EXPECT_EQ(on_disk.processors, 24);
  std::remove(path.c_str());
}

TEST_F(ManagerTest, SafetyNetSetsCritical) {
  (void)disk_.allocate(Bytes::gigabytes(178));  // ~2% free
  algo_.next.critical = false;                  // algorithm is oblivious
  manager_->invoke();
  EXPECT_TRUE(config_.critical);
}

TEST_F(ManagerTest, CriticalClearsWithHysteresis) {
  // Set critical at 2% free.
  (void)disk_.allocate(Bytes::gigabytes(178));
  manager_->invoke();
  ASSERT_TRUE(config_.critical);
  // Recover to 8% free: still below the 12% clear threshold -> hold.
  disk_.release(Bytes::gigabytes(11));
  manager_->invoke();
  EXPECT_TRUE(config_.critical);
  // Recover to 20% free: clears.
  disk_.release(Bytes::gigabytes(22));
  manager_->invoke();
  EXPECT_FALSE(config_.critical);
}

TEST_F(ManagerTest, AlgorithmCriticalIsRespected) {
  algo_.next.critical = true;
  manager_->invoke();
  EXPECT_TRUE(config_.critical);
}

TEST_F(ManagerTest, SkipsWhenFinished) {
  status_.finished = true;
  manager_->invoke();
  EXPECT_TRUE(manager_->decisions().empty());
  EXPECT_TRUE(algo_.seen.empty());
}

TEST_F(ManagerTest, RecordsDecisions) {
  manager_->invoke();
  manager_->invoke();
  ASSERT_EQ(manager_->decisions().size(), 2u);
  EXPECT_EQ(manager_->decisions()[0].decision.processors, 64);
}

TEST(ManagerValidation, RejectsBadArguments) {
  EventQueue queue;
  auto perf = make_perf_model();
  DiskModel disk(Bytes::gigabytes(1), Bandwidth::mbps(1));
  NetworkLink link(LinkSpec{.nominal = Bandwidth::mbps(1)}, 1);
  BandwidthEstimator est(0.3);
  ApplicationConfiguration cfg;
  GreedyThresholdAlgorithm algo;
  EXPECT_THROW(ApplicationManager(queue, algo, *perf, disk, link, est, cfg,
                                  nullptr, nullptr,
                                  ApplicationManager::Options{}),
               std::invalid_argument);
  ApplicationManager::Options bad;
  bad.period = WallSeconds(0.0);
  EXPECT_THROW(ApplicationManager(
                   queue, algo, *perf, disk, link, est, cfg,
                   [] { return ApplicationStatus{}; }, nullptr, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
