#include "core/storage_estimate.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

StorageEstimateInput paper_row(double disk_tb, double gbps) {
  StorageEstimateInput in;  // defaults are the paper's Table I scenario
  in.disk_capacity = Bytes::terabytes(disk_tb);
  in.network_bandwidth = Bandwidth::gbps(gbps);
  return in;
}

TEST(StorageEstimate, TableOneShape) {
  // The paper's qualitative claims: minutes for 5 TB, hours for 100+ TB,
  // and a faster network always buys more time.
  const auto t5_1 = time_until_storage_full(paper_row(5, 1));
  const auto t5_10 = time_until_storage_full(paper_row(5, 10));
  const auto t100_1 = time_until_storage_full(paper_row(100, 1));
  const auto t300_10 = time_until_storage_full(paper_row(300, 10));
  const auto t500_10 = time_until_storage_full(paper_row(500, 10));
  ASSERT_TRUE(t5_1 && t5_10 && t100_1 && t300_10 && t500_10);

  EXPECT_GT(t5_1->as_hours(), 0.2);
  EXPECT_LT(t5_1->as_hours(), 1.0);  // "25 minutes"
  EXPECT_GT(t5_10->seconds(), t5_1->seconds());
  EXPECT_GT(t100_1->as_hours(), 5.0);   // "8 hours"
  EXPECT_LT(t100_1->as_hours(), 12.0);
  EXPECT_GT(t300_10->as_hours(), 20.0);  // "36 hours"
  EXPECT_GT(t500_10->as_hours(), t300_10->as_hours());
  EXPECT_LT(t500_10->as_hours(), 100.0);  // "60 hours"
}

TEST(StorageEstimate, ScalesLinearlyWithDisk) {
  const auto t1 = time_until_storage_full(paper_row(100, 1));
  const auto t3 = time_until_storage_full(paper_row(300, 1));
  ASSERT_TRUE(t1 && t3);
  EXPECT_NEAR(t3->seconds() / t1->seconds(), 3.0, 1e-9);
}

TEST(StorageEstimate, NeverFillsWhenNetworkKeepsUp) {
  StorageEstimateInput in = paper_row(5, 1);
  // A network faster than the production rate: the disk never fills.
  in.network_bandwidth = Bandwidth::gigabytes_per_second(50);
  EXPECT_FALSE(time_until_storage_full(in).has_value());
}

TEST(StorageEstimate, LowerFrequencyBuysTime) {
  StorageEstimateInput every_step = paper_row(5, 1);
  StorageEstimateInput sparse = paper_row(5, 1);
  sparse.frames_per_step = 0.1;  // one frame per 10 steps
  const auto t_dense = time_until_storage_full(every_step);
  const auto t_sparse = time_until_storage_full(sparse);
  ASSERT_TRUE(t_dense && t_sparse);
  // TIO does not shrink with frequency, so the gain is sub-linear in the
  // interval ratio but still large.
  EXPECT_GT(t_sparse->seconds(), 2.0 * t_dense->seconds());
}

TEST(StorageEstimate, Validation) {
  StorageEstimateInput in;
  in.frame_size = Bytes(0);
  EXPECT_THROW(time_until_storage_full(in), std::invalid_argument);
  in = StorageEstimateInput{};
  in.step_time = WallSeconds(0.0);
  EXPECT_THROW(time_until_storage_full(in), std::invalid_argument);
  in = StorageEstimateInput{};
  in.frames_per_step = 0.0;
  EXPECT_THROW(time_until_storage_full(in), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
