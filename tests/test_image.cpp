#include "vis/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adaptviz {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, Rgb{10, 20, 30});
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.at(0, 0), (Rgb{10, 20, 30}));
  EXPECT_EQ(img.at(3, 2), (Rgb{10, 20, 30}));
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(Image, SetIgnoresOutOfBounds) {
  Image img(4, 4);
  img.set(-1, 0, Rgb{255, 0, 0});
  img.set(0, 100, Rgb{255, 0, 0});
  img.set(2, 2, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(2, 2), (Rgb{255, 0, 0}));
  EXPECT_EQ(img.at(0, 0), (Rgb{0, 0, 0}));
}

TEST(Image, BlendInterpolates) {
  Image img(2, 2, Rgb{0, 0, 0});
  img.blend(0, 0, Rgb{200, 100, 50}, 0.5);
  EXPECT_EQ(img.at(0, 0), (Rgb{100, 50, 25}));
  img.blend(1, 1, Rgb{200, 0, 0}, 0.0);
  EXPECT_EQ(img.at(1, 1), (Rgb{0, 0, 0}));
  img.blend(1, 0, Rgb{200, 0, 0}, 1.0);
  EXPECT_EQ(img.at(1, 0), (Rgb{200, 0, 0}));
}

TEST(Image, LineDrawsEndpoints) {
  Image img(10, 10);
  const Rgb c{255, 255, 255};
  img.draw_line(1, 1, 8, 8, c);
  EXPECT_EQ(img.at(1, 1), c);
  EXPECT_EQ(img.at(8, 8), c);
  EXPECT_EQ(img.at(4, 4), c);  // diagonal passes through
  // Horizontal and vertical lines.
  img.draw_line(0, 9, 9, 9, c);
  for (std::size_t x = 0; x < 10; ++x) EXPECT_EQ(img.at(x, 9), c);
  img.draw_line(9, 0, 9, 9, c);
  for (std::size_t y = 0; y < 10; ++y) EXPECT_EQ(img.at(9, y), c);
}

TEST(Image, LineClipsOffscreen) {
  Image img(5, 5);
  img.draw_line(-10, 2, 20, 2, Rgb{9, 9, 9});
  for (std::size_t x = 0; x < 5; ++x) EXPECT_EQ(img.at(x, 2), (Rgb{9, 9, 9}));
}

TEST(Image, DiscIsFilled) {
  Image img(11, 11);
  img.draw_disc(5, 5, 3, Rgb{1, 2, 3});
  EXPECT_EQ(img.at(5, 5), (Rgb{1, 2, 3}));
  EXPECT_EQ(img.at(5, 8), (Rgb{1, 2, 3}));
  EXPECT_EQ(img.at(8, 5), (Rgb{1, 2, 3}));
  EXPECT_EQ(img.at(9, 9), (Rgb{0, 0, 0}));  // outside radius
}

TEST(Image, PpmEncoding) {
  Image img(2, 1);
  img.set(0, 0, Rgb{1, 2, 3});
  img.set(1, 0, Rgb{4, 5, 6});
  const std::string ppm = img.encode_ppm();
  EXPECT_EQ(ppm.substr(0, 11), "P6\n2 1\n255\n");
  ASSERT_EQ(ppm.size(), 11u + 6u);
  EXPECT_EQ(ppm[11], 1);
  EXPECT_EQ(ppm[12], 2);
  EXPECT_EQ(ppm[16], 6);
}

TEST(Image, SavePpmWritesFile) {
  const std::string path = testing::TempDir() + "/adaptviz_img.ppm";
  Image img(3, 3, Rgb{7, 8, 9});
  img.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "P6");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adaptviz
