// WeatherModel facade tests: stepping, nest lifecycle, resolution ladder
// signalling, frame/checkpoint round trips, and the modeled-quantity
// formulas the framework consumes.
#include "weather/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "weather/domain_io.hpp"

namespace adaptviz {
namespace {

ModelConfig fast_config() {
  ModelConfig cfg;
  cfg.compute_scale = 10.0;  // tiny compute grids: tests stay fast
  return cfg;
}

void run_hours(WeatherModel& m, double hours) {
  const SimSeconds end = m.sim_time() + SimSeconds::hours(hours);
  while (m.sim_time() < end) m.step();
}

TEST(WeatherModel, StepAdvancesByDtRule) {
  WeatherModel m(fast_config());
  EXPECT_DOUBLE_EQ(m.dt_seconds(), 144.0);  // 24 km * 6 s/km
  const SimSeconds dt = m.step();
  EXPECT_DOUBLE_EQ(dt.seconds(), 144.0);
  EXPECT_DOUBLE_EQ(m.sim_time().seconds(), 144.0);
}

TEST(WeatherModel, StartsAsWeakDepression) {
  WeatherModel m(fast_config());
  EXPECT_LT(m.min_pressure_hpa(), kEnvPressureHpa);
  EXPECT_GT(m.min_pressure_hpa(), 995.0);
  EXPECT_FALSE(m.nest_active());
  EXPECT_FALSE(m.resolution_change_pending());
  EXPECT_NEAR(m.eye().lat, 14.0, 1.5);
  EXPECT_NEAR(m.eye().lon, 88.5, 1.5);
}

TEST(WeatherModel, CycloneDeepensAndSpawnsNest) {
  WeatherModel m(fast_config());
  run_hours(m, 20.0);
  EXPECT_LT(m.min_pressure_hpa(), 995.0);
  EXPECT_TRUE(m.nest_active());
  EXPECT_TRUE(m.resolution_change_pending());
  EXPECT_LT(m.recommended_resolution_km(), 24.0);
}

TEST(WeatherModel, TrackMovesNorth) {
  WeatherModel m(fast_config());
  run_hours(m, 30.0);
  const auto& track = m.tracker().track();
  ASSERT_GE(track.size(), 2u);
  EXPECT_GT(track.back().eye.lat, track.front().eye.lat + 1.0);
}

TEST(WeatherModel, SetResolutionRegrids) {
  WeatherModel m(fast_config());
  run_hours(m, 16.0);
  ASSERT_TRUE(m.nest_active());
  const double p_before = m.min_pressure_hpa();
  m.set_modeled_resolution(12.0);
  EXPECT_DOUBLE_EQ(m.modeled_resolution_km(), 12.0);
  EXPECT_DOUBLE_EQ(m.dt_seconds(), 72.0);
  // Regridding must not destroy the storm.
  m.step();
  EXPECT_NEAR(m.min_pressure_hpa(), p_before, 5.0);
  EXPECT_THROW(m.set_modeled_resolution(-1.0), std::invalid_argument);
}

TEST(WeatherModel, WorkUnitsGrowWithResolutionAndNest) {
  WeatherModel m(fast_config());
  const double coarse_work = m.work_units();
  EXPECT_GT(coarse_work, 0.0);
  run_hours(m, 16.0);
  ASSERT_TRUE(m.nest_active());
  const double with_nest = m.work_units();
  EXPECT_GT(with_nest, coarse_work);
  m.set_modeled_resolution(12.0);
  // (24/12)^2 = 4x the parent points.
  EXPECT_GT(m.work_units(), 2.0 * with_nest);
}

TEST(WeatherModel, FrameBytesFormula) {
  ModelConfig cfg = fast_config();
  WeatherModel m(cfg);
  // points * vars * levels * bytes, parent only at start.
  const GridSpec parent(cfg.lon0, cfg.lat0, cfg.extent_lon_deg,
                        cfg.extent_lat_deg, cfg.base_resolution_km);
  const double expect = static_cast<double>(parent.point_count()) *
                        cfg.frame_variables * cfg.frame_levels *
                        cfg.frame_bytes_per_value;
  EXPECT_NEAR(m.frame_bytes().as_double(), expect, 1.0);
  run_hours(m, 16.0);
  ASSERT_TRUE(m.nest_active());
  EXPECT_GT(m.frame_bytes().as_double(), expect);
}

TEST(WeatherModel, MaxUsableProcessorsShrinksWithNest) {
  WeatherModel m(fast_config());
  const int before = m.max_usable_processors();
  EXPECT_GT(before, 90);  // huge parent: no practical limit
  run_hours(m, 16.0);
  ASSERT_TRUE(m.nest_active());
  EXPECT_LT(m.max_usable_processors(), before);
  EXPECT_GE(m.max_usable_processors(), 1);
}

TEST(WeatherModel, FrameCarriesDiagnostics) {
  WeatherModel m(fast_config());
  run_hours(m, 2.0);
  const NclFile f = m.make_frame();
  EXPECT_TRUE(has_domain(f, "parent"));
  EXPECT_FALSE(has_domain(f, "nest"));
  EXPECT_NEAR(attr_double(f, "sim_time_seconds"), m.sim_time().seconds(),
              1e-9);
  EXPECT_NEAR(attr_double(f, "min_pressure_hpa"), m.min_pressure_hpa(), 1e-9);
  EXPECT_DOUBLE_EQ(attr_double(f, "modeled_resolution_km"), 24.0);
  const DomainState parent = decode_domain(f, "parent");
  EXPECT_EQ(parent.grid, m.parent_state().grid);
}

TEST(WeatherModel, CheckpointRestoreRoundTrip) {
  ModelConfig cfg = fast_config();
  WeatherModel m(cfg);
  run_hours(m, 18.0);
  ASSERT_TRUE(m.nest_active());
  const NclFile ckpt = m.checkpoint();

  WeatherModel r = WeatherModel::restore(cfg, ResolutionLadder::table3(), ckpt);
  EXPECT_DOUBLE_EQ(r.sim_time().seconds(), m.sim_time().seconds());
  EXPECT_DOUBLE_EQ(r.modeled_resolution_km(), m.modeled_resolution_km());
  EXPECT_NEAR(r.min_pressure_hpa(), m.min_pressure_hpa(), 2.0);
  EXPECT_TRUE(r.nest_active());
  EXPECT_NEAR(r.physics().deficit_hpa(), m.physics().deficit_hpa(), 1e-9);
  EXPECT_NEAR(r.eye().lat, m.eye().lat, 0.5);

  // The restored model keeps evolving sanely.
  const double p0 = r.min_pressure_hpa();
  run_hours(r, 3.0);
  EXPECT_LT(r.min_pressure_hpa(), p0 + 2.0);
}

TEST(WeatherModel, RestoreAtNewResolution) {
  ModelConfig cfg = fast_config();
  WeatherModel m(cfg);
  run_hours(m, 18.0);
  const NclFile ckpt = m.checkpoint();

  WeatherModel r = WeatherModel::restore(cfg, ResolutionLadder::table3(), ckpt);
  r.set_modeled_resolution(15.0);
  EXPECT_DOUBLE_EQ(r.modeled_resolution_km(), 15.0);
  EXPECT_NEAR(r.min_pressure_hpa(), m.min_pressure_hpa(), 5.0);
  r.step();  // still integrates
  EXPECT_TRUE(std::isfinite(r.min_pressure_hpa()));
}

TEST(WeatherModel, ComputeScaleValidated) {
  ModelConfig cfg;
  cfg.compute_scale = 0.5;
  EXPECT_THROW(WeatherModel m(cfg), std::invalid_argument);
}

TEST(WeatherModel, DeterministicForFixedConfig) {
  WeatherModel a(fast_config());
  WeatherModel b(fast_config());
  for (int i = 0; i < 50; ++i) {
    a.step();
    b.step();
  }
  EXPECT_DOUBLE_EQ(a.min_pressure_hpa(), b.min_pressure_hpa());
  EXPECT_DOUBLE_EQ(a.eye().lat, b.eye().lat);
}

}  // namespace
}  // namespace adaptviz
