#include "weather/grid.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

TEST(GridSpec, DerivesPointCounts) {
  // 60 x 50 degrees at ~1-degree spacing.
  GridSpec g(60.0, -10.0, 60.0, 50.0, kKmPerDegree);
  EXPECT_EQ(g.nx(), 61u);
  EXPECT_EQ(g.ny(), 51u);
  EXPECT_EQ(g.point_count(), 61u * 51u);
  EXPECT_DOUBLE_EQ(g.resolution_km(), kKmPerDegree);
  EXPECT_DOUBLE_EQ(g.dx_m(), kKmPerDegree * 1000.0);
}

TEST(GridSpec, AtAndInverseRoundTrip) {
  GridSpec g(60.0, -10.0, 60.0, 50.0, 50.0);
  const LatLon sw = g.at(0, 0);
  EXPECT_DOUBLE_EQ(sw.lon, 60.0);
  EXPECT_DOUBLE_EQ(sw.lat, -10.0);
  const LatLon ne = g.at(g.nx() - 1, g.ny() - 1);
  EXPECT_DOUBLE_EQ(ne.lon, 120.0);
  EXPECT_DOUBLE_EQ(ne.lat, 40.0);
  // x_of_lon / y_of_lat invert at().
  const LatLon mid = g.at(g.nx() / 2, g.ny() / 3);
  EXPECT_NEAR(g.x_of_lon(mid.lon), static_cast<double>(g.nx() / 2), 1e-9);
  EXPECT_NEAR(g.y_of_lat(mid.lat), static_cast<double>(g.ny() / 3), 1e-9);
}

TEST(GridSpec, Contains) {
  GridSpec g(60.0, -10.0, 60.0, 50.0, 100.0);
  EXPECT_TRUE(g.contains(LatLon{14.0, 88.5}));
  EXPECT_FALSE(g.contains(LatLon{45.0, 88.5}));
  EXPECT_FALSE(g.contains(LatLon{14.0, 130.0}));
}

TEST(GridSpec, Validation) {
  EXPECT_THROW(GridSpec(0, 0, -1.0, 10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(GridSpec(0, 0, 10.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Field2D, IndexingAndStats) {
  Field2D f(4, 3, 1.0);
  EXPECT_EQ(f.size(), 12u);
  f(2, 1) = 7.0;
  f(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(f.min(), -2.0);
  EXPECT_DOUBLE_EQ(f.max(), 7.0);
  EXPECT_NEAR(f.mean(), (10.0 * 1.0 + 7.0 - 2.0) / 12.0, 1e-12);
  f.fill(3.0);
  EXPECT_DOUBLE_EQ(f.min(), 3.0);
  EXPECT_DOUBLE_EQ(f.max(), 3.0);
}

TEST(Field2D, SampleBilinear) {
  Field2D f(3, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 3; ++i)
      f(i, j) = static_cast<double>(i) + 10.0 * static_cast<double>(j);
  EXPECT_NEAR(f.sample(0.5, 0.5), 0.5 + 5.0, 1e-12);
  EXPECT_NEAR(f.sample(2.0, 2.0), 22.0, 1e-12);
}

TEST(Field2D, EmptyRejected) {
  EXPECT_THROW(Field2D(0, 4), std::invalid_argument);
}

TEST(Smooth, PreservesConstants) {
  Field2D f(6, 6, 3.5);
  const Field2D s = smooth(f, 3);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(s(i, j), 3.5, 1e-12);
}

TEST(Smooth, DampensSpike) {
  Field2D f(7, 7, 0.0);
  f(3, 3) = 10.0;
  const Field2D s = smooth(f, 1);
  EXPECT_NEAR(s(3, 3), 2.0, 1e-12);  // 5-point mean of {10,0,0,0,0}
  EXPECT_NEAR(s(2, 3), 2.0, 1e-12);
  EXPECT_NEAR(s(0, 0), 0.0, 1e-12);
  // The maximum stays within one cell of the original spike (the 5-point
  // stencil spreads it into a plus shape of equal values).
  double best = -1.0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i < 7; ++i)
      if (s(i, j) > best) {
        best = s(i, j);
        bi = i;
        bj = j;
      }
  EXPECT_LE(std::abs(static_cast<int>(bi) - 3) +
                std::abs(static_cast<int>(bj) - 3),
            1);
}

}  // namespace
}  // namespace adaptviz
