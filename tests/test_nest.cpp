#include "weather/nest.hpp"

#include <gtest/gtest.h>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

DomainState parent_with_vortex(LatLon center) {
  GridSpec g(60.0, -10.0, 60.0, 50.0, 120.0);
  DomainState s(g);
  HollandVortex v{.center = center,
                  .deficit_hpa = 18.0,
                  .r_max_km = 300.0,
                  .b = 1.4};
  v.deposit(s);
  return s;
}

TEST(Nest, CreatedAtOneThirdResolution) {
  const DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  EXPECT_NEAR(nest.grid().resolution_km(),
              parent.grid.resolution_km() / kNestRatio, 1e-9);
  EXPECT_NEAR(nest.center().lat, 14.0, 0.3);
  EXPECT_NEAR(nest.center().lon, 88.5, 0.3);
  EXPECT_DOUBLE_EQ(nest.extent_deg(), 9.0);
}

TEST(Nest, InitializedFromParentFields) {
  const DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  // The nest carries the vortex depression interpolated from the parent.
  EXPECT_LT(nest.state().h.min(), 0.5 * parent.h.min() /* deeper than half */);
  // A shared location agrees.
  const LatLon p{13.0, 87.0};
  const double pv = parent.h.sample(parent.grid.x_of_lon(p.lon),
                                    parent.grid.y_of_lat(p.lat));
  const double nv = nest.state().h.sample(nest.grid().x_of_lon(p.lon),
                                          nest.grid().y_of_lat(p.lat));
  EXPECT_NEAR(nv, pv, 3.0);
}

TEST(Nest, ClampedInsideParent) {
  const DomainState parent = parent_with_vortex({14.0, 88.5});
  // Requested centre near the parent's east edge: the nest must stay inside.
  NestDomain nest(parent, LatLon{14.0, 119.0}, 9.0);
  const GridSpec& g = nest.grid();
  EXPECT_LE(g.lon0() + g.extent_lon(), 120.0 + 1e-9);
  EXPECT_GE(g.lon0(), 60.0 - 1e-9);
}

TEST(Nest, TooLargeRejected) {
  const DomainState parent = parent_with_vortex({14.0, 88.5});
  EXPECT_THROW(NestDomain(parent, LatLon{14.0, 88.5}, 70.0),
               std::invalid_argument);
}

TEST(Nest, BoundaryBlendsTowardParent) {
  const DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  // Perturb the nest interior wildly, then re-apply boundary: edges must
  // return to parent values while the deep interior keeps the perturbation.
  nest.state().h.fill(123.0);
  nest.apply_boundary(parent, 3);
  const GridSpec& g = nest.grid();
  const double edge = nest.state().h(0, g.ny() / 2);
  const LatLon pe = g.at(0, g.ny() / 2);
  const double parent_val = parent.h.sample(parent.grid.x_of_lon(pe.lon),
                                            parent.grid.y_of_lat(pe.lat));
  EXPECT_NEAR(edge, parent_val, 1.0);
  EXPECT_NEAR(nest.state().h(g.nx() / 2, g.ny() / 2), 123.0, 1e-9);
}

TEST(Nest, FeedbackWritesInteriorOntoParent) {
  DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  // Mark the nest with a constant; parent points inside the nest interior
  // must take (approximately) that value after feedback.
  nest.state().h.fill(-77.0);
  nest.feedback(parent);
  const GridSpec& pg = parent.grid;
  const std::size_t ci = static_cast<std::size_t>(pg.x_of_lon(88.5));
  const std::size_t cj = static_cast<std::size_t>(pg.y_of_lat(14.0));
  EXPECT_NEAR(parent.h(ci, cj), -77.0, 1.0);
  // Far outside the nest: untouched vortex field.
  EXPECT_NEAR(parent.h(2, 2), 0.0, 1.0);
}

TEST(Nest, RecenterFollowsEye) {
  DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  EXPECT_FALSE(nest.needs_recenter(LatLon{14.5, 88.5}));
  EXPECT_TRUE(nest.needs_recenter(LatLon{16.0, 88.5}));
  nest.recenter(parent, LatLon{16.0, 88.5});
  EXPECT_NEAR(nest.center().lat, 16.0, 0.3);
  EXPECT_NEAR(nest.grid().resolution_km(),
              parent.grid.resolution_km() / kNestRatio, 1e-9);
}

TEST(Nest, RecenterKeepsFineDataInOverlap) {
  DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  // Stamp fine-scale data the parent does not have.
  nest.state().h.fill(-55.0);
  nest.recenter(parent, LatLon{15.0, 88.5});  // overlaps the old footprint
  // A point well inside both footprints kept the fine value.
  const GridSpec& g = nest.grid();
  const double v = nest.state().h.sample(g.x_of_lon(88.5), g.y_of_lat(14.5));
  EXPECT_NEAR(v, -55.0, 1.0);
  // A point only in the new footprint came from the parent (~vortex field,
  // much shallower than -55).
  const double fresh =
      nest.state().h.sample(g.x_of_lon(88.5), g.y_of_lat(19.2));
  EXPECT_GT(fresh, -40.0);
}

TEST(Nest, RestoreStateReplacesFields) {
  DomainState parent = parent_with_vortex({14.0, 88.5});
  NestDomain nest(parent, LatLon{14.0, 88.5}, 9.0);
  DomainState replacement(nest.grid());
  replacement.h.fill(3.25);
  nest.restore_state(std::move(replacement));
  EXPECT_DOUBLE_EQ(nest.state().h(1, 1), 3.25);
}

}  // namespace
}  // namespace adaptviz
