// LP optimization algorithm (Section IV-B) behaviour tests.
#include "core/lp_optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace adaptviz {
namespace {

using testing_helpers::make_input;
using testing_helpers::make_perf_model;

class OptimizerTest : public testing::Test {
 protected:
  std::shared_ptr<PerformanceModel> perf_ = make_perf_model();
  LpOptimizerAlgorithm algo_;
};

TEST_F(OptimizerTest, HealthyResourcesRunAtMaxRate) {
  DecisionInput in = make_input(*perf_);
  const Decision d = algo_.decide(in);
  EXPECT_FALSE(d.critical);
  // Minimizing t means maximum processors when the disk allows it.
  EXPECT_GE(d.processors, 56);
  EXPECT_LE(d.output_interval.as_minutes(), 25.0 + 1e-9);
}

TEST_F(OptimizerTest, SteadyPreferencePicksSparseOutput) {
  DecisionInput in = make_input(*perf_);
  const Decision d = algo_.decide(in);
  // kSteady tiebreak: lowest acceptable frequency -> ~25 minutes.
  EXPECT_NEAR(d.output_interval.as_minutes(), 25.0, 1.5);
}

TEST_F(OptimizerTest, MaxResolutionPreferencePicksDenseOutput) {
  LpOptimizerAlgorithm dense(OptimizerConfig{
      .preference = FrequencyPreference::kMaxResolution});
  DecisionInput in = make_input(*perf_);
  // Plenty of disk and a fast network: output every few minutes.
  in.observed_bandwidth = Bandwidth::megabytes_per_second(50.0);
  const Decision d = dense.decide(in);
  EXPECT_LE(d.output_interval.as_minutes(), 6.0);
}

TEST_F(OptimizerTest, TightDiskSlowsTheSimulation) {
  DecisionInput in = make_input(*perf_);
  // Nearly-full disk, trickle network, long remaining run: the disk
  // constraint forces a larger t (fewer processors).
  in.free_disk_percent = 8.0;
  in.free_disk_bytes = Bytes::gigabytes(5);
  in.observed_bandwidth = Bandwidth::kbps(60);
  const Decision slow = algo_.decide(in);

  in.free_disk_percent = 90.0;
  in.free_disk_bytes = Bytes::gigabytes(164);
  in.observed_bandwidth = Bandwidth::megabytes_per_second(5.0);
  const Decision fast = algo_.decide(in);

  EXPECT_LT(slow.processors, fast.processors);
  EXPECT_GE(slow.output_interval.as_minutes(),
            fast.output_interval.as_minutes() - 1e-9);
}

TEST_F(OptimizerTest, SlowNetworkStillCompletesDecision) {
  DecisionInput in = make_input(*perf_);
  in.observed_bandwidth = Bandwidth::kbps(60);  // cross-continent
  in.free_disk_bytes = Bytes::gigabytes(90);
  const Decision d = algo_.decide(in);
  EXPECT_FALSE(d.critical);
  EXPECT_GE(d.processors, in.min_processors);
  // Minimum frequency to protect the disk.
  EXPECT_NEAR(d.output_interval.as_minutes(), 25.0, 1.5);
}

TEST_F(OptimizerTest, HorizonTracksRemainingRun) {
  DecisionInput in = make_input(*perf_);
  in.remaining_sim_time = SimSeconds::hours(40.0);
  const WallSeconds long_h = algo_.overflow_horizon(in);
  in.remaining_sim_time = SimSeconds::hours(2.0);
  const WallSeconds short_h = algo_.overflow_horizon(in);
  EXPECT_GT(long_h.seconds(), short_h.seconds());
  // Clamped to the configured window.
  OptimizerConfig cfg;
  EXPECT_GE(short_h.seconds(), cfg.min_horizon.seconds() - 1e-9);
  EXPECT_LE(long_h.seconds(), cfg.max_horizon.seconds() + 1e-9);
}

TEST_F(OptimizerTest, FastNetworkRelaxesEq5) {
  // A network far faster than the simulation can feed: eq. 5 cannot hold,
  // the optimizer drops it and still returns max rate.
  DecisionInput in = make_input(*perf_);
  in.observed_bandwidth = Bandwidth::gigabytes_per_second(10.0);
  const Decision d = algo_.decide(in);
  EXPECT_GE(d.processors, 56);
  EXPECT_NE(d.note.find("relaxed"), std::string::npos);
}

TEST_F(OptimizerTest, OutputIntervalIsStepMultiple) {
  DecisionInput in = make_input(*perf_);
  in.integration_step = SimSeconds(144.0);
  const Decision d = algo_.decide(in);
  EXPECT_NEAR(std::fmod(d.output_interval.seconds(), 144.0), 0.0, 1e-6);
}

TEST_F(OptimizerTest, NameAndDeterminism) {
  EXPECT_EQ(algo_.name(), "optimization");
  DecisionInput in = make_input(*perf_);
  const Decision a = algo_.decide(in);
  const Decision b = algo_.decide(in);
  EXPECT_EQ(a.processors, b.processors);
  EXPECT_DOUBLE_EQ(a.output_interval.seconds(), b.output_interval.seconds());
}

// Property sweep over bandwidth decades: decisions stay within bounds and
// the implied disk-fill rate never exceeds the drain over the horizon.
class OptimizerSweep : public testing::TestWithParam<int> {};

TEST_P(OptimizerSweep, DiskSafeDecisions) {
  auto perf = make_perf_model();
  LpOptimizerAlgorithm algo;
  DecisionInput in = make_input(*perf);
  const double kbps = 10.0 * std::pow(10.0, GetParam() / 3.0);  // 10 Kbps..
  in.observed_bandwidth = Bandwidth::kbps(kbps);
  const Decision d = algo.decide(in);

  ASSERT_GE(d.processors, in.min_processors);
  ASSERT_LE(d.processors, in.max_processors);
  ASSERT_GE(d.output_interval.as_minutes(), 3.0 - 1e-6);
  ASSERT_LE(d.output_interval.as_minutes(), 25.0 + 1e-6);

  // Implied steady-state fill rate <= free/horizon + drain (eq. 4).
  const double t = perf->step_time(d.processors, in.work_units).seconds();
  const double steps_per_frame =
      d.output_interval.seconds() / in.integration_step.seconds();
  const double tio = in.frame_bytes.as_double() /
                     in.io_bandwidth.bytes_per_sec();
  const double cycle = steps_per_frame * t + tio;
  const double inflow = in.frame_bytes.as_double() / cycle;
  const double n = algo.overflow_horizon(in).seconds();
  const double budget = in.free_disk_bytes.as_double() / n +
                        in.observed_bandwidth.bytes_per_sec();
  EXPECT_LE(inflow, budget * 1.35)  // modest slack for quantization
      << "bandwidth " << kbps << " Kbps";
}

INSTANTIATE_TEST_SUITE_P(BandwidthDecades, OptimizerSweep,
                         testing::Range(0, 13));

}  // namespace
}  // namespace adaptviz
