// AdaptiveFramework integration tests: full experiments on a small virtual
// site, checking the paper's qualitative orderings end to end.
#include "core/framework.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace adaptviz {
namespace {

// A compact site that is genuinely resource-constrained: small disk, thin
// WAN, quick machine — the whole greedy/optimizer contrast shows within a
// 24-hour simulated window.
ExperimentConfig mini_config(AlgorithmKind algorithm) {
  ExperimentConfig cfg;
  cfg.name = "mini";
  cfg.algorithm = algorithm;
  cfg.site.machine = MachineSpec{.name = "mini",
                                 .max_cores = 32,
                                 .min_cores = 4,
                                 .serial_seconds = 1.0,
                                 .work_seconds = 4000.0,
                                 .comm_seconds = 0.3,
                                 .noise_sigma = 0.02};
  cfg.site.disk_capacity = Bytes::gigabytes(30);
  cfg.site.io_bandwidth = Bandwidth::megabytes_per_second(150);
  cfg.site.wan_nominal = Bandwidth::mbps(8);  // 1 MB/s nominal
  cfg.site.wan_efficiency = 0.5;
  cfg.site.wan_fluctuation_sigma = 0.1;
  cfg.model.compute_scale = 12.0;
  cfg.sim_window = SimSeconds::hours(24.0);
  cfg.max_wall = WallSeconds::hours(40.0);
  cfg.sample_period = WallSeconds::minutes(15.0);
  cfg.seed = 7;
  return cfg;
}

TEST(Framework, OptimizationCompletesTheWindow) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  EXPECT_TRUE(r.summary.completed);
  EXPECT_GE(r.summary.sim_reached.as_hours(), 24.0);
  EXPECT_GT(r.summary.frames_written, 10);
  EXPECT_GT(r.summary.min_free_disk_percent, 10.0);
  EXPECT_EQ(r.summary.frames_visualized, r.summary.frames_written);
}

TEST(Framework, TelemetryIsMonotoneAndConsistent) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ASSERT_GT(r.samples.size(), 5u);
  for (std::size_t i = 1; i < r.samples.size(); ++i) {
    const auto& prev = r.samples[i - 1];
    const auto& cur = r.samples[i];
    EXPECT_GE(cur.wall_time.seconds(), prev.wall_time.seconds());
    EXPECT_GE(cur.sim_time.seconds(), prev.sim_time.seconds() - 1e-6);
    EXPECT_GE(cur.frames_written, prev.frames_written);
    EXPECT_GE(cur.frames_sent, prev.frames_sent);
    EXPECT_GE(cur.frames_visualized, prev.frames_visualized);
    // Conservation: what is visualized cannot exceed what was sent, which
    // cannot exceed what was written.
    EXPECT_LE(cur.frames_visualized, cur.frames_sent);
    EXPECT_LE(cur.frames_sent, cur.frames_written);
    EXPECT_GE(cur.free_disk_percent, 0.0);
    EXPECT_LE(cur.free_disk_percent, 100.0);
  }
}

TEST(Framework, VisualizationProgressIsOrdered) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ASSERT_GT(r.vis_records.size(), 5u);
  for (std::size_t i = 1; i < r.vis_records.size(); ++i) {
    EXPECT_GT(r.vis_records[i].wall_time.seconds(),
              r.vis_records[i - 1].wall_time.seconds());
    EXPECT_GT(r.vis_records[i].sim_time.seconds(),
              r.vis_records[i - 1].sim_time.seconds());
    EXPECT_EQ(r.vis_records[i].sequence, r.vis_records[i - 1].sequence + 1);
  }
}

TEST(Framework, DecisionsHappenOnSchedule) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ASSERT_GE(r.decisions.size(), 3u);
  EXPECT_NEAR(r.decisions[0].wall_time.seconds(), 0.0, 1.0);
  for (std::size_t i = 1; i < r.decisions.size(); ++i) {
    EXPECT_NEAR(r.decisions[i].wall_time.seconds() -
                    r.decisions[i - 1].wall_time.seconds(),
                5400.0, 5.0);
  }
}

TEST(Framework, GreedyVersusOptimizationOrderings) {
  // The paper's headline: on a constrained site the optimizer keeps more
  // free disk and loses less time.
  ExperimentConfig greedy_cfg = mini_config(AlgorithmKind::kGreedyThreshold);
  ExperimentConfig opt_cfg = mini_config(AlgorithmKind::kOptimization);
  const ExperimentResult greedy = run_experiment(greedy_cfg);
  const ExperimentResult opt = run_experiment(opt_cfg);

  EXPECT_TRUE(opt.summary.completed);
  EXPECT_GT(opt.summary.min_free_disk_percent,
            greedy.summary.min_free_disk_percent);
  EXPECT_LE(opt.summary.peak_disk_used.count(),
            greedy.summary.peak_disk_used.count());
  // Greedy reacts (more adaptation churn), the optimizer stays steady.
  const auto oi_spread = [](const ExperimentResult& r) {
    double lo = 1e18;
    double hi = -1e18;
    for (const auto& s : r.samples) {
      lo = std::min(lo, s.output_interval.seconds());
      hi = std::max(hi, s.output_interval.seconds());
    }
    return hi - lo;
  };
  EXPECT_GE(oi_spread(greedy), oi_spread(opt));
}

TEST(Framework, ResolutionLadderEngagesDuringRun) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  double first_res = r.samples.front().resolution_km;
  double last_res = 1e9;
  for (const auto& s : r.samples) last_res = s.resolution_km;
  EXPECT_DOUBLE_EQ(first_res, 24.0);
  EXPECT_LT(last_res, 24.0);  // the storm deepened past 995 hPa
  EXPECT_GE(r.summary.restarts, 1);
}

TEST(Framework, TrackIsRecorded) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ASSERT_GT(r.track.size(), 10u);
  EXPECT_GT(r.track.back().eye.lat, r.track.front().eye.lat);
  EXPECT_LT(r.track.back().min_pressure_hpa,
            r.track.front().min_pressure_hpa);
}

TEST(Framework, DeterministicForFixedSeed) {
  const ExperimentResult a =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  const ExperimentResult b =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  EXPECT_EQ(a.summary.frames_written, b.summary.frames_written);
  EXPECT_DOUBLE_EQ(a.summary.wall_elapsed.seconds(),
                   b.summary.wall_elapsed.seconds());
  EXPECT_DOUBLE_EQ(a.summary.min_free_disk_percent,
                   b.summary.min_free_disk_percent);
}

TEST(Framework, WallCutoffIsHonoured) {
  ExperimentConfig cfg = mini_config(AlgorithmKind::kGreedyThreshold);
  cfg.max_wall = WallSeconds::hours(2.0);  // far too short to finish
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_FALSE(r.summary.completed);
  EXPECT_LE(r.summary.wall_elapsed.as_hours(), 2.2);
}

TEST(Framework, AlgorithmKindNames) {
  EXPECT_STREQ(to_string(AlgorithmKind::kGreedyThreshold),
               "greedy-threshold");
  EXPECT_STREQ(to_string(AlgorithmKind::kOptimization), "optimization");
  EXPECT_STREQ(to_string(AlgorithmKind::kStatic), "non-adaptive");
}

TEST(Framework, NonAdaptiveBaselineStallsFirst) {
  // Paper: "a non-adaptive solution would result in stalling of the
  // simulation much earlier than in the greedy algorithm."
  auto first_stall = [](const ExperimentResult& r) {
    for (const auto& s : r.samples) {
      if (s.stalled) return s.wall_time.as_hours();
    }
    return 1e9;
  };
  const ExperimentResult fixed =
      run_experiment(mini_config(AlgorithmKind::kStatic));
  const ExperimentResult greedy =
      run_experiment(mini_config(AlgorithmKind::kGreedyThreshold));
  EXPECT_LT(first_stall(fixed), 1e9);  // it does stall
  EXPECT_LE(first_stall(fixed), first_stall(greedy));
  // And it simulates no more than greedy manages.
  EXPECT_LE(fixed.summary.sim_reached.seconds(),
            greedy.summary.sim_reached.seconds() + 3600.0);
}

TEST(Framework, ObservabilityCapturesThePipeline) {
  ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  cfg.observability = true;
  // Two solver lanes so the shared pool's fork-join path is exercised
  // (results are bitwise identical for any lane count).
  cfg.model.dynamics.threads = 2;
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.metrics.empty());

  // Instrumented stages agree with the framework's own accounting.
  EXPECT_EQ(r.metrics.counter_or("transport.frames_sent"),
            r.summary.frames_sent);
  EXPECT_EQ(r.metrics.counter_or("receiver.frames_visualized"),
            r.summary.frames_visualized);
  EXPECT_EQ(r.metrics.counter_or("manager.decisions"),
            static_cast<std::int64_t>(r.summary.decision_count));
  EXPECT_GT(r.metrics.counter_or("sim.steps"), 0);
  EXPECT_GT(r.metrics.counter_or("pool.regions"), 0);
  const obs::Histogram::Snapshot* step = r.metrics.histogram("sim.step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, r.metrics.counter_or("sim.steps"));
  EXPECT_GT(step->sum, 0.0);

  // The trace retains events from both clock domains, and every manager
  // decision is on it (the ring is far larger than the decision count).
  EXPECT_FALSE(r.trace.empty());
  std::int64_t decisions_traced = 0;
  for (const obs::TraceEvent& e : r.trace) {
    if (e.stage == "manager.decision") {
      ++decisions_traced;
      EXPECT_EQ(e.clock, obs::TraceClock::kSim);
      EXPECT_NE(e.metadata.find("algo="), std::string::npos);
      EXPECT_NE(e.metadata.find("procs="), std::string::npos);
      EXPECT_NE(e.metadata.find("deliberation="), std::string::npos);
    }
  }
  EXPECT_EQ(decisions_traced, r.summary.decision_count);

  // Nothing leaks: the install point is empty again after run_experiment.
  EXPECT_EQ(obs::current(), nullptr);
}

// ---- Frame codec end to end ----

TEST(FrameworkCodec, OffByDefaultReportsIdentityRatios) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  EXPECT_DOUBLE_EQ(r.summary.codec_mean_ratio, 1.0);
  EXPECT_EQ(r.summary.codec_bytes_saved.count(), 0);
  for (const TelemetrySample& s : r.samples) {
    EXPECT_DOUBLE_EQ(s.codec_ratio, 1.0);
  }
}

TEST(FrameworkCodec, EncodedBytesFlowThroughTheWholePipeline) {
  ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  cfg.codec.enabled = true;  // verify_roundtrip defaults on: every frame of
                             // this run is proven lossless as it encodes
  cfg.observability = true;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  EXPECT_EQ(r.summary.frames_visualized, r.summary.frames_written);
  EXPECT_GT(r.summary.codec_mean_ratio, 1.2);
  EXPECT_GT(r.summary.codec_bytes_saved.count(), 0);
  EXPECT_GT(r.samples.back().codec_ratio, 1.0);

  // The obs counters and the summary agree on the byte ledger.
  EXPECT_EQ(r.metrics.counter_or("codec.frames"), r.summary.frames_written);
  const std::int64_t raw = r.metrics.counter_or("codec.bytes_raw");
  const std::int64_t enc = r.metrics.counter_or("codec.bytes_encoded");
  EXPECT_GT(raw, enc);
  EXPECT_EQ(r.metrics.counter_or("codec.bytes_saved"), raw - enc);
  EXPECT_EQ(r.summary.codec_bytes_saved.count(), raw - enc);
  const obs::Histogram::Snapshot* enc_ms = r.metrics.histogram("codec.encode_ms");
  const obs::Histogram::Snapshot* dec_ms = r.metrics.histogram("codec.decode_ms");
  ASSERT_NE(enc_ms, nullptr);
  ASSERT_NE(dec_ms, nullptr);
  EXPECT_EQ(enc_ms->count, r.summary.frames_written);
  EXPECT_EQ(dec_ms->count, r.summary.frames_written);
}

TEST(FrameworkCodec, EncodedRunMovesFewerBytesThanRawRun) {
  // Same experiment with and without the codec: what actually crosses the
  // WAN (the vis-record sizes) must shrink by the measured ratio.
  const ExperimentResult raw =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  cfg.codec.enabled = true;
  const ExperimentResult enc = run_experiment(cfg);
  const auto wire_bytes = [](const ExperimentResult& r) {
    std::int64_t total = 0;
    for (const VisRecord& v : r.vis_records) total += v.size.count();
    return total;
  };
  ASSERT_GT(enc.vis_records.size(), 5u);
  const double raw_per_frame =
      static_cast<double>(wire_bytes(raw)) /
      static_cast<double>(raw.vis_records.size());
  const double enc_per_frame =
      static_cast<double>(wire_bytes(enc)) /
      static_cast<double>(enc.vis_records.size());
  EXPECT_LT(enc_per_frame, raw_per_frame / 1.2);
}

TEST(FrameworkCodec, ExactlyOnceDeliveryOnEncodedBytesOverFlakyWan) {
  // [codec] + [faults] together: retries and exactly-once delivery must
  // hold when transfer planning runs on encoded byte counts.
  ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  cfg.codec.enabled = true;
  cfg.sim_window = SimSeconds::hours(12.0);
  cfg.faults.transfer_failure_rate = 0.25;
  cfg.faults.retry.initial_backoff = WallSeconds(5.0);
  cfg.faults.retry.max_backoff = WallSeconds(120.0);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.summary.completed);
  EXPECT_GT(r.summary.transfer_failures, 0);
  EXPECT_EQ(r.summary.transfer_retries, r.summary.transfer_failures);
  EXPECT_EQ(r.summary.frames_sent, r.summary.frames_written);
  EXPECT_EQ(r.summary.frames_visualized, r.summary.frames_written);
  std::set<std::int64_t> seen;
  for (const VisRecord& v : r.vis_records) {
    EXPECT_TRUE(seen.insert(v.sequence).second)
        << "frame " << v.sequence << " delivered twice";
  }
  EXPECT_GT(r.summary.codec_mean_ratio, 1.0);
}

// ---- Series caps ----

TEST(FrameworkSeries, MaxSeriesPointsStrideThinsKeepingEndpoints) {
  const ExperimentResult full =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  ExperimentConfig cfg = mini_config(AlgorithmKind::kOptimization);
  cfg.max_series_points = 10;
  const ExperimentResult capped = run_experiment(cfg);

  ASSERT_GT(full.samples.size(), 10u);
  EXPECT_EQ(capped.samples.size(), 10u);
  EXPECT_LE(capped.vis_records.size(), 10u);
  EXPECT_LE(capped.track.size(), 10u);

  // Endpoints survive thinning (same seed => identical pre-thinned series).
  EXPECT_DOUBLE_EQ(capped.samples.front().wall_time.seconds(),
                   full.samples.front().wall_time.seconds());
  EXPECT_DOUBLE_EQ(capped.samples.back().wall_time.seconds(),
                   full.samples.back().wall_time.seconds());
  for (std::size_t i = 1; i < capped.samples.size(); ++i) {
    EXPECT_GT(capped.samples[i].wall_time.seconds(),
              capped.samples[i - 1].wall_time.seconds());
  }
  // Summary aggregates are computed from the full-resolution series
  // before thinning.
  EXPECT_DOUBLE_EQ(capped.summary.min_free_disk_percent,
                   full.summary.min_free_disk_percent);
  EXPECT_EQ(capped.summary.frames_written, full.summary.frames_written);
}

TEST(Framework, ObservabilityOffLeavesResultEmpty) {
  const ExperimentResult r =
      run_experiment(mini_config(AlgorithmKind::kOptimization));
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_TRUE(r.trace.empty());
}

}  // namespace
}  // namespace adaptviz
