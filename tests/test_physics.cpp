#include "weather/physics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptviz {
namespace {

constexpr LatLon kBay{14.0, 88.5};       // warm open ocean
constexpr LatLon kInland{23.0, 80.0};    // central India

TEST(IntensityOde, DeepensOverWarmOcean) {
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  const double d0 = phys.deficit_hpa();
  for (int i = 0; i < 12 * 60; ++i) {
    phys.advance(60.0, 0.0, 0.0, phys.center());  // 12 h, no motion
  }
  EXPECT_GT(phys.deficit_hpa(), d0 + 4.0);
  EXPECT_LT(phys.central_pressure_hpa(), kEnvPressureHpa - d0 - 4.0);
}

TEST(IntensityOde, SaturatesBelowDeficitMax) {
  PhysicsConfig cfg;
  CyclonePhysics phys(cfg, 9.0, kBay);
  for (int i = 0; i < 200 * 60; ++i) {
    phys.advance(60.0, 0.0, 0.0, phys.center());
  }
  EXPECT_LE(phys.deficit_hpa(), cfg.deficit_max_hpa + 1e-9);
  EXPECT_GT(phys.deficit_hpa(), 0.8 * cfg.deficit_max_hpa);
}

TEST(IntensityOde, AilaTimeline) {
  // Paper-aligned milestones: < 995 hPa (nest spawn) ~8-16 h in; the full
  // Table III ladder (986 hPa) complete by ~22-32 h.
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  double t_995 = -1.0;
  double t_986 = -1.0;
  for (int minute = 0; minute < 60 * 60; ++minute) {
    phys.advance(60.0, 0.0, 0.0, phys.center());
    const double p = phys.central_pressure_hpa();
    const double h = minute / 60.0;
    if (t_995 < 0 && p < 995.0) t_995 = h;
    if (t_986 < 0 && p < 986.0) t_986 = h;
  }
  EXPECT_GT(t_995, 4.0);
  EXPECT_LT(t_995, 18.0);
  EXPECT_GT(t_986, t_995);
  EXPECT_LT(t_986, 34.0);
}

TEST(IntensityOde, DecaysOverLand) {
  CyclonePhysics phys(PhysicsConfig{}, 30.0, kInland);
  const double d0 = phys.deficit_hpa();
  for (int i = 0; i < 6 * 60; ++i) {
    phys.advance(60.0, 0.0, 0.0, phys.center());  // 6 h over land
  }
  EXPECT_LT(phys.deficit_hpa(), 0.7 * d0);
}

TEST(Motion, CenterAdvectsWithSteering) {
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  // 5 m/s due north for 10 h = 180 km ~ 1.62 degrees.
  for (int i = 0; i < 10 * 60; ++i) {
    phys.advance(60.0, 0.0, 5.0, phys.center());
  }
  EXPECT_NEAR(phys.center().lat, kBay.lat + 1.62, 0.1);
  EXPECT_NEAR(phys.center().lon, kBay.lon, 0.05);
}

TEST(Motion, PullsTowardDiagnosedEye) {
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  const LatLon eye{14.5, 89.0};  // dynamics says the storm is NE of us
  for (int i = 0; i < 6 * 60; ++i) phys.advance(60.0, 0.0, 0.0, eye);
  EXPECT_GT(phys.center().lat, kBay.lat + 0.2);
  EXPECT_GT(phys.center().lon, kBay.lon + 0.2);
}

TEST(Motion, IgnoresFarAwayEye) {
  // A diagnosed minimum 1000+ km away is noise, not the storm.
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  const LatLon far{30.0, 70.0};
  for (int i = 0; i < 60; ++i) phys.advance(60.0, 0.0, 0.0, far);
  EXPECT_NEAR(phys.center().lat, kBay.lat, 0.01);
}

TEST(TargetVortex, ResolvableCore) {
  CyclonePhysics phys(PhysicsConfig{}, 20.0, kBay);
  const HollandVortex fine = phys.target_vortex(10.0);
  const HollandVortex coarse = phys.target_vortex(150.0);
  EXPECT_GE(coarse.r_max_km, 2.2 * 150.0);
  EXPECT_LT(fine.r_max_km, coarse.r_max_km);
  EXPECT_DOUBLE_EQ(fine.deficit_hpa, 20.0);
}

TEST(TargetVortex, CoreShrinksWithIntensity) {
  PhysicsConfig cfg;
  CyclonePhysics weak(cfg, 5.0, kBay);
  CyclonePhysics strong(cfg, 40.0, kBay);
  EXPECT_GT(weak.target_vortex(5.0).r_max_km,
            strong.target_vortex(5.0).r_max_km);
  EXPECT_GE(strong.target_vortex(5.0).r_max_km, cfg.r_floor_km);
}

TEST(Forcing, FieldsShapedAroundCenter) {
  CyclonePhysics phys(PhysicsConfig{}, 20.0, kBay);
  GridSpec g(80.0, 5.0, 18.0, 18.0, 100.0);
  DomainState s(g);  // at rest; the forcing should push it toward the target
  const Field2D land = land_mask(g);
  Field2D q, fu, fv, relax;
  phys.build_forcing(s, land, q, fu, fv, relax);

  // Mass sink strongest at the centre (h target most negative there).
  const std::size_t ci = static_cast<std::size_t>(g.x_of_lon(kBay.lon));
  const std::size_t cj = static_cast<std::size_t>(g.y_of_lat(kBay.lat));
  EXPECT_LT(q(ci, cj), 0.0);
  EXPECT_GT(std::fabs(q(ci, cj)), std::fabs(q(2, 2)));
  // Mass forcing decays far from the storm (corner ~1300 km out).
  EXPECT_LT(std::fabs(q(0, 0)), 0.2 * std::fabs(q(ci, cj)));
  // Wind forcing is cyclonic: east of centre, v-tendency positive.
  EXPECT_GT(fv(ci + 2, cj), 0.0);
  EXPECT_LT(fv(ci - 2, cj), 0.0);
  // Relaxation: strong over land, weak near the storm core.
  const std::size_t land_i = static_cast<std::size_t>(g.x_of_lon(80.5));
  const std::size_t land_j = static_cast<std::size_t>(g.y_of_lat(17.0));
  EXPECT_GT(relax(land_i, land_j), relax(ci, cj));
  EXPECT_LT(relax(ci, cj), 1.0 / (6.0 * 3600.0));
}

TEST(Forcing, ShapeMismatchRejected) {
  CyclonePhysics phys(PhysicsConfig{}, 20.0, kBay);
  GridSpec g(80.0, 5.0, 10.0, 10.0, 100.0);
  DomainState s(g);
  Field2D land(2, 2);
  Field2D q, fu, fv, relax;
  EXPECT_THROW(phys.build_forcing(s, land, q, fu, fv, relax),
               std::invalid_argument);
}

TEST(Physics, ConstructorValidates) {
  EXPECT_THROW(CyclonePhysics(PhysicsConfig{}, 0.0, kBay),
               std::invalid_argument);
  EXPECT_THROW(CyclonePhysics(PhysicsConfig{}, 1000.0, kBay),
               std::invalid_argument);
}

TEST(Physics, RestoreSetsState) {
  CyclonePhysics phys(PhysicsConfig{}, 9.0, kBay);
  phys.restore(25.0, LatLon{18.0, 88.0});
  EXPECT_DOUBLE_EQ(phys.deficit_hpa(), 25.0);
  EXPECT_DOUBLE_EQ(phys.center().lat, 18.0);
}

}  // namespace
}  // namespace adaptviz
