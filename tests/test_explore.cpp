// Scenario-explorer and checkpoint/restore tests.
//
// Three properties anchor the whole PR:
//
//  * the explorer finds the seeded greedy-stall violation in
//    scenarios/explore_smoke.ini and reports the exact adversary plan;
//  * an explored branch replayed as a plain `[adversary]` run — or as a
//    stepwise run that set_adversary_plan()s mid-flight — produces
//    byte-identical result CSVs (the explorer's futures are real runs);
//  * snapshot at a decision boundary + restore + resume is byte-identical
//    to the uninterrupted run, for every render-pool size (0 = inline on
//    the event loop, 2, 5) — ordering never depends on worker count.
#include "explore/explorer.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "core/scenario.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {
namespace {

namespace fs = std::filesystem;

std::string scenario_path() {
  return std::string(ADAPTVIZ_SCENARIO_DIR) + "/explore_smoke.ini";
}

/// The in-tree smoke scenario: greedy heuristic, small disk, clean
/// baseline; a 0.9 disk shock at any boundary stalls it.
ExperimentConfig smoke_config() { return load_scenario(scenario_path()); }

/// Whole-directory fingerprint: every file's bytes keyed by filename.
std::map<std::string, std::string> dir_contents(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    out[e.path().filename().string()] = body.str();
  }
  return out;
}

/// Writes both results and asserts every emitted file is byte-identical.
void expect_results_identical(const ExperimentResult& a,
                              const ExperimentResult& b,
                              const std::string& tag) {
  const std::string dir_a = (fs::temp_directory_path() /
                             ("explore_" + tag + "_a")).string();
  const std::string dir_b = (fs::temp_directory_path() /
                             ("explore_" + tag + "_b")).string();
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
  write_result(a, dir_a);
  write_result(b, dir_b);
  const auto files_a = dir_contents(dir_a);
  const auto files_b = dir_contents(dir_b);
  ASSERT_FALSE(files_a.empty());
  ASSERT_EQ(files_a.size(), files_b.size());
  for (const auto& [name, bytes] : files_a) {
    ASSERT_TRUE(files_b.count(name)) << name;
    // EXPECT_TRUE, not EXPECT_EQ: a failure names the file instead of
    // dumping two multi-hundred-line CSVs into the log.
    EXPECT_TRUE(bytes == files_b.at(name)) << tag << ": " << name
                                           << " differs";
  }
  // The aggregated campaign row is built off the summary alone — pin it
  // too (campaign_summary.csv rows survive a restore-resume).
  CampaignRunRecord ra;
  CampaignRunRecord rb;
  ra.label = rb.label = tag;
  ra.summary = a.summary;
  rb.summary = b.summary;
  EXPECT_EQ(campaign_summary_row(ra), campaign_summary_row(rb));
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
}

/// Steps fw until `target` decisions have been made; fails the test if
/// the run ends first.
void advance_to_decisions(AdaptiveFramework& fw, int target) {
  while (fw.decisions_made() < target) {
    ASSERT_TRUE(fw.step_once()) << "run ended before decision " << target;
  }
}

/// A reduced spec that keeps the tests quick: the adversary only gets the
/// disk shock, two boundaries deep.
ExploreSpec quick_spec() {
  ExploreSpec spec;
  spec.max_depth = 2;
  spec.max_branches = 16;
  spec.disk_shock_fractions = {0.9};
  return spec;
}

TEST(ExploreSpecIni, ParsesAllKeysAndDefaults) {
  const IniDocument doc = IniDocument::parse(
      "[explore]\n"
      "max_depth = 2\n"
      "max_branches = 9\n"
      "bandwidth_drop_tiers = 0.25 0.5\n"
      "failure_burst_levels = 0.3\n"
      "disk_shock_fractions = 0.9\n"
      "include_none = false\n"
      "prune = false\n");
  const ExploreSpec spec = explore_spec_from_ini(doc);
  EXPECT_EQ(spec.max_depth, 2);
  EXPECT_EQ(spec.max_branches, 9);
  EXPECT_EQ(spec.bandwidth_drop_tiers, (std::vector<double>{0.25, 0.5}));
  EXPECT_EQ(spec.failure_burst_levels, (std::vector<double>{0.3}));
  EXPECT_EQ(spec.disk_shock_fractions, (std::vector<double>{0.9}));
  EXPECT_FALSE(spec.include_none);
  EXPECT_FALSE(spec.prune);
  EXPECT_TRUE(spec.use_snapshots);

  const ExploreSpec defaults =
      explore_spec_from_ini(IniDocument::parse("[experiment]\nname = x\n"));
  EXPECT_EQ(defaults.max_depth, 3);
  EXPECT_EQ(defaults.max_branches, 64);
  EXPECT_TRUE(defaults.include_none);
}

TEST(ExploreSpecIni, RejectsBadValues) {
  EXPECT_THROW(explore_spec_from_ini(IniDocument::parse(
                   "[explore]\nmax_depth = 0\n")),
               std::invalid_argument);
  EXPECT_THROW(explore_spec_from_ini(IniDocument::parse(
                   "[explore]\ndisk_shock_fractions = 1.5\n")),
               std::invalid_argument);
  EXPECT_THROW(explore_spec_from_ini(IniDocument::parse(
                   "[explore]\nbandwidth_drop_tiers = nope\n")),
               std::runtime_error);
}

TEST(AdversaryPlan, RoundTripsThroughText) {
  const AdversaryPlan plan = {
      {0, AdversaryActionKind::kBandwidthDrop, 0.25},
      {2, AdversaryActionKind::kFailureBurst, 0.3},
      {2, AdversaryActionKind::kDiskShock, 0.9},
  };
  EXPECT_EQ(adversary_plan_from(to_string(plan)), plan);
  EXPECT_EQ(to_string(AdversaryPlan{}), "");
  EXPECT_THROW(adversary_plan_from("1:meteor-strike=1.0"),
               std::runtime_error);
  EXPECT_THROW(validate(AdversaryPlan{{-1,
                                       AdversaryActionKind::kDiskShock,
                                       0.5}}),
               std::invalid_argument);
}

TEST(Explorer, FindsSeededGreedyStallWithExactPlan) {
  ScenarioExplorer explorer(smoke_config(), quick_spec());
  const ExploreReport report = explorer.explore();

  // The clean baseline survives the window...
  EXPECT_GE(report.baseline_progress.as_hours(), 24.0 - 1e-9);
  // ...and the search finds the seeded stall, with a worse worst case.
  ASSERT_FALSE(report.violations.empty());
  EXPECT_LT(report.worst_progress.seconds(),
            report.baseline_progress.seconds());
  bool found_stall = false;
  for (const Violation& v : report.violations) {
    if (v.invariant != "greedy-stall") continue;
    found_stall = true;
    ASSERT_FALSE(v.plan.empty());
    EXPECT_EQ(v.plan.back().kind, AdversaryActionKind::kDiskShock);
  }
  EXPECT_TRUE(found_stall);
  // The report names a replayable worst plan.
  EXPECT_FALSE(report.worst_plan.empty());
  EXPECT_EQ(adversary_plan_from(to_string(report.worst_plan)),
            report.worst_plan);
}

TEST(Explorer, ReportIsDeterministic) {
  ScenarioExplorer a(smoke_config(), quick_spec());
  ScenarioExplorer b(smoke_config(), quick_spec());
  EXPECT_EQ(to_string(a.explore()), to_string(b.explore()));
}

TEST(Explorer, SnapshotAndNaiveModesAgreeExactly) {
  ExploreSpec naive = quick_spec();
  naive.use_snapshots = false;
  ScenarioExplorer fast(smoke_config(), quick_spec());
  ScenarioExplorer slow(smoke_config(), naive);
  const ExploreReport a = fast.explore();
  const ExploreReport b = slow.explore();
  EXPECT_EQ(to_string(a), to_string(b));
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.leaves_evaluated, b.leaves_evaluated);
  EXPECT_EQ(a.pruned, b.pruned);
}

TEST(Explorer, PruningOnlyEverSkipsSubtrees) {
  ExploreSpec no_prune = quick_spec();
  no_prune.prune = false;
  ScenarioExplorer pruned(smoke_config(), quick_spec());
  ScenarioExplorer full(smoke_config(), no_prune);
  const ExploreReport a = pruned.explore();
  const ExploreReport b = full.explore();
  // The bound is safe: the worst case is identical, only work differs.
  EXPECT_EQ(a.worst_progress.seconds(), b.worst_progress.seconds());
  EXPECT_EQ(to_string(a.worst_plan), to_string(b.worst_plan));
  EXPECT_EQ(b.pruned, 0);
  EXPECT_LE(a.nodes_explored, b.nodes_explored);
}

TEST(Explorer, RejectsConfiguredAdversaryAndUnsnapshotableSubsystems) {
  ExperimentConfig cfg = smoke_config();
  cfg.adversary = {{1, AdversaryActionKind::kDiskShock, 0.5}};
  EXPECT_THROW(ScenarioExplorer(cfg, quick_spec()), std::invalid_argument);

  ExperimentConfig with_tree = smoke_config();
  with_tree.serve.tree.tiers.push_back(EdgeTierSpec{});
  EXPECT_THROW(ScenarioExplorer(with_tree, quick_spec()), std::logic_error);
}

// The bitwise-replay anchor: the worst plan the explorer found, replayed
// through a plain config-driven run AND through a stepwise run that
// injects the plan mid-flight (exactly what the explorer does), produces
// byte-identical CSVs.
TEST(Explorer, WorstPlanReplaysBitwise) {
  ScenarioExplorer explorer(smoke_config(), quick_spec());
  const ExploreReport report = explorer.explore();
  ASSERT_FALSE(report.worst_plan.empty());
  const AdversaryPlan plan = report.worst_plan;
  const int first_boundary = plan.front().after_decision;

  // Plain replay: the plan rides in on the config.
  ExperimentConfig cfg_plain = smoke_config();
  cfg_plain.adversary = plan;
  const ExperimentResult plain = run_experiment(cfg_plain);

  // The explored branch's final progress is reproduced exactly.
  EXPECT_EQ(plain.summary.sim_reached.seconds(),
            report.worst_progress.seconds());

  // Stepwise replay: start clean, inject the plan at the first boundary
  // the way the explorer does, run to completion.
  AdaptiveFramework fw(smoke_config());
  fw.start_run();
  advance_to_decisions(fw, first_boundary + 1);
  fw.set_adversary_plan(plan);
  while (fw.step_once()) {
  }
  const ExperimentResult stepwise = fw.finish_run();

  expect_results_identical(plain, stepwise, "replay");
}

/// smoke_config() plus two viewer sessions, so a snapshot/restore also
/// covers the serving layer (cache, per-client downlinks, delivery
/// records) and the per-client CSV digests get compared.
ExperimentConfig serving_config(ThreadPool* pool) {
  ExperimentConfig cfg = smoke_config();
  cfg.pool = pool;
  ViewerConfig live;
  live.name = "live";
  ViewerConfig catchup;
  catchup.name = "catchup";
  catchup.mode = ViewerMode::kCatchUp;
  catchup.join_wall = WallSeconds::hours(2.0);
  cfg.serve.viewers = {live, catchup};
  return cfg;
}

// Satellite: restore at a decision boundary + resume reproduces the
// uninterrupted run byte for byte — telemetry, delivered-frame digests,
// campaign summary rows — across render-pool sizes 0 (inline), 2, 5.
TEST(SnapshotRestore, ResumeIsBitwiseIdenticalAcrossPoolSizes) {
  std::map<int, ExperimentResult> uninterrupted;
  for (const int workers : {0, 2, 5}) {
    ThreadPool pool(workers);

    // Reference: straight through.
    {
      AdaptiveFramework fw(serving_config(&pool));
      fw.start_run();
      while (fw.step_once()) {
      }
      uninterrupted.emplace(workers, fw.finish_run());
    }

    // Interrupted: snapshot at boundary 1 (the last one before the smoke
    // window completes), keep running to the end, then rewind to the
    // snapshot and resume — the second finish must match.
    {
      AdaptiveFramework fw(serving_config(&pool));
      fw.start_run();
      advance_to_decisions(fw, 2);  // boundary 1
      const ExperimentState checkpoint = fw.snapshot();
      while (fw.step_once()) {
      }
      fw.restore(checkpoint);
      while (fw.step_once()) {
      }
      const ExperimentResult resumed = fw.finish_run();
      expect_results_identical(uninterrupted.at(workers), resumed,
                               "resume_p" + std::to_string(workers));
    }
  }
  // Pool size must never leak into results: 0 vs 2 vs 5 agree bitwise.
  expect_results_identical(uninterrupted.at(0), uninterrupted.at(2),
                           "pool_0v2");
  expect_results_identical(uninterrupted.at(0), uninterrupted.at(5),
                           "pool_0v5");
}

// A pre-start snapshot restores the framework to "never started":
// resuming from it replays the whole run.
TEST(SnapshotRestore, RestoreBeforeStartReplaysWholeRun) {
  ExperimentConfig cfg = smoke_config();
  const ExperimentResult reference = run_experiment(cfg);

  AdaptiveFramework fw(smoke_config());
  const ExperimentState fresh = fw.snapshot();
  fw.start_run();
  advance_to_decisions(fw, 2);
  fw.restore(fresh);
  fw.start_run();
  while (fw.step_once()) {
  }
  expect_results_identical(reference, fw.finish_run(), "prestart");
}

}  // namespace
}  // namespace adaptviz
