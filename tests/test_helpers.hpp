// Shared fixtures for the core decision/framework tests.
#pragma once

#include <memory>

#include "core/decision.hpp"
#include "perf/perf_model.hpp"

namespace adaptviz::testing_helpers {

/// A 64-core machine with a clean (noise-free) speedup curve.
inline MachineSpec test_machine_spec() {
  return MachineSpec{.name = "testbox",
                     .max_cores = 64,
                     .min_cores = 4,
                     .serial_seconds = 2.0,
                     .work_seconds = 1500.0,
                     .comm_seconds = 0.4,
                     .noise_sigma = 0.0};
}

inline std::shared_ptr<PerformanceModel> make_perf_model() {
  GroundTruthMachine machine(test_machine_spec(), 1);
  BenchmarkProfiler profiler;
  return std::make_shared<PerformanceModel>(profiler.profile(machine, 1.0),
                                            64);
}

/// A baseline decision input: healthy disk, decent network, fine-resolution
/// workload. Tests perturb individual fields.
inline DecisionInput make_input(const PerformanceModel& perf) {
  DecisionInput in;
  in.free_disk_percent = 80.0;
  in.disk_capacity = Bytes::gigabytes(182);
  in.free_disk_bytes = in.disk_capacity * 0.8;
  in.observed_bandwidth = Bandwidth::megabytes_per_second(2.0);
  in.io_bandwidth = Bandwidth::megabytes_per_second(150.0);
  in.work_units = 0.6;
  in.frame_bytes = Bytes::megabytes(900);
  in.integration_step = SimSeconds(60.0);  // 10-km step
  in.remaining_sim_time = SimSeconds::hours(40.0);
  in.resolution_km = 10.0;
  in.current_processors = 64;
  in.current_output_interval = SimSeconds::minutes(3.0);
  in.perf = &perf;
  in.min_processors = 4;
  in.max_processors = 64;
  return in;
}

}  // namespace adaptviz::testing_helpers
