#include "vis/volume.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "weather/vortex.hpp"

namespace adaptviz {
namespace {

TEST(VolumeGrid, ConstructionAndSampling) {
  VolumeGrid v(4, 3, 2, 1.5);
  EXPECT_EQ(v.nx(), 4u);
  EXPECT_EQ(v.ny(), 3u);
  EXPECT_EQ(v.nz(), 2u);
  EXPECT_DOUBLE_EQ(v.sample(1.5, 1.0, 0.5), 1.5);  // uniform volume
  EXPECT_THROW(VolumeGrid(0, 3, 2), std::invalid_argument);
}

TEST(VolumeGrid, TrilinearInterpolation) {
  VolumeGrid v(2, 2, 2, 0.0);
  v.at(1, 1, 1) = 8.0;
  EXPECT_DOUBLE_EQ(v.sample(0.5, 0.5, 0.5), 1.0);  // 1/8 of the corner
  EXPECT_DOUBLE_EQ(v.sample(1.0, 1.0, 1.0), 8.0);
  // Outside the volume: vacuum.
  EXPECT_DOUBLE_EQ(v.sample(-0.1, 0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(v.sample(0.5, 0.5, 3.0), 0.0);
}

TEST(CloudVolume, QuietAtmosphereIsClear) {
  GridSpec g(80.0, 5.0, 10.0, 10.0, 120.0);
  DomainState s(g);  // flat layer
  const VolumeGrid vol = cloud_volume_from_state(s);
  for (std::size_t k = 0; k < vol.nz(); ++k) {
    EXPECT_DOUBLE_EQ(vol.at(vol.nx() / 2, vol.ny() / 2, k), 0.0);
  }
}

TEST(CloudVolume, StormGrowsTallDenseCloud) {
  GridSpec g(80.0, 5.0, 18.0, 18.0, 80.0);
  DomainState s(g);
  HollandVortex v{.center = LatLon{14.0, 89.0},
                  .deficit_hpa = 30.0,
                  .r_max_km = 200.0,
                  .b = 1.5};
  v.deposit(s);
  const VolumeGrid vol = cloud_volume_from_state(s);
  const std::size_t ci = static_cast<std::size_t>(g.x_of_lon(89.0));
  const std::size_t cj = static_cast<std::size_t>(g.y_of_lat(14.0));
  // Cloud at the eyewall column, none far away.
  EXPECT_GT(vol.at(ci, cj, 0), 0.3);
  EXPECT_GT(vol.at(ci, cj, vol.nz() / 2), 0.0);  // deep convection
  EXPECT_DOUBLE_EQ(vol.at(1, 1, 0), 0.0);
  // Density decreases with height within the column.
  EXPECT_GE(vol.at(ci, cj, 0), vol.at(ci, cj, vol.nz() - 1));
}

TEST(CompositeVolume, VacuumLeavesImageUntouched) {
  VolumeGrid vol(20, 20, 8, 0.0);
  Image img(40, 40, Rgb{10, 60, 110});
  composite_volume(img, vol);
  EXPECT_EQ(img.at(20, 20), (Rgb{10, 60, 110}));
}

TEST(CompositeVolume, OpaqueSlabSaturatesToCloudColor) {
  VolumeGrid vol(20, 20, 8, 50.0);  // extremely dense everywhere
  Image img(40, 40, Rgb{0, 0, 0});
  VolumeRenderOptions opt;
  opt.shear_cells = 0.0;
  composite_volume(img, vol, opt);
  const Rgb c = img.at(20, 20);
  EXPECT_GT(c.r, 235);
  EXPECT_GT(c.g, 235);
}

TEST(CompositeVolume, KnownOpticalDepth) {
  // One level of density rho: opacity = 1 - exp(-extinction * rho) exactly
  // (plus the zero levels above).
  VolumeGrid vol(10, 10, 2, 0.0);
  for (std::size_t j = 0; j < 10; ++j)
    for (std::size_t i = 0; i < 10; ++i) vol.at(i, j, 0) = 2.0;
  Image img(10, 10, Rgb{0, 0, 0});
  VolumeRenderOptions opt;
  opt.shear_cells = 0.0;
  opt.extinction = 0.35;
  composite_volume(img, vol, opt);
  const double alpha = 1.0 - std::exp(-0.35 * 2.0);
  const int expected = static_cast<int>(std::lround(alpha * 245));
  EXPECT_NEAR(img.at(5, 5).r, expected, 2);
}

TEST(CompositeVolume, ShearDisplacesCloudTopsNorthInImage) {
  // A tall thin column: with shear, its projection lands south (larger
  // image y) of the straight-down projection.
  VolumeGrid vol(30, 30, 10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) vol.at(15, 15, k) = 60.0;
  Image straight(30, 30, Rgb{0, 0, 0});
  Image sheared(30, 30, Rgb{0, 0, 0});
  VolumeRenderOptions opt;
  opt.shear_cells = 0.0;
  composite_volume(straight, vol, opt);
  opt.shear_cells = 6.0;
  composite_volume(sheared, vol, opt);

  auto centroid_y = [](const Image& img) {
    double sum = 0.0;
    double weight = 0.0;
    for (std::size_t y = 0; y < img.height(); ++y)
      for (std::size_t x = 0; x < img.width(); ++x) {
        weight += img.at(x, y).r;
        sum += img.at(x, y).r * static_cast<double>(y);
      }
    return sum / weight;
  };
  // Tops are displaced toward the image top (north) by the oblique view.
  EXPECT_LT(centroid_y(sheared), centroid_y(straight) - 1.0);
}

}  // namespace
}  // namespace adaptviz
