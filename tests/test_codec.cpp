#include "dataio/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace adaptviz {
namespace {

FieldView view(const std::vector<double>& v, std::size_t nx, std::size_t ny) {
  return FieldView{v.data(), nx, ny};
}

constexpr CodecPrecision kF64 = CodecPrecision::kFloat64;
constexpr CodecPrecision kF32 = CodecPrecision::kFloat32;

// What the default (float32) precision makes of a double field: the
// narrowed values widened back, which is what decode_frame must return.
std::vector<double> narrowed32(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  for (std::size_t k = 0; k < v.size(); ++k) {
    out[k] = static_cast<double>(static_cast<float>(v[k]));
  }
  return out;
}

std::vector<double> random_field(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  std::vector<double> f(n);
  for (double& x : f) x = dist(rng);
  return f;
}

// A spatially smooth AR(1) field: each point mixes its west/north neighbors
// with a small innovation, the standard stand-in for geophysical fields.
std::vector<double> ar1_field(std::size_t nx, std::size_t ny,
                              std::uint32_t seed, double rho = 0.995) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> f(nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const double w = i > 0 ? f[j * nx + i - 1] : 0.0;
      const double n = j > 0 ? f[(j - 1) * nx + i] : 0.0;
      const double base = i > 0 && j > 0 ? 0.5 * (w + n) : (i > 0 ? w : n);
      f[j * nx + i] = rho * base + (1.0 - rho) * noise(rng);
    }
  }
  return f;
}

// ---- Exact roundtrip ----

TEST(Codec, RoundtripExactOnRandomFields) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    const std::vector<double> cur = random_field(31 * 17, seed);
    const CompressedFrame frame = encode_frame(view(cur, 31, 17), nullptr, nullptr, kF64);
    EXPECT_EQ(decode_frame(frame, nullptr), cur) << "seed " << seed;
  }
}

TEST(Codec, RoundtripExactWithPreviousFrame) {
  const std::vector<double> prev = ar1_field(40, 25, 3);
  std::vector<double> cur = prev;
  std::mt19937 rng(11);
  std::normal_distribution<double> nudge(0.0, 1e-4);
  for (double& x : cur) x += nudge(rng);
  const FieldView pv = view(prev, 40, 25);
  const CompressedFrame frame = encode_frame(view(cur, 40, 25), &pv, nullptr, kF64);
  EXPECT_EQ(decode_frame(frame, &pv), cur);
}

TEST(Codec, RoundtripPreservesSpecialValues) {
  std::vector<double> cur = {0.0,
                             -0.0,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             1.0};
  const CompressedFrame frame = encode_frame(view(cur, 4, 2), nullptr, nullptr, kF64);
  const std::vector<double> got = decode_frame(frame, nullptr);
  ASSERT_EQ(got.size(), cur.size());
  for (std::size_t k = 0; k < cur.size(); ++k) {
    std::uint64_t a, b;
    std::memcpy(&a, &cur[k], 8);
    std::memcpy(&b, &got[k], 8);
    EXPECT_EQ(a, b) << "element " << k;  // bit compare: NaN != NaN as doubles
  }
}

// ---- Compression ratio ----

TEST(Codec, SmoothFieldCompressesAtLeastBreakEven) {
  const std::vector<double> cur = ar1_field(64, 48, 5);
  const CompressedFrame frame = encode_frame(view(cur, 64, 48), nullptr, nullptr, kF64);
  EXPECT_GE(frame.ratio(), 1.0);
  EXPECT_EQ(decode_frame(frame, nullptr), cur);
}

TEST(Codec, TemporalDeltaBeatsBreakEvenOnCorrelatedFrames) {
  const std::vector<double> prev = ar1_field(64, 48, 9);
  std::vector<double> cur = prev;
  for (double& x : cur) x *= 1.0 + 1e-6;  // slow, smooth evolution
  const FieldView pv = view(prev, 64, 48);
  const CompressedFrame frame = encode_frame(view(cur, 64, 48), &pv, nullptr, kF64);
  EXPECT_EQ(frame.mode, CompressedFrame::Mode::kDelta);
  EXPECT_GE(frame.ratio(), 1.0);
  EXPECT_EQ(decode_frame(frame, &pv), cur);
}

TEST(Codec, IncompressibleInputIsBoundedByRawPlusHeader) {
  // Uniformly random 64-bit patterns: every byte plane is white noise, so
  // no predictor can help and the encoder must take the raw escape.
  std::mt19937_64 rng(13);
  std::vector<double> cur(50 * 50);
  for (double& x : cur) {
    const std::uint64_t b = rng();
    std::memcpy(&x, &b, sizeof x);
  }
  const CompressedFrame frame = encode_frame(view(cur, 50, 50), nullptr, nullptr, kF64);
  EXPECT_EQ(frame.mode, CompressedFrame::Mode::kRaw);
  EXPECT_LE(frame.encoded_bytes(), frame.raw_bytes() + 16);
  const std::vector<double> got = decode_frame(frame, nullptr);
  ASSERT_EQ(got.size(), cur.size());
  // memcmp, not ==: random bit patterns include NaNs.
  EXPECT_EQ(std::memcmp(got.data(), cur.data(), cur.size() * sizeof(double)),
            0);
}

// ---- Edge cases ----

TEST(Codec, EmptyField) {
  const std::vector<double> none;
  const CompressedFrame frame = encode_frame(view(none, 0, 0), nullptr);
  EXPECT_EQ(frame.raw_bytes(), 0u);
  EXPECT_DOUBLE_EQ(frame.ratio(), 1.0);
  EXPECT_TRUE(decode_frame(frame, nullptr).empty());
}

TEST(Codec, FirstFrameHasNoPreviousAndStillRoundtrips) {
  const std::vector<double> cur = ar1_field(20, 20, 21);
  const CompressedFrame frame = encode_frame(view(cur, 20, 20), nullptr, nullptr, kF64);
  EXPECT_NE(frame.mode, CompressedFrame::Mode::kDelta);
  EXPECT_EQ(decode_frame(frame, nullptr), cur);
}

TEST(Codec, ResolutionChangeDisablesTemporalDelta) {
  // Previous frame at a different shape: the encoder must not difference
  // across the resolution switch.
  const std::vector<double> prev = ar1_field(40, 40, 2);
  const std::vector<double> cur = ar1_field(20, 20, 2);
  const FieldView pv = view(prev, 40, 40);
  const CompressedFrame frame = encode_frame(view(cur, 20, 20), &pv, nullptr, kF64);
  EXPECT_NE(frame.mode, CompressedFrame::Mode::kDelta);
  EXPECT_EQ(decode_frame(frame, &pv), cur);
}

TEST(Codec, SingleRowAndSingleColumnFields) {
  const std::vector<double> row = ar1_field(33, 1, 4);
  const CompressedFrame fr = encode_frame(view(row, 33, 1), nullptr, nullptr, kF64);
  EXPECT_EQ(decode_frame(fr, nullptr), row);

  const std::vector<double> col = ar1_field(1, 33, 4);
  const CompressedFrame fc = encode_frame(view(col, 1, 33), nullptr, nullptr, kF64);
  EXPECT_EQ(decode_frame(fc, nullptr), col);
}

TEST(Codec, ConstantFieldCompressesHard) {
  const std::vector<double> cur(128 * 128, 3.25);
  const CompressedFrame frame = encode_frame(view(cur, 128, 128), nullptr, nullptr, kF64);
  EXPECT_GE(frame.ratio(), 100.0);
  EXPECT_EQ(decode_frame(frame, nullptr), cur);
}

// ---- Frame-file precision (float32, the default) ----

TEST(Codec, Float32RoundtripIsExactOnNarrowedValues) {
  for (std::uint32_t seed : {1u, 9u}) {
    const std::vector<double> cur = random_field(30 * 22, seed);
    const CompressedFrame frame =
        encode_frame(view(cur, 30, 22), nullptr, nullptr, kF32);
    EXPECT_EQ(frame.precision, CodecPrecision::kFloat32);
    EXPECT_EQ(frame.raw_bytes(), 30u * 22u * 4u);
    EXPECT_EQ(decode_frame(frame, nullptr), narrowed32(cur)) << "seed "
                                                             << seed;
  }
}

TEST(Codec, Float32DeltaRoundtripsAgainstDoublePrev) {
  const std::vector<double> prev = ar1_field(48, 32, 15);
  std::vector<double> cur = prev;
  for (double& x : cur) x *= 1.0 + 1e-5;
  const FieldView pv = view(prev, 48, 32);
  const CompressedFrame frame = encode_frame(view(cur, 48, 32), &pv, nullptr, kF32);
  EXPECT_EQ(decode_frame(frame, &pv), narrowed32(cur));
}

TEST(Codec, Float32SmoothFieldCompressesWell) {
  // Intra-only floor on a synthetic AR(1) field whose innovations are far
  // rougher than real simulation output; the >= 2x acceptance number is
  // measured by bench_codec on real consecutive frames, where the
  // second-order temporal predictor applies.
  const std::vector<double> cur = ar1_field(96, 64, 17);
  const CompressedFrame frame = encode_frame(view(cur, 96, 64), nullptr, nullptr, kF32);
  EXPECT_GE(frame.ratio(), 1.1);
  EXPECT_EQ(decode_frame(frame, nullptr), narrowed32(cur));
}

// ---- Second-order temporal prediction ----

TEST(Codec, Delta2WinsOnLinearlyEvolvingFrames) {
  // Three frames of a steadily advecting field: cur sits close to the
  // linear extrapolation 2*prev - prev2, so the second-order predictor
  // should beat both plain delta and intra.
  const std::vector<double> base = ar1_field(48, 40, 23);
  std::vector<double> prev2v = base, prevv = base, curv = base;
  for (std::size_t k = 0; k < base.size(); ++k) {
    const double trend = 1e-3 * base[k];
    prevv[k] += trend;
    curv[k] += 2.0 * trend;
  }
  const FieldView p2 = view(prev2v, 48, 40);
  const FieldView p1 = view(prevv, 48, 40);
  const CompressedFrame frame =
      encode_frame(view(curv, 48, 40), &p1, &p2, kF64);
  EXPECT_EQ(frame.mode, CompressedFrame::Mode::kDelta2);
  EXPECT_GE(frame.ratio(), 1.0);
  EXPECT_EQ(decode_frame(frame, &p1, &p2), curv);
}

TEST(Codec, Delta2RequiresBothHistoryFramesToDecode) {
  const std::vector<double> base = ar1_field(32, 32, 29);
  std::vector<double> prev2v = base, prevv = base, curv = base;
  for (std::size_t k = 0; k < base.size(); ++k) {
    prevv[k] += 1e-6;
    curv[k] += 2e-6;
  }
  const FieldView p2 = view(prev2v, 32, 32);
  const FieldView p1 = view(prevv, 32, 32);
  const CompressedFrame frame =
      encode_frame(view(curv, 32, 32), &p1, &p2, kF64);
  ASSERT_EQ(frame.mode, CompressedFrame::Mode::kDelta2);
  EXPECT_THROW(decode_frame(frame, &p1, nullptr), std::invalid_argument);
  EXPECT_THROW(decode_frame(frame, nullptr, &p2), std::invalid_argument);
  const FieldView wrong = view(prev2v, 64, 16);
  EXPECT_THROW(decode_frame(frame, &p1, &wrong), std::invalid_argument);
}

TEST(Codec, Prev2AloneNeverSelectsDelta2) {
  // A stale prev2 without a usable prev (e.g. the frame right after a
  // resolution change) must not enable temporal prediction.
  const std::vector<double> cur = ar1_field(24, 24, 31);
  const std::vector<double> old = ar1_field(24, 24, 32);
  const FieldView p2 = view(old, 24, 24);
  const CompressedFrame frame =
      encode_frame(view(cur, 24, 24), nullptr, &p2, kF64);
  EXPECT_NE(frame.mode, CompressedFrame::Mode::kDelta);
  EXPECT_NE(frame.mode, CompressedFrame::Mode::kDelta2);
  EXPECT_EQ(decode_frame(frame, nullptr, nullptr), cur);
}

// ---- Error handling ----

TEST(Codec, DecodeRejectsDeltaWithoutPrev) {
  const std::vector<double> prev = ar1_field(16, 16, 6);
  std::vector<double> cur = prev;
  for (double& x : cur) x += 1e-9;
  const FieldView pv = view(prev, 16, 16);
  CompressedFrame frame = encode_frame(view(cur, 16, 16), &pv, nullptr, kF64);
  ASSERT_EQ(frame.mode, CompressedFrame::Mode::kDelta);
  EXPECT_THROW(decode_frame(frame, nullptr), std::invalid_argument);
  const FieldView wrong = view(prev, 8, 32);
  EXPECT_THROW(decode_frame(frame, &wrong), std::invalid_argument);
}

TEST(Codec, DecodeRejectsCorruptPayload) {
  const std::vector<double> cur = ar1_field(16, 16, 8);
  CompressedFrame frame = encode_frame(view(cur, 16, 16), nullptr);
  CompressedFrame truncated = frame;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW(decode_frame(truncated, nullptr), std::invalid_argument);

  CompressedFrame bad_magic = frame;
  bad_magic.payload[0] = 'X';
  EXPECT_THROW(decode_frame(bad_magic, nullptr), std::invalid_argument);

  CompressedFrame empty;
  EXPECT_THROW(decode_frame(empty, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace adaptviz
