#include "numerics/curve_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace adaptviz {
namespace {

std::vector<PerfSample> sample_curve(double serial, double work, double comm,
                                     std::initializer_list<int> procs,
                                     Rng* noise = nullptr,
                                     double sigma = 0.0) {
  std::vector<PerfSample> out;
  for (int p : procs) {
    double t = serial + work / p + comm * std::log2(static_cast<double>(p));
    if (noise != nullptr) t *= 1.0 + noise->normal(0.0, sigma);
    out.push_back(PerfSample{p, t});
  }
  return out;
}

TEST(SpeedupCurve, ExactRecovery) {
  const auto samples = sample_curve(2.0, 1200.0, 0.5, {4, 8, 16, 32, 48});
  const SpeedupCurve c = SpeedupCurve::fit(samples);
  EXPECT_NEAR(c.serial(), 2.0, 1e-6);
  EXPECT_NEAR(c.work(), 1200.0, 1e-6);
  EXPECT_NEAR(c.comm(), 0.5, 1e-6);
  EXPECT_NEAR(c.rms_error(samples), 0.0, 1e-9);
}

TEST(SpeedupCurve, NoisyFitIsClose) {
  Rng rng(42);
  const auto samples = sample_curve(2.0, 1200.0, 0.5,
                                    {4, 4, 8, 8, 12, 16, 24, 32, 40, 48, 48},
                                    &rng, 0.03);
  const SpeedupCurve c = SpeedupCurve::fit(samples);
  // Predictions within a few percent across the range.
  for (int p : {4, 16, 48}) {
    const double truth = 2.0 + 1200.0 / p + 0.5 * std::log2(p);
    EXPECT_NEAR(c.seconds_per_step(p), truth, 0.12 * truth);
  }
}

TEST(SpeedupCurve, InterpolatesUnsampledCounts) {
  const auto samples = sample_curve(1.0, 800.0, 0.3, {4, 16, 64});
  const SpeedupCurve c = SpeedupCurve::fit(samples);
  const double truth = 1.0 + 800.0 / 20 + 0.3 * std::log2(20.0);
  EXPECT_NEAR(c.seconds_per_step(20), truth, 1e-6);
}

TEST(SpeedupCurve, RequiresThreeDistinctCounts) {
  EXPECT_THROW(SpeedupCurve::fit({{4, 10.0}, {4, 11.0}, {8, 6.0}}),
               std::runtime_error);
  EXPECT_THROW(SpeedupCurve::fit({{4, -1.0}, {8, 6.0}, {16, 3.0}}),
               std::runtime_error);
}

TEST(SpeedupCurve, NegativeCoefficientsClamped) {
  // Pure 1/p data: serial and comm should come out ~0, never negative.
  std::vector<PerfSample> samples;
  for (int p : {2, 4, 8, 16, 32}) {
    samples.push_back(PerfSample{p, 100.0 / p});
  }
  const SpeedupCurve c = SpeedupCurve::fit(samples);
  EXPECT_GE(c.serial(), 0.0);
  EXPECT_GE(c.comm(), 0.0);
  EXPECT_NEAR(c.seconds_per_step(10), 10.0, 0.5);
}

TEST(SpeedupCurve, ProcessorsForTime) {
  const SpeedupCurve c(2.0, 1200.0, 0.5);
  // Walks up to the first count meeting the target.
  const int p = c.processors_for_time(100.0, 64);
  EXPECT_GT(p, 1);
  EXPECT_LE(c.seconds_per_step(p), 100.0);
  EXPECT_GT(c.seconds_per_step(p - 1), 100.0);
  // Unreachable target: the whole machine.
  EXPECT_EQ(c.processors_for_time(0.001, 64), 64);
  // Trivial target: one processor suffices.
  EXPECT_EQ(c.processors_for_time(1e9, 64), 1);
}

TEST(SpeedupCurve, ConstructorValidates) {
  EXPECT_THROW(SpeedupCurve(-1.0, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SpeedupCurve(0.0, 0.0, 0.0), std::invalid_argument);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double x =
      golden_section_minimize([](double v) { return (v - 3.2) * (v - 3.2); },
                              0.0, 10.0, 1e-10);
  EXPECT_NEAR(x, 3.2, 1e-7);
}

TEST(BisectRoot, FindsRoot) {
  const double x = bisect_root([](double v) { return v * v - 2.0; }, 0.0,
                               2.0, 1e-12);
  EXPECT_NEAR(x, std::sqrt(2.0), 1e-10);
}

TEST(BisectRoot, RejectsBadBracket) {
  EXPECT_THROW(bisect_root([](double v) { return v + 10.0; }, 0.0, 1.0),
               std::runtime_error);
}

// Property: fitted curve is monotone decreasing in p until the comm term
// takes over, and always positive.
class CurvePositivity : public testing::TestWithParam<int> {};

TEST_P(CurvePositivity, PredictionsArePositive) {
  Rng rng(77 + static_cast<std::uint64_t>(GetParam()));
  const double serial = rng.uniform(0.0, 5.0);
  const double work = rng.uniform(100.0, 5000.0);
  const double comm = rng.uniform(0.0, 2.0);
  const auto samples =
      sample_curve(serial, work, comm, {4, 8, 16, 32, 64, 128}, &rng, 0.02);
  const SpeedupCurve c = SpeedupCurve::fit(samples);
  for (int p = 1; p <= 256; p *= 2) {
    EXPECT_GT(c.seconds_per_step(p), 0.0) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCurves, CurvePositivity, testing::Range(0, 20));

}  // namespace
}  // namespace adaptviz
