// NCL format and frame catalog tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "dataio/frame.hpp"
#include "dataio/ncl.hpp"
#include "util/rng.hpp"

namespace adaptviz {
namespace {

NclFile sample_file() {
  NclFile f;
  const auto dx = f.add_dimension("x", 4);
  const auto dy = f.add_dimension("y", 3);
  NclVariable v;
  v.name = "pressure";
  v.dims = {dy, dx};
  v.data.resize(12);
  for (int i = 0; i < 12; ++i) v.data[static_cast<size_t>(i)] = i * 1.5;
  v.attributes["units"] = std::string("hPa");
  f.add_variable(std::move(v));
  f.set_attribute("sim_time", 1234.5);
  f.set_attribute("step", std::int64_t{42});
  f.set_attribute("model", std::string("adaptviz"));
  return f;
}

TEST(Ncl, RoundTripsThroughStream) {
  const NclFile f = sample_file();
  std::stringstream ss;
  f.encode(ss);
  const NclFile g = NclFile::decode(ss);
  ASSERT_EQ(g.dimensions().size(), 2u);
  EXPECT_EQ(g.dimension("x").size, 4u);
  EXPECT_EQ(g.dimension("y").size, 3u);
  const NclVariable& v = g.variable("pressure");
  EXPECT_EQ(v.data, f.variable("pressure").data);
  EXPECT_EQ(std::get<std::string>(v.attributes.at("units")), "hPa");
  EXPECT_DOUBLE_EQ(std::get<double>(g.attributes().at("sim_time")), 1234.5);
  EXPECT_EQ(std::get<std::int64_t>(g.attributes().at("step")), 42);
  EXPECT_EQ(std::get<std::string>(g.attributes().at("model")), "adaptviz");
}

TEST(Ncl, EncodedSizeMatchesActualBytes) {
  const NclFile f = sample_file();
  std::stringstream ss;
  f.encode(ss);
  EXPECT_EQ(f.encoded_size(), ss.str().size());
}

TEST(Ncl, SaveAndLoadFile) {
  const std::string path = testing::TempDir() + "/adaptviz_test.ncl";
  sample_file().save(path);
  const NclFile g = NclFile::load(path);
  EXPECT_TRUE(g.has_variable("pressure"));
  std::remove(path.c_str());
}

TEST(Ncl, RejectsBadMagic) {
  std::stringstream ss("XXXXgarbage");
  EXPECT_THROW(NclFile::decode(ss), std::runtime_error);
}

TEST(Ncl, RejectsTruncatedStream) {
  const NclFile f = sample_file();
  std::stringstream ss;
  f.encode(ss);
  const std::string full = ss.str();
  for (size_t cut : {5ul, 20ul, full.size() - 8}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(NclFile::decode(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Ncl, ValidatesVariableShape) {
  NclFile f;
  const auto d = f.add_dimension("x", 5);
  NclVariable v;
  v.name = "bad";
  v.dims = {d};
  v.data.resize(4);  // should be 5
  EXPECT_THROW(f.add_variable(std::move(v)), std::invalid_argument);
}

TEST(Ncl, RejectsDuplicates) {
  NclFile f;
  f.add_dimension("x", 2);
  EXPECT_THROW(f.add_dimension("x", 3), std::invalid_argument);
  NclVariable v;
  v.name = "v";
  v.data = {1.0};
  f.add_variable(v);
  EXPECT_THROW(f.add_variable(v), std::invalid_argument);
}

TEST(Ncl, LookupErrors) {
  const NclFile f = sample_file();
  EXPECT_THROW((void)f.variable("nope"), std::out_of_range);
  EXPECT_THROW((void)f.dimension("nope"), std::out_of_range);
  EXPECT_FALSE(f.has_variable("nope"));
}

TEST(Ncl, ScalarVariableAllowed) {
  NclFile f;
  NclVariable v;
  v.name = "scalar";
  v.data = {3.14};
  f.add_variable(std::move(v));
  std::stringstream ss;
  f.encode(ss);
  const NclFile g = NclFile::decode(ss);
  EXPECT_DOUBLE_EQ(g.variable("scalar").data[0], 3.14);
}

// Fuzz sweep: decode of corrupted/truncated streams must throw cleanly,
// never crash or hang — frames cross a WAN, corruption is a when not an if.
class NclFuzz : public testing::TestWithParam<int> {};

TEST_P(NclFuzz, CorruptedStreamsThrowCleanly) {
  Rng rng(4242 + static_cast<std::uint64_t>(GetParam()));
  std::stringstream ss;
  sample_file().encode(ss);
  std::string bytes = ss.str();

  // Random truncation.
  if (GetParam() % 2 == 0) {
    bytes = bytes.substr(0, rng.bounded(bytes.size()));
  }
  // Random byte flips (skip the magic so we exercise deep paths too).
  const int flips = 1 + static_cast<int>(rng.bounded(8));
  for (int f = 0; f < flips && !bytes.empty(); ++f) {
    const std::size_t pos = rng.bounded(bytes.size());
    bytes[pos] = static_cast<char>(rng.bounded(256));
  }

  std::stringstream corrupted(bytes);
  try {
    const NclFile decoded = NclFile::decode(corrupted);
    // Surviving decode is acceptable (the flip may have hit field data);
    // the result must still be internally consistent.
    for (const auto& v : decoded.variables()) {
      EXPECT_EQ(v.data.size(), v.element_count(decoded.dimensions()));
    }
  } catch (const std::runtime_error&) {
    // Clean rejection is the expected common case.
  } catch (const std::length_error&) {
    // A corrupted count can legitimately overflow a container request.
  } catch (const std::bad_alloc&) {
    // Likewise an absurd-but-not-capped allocation size.
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NclFuzz, testing::Range(0, 40));

// --- FrameCatalog ---

Frame make_frame(std::int64_t seq, double mb) {
  Frame f;
  f.sequence = seq;
  f.sim_time = SimSeconds(static_cast<double>(seq) * 60.0);
  f.size = Bytes::megabytes(mb);
  return f;
}

TEST(FrameCatalog, FifoOrder) {
  FrameCatalog c;
  c.push(make_frame(0, 10));
  c.push(make_frame(1, 20));
  c.push(make_frame(2, 30));
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.total_bytes(), Bytes::megabytes(60));
  EXPECT_EQ(c.oldest()->sequence, 0);
  EXPECT_EQ(c.pop_oldest().sequence, 0);
  EXPECT_EQ(c.pop_oldest().sequence, 1);
  EXPECT_EQ(c.total_bytes(), Bytes::megabytes(30));
}

TEST(FrameCatalog, RejectsOutOfOrderSequence) {
  FrameCatalog c;
  c.push(make_frame(5, 10));
  EXPECT_THROW(c.push(make_frame(5, 10)), std::invalid_argument);
  EXPECT_THROW(c.push(make_frame(3, 10)), std::invalid_argument);
  c.push(make_frame(6, 10));  // gaps are fine
}

TEST(FrameCatalog, EmptyBehaviour) {
  FrameCatalog c;
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.oldest().has_value());
  EXPECT_THROW(c.pop_oldest(), std::logic_error);
}

TEST(FrameCatalog, RejectsNegativeSize) {
  FrameCatalog c;
  Frame f = make_frame(0, 1);
  f.size = Bytes(-5);
  EXPECT_THROW(c.push(std::move(f)), std::invalid_argument);
}

TEST(FrameCatalog, RequeueFrontRestoresOrderAndAccounting) {
  // The failed-transfer path: the popped head goes back to the front with
  // its bytes re-counted, even after newer frames were appended.
  FrameCatalog c;
  c.push(make_frame(0, 10));
  c.push(make_frame(1, 20));
  Frame inflight = c.pop_oldest();
  c.push(make_frame(2, 30));  // written while #0 was in flight
  EXPECT_EQ(c.total_bytes(), Bytes::megabytes(50));
  c.requeue_front(std::move(inflight));
  EXPECT_EQ(c.count(), 3u);
  EXPECT_EQ(c.total_bytes(), Bytes::megabytes(60));
  EXPECT_EQ(c.pop_oldest().sequence, 0);
  EXPECT_EQ(c.pop_oldest().sequence, 1);
  EXPECT_EQ(c.pop_oldest().sequence, 2);
}

TEST(FrameCatalog, RequeueIntoEmptyCatalog) {
  FrameCatalog c;
  c.push(make_frame(4, 10));
  Frame f = c.pop_oldest();
  c.requeue_front(std::move(f));
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.oldest()->sequence, 4);
  EXPECT_EQ(c.total_bytes(), Bytes::megabytes(10));
}

TEST(FrameCatalog, RequeueMustPrecedeHead) {
  FrameCatalog c;
  c.push(make_frame(3, 10));
  EXPECT_THROW(c.requeue_front(make_frame(3, 10)), std::invalid_argument);
  EXPECT_THROW(c.requeue_front(make_frame(7, 10)), std::invalid_argument);
  Frame bad = make_frame(1, 1);
  bad.size = Bytes(-1);
  EXPECT_THROW(c.requeue_front(std::move(bad)), std::invalid_argument);
  c.requeue_front(make_frame(2, 5));
  EXPECT_EQ(c.oldest()->sequence, 2);
}

}  // namespace
}  // namespace adaptviz
