#include "vis/colormap.hpp"

#include <gtest/gtest.h>

namespace adaptviz {
namespace {

TEST(Colormap, EndpointsAreStops) {
  Colormap cm({{0, 0, 0}, {255, 255, 255}});
  EXPECT_EQ(cm.sample(0.0), (Rgb{0, 0, 0}));
  EXPECT_EQ(cm.sample(1.0), (Rgb{255, 255, 255}));
  EXPECT_EQ(cm.sample(0.5), (Rgb{128, 128, 128}));
}

TEST(Colormap, ClampsOutOfRange) {
  Colormap cm({{10, 0, 0}, {0, 0, 10}});
  EXPECT_EQ(cm.sample(-2.0), cm.sample(0.0));
  EXPECT_EQ(cm.sample(5.0), cm.sample(1.0));
}

TEST(Colormap, MapScalesRange) {
  Colormap cm({{0, 0, 0}, {100, 100, 100}});
  EXPECT_EQ(cm.map(950.0, 950.0, 1050.0), cm.sample(0.0));
  EXPECT_EQ(cm.map(1050.0, 950.0, 1050.0), cm.sample(1.0));
  EXPECT_EQ(cm.map(1000.0, 950.0, 1050.0), cm.sample(0.5));
  // Degenerate range maps to the middle rather than dividing by zero.
  EXPECT_EQ(cm.map(5.0, 5.0, 5.0), cm.sample(0.5));
}

TEST(Colormap, MultiStopInterpolation) {
  Colormap cm({{0, 0, 0}, {100, 0, 0}, {200, 0, 0}});
  EXPECT_EQ(cm.sample(0.25).r, 50);
  EXPECT_EQ(cm.sample(0.75).r, 150);
}

TEST(Colormap, NeedsTwoStops) {
  EXPECT_THROW(Colormap({{1, 2, 3}}), std::invalid_argument);
}

TEST(Colormap, BuiltinsAreDistinctAndOrdered) {
  const Colormap v = Colormap::viridis();
  const Colormap d = Colormap::diverging_blue_red();
  const Colormap t = Colormap::terrain();
  // Viridis runs dark-to-bright.
  const auto lum = [](Rgb c) { return c.r + c.g + c.b; };
  EXPECT_LT(lum(v.sample(0.0)), lum(v.sample(1.0)));
  // Diverging map is blue at 0, red at 1, near-white in the middle.
  EXPECT_GT(d.sample(0.0).b, d.sample(0.0).r);
  EXPECT_GT(d.sample(1.0).r, d.sample(1.0).b);
  EXPECT_GT(lum(d.sample(0.5)), lum(d.sample(0.0)));
  // Terrain begins as ocean blue.
  EXPECT_GT(t.sample(0.0).b, t.sample(0.0).g);
}

}  // namespace
}  // namespace adaptviz
