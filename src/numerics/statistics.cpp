#include "numerics/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double q) {
  if (v.empty()) throw std::invalid_argument("percentile: empty");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q");
  std::sort(v.begin(), v.end());
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double f = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - f) + v[hi] * f;
}

ExponentialMovingAverage::ExponentialMovingAverage(double alpha)
    : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EMA: alpha must be in (0, 1]");
  }
}

void ExponentialMovingAverage::add(double sample) {
  value_ = initialized_ ? alpha_ * sample + (1.0 - alpha_) * value_ : sample;
  initialized_ = true;
  ++count_;
}

double ExponentialMovingAverage::value() const {
  if (!initialized_) throw std::logic_error("EMA: no samples");
  return value_;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats: empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats: empty");
  return max_;
}

double RunningStats::stddev() const {
  if (n_ == 0) throw std::logic_error("RunningStats: empty");
  return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
}

}  // namespace adaptviz
