// Grid interpolation kernels used by the weather substrate: the WPS-like
// preprocessor interpolates the coarse synthetic analysis onto model grids,
// and the nest manager regrids between parent and nest resolutions.
#pragma once

#include <cstddef>
#include <vector>

namespace adaptviz {

/// Bilinear sample of a row-major (ny, nx) field at fractional index
/// coordinates (x in [0, nx-1], y in [0, ny-1]); coordinates are clamped to
/// the grid, so extrapolation is constant beyond the boundary.
double bilinear(const std::vector<double>& field, std::size_t nx,
                std::size_t ny, double x, double y);

/// Catmull-Rom bicubic sample with clamped boundary handling; smoother than
/// bilinear for parent->nest downscaling.
double bicubic(const std::vector<double>& field, std::size_t nx,
               std::size_t ny, double x, double y);

/// Resamples a (src_ny, src_nx) field to (dst_ny, dst_nx) bilinearly,
/// mapping corners onto corners.
std::vector<double> resample_bilinear(const std::vector<double>& src,
                                      std::size_t src_nx, std::size_t src_ny,
                                      std::size_t dst_nx, std::size_t dst_ny);

/// Area-mean restriction of a fine field onto a coarse one (fine->coarse
/// feedback in two-way nesting). `ratio` is the refinement ratio; fine grid
/// must be exactly (coarse_n? * ratio) cells in each direction.
std::vector<double> restrict_mean(const std::vector<double>& fine,
                                  std::size_t fine_nx, std::size_t fine_ny,
                                  int ratio);

}  // namespace adaptviz
