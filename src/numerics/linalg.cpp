#include "numerics/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace adaptviz {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("Matrix*: shape");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

std::vector<double> operator*(const Matrix& a, const std::vector<double>& x) {
  if (a.cols() != x.size()) throw std::invalid_argument("Matrix*vec: shape");
  std::vector<double> out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("Matrix+: shape");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j) + b(i, j);
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("Matrix-: shape");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j) - b(i, j);
  return out;
}

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("lu_solve: shape");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(piv, col))) piv = r;
    }
    if (std::fabs(a(piv, col)) < 1e-13) {
      throw std::runtime_error("lu_solve: singular matrix");
    }
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(piv, j), a(col, j));
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("least_squares: shape");
  if (m < n) throw std::runtime_error("least_squares: underdetermined");

  // Householder QR applied in place to [A | b].
  Matrix r = a;
  std::vector<double> rhs = b;
  for (std::size_t k = 0; k < n; ++k) {
    double nrm = 0.0;
    for (std::size_t i = k; i < m; ++i) nrm += r(i, k) * r(i, k);
    nrm = std::sqrt(nrm);
    if (nrm < 1e-13) {
      throw std::runtime_error("least_squares: rank-deficient design matrix");
    }
    if (r(k, k) > 0) nrm = -nrm;
    std::vector<double> v(m - k);
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    v[0] -= nrm;
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < 1e-26) continue;
    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double f = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double f = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= f * v[i - k];
  }
  // Solve R x = rhs (upper-triangular n x n block).
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = rhs[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    if (std::fabs(r(i, i)) < 1e-13) {
      throw std::runtime_error("least_squares: rank-deficient design matrix");
    }
    x[i] = s / r(i, i);
  }
  return x;
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace adaptviz
