// Curve fitting for the performance model (Section IV of the paper: "using
// performance modeling or curve fitting tools to interpolate for other
// number of processors").
//
// The execution time of one simulation step on p processors is modeled as
//
//     t(p) = a + w/p + c * log2(p)
//
// (serial fraction + perfectly parallel work + tree-communication cost).
// The basis is linear in the coefficients, so the fit is an ordinary linear
// least-squares problem over samples gathered from profiling runs.
#pragma once

#include <functional>
#include <vector>

namespace adaptviz {

/// One profiling observation: step time measured on a processor count.
struct PerfSample {
  int processors = 0;
  double seconds_per_step = 0.0;
};

/// Fitted t(p) curve.
class SpeedupCurve {
 public:
  SpeedupCurve() = default;
  SpeedupCurve(double serial, double work, double comm);

  /// Fits the three-term basis to >= 3 samples with distinct processor
  /// counts; throws std::runtime_error otherwise. Coefficients are clamped
  /// to be non-negative by refitting with offending terms removed, so the
  /// curve stays physically meaningful (time never negative).
  static SpeedupCurve fit(const std::vector<PerfSample>& samples);

  /// Predicted seconds per step on p processors (p >= 1).
  [[nodiscard]] double seconds_per_step(int processors) const;

  /// Smallest processor count in [1, max_processors] whose predicted step
  /// time is <= target; returns max_processors when even that is too slow.
  [[nodiscard]] int processors_for_time(double target_seconds,
                                        int max_processors) const;

  /// Root-mean-square residual of the fit over `samples`.
  [[nodiscard]] double rms_error(const std::vector<PerfSample>& samples) const;

  [[nodiscard]] double serial() const { return serial_; }
  [[nodiscard]] double work() const { return work_; }
  [[nodiscard]] double comm() const { return comm_; }

 private:
  double serial_ = 0.0;
  double work_ = 0.0;
  double comm_ = 0.0;
};

/// Generic golden-section minimizer on [lo, hi] for unimodal f.
double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double tol = 1e-8);

/// Bisection root find for monotone f with f(lo), f(hi) of opposite sign;
/// throws std::runtime_error if the bracket is invalid.
double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol = 1e-10);

}  // namespace adaptviz
