#include "numerics/interpolation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {
namespace {

double clampd(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

std::size_t clampi(long v, long lo, long hi) {
  return static_cast<std::size_t>(std::min(std::max(v, lo), hi));
}

double cubic_kernel(double p0, double p1, double p2, double p3, double t) {
  // Catmull-Rom spline through p1..p2.
  return p1 + 0.5 * t *
                  (p2 - p0 +
                   t * (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3 +
                        t * (3.0 * (p1 - p2) + p3 - p0)));
}

}  // namespace

double bilinear(const std::vector<double>& field, std::size_t nx,
                std::size_t ny, double x, double y) {
  if (field.size() != nx * ny || nx == 0 || ny == 0) {
    throw std::invalid_argument("bilinear: shape mismatch");
  }
  x = clampd(x, 0.0, static_cast<double>(nx - 1));
  y = clampd(y, 0.0, static_cast<double>(ny - 1));
  const std::size_t x0 = static_cast<std::size_t>(x);
  const std::size_t y0 = static_cast<std::size_t>(y);
  const std::size_t x1 = std::min(x0 + 1, nx - 1);
  const std::size_t y1 = std::min(y0 + 1, ny - 1);
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const double v00 = field[y0 * nx + x0];
  const double v01 = field[y0 * nx + x1];
  const double v10 = field[y1 * nx + x0];
  const double v11 = field[y1 * nx + x1];
  return v00 * (1 - fx) * (1 - fy) + v01 * fx * (1 - fy) +
         v10 * (1 - fx) * fy + v11 * fx * fy;
}

double bicubic(const std::vector<double>& field, std::size_t nx,
               std::size_t ny, double x, double y) {
  if (field.size() != nx * ny || nx == 0 || ny == 0) {
    throw std::invalid_argument("bicubic: shape mismatch");
  }
  x = clampd(x, 0.0, static_cast<double>(nx - 1));
  y = clampd(y, 0.0, static_cast<double>(ny - 1));
  const long ix = static_cast<long>(std::floor(x));
  const long iy = static_cast<long>(std::floor(y));
  const double fx = x - static_cast<double>(ix);
  const double fy = y - static_cast<double>(iy);
  double col[4];
  for (long m = -1; m <= 2; ++m) {
    const std::size_t yy = clampi(iy + m, 0, static_cast<long>(ny) - 1);
    double row[4];
    for (long k = -1; k <= 2; ++k) {
      const std::size_t xx = clampi(ix + k, 0, static_cast<long>(nx) - 1);
      row[k + 1] = field[yy * nx + xx];
    }
    col[m + 1] = cubic_kernel(row[0], row[1], row[2], row[3], fx);
  }
  return cubic_kernel(col[0], col[1], col[2], col[3], fy);
}

std::vector<double> resample_bilinear(const std::vector<double>& src,
                                      std::size_t src_nx, std::size_t src_ny,
                                      std::size_t dst_nx, std::size_t dst_ny) {
  if (dst_nx == 0 || dst_ny == 0) {
    throw std::invalid_argument("resample_bilinear: empty destination");
  }
  std::vector<double> out(dst_nx * dst_ny);
  const double sx =
      dst_nx > 1 ? static_cast<double>(src_nx - 1) / (dst_nx - 1) : 0.0;
  const double sy =
      dst_ny > 1 ? static_cast<double>(src_ny - 1) / (dst_ny - 1) : 0.0;
  for (std::size_t j = 0; j < dst_ny; ++j) {
    for (std::size_t i = 0; i < dst_nx; ++i) {
      out[j * dst_nx + i] = bilinear(src, src_nx, src_ny, i * sx, j * sy);
    }
  }
  return out;
}

std::vector<double> restrict_mean(const std::vector<double>& fine,
                                  std::size_t fine_nx, std::size_t fine_ny,
                                  int ratio) {
  if (ratio < 1 || fine_nx % ratio != 0 || fine_ny % ratio != 0 ||
      fine.size() != fine_nx * fine_ny) {
    throw std::invalid_argument("restrict_mean: shape mismatch");
  }
  const std::size_t cx = fine_nx / ratio;
  const std::size_t cy = fine_ny / ratio;
  std::vector<double> out(cx * cy, 0.0);
  const double inv = 1.0 / (static_cast<double>(ratio) * ratio);
  for (std::size_t j = 0; j < cy; ++j) {
    for (std::size_t i = 0; i < cx; ++i) {
      double s = 0.0;
      for (int jj = 0; jj < ratio; ++jj) {
        for (int ii = 0; ii < ratio; ++ii) {
          s += fine[(j * ratio + jj) * fine_nx + (i * ratio + ii)];
        }
      }
      out[j * cx + i] = s * inv;
    }
  }
  return out;
}

}  // namespace adaptviz
