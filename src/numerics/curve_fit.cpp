#include "numerics/curve_fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

#include "numerics/linalg.hpp"

namespace adaptviz {
namespace {

// Fits t = sum_i coeff[i] * basis[i](p) over the samples using the basis
// functions selected by `mask` (serial, 1/p, log2 p). Unselected
// coefficients are returned as zero.
std::array<double, 3> fit_masked(const std::vector<PerfSample>& samples,
                                 const std::array<bool, 3>& mask) {
  std::size_t terms = 0;
  for (bool m : mask) terms += m ? 1 : 0;
  Matrix a(samples.size(), terms);
  std::vector<double> b(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double p = static_cast<double>(samples[i].processors);
    std::size_t col = 0;
    if (mask[0]) a(i, col++) = 1.0;
    if (mask[1]) a(i, col++) = 1.0 / p;
    if (mask[2]) a(i, col++) = std::log2(std::max(p, 1.0));
    b[i] = samples[i].seconds_per_step;
  }
  const std::vector<double> x = least_squares(a, b);
  std::array<double, 3> out{0.0, 0.0, 0.0};
  std::size_t col = 0;
  for (int i = 0; i < 3; ++i) {
    if (mask[i]) out[i] = x[col++];
  }
  return out;
}

}  // namespace

SpeedupCurve::SpeedupCurve(double serial, double work, double comm)
    : serial_(serial), work_(work), comm_(comm) {
  if (serial < 0 || work <= 0 || comm < 0) {
    throw std::invalid_argument("SpeedupCurve: non-physical coefficients");
  }
}

SpeedupCurve SpeedupCurve::fit(const std::vector<PerfSample>& samples) {
  std::set<int> distinct;
  for (const auto& s : samples) {
    if (s.processors < 1 || s.seconds_per_step <= 0.0) {
      throw std::runtime_error("SpeedupCurve::fit: invalid sample");
    }
    distinct.insert(s.processors);
  }
  if (distinct.size() < 3) {
    throw std::runtime_error(
        "SpeedupCurve::fit: need samples at >=3 distinct processor counts");
  }

  // Try the full basis first; if a coefficient comes out negative, refit
  // without that term (NNLS would be overkill for a 3-term basis).
  std::array<bool, 3> mask{true, true, true};
  std::array<double, 3> c = fit_masked(samples, mask);
  for (int pass = 0; pass < 2; ++pass) {
    bool changed = false;
    for (int i = 0; i < 3; ++i) {
      if (i == 1) continue;  // keep the work term: it defines scaling
      if (mask[i] && c[i] < 0.0) {
        mask[i] = false;
        changed = true;
      }
    }
    if (!changed) break;
    c = fit_masked(samples, mask);
  }
  SpeedupCurve out;
  out.serial_ = std::max(0.0, c[0]);
  out.work_ = std::max(1e-12, c[1]);
  out.comm_ = std::max(0.0, c[2]);
  return out;
}

double SpeedupCurve::seconds_per_step(int processors) const {
  const double p = static_cast<double>(std::max(1, processors));
  return serial_ + work_ / p + comm_ * std::log2(p);
}

int SpeedupCurve::processors_for_time(double target_seconds,
                                      int max_processors) const {
  // t(p) is not necessarily monotone (log term eventually dominates), so
  // scan; processor counts are small integers throughout the framework.
  for (int p = 1; p <= max_processors; ++p) {
    if (seconds_per_step(p) <= target_seconds) return p;
  }
  return max_processors;
}

double SpeedupCurve::rms_error(const std::vector<PerfSample>& samples) const {
  if (samples.empty()) return 0.0;
  double ss = 0.0;
  for (const auto& s : samples) {
    const double e = seconds_per_step(s.processors) - s.seconds_per_step;
    ss += e * e;
  }
  return std::sqrt(ss / static_cast<double>(samples.size()));
}

double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi, double tol) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0) == (fhi > 0)) {
    throw std::runtime_error("bisect_root: endpoints do not bracket a root");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0) == (flo > 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace adaptviz
