// Descriptive statistics and online estimators.
//
// ExponentialMovingAverage backs the application manager's bandwidth
// estimate: the paper uses "the average observed bandwidth between the
// simulation and visualization sites"; an EMA smooths probe noise while
// tracking real drift.
#pragma once

#include <cstddef>
#include <vector>

namespace adaptviz {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);
/// Linear-interpolated percentile; q in [0, 100]. Throws on empty input.
double percentile(std::vector<double> v, double q);

/// First-order exponential smoother: y_n = alpha*x_n + (1-alpha)*y_{n-1}.
class ExponentialMovingAverage {
 public:
  /// alpha in (0, 1]; alpha=1 means "latest sample only".
  explicit ExponentialMovingAverage(double alpha);

  void add(double sample);
  [[nodiscard]] bool empty() const { return !initialized_; }
  /// Current estimate; throws std::logic_error before the first sample.
  [[nodiscard]] double value() const;
  [[nodiscard]] std::size_t count() const { return count_; }

  /// Full estimator state (alpha excluded: a construction constant).
  struct State {
    double value = 0.0;
    bool initialized = false;
    std::size_t count = 0;
  };
  [[nodiscard]] State snapshot() const {
    return State{value_, initialized_, count_};
  }
  void restore(const State& s) {
    value_ = s.value;
    initialized_ = s.initialized;
    count_ = s.count;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  std::size_t count_ = 0;
};

/// Streaming min/max/mean/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace adaptviz
