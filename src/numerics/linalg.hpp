// Small dense linear algebra: column-major matrix, LU solve, QR least
// squares. Sized for the framework's needs (performance-model fits and the
// LP simplex tableau are at most a few dozen rows), not for BLAS-scale work.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace adaptviz {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Row-major brace construction: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transpose() const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend std::vector<double> operator*(const Matrix& a,
                                       const std::vector<double>& x);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by LU with partial pivoting. A must be square and
/// nonsingular; throws std::runtime_error on (near-)singularity.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Minimizes ||A x - b||_2 via Householder QR. Requires rows >= cols and
/// full column rank; throws std::runtime_error otherwise.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

}  // namespace adaptviz
