// Observed sim->vis bandwidth estimate.
//
// The paper's application manager uses "the average observed bandwidth
// between the simulation and visualization sites". Timing a dedicated 1 GB
// probe is untenable on a 60 Kbps cross-continent path (it would take two
// days), so the estimator prefers passively observed frame-transfer
// throughput (every shipped frame is a measurement), exponentially averaged;
// a probe is only the fallback before any frame has moved.
#pragma once

#include <optional>

#include "numerics/statistics.hpp"
#include "util/units.hpp"

namespace adaptviz {

class BandwidthEstimator {
 public:
  /// `alpha` is the EMA weight of the newest observation.
  explicit BandwidthEstimator(double alpha = 0.3);

  /// Records a completed transfer of `size` that took `elapsed`. Samples
  /// with non-positive duration or size are silently ignored (they carry
  /// no bandwidth information). Failed transfer attempts must not be
  /// recorded at all — a stalled retry would otherwise poison the EMA.
  void record_transfer(Bytes size, WallSeconds elapsed);

  /// Records an explicit probe measurement.
  void record_probe(Bandwidth measured);

  /// Smoothed estimate; nullopt before any observation.
  [[nodiscard]] std::optional<Bandwidth> estimate() const;

  [[nodiscard]] std::size_t observation_count() const { return ema_.count(); }

  /// The AR(1)/EMA smoother position — all the estimator carries.
  using State = ExponentialMovingAverage::State;
  [[nodiscard]] State snapshot() const { return ema_.snapshot(); }
  void restore(const State& s) { ema_.restore(s); }

 private:
  ExponentialMovingAverage ema_;
};

}  // namespace adaptviz
