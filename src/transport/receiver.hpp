// Frame receiver daemon (visualization site).
//
// "The frame receiver daemon at the remote visualization site receives the
// frames and invokes the visualization process for visualization of the
// frames." The receiver decouples arrival from rendering with a queue: a
// slow render never blocks the link, and the visualization process consumes
// frames in arrival order.
//
// The paper's future work — "We intend to parallelize the visualization
// process as well" — is supported through `worker_count`: up to that many
// frames render concurrently (dispatch stays in arrival order; records are
// appended at dispatch, so the Fig 7 progress series remains ordered).
//
// The render slots are virtual-time constructs of the event queue, but the
// *real* work behind them (image rendering when frames carry payloads) is
// real compute. When a pool and a RenderFn are supplied, the slots map
// onto the persistent thread-pool runtime: every frame dispatched in one
// drain batch has its RenderFn run concurrently on the pool before the
// serial bookkeeping callback fires.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {

class FrameReceiver {
 public:
  /// Invoked once per frame when the visualization process is ready for it.
  /// Must return the wall-time cost of visualizing the frame. Always called
  /// serially, in arrival order, on the event-loop thread.
  using VisualizeFn = std::function<WallSeconds(const Frame&)>;

  /// Heavy per-frame work (image rendering). Must be thread-safe across
  /// distinct frames: concurrently-busy render slots run it in parallel on
  /// the pool.
  using RenderFn = std::function<void(const Frame&)>;

  /// `worker_count` parallel render slots (>= 1). When `pool` and `render`
  /// are given, the real work of concurrently-dispatched slots runs on the
  /// pool (render first, then the serial `visualize` bookkeeping).
  FrameReceiver(EventQueue& queue, VisualizeFn visualize,
                int worker_count = 1, ThreadPool* pool = nullptr,
                RenderFn render = nullptr);

  /// Entry point wired into the sender's delivery callback.
  void on_frame_arrival(const Frame& frame);

  [[nodiscard]] std::int64_t frames_received() const {
    return frames_received_;
  }
  [[nodiscard]] std::int64_t frames_visualized() const {
    return frames_visualized_;
  }
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }
  [[nodiscard]] int workers_busy() const { return rendering_; }
  [[nodiscard]] int worker_count() const { return worker_count_; }

  /// Arrival queue + busy render slots + counters. In-flight render
  /// completions are pending EventQueue events whose closures only touch
  /// these counters, so restoring queue + receiver together is exact.
  struct State {
    std::deque<Frame> pending;
    int rendering = 0;
    std::int64_t frames_received = 0;
    std::int64_t frames_visualized = 0;
  };
  [[nodiscard]] State snapshot() const {
    return State{pending_, rendering_, frames_received_, frames_visualized_};
  }
  void restore(const State& s) {
    pending_ = s.pending;
    rendering_ = s.rendering;
    frames_received_ = s.frames_received;
    frames_visualized_ = s.frames_visualized;
  }

 private:
  void drain();

  EventQueue& queue_;
  VisualizeFn visualize_;
  int worker_count_;
  ThreadPool* pool_;
  RenderFn render_;
  std::deque<Frame> pending_;
  int rendering_ = 0;  // busy workers
  std::int64_t frames_received_ = 0;
  std::int64_t frames_visualized_ = 0;
};

}  // namespace adaptviz
