// Frame sender daemon (simulation site).
//
// "The frame sender daemon continuously checks for the availability of
// climate data output frames and sends the available frames over the
// network to the remote visualization site." Transferred frames are removed
// from the simulation site's disk, freeing space (the paper's core
// assumption). One frame is in flight at a time (the WAN path is the
// bottleneck; pipelining frames would not add throughput on a single link).
//
// Reliability: a transfer attempt can abort mid-flight (NetworkLink's
// injectable failure model). The sender is a retry state machine — a failed
// frame goes back to the catalog head with its disk bytes intact
// (delete-after-transfer semantics: nothing is released until the frame has
// actually landed), the next attempt waits out an exponential backoff with
// jitter and a cap, and after `degrade_after` consecutive failures the
// sender latches a link_degraded flag the application manager and decision
// algorithms can observe (the transport analogue of the paper's CRITICAL
// disk flag). Every frame written is therefore delivered exactly once, in
// order, regardless of the failure rate.
#pragma once

#include <cstdint>
#include <functional>

#include "dataio/frame.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "transport/bandwidth_estimator.hpp"
#include "util/rng.hpp"

namespace adaptviz {

class FrameSender {
 public:
  /// Called at the receiver side when a frame's last byte arrives.
  using DeliveryFn = std::function<void(const Frame&)>;

  /// Backoff policy for failed transfer attempts.
  struct RetryPolicy {
    /// Delay before the first retry.
    WallSeconds initial_backoff{5.0};
    /// Growth factor per additional consecutive failure (>= 1).
    double multiplier = 2.0;
    /// Ceiling on the backoff delay.
    WallSeconds max_backoff{300.0};
    /// Uniform jitter fraction in [0, 1): each delay is scaled by a factor
    /// drawn from [1 - jitter, 1 + jitter] so synchronized retry storms
    /// decorrelate. Drawn from the sender's own seeded RNG.
    double jitter = 0.2;
    /// Consecutive failures before link_degraded() latches; any success
    /// clears the flag and resets the backoff ladder.
    int degrade_after = 5;
  };

  struct Options {
    WallSeconds poll_interval{10.0};
    RetryPolicy retry{};
    /// Seed for the backoff-jitter RNG.
    std::uint64_t seed = 0x5e7d;
  };

  FrameSender(EventQueue& queue, NetworkLink& link, FrameCatalog& catalog,
              DiskModel& disk, BandwidthEstimator& estimator,
              DeliveryFn deliver, Options options);

  /// Legacy convenience: default retry policy, custom poll interval.
  FrameSender(EventQueue& queue, NetworkLink& link, FrameCatalog& catalog,
              DiskModel& disk, BandwidthEstimator& estimator,
              DeliveryFn deliver,
              WallSeconds poll_interval = WallSeconds(10.0));

  /// Starts the daemon loop (idempotent).
  void start();
  /// Stops the daemon. An in-flight transfer is abandoned: when its
  /// completion event fires it neither delivers nor releases disk — the
  /// frame returns to the catalog head, ready for a restarted sender.
  void stop();
  /// Hint that a frame may be available (e.g. the simulation just wrote
  /// one); cheaper than waiting out the poll interval. Ignored while a
  /// retry backoff is pending — the backoff owns the next attempt.
  void kick();

  [[nodiscard]] std::int64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] bool transfer_in_flight() const { return in_flight_; }

  /// Aborted transfer attempts since construction.
  [[nodiscard]] std::int64_t transfer_failures() const { return failures_; }
  /// Re-attempts started after a backoff wait.
  [[nodiscard]] std::int64_t transfer_retries() const { return retries_; }
  /// Failures since the last successful transfer.
  [[nodiscard]] int consecutive_failures() const {
    return consecutive_failures_;
  }
  /// Latched after `degrade_after` consecutive failures; cleared by the
  /// next success. The escalation signal for the decision algorithms.
  [[nodiscard]] bool link_degraded() const { return degraded_; }
  /// Backoff delay of the pending retry (zero when none is pending).
  [[nodiscard]] WallSeconds current_backoff() const {
    return current_backoff_;
  }
  [[nodiscard]] bool retry_pending() const { return retry_pending_; }

  /// The whole retry state machine: phase flags, backoff ladder position,
  /// jitter RNG stream, and delivery counters. The in-flight transfer
  /// itself lives as a pending completion event in the EventQueue — its
  /// closure holds the frame by value, so restoring queue + sender state
  /// together resumes the transfer exactly.
  struct State {
    Rng jitter_rng;
    bool running = false;
    bool in_flight = false;
    bool poll_scheduled = false;
    bool retry_pending = false;
    bool degraded = false;
    int consecutive_failures = 0;
    WallSeconds current_backoff{0.0};
    std::int64_t frames_sent = 0;
    std::int64_t failures = 0;
    std::int64_t retries = 0;
    Bytes bytes_sent{};
  };
  [[nodiscard]] State snapshot() const;
  void restore(const State& s);

 private:
  void poll_event();
  void retry_event();
  void try_send();
  void begin_transfer();
  void on_transfer_failed(Frame frame);

  EventQueue& queue_;
  NetworkLink& link_;
  FrameCatalog& catalog_;
  DiskModel& disk_;
  BandwidthEstimator& estimator_;
  DeliveryFn deliver_;
  Options options_;
  Rng jitter_rng_;

  bool running_ = false;
  bool in_flight_ = false;
  bool poll_scheduled_ = false;
  bool retry_pending_ = false;
  bool degraded_ = false;
  int consecutive_failures_ = 0;
  WallSeconds current_backoff_{0.0};
  std::int64_t frames_sent_ = 0;
  std::int64_t failures_ = 0;
  std::int64_t retries_ = 0;
  Bytes bytes_sent_{};
};

}  // namespace adaptviz
