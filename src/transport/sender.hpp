// Frame sender daemon (simulation site).
//
// "The frame sender daemon continuously checks for the availability of
// climate data output frames and sends the available frames over the
// network to the remote visualization site." Transferred frames are removed
// from the simulation site's disk, freeing space (the paper's core
// assumption). One frame is in flight at a time (the WAN path is the
// bottleneck; pipelining frames would not add throughput on a single link).
#pragma once

#include <cstdint>
#include <functional>

#include "dataio/frame.hpp"
#include "resources/disk.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "transport/bandwidth_estimator.hpp"

namespace adaptviz {

class FrameSender {
 public:
  /// Called at the receiver side when a frame's last byte arrives.
  using DeliveryFn = std::function<void(const Frame&)>;

  FrameSender(EventQueue& queue, NetworkLink& link, FrameCatalog& catalog,
              DiskModel& disk, BandwidthEstimator& estimator,
              DeliveryFn deliver,
              WallSeconds poll_interval = WallSeconds(10.0));

  /// Starts the daemon loop (idempotent).
  void start();
  /// Stops polling; an in-flight transfer still completes.
  void stop();
  /// Hint that a frame may be available (e.g. the simulation just wrote
  /// one); cheaper than waiting out the poll interval.
  void kick();

  [[nodiscard]] std::int64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] bool transfer_in_flight() const { return in_flight_; }

 private:
  void poll_event();
  void try_send();
  void begin_transfer();

  EventQueue& queue_;
  NetworkLink& link_;
  FrameCatalog& catalog_;
  DiskModel& disk_;
  BandwidthEstimator& estimator_;
  DeliveryFn deliver_;
  WallSeconds poll_interval_;

  bool running_ = false;
  bool in_flight_ = false;
  bool poll_scheduled_ = false;
  std::int64_t frames_sent_ = 0;
  Bytes bytes_sent_{};
};

}  // namespace adaptviz
