#include "transport/sender.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace adaptviz {

FrameSender::FrameSender(EventQueue& queue, NetworkLink& link,
                         FrameCatalog& catalog, DiskModel& disk,
                         BandwidthEstimator& estimator, DeliveryFn deliver,
                         Options options)
    : queue_(queue),
      link_(link),
      catalog_(catalog),
      disk_(disk),
      estimator_(estimator),
      deliver_(std::move(deliver)),
      options_(options),
      jitter_rng_(options.seed) {
  if (!deliver_) throw std::invalid_argument("FrameSender: null delivery");
  if (options_.poll_interval.seconds() <= 0) {
    throw std::invalid_argument("FrameSender: poll interval must be > 0");
  }
  const RetryPolicy& r = options_.retry;
  if (r.initial_backoff.seconds() <= 0 || r.max_backoff < r.initial_backoff) {
    throw std::invalid_argument("FrameSender: bad backoff bounds");
  }
  if (r.multiplier < 1.0) {
    throw std::invalid_argument("FrameSender: backoff multiplier must be >= 1");
  }
  if (r.jitter < 0.0 || r.jitter >= 1.0) {
    throw std::invalid_argument("FrameSender: jitter must be in [0, 1)");
  }
  if (r.degrade_after < 1) {
    throw std::invalid_argument("FrameSender: degrade_after must be >= 1");
  }
}

FrameSender::FrameSender(EventQueue& queue, NetworkLink& link,
                         FrameCatalog& catalog, DiskModel& disk,
                         BandwidthEstimator& estimator, DeliveryFn deliver,
                         WallSeconds poll_interval)
    : FrameSender(queue, link, catalog, disk, estimator, std::move(deliver),
                  Options{.poll_interval = poll_interval}) {}

void FrameSender::start() {
  if (running_) return;
  running_ = true;
  try_send();
}

void FrameSender::stop() { running_ = false; }

void FrameSender::kick() { try_send(); }

void FrameSender::poll_event() {
  poll_scheduled_ = false;
  try_send();
}

void FrameSender::retry_event() {
  retry_pending_ = false;
  current_backoff_ = WallSeconds(0.0);
  if (!running_) return;
  ++retries_;
  obs::count("transport.retries");
  try_send();
}

void FrameSender::try_send() {
  // A pending retry owns the next attempt: kicks and polls must not sneak
  // a transfer in ahead of the backoff.
  if (!running_ || in_flight_ || retry_pending_) return;
  if (catalog_.empty()) {
    if (!poll_scheduled_) {
      poll_scheduled_ = true;
      queue_.schedule_after(
          options_.poll_interval, [this] { poll_event(); }, "sender.poll");
    }
    return;
  }
  begin_transfer();
}

void FrameSender::begin_transfer() {
  Frame frame = catalog_.pop_oldest();
  in_flight_ = true;
  const WallSeconds start = queue_.now();
  const NetworkLink::TransferAttempt attempt =
      link_.plan_transfer(frame.size, start);
  obs::count("transport.attempts");
  ADAPTVIZ_LOG_DEBUG("sender", "frame #%lld (%s) in flight, eta %.1fs%s",
                     static_cast<long long>(frame.sequence),
                     to_string(frame.size).c_str(),
                     attempt.duration.seconds(),
                     attempt.failed ? " [will abort]" : "");
  queue_.schedule_after(
      attempt.duration,
      [this, frame = std::move(frame), attempt, start] {
        in_flight_ = false;
        if (!running_) {
          // Stopped mid-flight: nothing was delivered and the bytes are
          // still on disk. Put the frame back so it is not silently lost —
          // a restarted sender ships it first.
          catalog_.requeue_front(frame);
          return;
        }
        if (attempt.failed) {
          on_transfer_failed(frame);
          return;
        }
        // Transferred data is removed from the simulation site (paper,
        // Section I), freeing disk for new frames. Only a *successful*
        // transfer releases disk or feeds the bandwidth estimate.
        disk_.release(frame.size);
        estimator_.record_transfer(frame.size, attempt.duration);
        consecutive_failures_ = 0;
        if (degraded_) obs::gauge_set("transport.link_degraded", 0.0);
        degraded_ = false;
        ++frames_sent_;
        bytes_sent_ += frame.size;
        obs::count("transport.frames_sent");
        obs::trace_sim("transport.transfer", start.seconds(),
                       attempt.duration.seconds(),
                       "seq=" + std::to_string(frame.sequence) +
                           " gb=" + std::to_string(frame.size.gb()));
        deliver_(frame);
        try_send();
      },
      "sender.complete");
}

void FrameSender::on_transfer_failed(Frame frame) {
  ++failures_;
  ++consecutive_failures_;
  obs::count("transport.failures");
  if (consecutive_failures_ >= options_.retry.degrade_after && !degraded_) {
    degraded_ = true;
    obs::gauge_set("transport.link_degraded", 1.0);
    ADAPTVIZ_LOG_INFO("sender",
                      "[%s] link degraded after %d consecutive failures",
                      hh_mm(queue_.now()).c_str(), consecutive_failures_);
  }
  const std::int64_t seq = frame.sequence;
  // The frame's bytes never left the simulation site: disk is NOT
  // released, and the frame returns to the catalog head to be re-sent
  // (the paper's delete-after-transfer semantics).
  catalog_.requeue_front(std::move(frame));
  const RetryPolicy& r = options_.retry;
  double delay = r.initial_backoff.seconds() *
                 std::pow(r.multiplier,
                          static_cast<double>(consecutive_failures_ - 1));
  delay = std::min(delay, r.max_backoff.seconds());
  if (r.jitter > 0.0) {
    delay *= jitter_rng_.uniform(1.0 - r.jitter, 1.0 + r.jitter);
  }
  current_backoff_ = WallSeconds(delay);
  retry_pending_ = true;
  obs::observe("transport.backoff_seconds", delay);
  ADAPTVIZ_LOG_DEBUG("sender",
                     "frame #%lld aborted (failure %d in a row), retry in "
                     "%.1fs%s",
                     static_cast<long long>(seq), consecutive_failures_,
                     delay, degraded_ ? " [LINK DEGRADED]" : "");
  queue_.schedule_after(
      current_backoff_, [this] { retry_event(); }, "sender.retry");
}

FrameSender::State FrameSender::snapshot() const {
  State s;
  s.jitter_rng = jitter_rng_;
  s.running = running_;
  s.in_flight = in_flight_;
  s.poll_scheduled = poll_scheduled_;
  s.retry_pending = retry_pending_;
  s.degraded = degraded_;
  s.consecutive_failures = consecutive_failures_;
  s.current_backoff = current_backoff_;
  s.frames_sent = frames_sent_;
  s.failures = failures_;
  s.retries = retries_;
  s.bytes_sent = bytes_sent_;
  return s;
}

void FrameSender::restore(const State& s) {
  jitter_rng_ = s.jitter_rng;
  running_ = s.running;
  in_flight_ = s.in_flight;
  poll_scheduled_ = s.poll_scheduled;
  retry_pending_ = s.retry_pending;
  degraded_ = s.degraded;
  consecutive_failures_ = s.consecutive_failures;
  current_backoff_ = s.current_backoff;
  frames_sent_ = s.frames_sent;
  failures_ = s.failures;
  retries_ = s.retries;
  bytes_sent_ = s.bytes_sent;
}

}  // namespace adaptviz
