#include "transport/sender.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace adaptviz {

FrameSender::FrameSender(EventQueue& queue, NetworkLink& link,
                         FrameCatalog& catalog, DiskModel& disk,
                         BandwidthEstimator& estimator, DeliveryFn deliver,
                         WallSeconds poll_interval)
    : queue_(queue),
      link_(link),
      catalog_(catalog),
      disk_(disk),
      estimator_(estimator),
      deliver_(std::move(deliver)),
      poll_interval_(poll_interval) {
  if (!deliver_) throw std::invalid_argument("FrameSender: null delivery");
  if (poll_interval_.seconds() <= 0) {
    throw std::invalid_argument("FrameSender: poll interval must be > 0");
  }
}

void FrameSender::start() {
  if (running_) return;
  running_ = true;
  try_send();
}

void FrameSender::stop() { running_ = false; }

void FrameSender::kick() { try_send(); }

void FrameSender::poll_event() {
  poll_scheduled_ = false;
  try_send();
}

void FrameSender::try_send() {
  if (!running_ || in_flight_) return;
  if (catalog_.empty()) {
    if (!poll_scheduled_) {
      poll_scheduled_ = true;
      queue_.schedule_after(
          poll_interval_, [this] { poll_event(); }, "sender.poll");
    }
    return;
  }
  begin_transfer();
}

void FrameSender::begin_transfer() {
  Frame frame = catalog_.pop_oldest();
  in_flight_ = true;
  const WallSeconds start = queue_.now();
  const WallSeconds duration = link_.transfer_duration(frame.size, start);
  ADAPTVIZ_LOG_DEBUG("sender", "frame #%lld (%s) in flight, eta %.1fs",
                     static_cast<long long>(frame.sequence),
                     to_string(frame.size).c_str(), duration.seconds());
  queue_.schedule_after(
      duration,
      [this, frame = std::move(frame), start, duration] {
        in_flight_ = false;
        // Transferred data is removed from the simulation site (paper,
        // Section I), freeing disk for new frames.
        disk_.release(frame.size);
        estimator_.record_transfer(frame.size, duration);
        ++frames_sent_;
        bytes_sent_ += frame.size;
        deliver_(frame);
        try_send();
      },
      "sender.complete");
}

}  // namespace adaptviz
