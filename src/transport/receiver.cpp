#include "transport/receiver.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace adaptviz {

FrameReceiver::FrameReceiver(EventQueue& queue, VisualizeFn visualize,
                             int worker_count, ThreadPool* pool,
                             RenderFn render)
    : queue_(queue),
      visualize_(std::move(visualize)),
      worker_count_(worker_count),
      pool_(pool),
      render_(std::move(render)) {
  if (!visualize_) throw std::invalid_argument("FrameReceiver: null callback");
  if (worker_count < 1) {
    throw std::invalid_argument("FrameReceiver: worker_count must be >= 1");
  }
}

void FrameReceiver::on_frame_arrival(const Frame& frame) {
  ++frames_received_;
  obs::count("receiver.frames_received");
  pending_.push_back(frame);
  obs::gauge_max("receiver.peak_backlog",
                 static_cast<double>(pending_.size()));
  drain();
}

void FrameReceiver::drain() {
  while (rendering_ < worker_count_ && !pending_.empty()) {
    // Claim every free render slot up front: these frames are "rendering
    // concurrently" in virtual time, so their real render work may run
    // concurrently on the pool too.
    std::vector<Frame> batch;
    while (static_cast<int>(batch.size()) < worker_count_ - rendering_ &&
           !pending_.empty()) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }

    if (render_) {
      if (pool_ != nullptr && batch.size() > 1) {
        pool_->parallel_for_chunked(
            0, batch.size(), static_cast<int>(batch.size()), /*chunk=*/1,
            [&](std::size_t lo, std::size_t hi) {
              for (std::size_t k = lo; k < hi; ++k) render_(batch[k]);
            });
      } else {
        for (const Frame& frame : batch) render_(frame);
      }
    }

    // Bookkeeping stays serial and in arrival order.
    for (Frame& frame : batch) {
      ++rendering_;
      const WallSeconds cost = visualize_(frame);
      obs::trace_sim("receiver.render_slot", queue_.now().seconds(),
                     cost.seconds(),
                     "seq=" + std::to_string(frame.sequence));
      queue_.schedule_after(
          cost,
          [this] {
            --rendering_;
            ++frames_visualized_;
            obs::count("receiver.frames_visualized");
            drain();
          },
          "receiver.render");
    }
  }
}

}  // namespace adaptviz
