#include "transport/receiver.hpp"

#include <stdexcept>

namespace adaptviz {

FrameReceiver::FrameReceiver(EventQueue& queue, VisualizeFn visualize,
                             int worker_count)
    : queue_(queue),
      visualize_(std::move(visualize)),
      worker_count_(worker_count) {
  if (!visualize_) throw std::invalid_argument("FrameReceiver: null callback");
  if (worker_count < 1) {
    throw std::invalid_argument("FrameReceiver: worker_count must be >= 1");
  }
}

void FrameReceiver::on_frame_arrival(const Frame& frame) {
  ++frames_received_;
  pending_.push_back(frame);
  drain();
}

void FrameReceiver::drain() {
  while (rendering_ < worker_count_ && !pending_.empty()) {
    ++rendering_;
    Frame frame = std::move(pending_.front());
    pending_.pop_front();
    const WallSeconds cost = visualize_(frame);
    queue_.schedule_after(
        cost,
        [this] {
          --rendering_;
          ++frames_visualized_;
          drain();
        },
        "receiver.render");
  }
}

}  // namespace adaptviz
