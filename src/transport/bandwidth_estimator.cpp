#include "transport/bandwidth_estimator.hpp"

#include <stdexcept>

namespace adaptviz {

BandwidthEstimator::BandwidthEstimator(double alpha) : ema_(alpha) {}

void BandwidthEstimator::record_transfer(Bytes size, WallSeconds elapsed) {
  if (elapsed.seconds() <= 0.0) {
    throw std::invalid_argument("BandwidthEstimator: non-positive duration");
  }
  ema_.add(size.as_double() / elapsed.seconds());
}

void BandwidthEstimator::record_probe(Bandwidth measured) {
  ema_.add(measured.bytes_per_sec());
}

std::optional<Bandwidth> BandwidthEstimator::estimate() const {
  if (ema_.empty()) return std::nullopt;
  return Bandwidth(ema_.value());
}

}  // namespace adaptviz
