#include "transport/bandwidth_estimator.hpp"

namespace adaptviz {

BandwidthEstimator::BandwidthEstimator(double alpha) : ema_(alpha) {}

void BandwidthEstimator::record_transfer(Bytes size, WallSeconds elapsed) {
  // A zero-byte frame, or a tiny payload over a zero-latency link, can
  // complete in non-positive virtual time. Such a sample carries no
  // bandwidth information — drop it rather than throwing from inside the
  // event-loop completion callback that reports every transfer.
  if (elapsed.seconds() <= 0.0 || size <= Bytes(0)) return;
  ema_.add(size.as_double() / elapsed.seconds());
}

void BandwidthEstimator::record_probe(Bandwidth measured) {
  ema_.add(measured.bytes_per_sec());
}

std::optional<Bandwidth> BandwidthEstimator::estimate() const {
  if (ema_.empty()) return std::nullopt;
  return Bandwidth(ema_.value());
}

}  // namespace adaptviz
