#include "runtime/run_context.hpp"

namespace adaptviz {

namespace {
// One slot per thread: concurrent experiments cannot observe each other's
// context, and readers pay a TLS load instead of an atomic on the hot path.
thread_local RunContext* t_current = nullptr;
}  // namespace

RunContext* current_run_context() noexcept { return t_current; }

ScopedRunContext::ScopedRunContext(RunContext* context) noexcept
    : previous_(t_current) {
  t_current = context;
}

ScopedRunContext::~ScopedRunContext() { t_current = previous_; }

}  // namespace adaptviz
