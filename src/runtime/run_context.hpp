// Per-experiment run context: the handle that replaced the last pieces of
// process-global mutable state (the obs install point, the log level).
//
// A RunContext bundles everything an experiment's deeply nested call sites
// need without threading a handle through every constructor: the
// observability bundle (or null), and the run's log level/sink overrides.
// It is installed *per thread* (a plain thread_local, no atomics), so N
// experiments running concurrently on N threads each see only their own
// context — metrics, traces and log lines from one run can never leak into
// another's.
//
// Propagation rules:
//  * AdaptiveFramework owns one context and installs it (ScopedRunContext)
//    on the constructing/running thread for the experiment's lifetime.
//  * ThreadPool forwards the submitting thread's context into every worker
//    lane of a fork-join region, and into submitted tasks, for exactly the
//    span of the borrowed work (util/thread_pool.hpp).
//  * Nothing else propagates: a fresh thread starts with no context and
//    every context-reading helper degenerates to its no-op/default path.
//
// This header sits below obs and util (it depends on neither), so both can
// read the context without a dependency cycle.
#pragma once

#include <string>

namespace adaptviz::obs {
class Observability;
}  // namespace adaptviz::obs

namespace adaptviz {

/// Log severity. Lives here (not util/logging.hpp) so the context can carry
/// a per-run level without depending on the util layer; logging.hpp
/// re-exports it and all call sites are unaffected.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Destination for formatted log lines. Implementations must be safe to
/// call from multiple threads (a run's daemons plus pool lanes).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, const char* component,
                     const char* message) = 0;
};

/// The per-run state bundle. Plain aggregate, non-owning: the installer
/// (AdaptiveFramework, a test, a deprecated ScopedObservability shim) keeps
/// the pointed-to objects alive for the installation's span.
struct RunContext {
  /// Metrics registry + stage tracer for this run, or null (instrumentation
  /// helpers no-op).
  obs::Observability* observability = nullptr;

  /// When set, overrides the process-wide minimum log level for this run.
  bool has_log_level = false;
  LogLevel log_level = LogLevel::kWarn;

  /// When non-null, the run's log lines go here instead of stderr —
  /// concurrent runs stop interleaving on one terminal.
  LogSink* log_sink = nullptr;

  /// The run's label (the experiment's config name). Stderr log lines
  /// carry it, so K concurrent campaign runs — or N dispatch worker
  /// processes sharing the coordinator's stderr — stay attributable.
  /// Empty keeps the historical line format byte for byte.
  std::string run_label;

  void set_log_level(LogLevel level) {
    log_level = level;
    has_log_level = true;
  }
};

/// This thread's installed context, or null when none is active.
RunContext* current_run_context() noexcept;

/// Installs `context` on this thread for the scope and restores the
/// previous one on destruction. Scopes nest; install and restore must
/// happen on the same thread. Installing null is a valid way to shadow an
/// outer context (the shadowed span sees "nothing installed").
class ScopedRunContext {
 public:
  explicit ScopedRunContext(RunContext* context) noexcept;
  ~ScopedRunContext();
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  RunContext* previous_;
};

}  // namespace adaptviz
