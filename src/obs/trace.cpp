#include "obs/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace adaptviz::obs {

const char* to_string(TraceClock c) {
  switch (c) {
    case TraceClock::kHost:
      return "host";
    case TraceClock::kSim:
      return "sim";
  }
  return "?";
}

StageTracer::StageTracer(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  if (capacity_ == 0) {
    throw std::invalid_argument("StageTracer: capacity must be > 0");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void StageTracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

void StageTracer::record(std::string_view stage, TraceClock clock,
                         double start_seconds, double duration_seconds,
                         std::string metadata) {
  record(TraceEvent{std::string(stage), clock, start_seconds,
                    duration_seconds, std::move(metadata)});
}

std::vector<TraceEvent> StageTracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest retained event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::int64_t StageTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::int64_t StageTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - static_cast<std::int64_t>(ring_.size());
}

double StageTracer::host_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

}  // namespace adaptviz::obs
