#include "obs/obs.hpp"

#include <atomic>

#include "runtime/run_context.hpp"

namespace adaptviz::obs {

namespace {
std::atomic<std::uint64_t> g_epoch{0};

// The shim inherits the surrounding context's logging fields so wrapping a
// region in ScopedObservability changes where metrics go, not where log
// lines go.
RunContext shim_context(Observability* obs) noexcept {
  RunContext context;
  if (const RunContext* outer = current_run_context()) context = *outer;
  context.observability = obs;
  return context;
}
}  // namespace

Observability::Observability(ObsOptions options)
    : epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1),
      tracer_(options.trace_capacity) {}

Observability* current() noexcept {
  const RunContext* context = current_run_context();
  return context != nullptr ? context->observability : nullptr;
}

ScopedObservability::ScopedObservability(Observability* obs) noexcept
    : context_(shim_context(obs)), scope_(&context_) {}

}  // namespace adaptviz::obs
