#include "obs/obs.hpp"

#include <atomic>

namespace adaptviz::obs {

namespace {
std::atomic<Observability*> g_current{nullptr};
std::atomic<std::uint64_t> g_epoch{0};
}  // namespace

Observability::Observability(ObsOptions options)
    : epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1),
      tracer_(options.trace_capacity) {}

Observability* current() noexcept {
  return g_current.load(std::memory_order_acquire);
}

ScopedObservability::ScopedObservability(Observability* obs) noexcept
    : previous_(g_current.exchange(obs, std::memory_order_acq_rel)) {}

ScopedObservability::~ScopedObservability() {
  g_current.store(previous_, std::memory_order_release);
}

}  // namespace adaptviz::obs
