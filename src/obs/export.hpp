// Exporters for the observability layer: one JSON document combining the
// metrics snapshot and the retained stage trace (the `--metrics-out`
// artifact), plus a flat CSV view of the trace for spreadsheet plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace adaptviz::obs {

/// Writes `{"metrics": {...}, "trace": [...]}`. Counters/gauges emit
/// name/value pairs; histograms emit bounds, bucket counts, count, sum,
/// min, max. Trace events carry their clock domain.
void write_json(std::ostream& out, const MetricsSnapshot& metrics,
                const std::vector<TraceEvent>& trace);

/// write_json to a file; throws std::runtime_error when unwritable.
void save_json(const std::string& path, const MetricsSnapshot& metrics,
               const std::vector<TraceEvent>& trace);

/// Trace as CSV: stage,clock,start_seconds,duration_seconds,metadata.
void write_trace_csv(std::ostream& out, const std::vector<TraceEvent>& trace);

}  // namespace adaptviz::obs
