// Central metrics registry: named counters, gauges and fixed-bucket
// histograms for every stage of the coupled simulation–transport–
// visualization pipeline.
//
// The paper's application manager *observes* the pipeline to adapt it;
// this registry is the reproduction's systematic observation substrate
// (SIM-SITU-style instrumentation of every stage). Design constraints:
//
//  * Updates are lock-free atomic read-modify-writes — safe from the
//    event-loop thread and from thread-pool workers simultaneously, and
//    cheap enough to live inside the compute hot paths (<2% wall-time
//    budget, asserted by bench_observability).
//  * Registration (name -> instrument) takes a mutex and returns a
//    reference with a stable address for the registry's lifetime, so hot
//    call sites can resolve a handle once and update it forever after.
//  * snapshot() is safe while writers are running: it reads every atomic
//    with relaxed ordering and never blocks an update.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace adaptviz::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written level (queue depth, backoff delay, resident bytes, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (peak tracking under concurrency).
  void set_max(double v) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per (-inf, bound] bucket plus one
/// overflow bucket, with sum/min/max for mean and range reporting.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> upper_bounds;
    std::vector<std::int64_t> counts;  // upper_bounds.size() + 1 (overflow)
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every instrument, name-sorted within each kind.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot snapshot;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by name; `fallback` when absent.
  [[nodiscard]] std::int64_t counter_or(std::string_view name,
                                        std::int64_t fallback = 0) const;
  /// Gauge value by name; `fallback` when absent.
  [[nodiscard]] double gauge_or(std::string_view name,
                                double fallback = 0.0) const;
  /// Histogram snapshot by name; nullptr when absent.
  [[nodiscard]] const Histogram::Snapshot* histogram(
      std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument by name, created on first use. References stay valid for
  /// the registry's lifetime; updates through them never take the
  /// registration mutex.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// A histogram keeps the bounds of its first registration; later calls
  /// with the same name ignore `upper_bounds`.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = duration_buckets());

  /// Default bucket grid for durations in seconds: decade-ish steps from
  /// 100 microseconds to 1000 s.
  static std::vector<double> duration_buckets();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Rewinds counters and gauges to a snapshot taken earlier on this
  /// registry: counters delta-add back to the recorded value (instrument
  /// addresses stay stable, so resolved handles keep working), gauges are
  /// set, and instruments created after the snapshot reset to zero.
  /// Histograms are NOT rewound — bucket counts cannot be subtracted
  /// without the individual observations. Callers that need exact
  /// per-branch accounting (the scenario explorer) diff snapshots instead.
  void restore_scalars(const MetricsSnapshot& s);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace adaptviz::obs
