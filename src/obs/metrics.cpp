#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace adaptviz::obs {

namespace {

// fetch_add on atomic<double> is C++20 but not universally lowered well;
// a CAS loop keeps the same relaxed semantics everywhere.
void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set_max(double v) noexcept { atomic_max(value_, v); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());  // == size: overflow
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  // First observation seeds min/max; both CAS loops are correct for any
  // interleaving once count_ is nonzero.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.upper_bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return s;
}

std::int64_t MetricsSnapshot::counter_or(std::string_view name,
                                         std::int64_t fallback) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

double MetricsSnapshot::gauge_or(std::string_view name,
                                 double fallback) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const Histogram::Snapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h.snapshot;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

std::vector<double> MetricsRegistry::duration_buckets() {
  return {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0};
}

void MetricsRegistry::restore_scalars(const MetricsSnapshot& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    const std::int64_t want = s.counter_or(name, 0);
    c->add(want - c->value());
  }
  for (const auto& [name, g] : gauges_) {
    g->set(s.gauge_or(name, 0.0));
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot()});
  }
  return s;
}

}  // namespace adaptviz::obs
