#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace adaptviz::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_number(std::ostream& out, double v) {
  // JSON has no inf/nan; clamp to null (never produced by our metrics,
  // but the exporter must not emit an invalid document).
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out << buf;
  } else {
    out << "null";
  }
}

}  // namespace

void write_json(std::ostream& out, const MetricsSnapshot& metrics,
                const std::vector<TraceEvent>& trace) {
  out << "{\n  \"metrics\": {\n    \"counters\": {";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      \""
        << json_escape(metrics.counters[i].name)
        << "\": " << metrics.counters[i].value;
  }
  out << "\n    },\n    \"gauges\": {";
  for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "      \""
        << json_escape(metrics.gauges[i].name) << "\": ";
    write_number(out, metrics.gauges[i].value);
  }
  out << "\n    },\n    \"histograms\": {";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    const auto& h = metrics.histograms[i].snapshot;
    out << (i == 0 ? "\n" : ",\n") << "      \""
        << json_escape(metrics.histograms[i].name) << "\": {\"count\": "
        << h.count << ", \"sum\": ";
    write_number(out, h.sum);
    out << ", \"min\": ";
    write_number(out, h.min);
    out << ", \"max\": ";
    write_number(out, h.max);
    out << ", \"bounds\": [";
    for (std::size_t k = 0; k < h.upper_bounds.size(); ++k) {
      if (k != 0) out << ", ";
      write_number(out, h.upper_bounds[k]);
    }
    out << "], \"buckets\": [";
    for (std::size_t k = 0; k < h.counts.size(); ++k) {
      if (k != 0) out << ", ";
      out << h.counts[k];
    }
    out << "]}";
  }
  out << "\n    }\n  },\n  \"trace\": [";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"stage\": \""
        << json_escape(e.stage) << "\", \"clock\": \"" << to_string(e.clock)
        << "\", \"start\": ";
    write_number(out, e.start_seconds);
    out << ", \"duration\": ";
    write_number(out, e.duration_seconds);
    out << ", \"meta\": \"" << json_escape(e.metadata) << "\"}";
  }
  out << "\n  ]\n}\n";
}

void save_json(const std::string& path, const MetricsSnapshot& metrics,
               const std::vector<TraceEvent>& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot write " + path);
  }
  write_json(out, metrics, trace);
}

void write_trace_csv(std::ostream& out,
                     const std::vector<TraceEvent>& trace) {
  out << "stage,clock,start_seconds,duration_seconds,metadata\n";
  for (const TraceEvent& e : trace) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g,%.9g", e.start_seconds,
                  e.duration_seconds);
    // Metadata is quoted; embedded quotes are doubled per RFC 4180.
    std::string meta = e.metadata;
    std::string quoted;
    quoted.reserve(meta.size() + 2);
    for (const char c : meta) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    out << e.stage << ',' << to_string(e.clock) << ',' << buf << ",\""
        << quoted << "\"\n";
  }
}

}  // namespace adaptviz::obs
