// Stage tracer: a bounded ring buffer of (stage, start, duration,
// metadata) events recorded by scoped span timers and by explicit
// event-loop call sites.
//
// Two clock domains coexist in this codebase and both are worth tracing:
//
//  * host — real steady-clock seconds since the tracer was built. Compute
//    stages (solver sweeps, render passes, pool regions) record host
//    time: that is the wall time the <2% overhead budget is measured in.
//  * sim  — the discrete-event queue's virtual seconds. Transport
//    attempts, render slots and manager decisions live on the event loop
//    and record the simulated timeline the paper's figures are drawn in.
//
// Every event carries its clock so exporters (and readers of the
// --metrics-out dump) never mix the two axes. The ring is bounded:
// recording never allocates beyond the fixed capacity and the oldest
// events are overwritten first, so tracing an arbitrarily long campaign
// costs constant memory.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace adaptviz::obs {

enum class TraceClock { kHost, kSim };

const char* to_string(TraceClock c);

struct TraceEvent {
  std::string stage;
  TraceClock clock = TraceClock::kHost;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Free-form key=value annotations ("seq=42 ok=1"); usually empty.
  std::string metadata;
};

class StageTracer {
 public:
  explicit StageTracer(std::size_t capacity = 16384);

  /// Thread-safe append; overwrites the oldest event once full.
  void record(TraceEvent event);
  void record(std::string_view stage, TraceClock clock, double start_seconds,
              double duration_seconds, std::string metadata = {});

  /// Retained events, oldest first. Safe while writers are running.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Events ever recorded (>= events().size()).
  [[nodiscard]] std::int64_t recorded() const;
  /// Events overwritten by the ring bound.
  [[nodiscard]] std::int64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Host-clock seconds since construction (the start stamp for
  /// TraceClock::kHost events).
  [[nodiscard]] double host_now() const;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;          // overwrite cursor once full
  std::int64_t recorded_ = 0;
};

}  // namespace adaptviz::obs
