// Observability bundle: one MetricsRegistry + one StageTracer, reachable
// from deeply nested hot paths (solver sweeps, render passes, pool
// regions) without threading a handle through every constructor.
//
// The bundle rides the per-run context (runtime/run_context.hpp):
// AdaptiveFramework owns the bundle for an experiment and installs it for
// the experiment's lifetime via its RunContext; the thread pool forwards
// the submitting thread's context into worker lanes, so N experiments
// running concurrently record into N disjoint bundles with zero
// cross-talk. Standalone component tests run with nothing installed and
// every helper below degenerates to a no-op. `current()` is one
// thread-local load on the fast path.
//
// Instrumentation NEVER touches simulation state, RNG streams or the
// event queue: results are bitwise identical with observability on, off,
// or absent (asserted by bench_observability).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/run_context.hpp"

namespace adaptviz::obs {

struct ObsOptions {
  /// Ring capacity of the stage tracer.
  std::size_t trace_capacity = 16384;
};

class Observability {
 public:
  explicit Observability(ObsOptions options = {});

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] StageTracer& tracer() { return tracer_; }
  [[nodiscard]] const StageTracer& tracer() const { return tracer_; }

  /// Process-unique, never-reused id for this bundle (>= 1). Lets hot
  /// call sites cache registry lookups without the risk of a new bundle
  /// reusing a freed bundle's address and validating a stale pointer.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  std::uint64_t epoch_;
  MetricsRegistry metrics_;
  StageTracer tracer_;
};

/// The bundle installed on this thread's run context, or nullptr when none
/// is active.
Observability* current() noexcept;

/// DEPRECATED shim, kept for existing examples and tests: installs a run
/// context carrying `obs` for this scope (inheriting the surrounding
/// context's logging fields) and restores the previous context on
/// destruction. Scopes nest per thread. New code should install a
/// RunContext directly (ScopedRunContext) or let AdaptiveFramework own the
/// bundle via ExperimentConfig::observability.
class ScopedObservability {
 public:
  explicit ScopedObservability(Observability* obs) noexcept;
  ~ScopedObservability() = default;
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  RunContext context_;
  ScopedRunContext scope_;
};

// ---- Call-site helpers (no-ops when nothing is installed) ----

inline void count(const char* name, std::int64_t n = 1) {
  if (Observability* o = current()) o->metrics().counter(name).add(n);
}

inline void gauge_set(const char* name, double value) {
  if (Observability* o = current()) o->metrics().gauge(name).set(value);
}

inline void gauge_max(const char* name, double value) {
  if (Observability* o = current()) o->metrics().gauge(name).set_max(value);
}

inline void observe(const char* name, double value) {
  if (Observability* o = current()) {
    o->metrics().histogram(name).observe(value);
  }
}

/// Records an event-loop stage in simulated time, and observes the
/// duration into the histogram of the same name.
inline void trace_sim(const char* stage, double start_seconds,
                      double duration_seconds, std::string metadata = {}) {
  if (Observability* o = current()) {
    o->metrics().histogram(stage).observe(duration_seconds);
    o->tracer().record(stage, TraceClock::kSim, start_seconds,
                       duration_seconds, std::move(metadata));
  }
}

// ---- Hot-path handles ----
//
// The registry hands out references that stay valid for the bundle's
// lifetime, so a call site firing tens of thousands of times per run can
// pay the name lookup (registry mutex + map walk) once per installed
// bundle instead of once per event. Declare as `static thread_local` at
// the call site and resolve() against the bundle captured for the event.
// The cache keys on the bundle epoch, never its address.

class HotCounter {
 public:
  explicit HotCounter(const char* name) noexcept : name_(name) {}
  Counter* resolve(Observability* o) {
    if (o == nullptr) return nullptr;
    if (epoch_ != o->epoch()) {
      slot_ = &o->metrics().counter(name_);
      epoch_ = o->epoch();
    }
    return slot_;
  }

 private:
  const char* name_;
  std::uint64_t epoch_ = 0;
  Counter* slot_ = nullptr;
};

class HotGauge {
 public:
  explicit HotGauge(const char* name) noexcept : name_(name) {}
  Gauge* resolve(Observability* o) {
    if (o == nullptr) return nullptr;
    if (epoch_ != o->epoch()) {
      slot_ = &o->metrics().gauge(name_);
      epoch_ = o->epoch();
    }
    return slot_;
  }

 private:
  const char* name_;
  std::uint64_t epoch_ = 0;
  Gauge* slot_ = nullptr;
};

class HotHistogram {
 public:
  explicit HotHistogram(const char* name) noexcept : name_(name) {}
  Histogram* resolve(Observability* o) {
    if (o == nullptr) return nullptr;
    if (epoch_ != o->epoch()) {
      slot_ = &o->metrics().histogram(name_);
      epoch_ = o->epoch();
    }
    return slot_;
  }

 private:
  const char* name_;
  std::uint64_t epoch_ = 0;
  Histogram* slot_ = nullptr;
};

/// RAII timer for sub-stages inside the solver/render inner loops:
/// histogram only, no trace event. These stages fire several times per
/// step — putting them on the ring would evict every narrative event
/// (transfers, decisions, render slots) and pay the tracer mutex at
/// tens of kilohertz for data the histogram already summarizes.
class ScopedTimer {
 public:
  explicit ScopedTimer(HotHistogram& slot) noexcept
      : obs_(current()),
        hist_(slot.resolve(obs_)),
        start_(obs_ != nullptr ? obs_->tracer().host_now() : 0.0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->observe(obs_->tracer().host_now() - start_);
  }

 private:
  Observability* obs_;
  Histogram* hist_;
  double start_;
};

/// RAII host-clock stage timer: records a trace event and feeds the
/// histogram of the same name on destruction. Captures current() once,
/// so an install/uninstall mid-span cannot tear the handle.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* stage) noexcept
      : obs_(current()),
        stage_(stage),
        start_(obs_ != nullptr ? obs_->tracer().host_now() : 0.0) {}

  /// Same, with the histogram lookup cached at the call site (for spans
  /// inside per-step code).
  ScopedSpan(const char* stage, HotHistogram& slot) noexcept
      : obs_(current()),
        stage_(stage),
        hist_(slot.resolve(obs_)),
        start_(obs_ != nullptr ? obs_->tracer().host_now() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_metadata(std::string m) { metadata_ = std::move(m); }

  ~ScopedSpan() {
    if (obs_ == nullptr) return;
    const double duration = obs_->tracer().host_now() - start_;
    if (hist_ != nullptr) {
      hist_->observe(duration);
    } else {
      obs_->metrics().histogram(stage_).observe(duration);
    }
    obs_->tracer().record(stage_, TraceClock::kHost, start_, duration,
                          std::move(metadata_));
  }

 private:
  Observability* obs_;
  const char* stage_;
  Histogram* hist_ = nullptr;
  double start_;
  std::string metadata_;
};

}  // namespace adaptviz::obs
