#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {
namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

// to_string(AlgorithmKind) throws on an out-of-range enum value; a label
// must never do that — an invalid cell has to survive expansion so the
// runner can record it as a failed row instead of aborting the whole
// campaign (rows == expand().size(), no silent drops).
std::string algorithm_label(AlgorithmKind k) {
  switch (k) {
    case AlgorithmKind::kGreedyThreshold:
    case AlgorithmKind::kOptimization:
    case AlgorithmKind::kStatic:
      return to_string(k);
  }
  return "algo" + std::to_string(static_cast<int>(k));
}

}  // namespace

std::vector<CampaignRun> CampaignSpec::expand() const {
  // Empty axes contribute the base value exactly once; the label only
  // names axes that were actually declared, so a one-axis campaign reads
  // naturally ("inter-department-optimization", not a wall of defaults).
  const std::vector<std::pair<std::string, SiteSpec>> site_axis =
      sites.empty() ? std::vector<std::pair<std::string, SiteSpec>>{{"", base.site}}
                    : sites;
  const std::vector<AlgorithmKind> algo_axis =
      algorithms.empty() ? std::vector<AlgorithmKind>{base.algorithm}
                         : algorithms;
  const std::vector<std::uint64_t> seed_axis =
      seeds.empty() ? std::vector<std::uint64_t>{base.seed} : seeds;
  const std::vector<Bytes> disk_axis =
      disk_caps.empty() ? std::vector<Bytes>{base.site.disk_capacity}
                        : disk_caps;
  const std::vector<double> rate_axis =
      failure_rates.empty()
          ? std::vector<double>{base.faults.transfer_failure_rate}
          : failure_rates;
  const std::vector<bool> codec_axis =
      codecs.empty() ? std::vector<bool>{base.codec.enabled} : codecs;
  const std::vector<WallSeconds> period_axis =
      decision_periods.empty() ? std::vector<WallSeconds>{base.decision_period}
                               : decision_periods;
  const std::vector<int> worker_axis =
      vis_workers.empty() ? std::vector<int>{base.vis_workers} : vis_workers;

  std::vector<CampaignRun> runs;
  runs.reserve(site_axis.size() * algo_axis.size() * seed_axis.size() *
               disk_axis.size() * rate_axis.size() * codec_axis.size() *
               period_axis.size() * worker_axis.size());
  std::set<std::string> labels;
  for (const auto& [site_name, site] : site_axis) {
    for (const AlgorithmKind algo : algo_axis) {
      for (const std::uint64_t seed : seed_axis) {
        for (const Bytes disk : disk_axis) {
          for (const double rate : rate_axis) {
            for (const bool codec : codec_axis) {
              for (const WallSeconds period : period_axis) {
                for (const int workers : worker_axis) {
                  CampaignRun run;
                  run.site = site_name;
                  run.config = base;
                  run.config.site = site;
                  run.config.algorithm = algo;
                  run.config.seed = seed;
                  run.config.site.disk_capacity = disk;
                  run.config.faults.transfer_failure_rate = rate;
                  run.config.codec.enabled = codec;
                  run.config.decision_period = period;
                  run.config.vis_workers = workers;

                  std::string label;
                  auto append = [&label](const std::string& part) {
                    if (!label.empty()) label += '-';
                    label += part;
                  };
                  if (!sites.empty()) append(site_name);
                  if (!algorithms.empty()) append(algorithm_label(algo));
                  if (!seeds.empty()) append("s" + std::to_string(seed));
                  if (!disk_caps.empty()) {
                    append("d" + format_double(disk.gb()));
                  }
                  if (!failure_rates.empty()) {
                    append("f" + format_double(rate));
                  }
                  if (!codecs.empty()) append(codec ? "codec" : "raw");
                  if (!decision_periods.empty()) {
                    append("p" + format_double(period.as_hours()));
                  }
                  if (!vis_workers.empty()) {
                    append("w" + std::to_string(workers));
                  }
                  if (label.empty()) label = base.name;
                  // Uniqueness backstop (e.g. a repeated seed in the axis
                  // list): suffix the grid index rather than silently
                  // overwriting CSVs.
                  if (!labels.insert(label).second) {
                    label += "-r" + std::to_string(runs.size());
                    labels.insert(label);
                  }
                  run.label = label;
                  run.config.name = label;
                  runs.push_back(std::move(run));
                }
              }
            }
          }
        }
      }
    }
  }
  return runs;
}

const std::vector<CampaignSummaryColumn>& campaign_summary_schema() {
  using R = CampaignRunRecord;
  using Cell = CsvTable::Cell;
  static const std::vector<CampaignSummaryColumn> schema = {
      {"label", "", [](const R& r) -> Cell { return r.label; }},
      {"site", "", [](const R& r) -> Cell { return r.site; }},
      {"algorithm", "",
       [](const R& r) -> Cell { return algorithm_label(r.algorithm); }},
      {"seed", "",
       [](const R& r) -> Cell { return static_cast<long>(r.seed); }},
      {"disk_gb", "GB", [](const R& r) -> Cell { return r.disk_gb; }},
      {"failure_rate", "", [](const R& r) -> Cell { return r.failure_rate; }},
      {"codec", "flag",
       [](const R& r) -> Cell { return static_cast<long>(r.codec_enabled); }},
      {"codec_mean_ratio", "x",
       [](const R& r) -> Cell { return r.summary.codec_mean_ratio; }},
      {"codec_saved_gb", "GB",
       [](const R& r) -> Cell { return r.summary.codec_bytes_saved.gb(); }},
      {"completed", "flag",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.completed);
       }},
      {"wall_hours", "h",
       [](const R& r) -> Cell { return r.summary.wall_elapsed.as_hours(); }},
      {"sim_finished_wall_hours", "h",
       [](const R& r) -> Cell {
         return r.summary.sim_finished_wall.as_hours();
       }},
      {"sim_reached_hours", "h",
       [](const R& r) -> Cell { return r.summary.sim_reached.as_hours(); }},
      {"peak_disk_gb", "GB",
       [](const R& r) -> Cell { return r.summary.peak_disk_used.gb(); }},
      {"min_free_disk_percent", "%",
       [](const R& r) -> Cell { return r.summary.min_free_disk_percent; }},
      {"stall_hours", "h",
       [](const R& r) -> Cell {
         return r.summary.total_stall_time.as_hours();
       }},
      {"frames_written", "frames",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.frames_written);
       }},
      {"frames_sent", "frames",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.frames_sent);
       }},
      {"frames_visualized", "frames",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.frames_visualized);
       }},
      {"transfer_failures", "",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.transfer_failures);
       }},
      {"transfer_retries", "",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.transfer_retries);
       }},
      {"restarts", "",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.restarts);
       }},
      {"decisions", "",
       [](const R& r) -> Cell {
         return static_cast<long>(r.summary.decision_count);
       }},
      {"failed", "flag",
       [](const R& r) -> Cell { return static_cast<long>(r.failed); }},
      {"error", "", [](const R& r) -> Cell { return r.error; }},
  };
  return schema;
}

std::vector<std::string> campaign_summary_columns() {
  std::vector<std::string> out;
  out.reserve(campaign_summary_schema().size());
  for (const CampaignSummaryColumn& c : campaign_summary_schema()) {
    out.emplace_back(c.name);
  }
  return out;
}

std::vector<CsvTable::Cell> campaign_summary_row(
    const CampaignRunRecord& record) {
  std::vector<CsvTable::Cell> row;
  row.reserve(campaign_summary_schema().size());
  for (const CampaignSummaryColumn& c : campaign_summary_schema()) {
    row.push_back(c.cell(record));
  }
  return row;
}

void write_campaign_summary(const std::vector<CampaignRunRecord>& records,
                            const std::string& dir) {
  std::filesystem::create_directories(dir);
  CsvTable table(campaign_summary_columns());
  for (const CampaignRunRecord& r : records) {
    table.add_row(campaign_summary_row(r));
  }
  table.save(dir + "/campaign_summary.csv");
}

CampaignRunRecord make_run_record(const CampaignRun& cell) {
  CampaignRunRecord rec;
  rec.label = cell.label;
  rec.site = cell.site.empty() ? cell.config.site.machine.name : cell.site;
  rec.algorithm = cell.config.algorithm;
  rec.seed = cell.config.seed;
  rec.disk_gb = cell.config.site.disk_capacity.gb();
  rec.failure_rate = cell.config.faults.transfer_failure_rate;
  rec.codec_enabled = cell.config.codec.enabled;
  return rec;
}

CampaignRunRecord execute_campaign_run(
    const CampaignRun& cell, LogLevel run_log_level,
    const std::function<void(const ExperimentResult&)>& on_result) {
  CampaignRunRecord rec = make_run_record(cell);
  try {
    ExperimentConfig cfg = cell.config;
    if (!cfg.log.has_level) cfg.log.set_level(run_log_level);
    const ExperimentResult result = run_experiment(cfg);
    rec.summary = result.summary;
    if (on_result) on_result(result);
    // The full result dies here: memory stays bounded by the number of
    // in-flight experiments no matter how large the grid is.
  } catch (const std::exception& e) {
    rec.failed = true;
    rec.error = e.what();
  } catch (...) {
    // Even a non-standard exception must not cost the campaign its row.
    rec.failed = true;
    rec.error = "non-standard exception";
  }
  return rec;
}

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

std::vector<CampaignRunRecord> CampaignRunner::run(
    const std::vector<CampaignRun>& runs, const ResultSink& sink) {
  const int k =
      std::min<int>(std::max(1, options_.concurrency),
                    std::max<std::size_t>(std::size_t{1}, runs.size()));
  std::vector<CampaignRunRecord> records(runs.size());
  if (options_.write_per_run_csvs || options_.write_summary_csv) {
    std::filesystem::create_directories(options_.output_dir);
  }

  // One lock serializes everything that leaves a run: CSV writes, the
  // result sink, progress callbacks. Runs themselves never take it.
  std::mutex emit_mutex;
  std::size_t finished = 0;

  if (options_.registration != nullptr) {
    CampaignView view;
    view.name = campaign_label_;
    view.total = runs.size();
    options_.registration->publish_campaign(view);
  }

  auto execute = [&](std::size_t i) {
    // The registration hook mutates this run's config copy only; the
    // caller's grid stays untouched.
    CampaignRun cell = runs[i];
    if (options_.registration != nullptr &&
        cell.config.steering.control_plane == nullptr) {
      // Every run of the sweep registers with the shared serve process:
      // one RegistrationServer fronts all K concurrent simulations.
      cell.config.steering.control_plane = options_.registration;
    }
    CampaignRunRecord rec = execute_campaign_run(
        cell, options_.run_log_level, [&](const ExperimentResult& result) {
          std::lock_guard<std::mutex> lock(emit_mutex);
          if (options_.write_per_run_csvs) {
            write_result(result, options_.output_dir);
          }
          if (sink) sink(i, cell, result);
        });
    std::lock_guard<std::mutex> lock(emit_mutex);
    records[i] = std::move(rec);
    ++finished;
    if (options_.registration != nullptr) {
      CampaignView view;
      view.name = campaign_label_;
      view.finished = finished;
      view.total = runs.size();
      view.last_label = records[i].label;
      view.last_failed = records[i].failed;
      options_.registration->publish_campaign(view);
    }
    if (options_.on_progress) {
      options_.on_progress(
          CampaignProgress{finished, runs.size(), &records[i]});
    }
  };

  if (k <= 1) {
    // Strictly sequential on the calling thread — the baseline the
    // bitwise-identity guarantee is stated against.
    for (std::size_t i = 0; i < runs.size(); ++i) execute(i);
  } else {
    // Whole experiments run as pool tasks; per-run contexts keep their
    // metrics, logs and results disjoint while they interleave.
    ThreadPool pool(k);
    std::vector<ThreadPool::TaskHandle> handles;
    handles.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      handles.push_back(pool.submit([&execute, i] { execute(i); }));
    }
    for (ThreadPool::TaskHandle& h : handles) h.wait();
  }

  if (options_.write_summary_csv) {
    write_campaign_summary(records, options_.output_dir);
  }
  return records;
}

std::vector<CampaignRunRecord> CampaignRunner::run(const CampaignSpec& spec,
                                                   const ResultSink& sink) {
  // An unset concurrency defers to the spec for THIS call only; a runner
  // reused across specs must not inherit the previous spec's K.
  const int saved = options_.concurrency;
  if (options_.concurrency <= 0) {
    options_.concurrency = std::max(1, spec.concurrency);
  }
  campaign_label_ = spec.name;
  std::vector<CampaignRunRecord> records = run(spec.expand(), sink);
  options_.concurrency = saved;
  return records;
}

// ---- [campaign] INI schema ----

namespace {

std::vector<std::string> parse_name_list(const std::string& spec) {
  std::vector<std::string> out;
  for (const std::string& part : split(spec, ',')) {
    const std::string name = trim(part);
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& key,
                                      const std::string& spec) {
  std::vector<double> out;
  for (const std::string& name : parse_name_list(spec)) {
    try {
      out.push_back(std::stod(name));
    } catch (const std::exception&) {
      throw std::runtime_error("campaign: malformed " + key + " entry '" +
                               name + "'");
    }
  }
  return out;
}

}  // namespace

bool is_campaign_ini(const IniDocument& doc) {
  return doc.has_section("campaign");
}

CampaignSpec campaign_from_ini(const IniDocument& doc) {
  if (!is_campaign_ini(doc)) {
    throw std::runtime_error("campaign: missing [campaign] section");
  }
  CampaignSpec spec;
  // Everything outside [campaign] is the base scenario, parsed unchanged.
  spec.base = scenario_from_ini(doc);
  spec.name = doc.get_or("campaign", "name", spec.base.name);

  if (auto v = doc.get("campaign", "sites")) {
    for (const std::string& name : parse_name_list(*v)) {
      // Note: a sites axis replaces the whole preset per cell; per-key
      // [site] overrides apply only to the base scenario's site.
      spec.sites.emplace_back(name, site_preset(name));
    }
  }
  if (auto v = doc.get("campaign", "algorithms")) {
    for (const std::string& name : parse_name_list(*v)) {
      spec.algorithms.push_back(algorithm_from_name(name));
    }
  }
  if (auto v = doc.get("campaign", "seeds")) {
    for (const double seed : parse_double_list("seeds", *v)) {
      if (seed < 0 || seed != static_cast<double>(
                                  static_cast<std::uint64_t>(seed))) {
        throw std::runtime_error(
            "campaign: seeds must be non-negative integers");
      }
      spec.seeds.push_back(static_cast<std::uint64_t>(seed));
    }
  }
  if (auto v = doc.get("campaign", "disk_gb")) {
    for (const double gb : parse_double_list("disk_gb", *v)) {
      if (gb <= 0) {
        throw std::runtime_error("campaign: disk_gb entries must be > 0");
      }
      spec.disk_caps.push_back(Bytes::gigabytes(gb));
    }
  }
  if (auto v = doc.get("campaign", "failure_rates")) {
    for (const double rate : parse_double_list("failure_rates", *v)) {
      if (rate < 0.0 || rate > 1.0) {
        throw std::runtime_error(
            "campaign: failure_rates entries must be in [0, 1]");
      }
      spec.failure_rates.push_back(rate);
    }
  }
  if (auto v = doc.get("campaign", "codec")) {
    for (const std::string& name : parse_name_list(*v)) {
      if (name == "on" || name == "true" || name == "1") {
        spec.codecs.push_back(true);
      } else if (name == "off" || name == "false" || name == "0") {
        spec.codecs.push_back(false);
      } else {
        throw std::runtime_error("campaign: codec entries must be on/off, "
                                 "got '" + name + "'");
      }
    }
  }
  if (auto v = doc.get("campaign", "decision_period_hours")) {
    for (const double h :
         parse_double_list("decision_period_hours", *v)) {
      if (h <= 0) {
        throw std::runtime_error(
            "campaign: decision_period_hours entries must be > 0");
      }
      spec.decision_periods.push_back(WallSeconds::hours(h));
    }
  }
  if (auto v = doc.get("campaign", "vis_workers")) {
    for (const double w : parse_double_list("vis_workers", *v)) {
      if (w < 1 || w != static_cast<double>(static_cast<int>(w))) {
        throw std::runtime_error(
            "campaign: vis_workers entries must be positive integers");
      }
      spec.vis_workers.push_back(static_cast<int>(w));
    }
  }
  if (auto v = doc.get_int("campaign", "concurrency")) {
    if (*v < 1) {
      throw std::runtime_error("campaign: concurrency must be >= 1");
    }
    spec.concurrency = static_cast<int>(*v);
  }
  if (auto v = doc.get_int("campaign", "workers")) {
    if (*v < 0) {
      throw std::runtime_error("campaign: workers must be >= 0");
    }
    spec.workers = static_cast<int>(*v);
  }
  return spec;
}

CampaignSpec load_campaign(const std::string& path) {
  return campaign_from_ini(IniDocument::load(path));
}

}  // namespace adaptviz
