// Distributed campaign dispatch: coordinator / worker-process split.
//
// The paper's evaluation grid was executed by hand; the CampaignRunner
// made it one process; this layer shards it across N worker *processes* —
// the coordinator/worker topology production multi-site simulators use —
// while keeping the one invariant that makes the whole exercise
// trustworthy: the merged campaign_summary.csv is byte-identical to the
// single-process runner's output, crash or no crash, resume or no resume.
//
// Topology and protocol (line-delimited, over pipes):
//
//   coordinator                       worker (adaptviz_sweep --worker)
//   -----------                       --------------------------------
//                                <--  HELLO v1 grid=<N>      (expanded
//                                     the same campaign INI; N guards
//                                     against grid drift)
//   TASK <index>                 -->
//                                <--  ROW <manifest entry>   (exact
//                                     round-trip codec, manifest.hpp)
//   TASK <index> ...             -->
//   EXIT                         -->  (worker exits 0)
//
// Workers inherit the coordinator's stderr — per-run log lines carry the
// run label (runtime/run_context.hpp), so N interleaved workers stay
// attributable. Workers write per-run CSVs themselves (shared
// filesystem), into a temp dir renamed into place file by file, so a
// worker killed mid-write can never leave a truncated CSV under a real
// result name.
//
// Crash tolerance: a worker that dies (or emits a protocol error) has its
// in-flight task re-queued behind an exponential backoff with jitter —
// the PR-3 FrameSender::RetryPolicy ladder, reused verbatim — and a
// replacement worker is spawned from a bounded budget. A task that keeps
// killing workers becomes a terminal failed row after
// `max_task_attempts`, so the summary always has exactly grid-size rows.
// Row accounting is exactly-once: a duplicate ROW for an index that
// already completed (straggler re-dispatch, or a re-run racing a slow
// original) is counted and dropped, never merged twice.
//
// Resume: every completed row is upserted into
// <output_dir>/campaign_manifest.json (atomic temp+rename). A restarted
// coordinator re-loads it and skips runs whose entry matches the current
// campaign (name, grid size, label) AND whose stamped output files are
// intact (exact size + trailing newline); failed rows and torn outputs
// re-execute.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/manifest.hpp"
#include "obs/metrics.hpp"
#include "transport/sender.hpp"

namespace adaptviz {

struct DispatchOptions {
  /// Worker processes to run. <= 0 falls back to the campaign's
  /// `[campaign] workers` value, then to 1.
  int workers = 0;
  /// Directory receiving per-run CSVs, campaign_summary.csv,
  /// campaign_manifest.json and dispatch_metrics.json.
  std::string output_dir = "results";
  bool write_per_run_csvs = true;
  bool write_summary_csv = true;
  /// Load campaign_manifest.json and skip intact completed runs.
  bool resume = true;
  /// Write <output_dir>/dispatch_metrics.json at campaign end.
  bool write_metrics_json = true;
  /// Spawn workers with --verbose (per-run log level kWarn instead of
  /// kError), mirroring the in-process runner's --verbose behaviour.
  bool verbose_workers = false;

  /// Re-dispatch attempts per task before it becomes a terminal failed
  /// row ("worker crashed ...").
  int max_task_attempts = 3;
  /// Replacement workers the coordinator may spawn after crashes, total.
  int worker_respawn_budget = 8;
  /// Backoff ladder for re-dispatching a crashed worker's task: the
  /// transport retry policy (initial * multiplier^n, capped, jittered).
  FrameSender::RetryPolicy retry{WallSeconds(0.5), 2.0, WallSeconds(30.0),
                                 0.2, 5};
  /// Seed for the backoff-jitter RNG.
  std::uint64_t seed = 0xd15a;

  /// When > 0: a task in flight longer than this is also dispatched to an
  /// idle worker (straggler mitigation); first ROW wins, the duplicate is
  /// dropped by the exactly-once accounting.
  double straggler_timeout_s = 0.0;

  /// Test hook: the Nth initially-spawned worker (0-based) is started
  /// with --crash-next-task and exits hard on its first TASK.
  /// Replacements never inherit the flag. -1 disables.
  int crash_inject_worker = -1;

  /// Invoked after each run completes (resumed runs excluded), in
  /// completion order, on the coordinator thread.
  std::function<void(const CampaignProgress&)> on_progress;
};

struct DispatchResult {
  /// One record per expanded grid cell, grid order — same shape the
  /// in-process CampaignRunner returns.
  std::vector<CampaignRunRecord> records;
  /// Runs skipped because the manifest showed them complete and intact.
  std::size_t resumed = 0;
  /// Tasks actually executed (or terminally failed) this invocation.
  std::size_t executed = 0;
  /// dispatch.* counters and the task-latency histogram.
  obs::MetricsSnapshot metrics;
};

class CampaignDispatcher {
 public:
  /// `worker_command` is the argv prefix for spawning one worker, e.g.
  /// {"/path/to/adaptviz_sweep"}; the dispatcher appends the --worker
  /// protocol arguments itself.
  CampaignDispatcher(std::vector<std::string> worker_command,
                     DispatchOptions options = {});

  /// Coordinates the full campaign in `campaign_path` across worker
  /// processes. Throws std::runtime_error on coordinator-level failures
  /// (no worker could be spawned, a worker expanded a different grid);
  /// per-run failures land in the records, never throw.
  DispatchResult run(const std::string& campaign_path);

 private:
  std::vector<std::string> worker_command_;
  DispatchOptions options_;
};

struct WorkerOptions {
  std::string campaign_path;
  std::string output_dir = "results";
  bool write_per_run_csvs = true;
  LogLevel run_log_level = LogLevel::kError;
  /// Test hook (see DispatchOptions::crash_inject_worker).
  bool crash_next_task = false;
};

/// The worker side of the protocol: expands the campaign, says HELLO,
/// executes TASK lines from `in` and answers ROW lines on `out` until
/// EXIT/EOF. Returns a process exit code (0 on a clean EXIT). Wired to
/// stdin/stdout by `adaptviz_sweep --worker`.
int run_dispatch_worker(const WorkerOptions& options, std::istream& in,
                        std::ostream& out);

}  // namespace adaptviz
