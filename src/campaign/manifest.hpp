// Campaign manifest + run-record wire codec.
//
// Two consumers share one serialization of a CampaignRunRecord:
//
//  * The dispatch protocol (campaign/dispatch.hpp): a worker process
//    reports each finished run as a single `ROW <entry>` line over its
//    stdout pipe.
//  * The resume manifest (`<output_dir>/campaign_manifest.json`): the
//    coordinator records every completed run so a restarted campaign
//    skips work that already finished.
//
// The encoding must round-trip *exactly* — the coordinator's merged
// campaign_summary.csv is asserted bitwise-identical to the in-process
// CampaignRunner's, so every double travels as a hexfloat (`%a`), every
// integer as decimal, and every string percent-encoded (no spaces,
// newlines or quotes survive into the line/JSON layer).
//
// Partial-output handling: a manifest entry carries a byte-size stamp for
// every per-run CSV the worker wrote. On resume each stamped file must
// exist with exactly the recorded size and end in a newline — a header-only
// or mid-row-truncated CSV left behind by a crash fails the check and the
// run re-executes instead of being skipped.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace adaptviz {

/// Size stamp of one per-run output file, relative to the output dir.
struct FileStamp {
  std::string path;
  std::int64_t bytes = 0;
};

/// One completed (or terminally failed) run, as reported by a worker and
/// as persisted in the manifest.
struct ManifestEntry {
  std::size_t index = 0;  // position in the expanded grid
  CampaignRunRecord record;
  std::vector<FileStamp> files;  // empty for failed runs
};

// ---- Record / entry wire codec ----

/// One-line key=value encoding of a record; exact round-trip (hexfloat
/// doubles, percent-encoded strings). Never contains '\n'.
std::string encode_run_record(const CampaignRunRecord& record);

/// Inverse of encode_run_record. Unknown keys are rejected; throws
/// std::runtime_error naming the malformed token.
CampaignRunRecord decode_run_record(const std::string& line);

/// One-line encoding of a full entry: `index=N files=<stamps> <record>`.
std::string encode_manifest_entry(const ManifestEntry& entry);
ManifestEntry decode_manifest_entry(const std::string& line);

// ---- The manifest document ----

class CampaignManifest {
 public:
  static constexpr int kVersion = 1;
  /// File name inside the campaign output directory.
  static const char* filename();

  std::string campaign;   // CampaignSpec::name — guards against reuse of an
                          // output dir by a different campaign
  std::size_t grid = 0;   // expand().size() — guards against axis edits
  std::map<std::size_t, ManifestEntry> entries;

  /// Adds or replaces the entry for its index.
  void upsert(ManifestEntry entry);

  /// Serializes to JSON (schema above each field in manifest.cpp).
  [[nodiscard]] std::string to_json() const;
  /// Writes atomically (temp file + rename): a coordinator crash mid-write
  /// never leaves a torn manifest, only the previous complete one.
  void save(const std::string& path) const;

  /// Parses a manifest document; throws std::runtime_error on malformed
  /// input or a version mismatch.
  static CampaignManifest from_json(const std::string& text);
  /// Loads from disk; std::nullopt when the file is absent or unparseable
  /// (an unreadable manifest means "no resume", never a crash).
  static std::optional<CampaignManifest> load(const std::string& path);
};

/// Stamps the per-run result CSVs write_result() produced for `label`
/// under `dir` (the files that exist, with their current sizes).
std::vector<FileStamp> stamp_result_files(const std::string& label,
                                          const std::string& dir);

/// True when every stamped file still exists under `dir` with exactly the
/// recorded size and a trailing newline. False on any mismatch — the
/// resume path treats the run as incomplete and re-executes it.
bool entry_output_intact(const ManifestEntry& entry, const std::string& dir);

}  // namespace adaptviz
