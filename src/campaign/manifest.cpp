#include "campaign/manifest.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace adaptviz {
namespace {

// ---- token-level encoding ----
//
// Strings travel percent-encoded so a value can never contain the
// separators of any enclosing layer (spaces for the kv line, quotes and
// backslashes for JSON, newlines for the pipe protocol).

bool plain_char(unsigned char c) {
  return std::isalnum(c) != 0 || c == '.' || c == '_' || c == '~' ||
         c == ':' || c == '/' || c == '-';
}

std::string percent_encode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (plain_char(c)) {
      out += static_cast<char>(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      throw std::runtime_error("manifest: truncated percent escape in '" + s +
                               "'");
    }
    const int hi = hex_nibble(s[i + 1]);
    const int lo = hex_nibble(s[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::runtime_error("manifest: malformed percent escape in '" + s +
                               "'");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

// Hexfloat: the only printf/scanf round trip that is exact for every
// finite double — the merged summary must reproduce the in-process CSV
// byte for byte, so "close" is not good enough.
std::string encode_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double decode_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    throw std::runtime_error("manifest: malformed double '" + s + "'");
  }
  return v;
}

std::int64_t decode_int(const std::string& s) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == s.c_str()) {
    throw std::runtime_error("manifest: malformed integer '" + s + "'");
  }
  return v;
}

std::vector<std::pair<std::string, std::string>> split_kv(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    if (end > pos) {
      const std::string token = line.substr(pos, end - pos);
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::runtime_error("manifest: malformed token '" + token + "'");
      }
      out.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
    pos = end + 1;
  }
  return out;
}

}  // namespace

// ---- record codec ----

std::string encode_run_record(const CampaignRunRecord& record) {
  const ExperimentSummary& s = record.summary;
  std::string out;
  const auto str = [&out](const char* k, const std::string& v) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += percent_encode(v);
  };
  const auto num = [&out](const char* k, std::int64_t v) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += std::to_string(v);
  };
  const auto dbl = [&out](const char* k, double v) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += encode_double(v);
  };

  str("label", record.label);
  str("site", record.site);
  num("algorithm", static_cast<std::int64_t>(record.algorithm));
  num("seed", static_cast<std::int64_t>(record.seed));
  dbl("disk_gb", record.disk_gb);
  dbl("failure_rate", record.failure_rate);
  num("codec", record.codec_enabled ? 1 : 0);
  num("failed", record.failed ? 1 : 0);
  str("error", record.error);

  num("completed", s.completed ? 1 : 0);
  dbl("wall_elapsed_s", s.wall_elapsed.seconds());
  dbl("sim_finished_wall_s", s.sim_finished_wall.seconds());
  dbl("sim_reached_s", s.sim_reached.seconds());
  num("peak_disk_bytes", s.peak_disk_used.count());
  dbl("min_free_disk_percent", s.min_free_disk_percent);
  dbl("stall_s", s.total_stall_time.seconds());
  num("frames_written", s.frames_written);
  num("frames_sent", s.frames_sent);
  num("frames_visualized", s.frames_visualized);
  num("transfer_failures", s.transfer_failures);
  num("transfer_retries", s.transfer_retries);
  num("restarts", s.restarts);
  num("decisions", s.decision_count);
  num("viewers", s.viewers);
  num("frames_served", s.frames_served);
  num("cache_hits", s.cache_hits);
  num("cache_misses", s.cache_misses);
  num("cache_evictions", s.cache_evictions);
  num("rerenders", s.rerenders);
  num("peak_cache_bytes", s.peak_cache_bytes.count());
  dbl("codec_mean_ratio", s.codec_mean_ratio);
  num("codec_saved_bytes", s.codec_bytes_saved.count());
  num("tree_tiers", s.tree_tiers);
  num("tree_leaves", s.tree_leaves);
  num("tree_viewers", s.tree_viewers);
  num("tree_frames_delivered", s.tree_frames_delivered);
  num("tree_origin_wan_bytes", s.tree_origin_wan_bytes.count());
  num("tree_fill_retries", s.tree_fill_retries);
  num("tree_degraded_events", s.tree_degraded_events);
  return out;
}

CampaignRunRecord decode_run_record(const std::string& line) {
  CampaignRunRecord r;
  ExperimentSummary& s = r.summary;
  for (const auto& [key, value] : split_kv(line)) {
    if (key == "label") {
      r.label = percent_decode(value);
    } else if (key == "site") {
      r.site = percent_decode(value);
    } else if (key == "algorithm") {
      r.algorithm = static_cast<AlgorithmKind>(decode_int(value));
    } else if (key == "seed") {
      r.seed = static_cast<std::uint64_t>(decode_int(value));
    } else if (key == "disk_gb") {
      r.disk_gb = decode_double(value);
    } else if (key == "failure_rate") {
      r.failure_rate = decode_double(value);
    } else if (key == "codec") {
      r.codec_enabled = decode_int(value) != 0;
    } else if (key == "failed") {
      r.failed = decode_int(value) != 0;
    } else if (key == "error") {
      r.error = percent_decode(value);
    } else if (key == "completed") {
      s.completed = decode_int(value) != 0;
    } else if (key == "wall_elapsed_s") {
      s.wall_elapsed = WallSeconds(decode_double(value));
    } else if (key == "sim_finished_wall_s") {
      s.sim_finished_wall = WallSeconds(decode_double(value));
    } else if (key == "sim_reached_s") {
      s.sim_reached = SimSeconds(decode_double(value));
    } else if (key == "peak_disk_bytes") {
      s.peak_disk_used = Bytes(decode_int(value));
    } else if (key == "min_free_disk_percent") {
      s.min_free_disk_percent = decode_double(value);
    } else if (key == "stall_s") {
      s.total_stall_time = WallSeconds(decode_double(value));
    } else if (key == "frames_written") {
      s.frames_written = decode_int(value);
    } else if (key == "frames_sent") {
      s.frames_sent = decode_int(value);
    } else if (key == "frames_visualized") {
      s.frames_visualized = decode_int(value);
    } else if (key == "transfer_failures") {
      s.transfer_failures = decode_int(value);
    } else if (key == "transfer_retries") {
      s.transfer_retries = decode_int(value);
    } else if (key == "restarts") {
      s.restarts = static_cast<int>(decode_int(value));
    } else if (key == "decisions") {
      s.decision_count = static_cast<int>(decode_int(value));
    } else if (key == "viewers") {
      s.viewers = static_cast<int>(decode_int(value));
    } else if (key == "frames_served") {
      s.frames_served = decode_int(value);
    } else if (key == "cache_hits") {
      s.cache_hits = decode_int(value);
    } else if (key == "cache_misses") {
      s.cache_misses = decode_int(value);
    } else if (key == "cache_evictions") {
      s.cache_evictions = decode_int(value);
    } else if (key == "rerenders") {
      s.rerenders = decode_int(value);
    } else if (key == "peak_cache_bytes") {
      s.peak_cache_bytes = Bytes(decode_int(value));
    } else if (key == "codec_mean_ratio") {
      s.codec_mean_ratio = decode_double(value);
    } else if (key == "codec_saved_bytes") {
      s.codec_bytes_saved = Bytes(decode_int(value));
    } else if (key == "tree_tiers") {
      s.tree_tiers = static_cast<int>(decode_int(value));
    } else if (key == "tree_leaves") {
      s.tree_leaves = static_cast<int>(decode_int(value));
    } else if (key == "tree_viewers") {
      s.tree_viewers = decode_int(value);
    } else if (key == "tree_frames_delivered") {
      s.tree_frames_delivered = decode_int(value);
    } else if (key == "tree_origin_wan_bytes") {
      s.tree_origin_wan_bytes = Bytes(decode_int(value));
    } else if (key == "tree_fill_retries") {
      s.tree_fill_retries = decode_int(value);
    } else if (key == "tree_degraded_events") {
      s.tree_degraded_events = decode_int(value);
    } else {
      throw std::runtime_error("manifest: unknown record key '" + key + "'");
    }
  }
  return r;
}

// ---- entry codec ----
//
// `index=N files=p1:b1,p2:b2 <record kvs>` — the `files` value holds the
// percent-encoded path and decimal byte size of each stamped output file
// (or is empty for a failed run).

std::string encode_manifest_entry(const ManifestEntry& entry) {
  std::string files;
  for (const FileStamp& f : entry.files) {
    if (!files.empty()) files += ',';
    files += percent_encode(f.path) + ':' + std::to_string(f.bytes);
  }
  return "index=" + std::to_string(entry.index) + " files=" + files + " " +
         encode_run_record(entry.record);
}

ManifestEntry decode_manifest_entry(const std::string& line) {
  ManifestEntry entry;
  // Peel the two entry-level tokens off the front; the rest is the record.
  std::size_t pos = 0;
  const auto take_token = [&line, &pos](const char* prefix) {
    const std::size_t plen = std::string(prefix).size();
    if (line.compare(pos, plen, prefix) != 0) {
      throw std::runtime_error("manifest: entry missing '" +
                               std::string(prefix) + "' at '" +
                               line.substr(pos, 24) + "'");
    }
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    const std::string value = line.substr(pos + plen, end - pos - plen);
    pos = std::min(end + 1, line.size());
    return value;
  };
  entry.index = static_cast<std::size_t>(decode_int(take_token("index=")));
  const std::string files = take_token("files=");
  if (!files.empty()) {
    std::size_t fpos = 0;
    while (fpos < files.size()) {
      std::size_t fend = files.find(',', fpos);
      if (fend == std::string::npos) fend = files.size();
      const std::string stamp = files.substr(fpos, fend - fpos);
      const std::size_t colon = stamp.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        throw std::runtime_error("manifest: malformed file stamp '" + stamp +
                                 "'");
      }
      entry.files.push_back(FileStamp{percent_decode(stamp.substr(0, colon)),
                                      decode_int(stamp.substr(colon + 1))});
      fpos = fend + 1;
    }
  }
  entry.record = decode_run_record(line.substr(pos));
  return entry;
}

// ---- JSON layer ----
//
// The manifest is real JSON (CI uploads it as an artifact; humans read it
// after a failed sweep), written and parsed by the minimal
// reader/writer below — no external dependency, and the values we emit
// (percent-encoded strings, decimal numbers) exercise only this subset.

namespace {

void json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const unsigned char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04X", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("manifest: JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = string();
      return v;
    }
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const int nib = hex_nibble(text_[pos_++]);
            if (nib < 0) fail("malformed \\u escape");
            code = code * 16 + nib;
          }
          if (code > 0xFF) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = decode_double(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double require_number(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error(std::string("manifest: missing number '") + key +
                             "'");
  }
  return v->number;
}

std::string require_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    throw std::runtime_error(std::string("manifest: missing string '") + key +
                             "'");
  }
  return v->string;
}

}  // namespace

// ---- CampaignManifest ----

const char* CampaignManifest::filename() { return "campaign_manifest.json"; }

void CampaignManifest::upsert(ManifestEntry entry) {
  const std::size_t index = entry.index;
  entries.insert_or_assign(index, std::move(entry));
}

std::string CampaignManifest::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": " << kVersion << ",\n";
  out << "  \"campaign\": ";
  json_string(out, campaign);
  out << ",\n";
  out << "  \"grid\": " << grid << ",\n";
  out << "  \"runs\": [";
  bool first = true;
  for (const auto& [index, entry] : entries) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"index\": " << index << ", \"label\": ";
    json_string(out, entry.record.label);
    out << ", \"failed\": " << (entry.record.failed ? "true" : "false");
    out << ", \"record\": ";
    json_string(out, encode_run_record(entry.record));
    out << ", \"files\": [";
    for (std::size_t i = 0; i < entry.files.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"path\": ";
      json_string(out, entry.files[i].path);
      out << ", \"bytes\": " << entry.files[i].bytes << "}";
    }
    out << "]}";
  }
  out << (first ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

void CampaignManifest::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("manifest: cannot write " + tmp);
    }
    out << to_json();
  }
  std::filesystem::rename(tmp, path);
}

CampaignManifest CampaignManifest::from_json(const std::string& text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("manifest: top level is not an object");
  }
  if (static_cast<int>(require_number(root, "version")) != kVersion) {
    throw std::runtime_error("manifest: unsupported version");
  }
  CampaignManifest m;
  m.campaign = require_string(root, "campaign");
  m.grid = static_cast<std::size_t>(require_number(root, "grid"));
  const JsonValue* runs = root.find("runs");
  if (runs == nullptr || runs->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("manifest: missing 'runs' array");
  }
  for (const JsonValue& run : runs->array) {
    if (run.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("manifest: run entry is not an object");
    }
    ManifestEntry entry;
    entry.index = static_cast<std::size_t>(require_number(run, "index"));
    entry.record = decode_run_record(require_string(run, "record"));
    if (const JsonValue* files = run.find("files");
        files != nullptr && files->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& f : files->array) {
        entry.files.push_back(
            FileStamp{require_string(f, "path"),
                      static_cast<std::int64_t>(require_number(f, "bytes"))});
      }
    }
    m.upsert(std::move(entry));
  }
  return m;
}

std::optional<CampaignManifest> CampaignManifest::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(text.str());
  } catch (const std::exception&) {
    // A torn or stale manifest means "start fresh", never a crash.
    return std::nullopt;
  }
}

// ---- output integrity ----

std::vector<FileStamp> stamp_result_files(const std::string& label,
                                          const std::string& dir) {
  static const char* kSuffixes[] = {"_samples.csv", "_visualization.csv",
                                    "_decisions.csv", "_track.csv",
                                    "_summary.ini",  "_clients.csv"};
  std::vector<FileStamp> stamps;
  for (const char* suffix : kSuffixes) {
    const std::string name = label + suffix;
    std::error_code ec;
    const auto size = std::filesystem::file_size(dir + "/" + name, ec);
    if (ec) continue;  // optional outputs (e.g. _clients.csv) may not exist
    stamps.push_back(FileStamp{name, static_cast<std::int64_t>(size)});
  }
  return stamps;
}

bool entry_output_intact(const ManifestEntry& entry, const std::string& dir) {
  for (const FileStamp& f : entry.files) {
    const std::string path = dir + "/" + f.path;
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || static_cast<std::int64_t>(size) != f.bytes || f.bytes <= 0) {
      return false;
    }
    // A crash mid-row leaves the final line unterminated even when the
    // byte count happens to collide; the trailing newline is the
    // "row complete" marker every writer in this repo emits.
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    in.seekg(-1, std::ios::end);
    char last = '\0';
    in.read(&last, 1);
    if (!in || last != '\n') return false;
  }
  return true;
}

}  // namespace adaptviz
