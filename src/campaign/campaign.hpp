// Campaign engine: multi-experiment sweeps through one runner.
//
// Every result in the paper is a sweep — three network configurations ×
// two decision algorithms × disk limits (Figs 5–8, Tables 1/3) — and the
// bench binaries used to each hand-roll a sequential loop over
// run_experiment(). This subsystem makes the sweep a first-class object:
//
//  * CampaignSpec — a base scenario plus override axes (algorithm, site,
//    seed, disk cap, transfer-failure rate). expand() takes the cross
//    product and yields one fully-resolved, uniquely-labelled
//    ExperimentConfig per grid cell.
//  * CampaignRunner — executes K runs concurrently as thread-pool tasks
//    with bounded memory: each run's CSVs stream to disk as it finishes
//    and the full ExperimentResult is dropped; only the one-row summary
//    is retained. Per-run contexts (runtime/run_context.hpp) guarantee
//    every run in a concurrent campaign is bitwise identical to the same
//    config run alone (asserted by tests/test_campaign.cpp and
//    bench_campaign_throughput).
//  * campaign_summary_schema() — the declarative column table behind
//    campaign_summary.csv (one row per run), following the
//    telemetry_schema() pattern: header order, serialization and docs all
//    derive from this single table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.hpp"
#include "core/scenario.hpp"
#include "serve/registration.hpp"
#include "util/csv.hpp"

namespace adaptviz {

/// One fully-resolved cell of a campaign grid. `label` is unique within
/// the campaign and filesystem-safe; it doubles as the run's config.name,
/// so per-run CSV basenames never collide.
struct CampaignRun {
  std::string label;
  std::string site;  // site axis name ("" when the axis is inherited)
  ExperimentConfig config;
};

/// A base scenario plus override axes. Empty axes inherit the base value
/// (an axis of one); non-empty axes multiply out in declaration order:
/// sites × algorithms × seeds × disk caps × failure rates × codec on/off ×
/// decision periods × vis workers.
struct CampaignSpec {
  std::string name = "campaign";
  ExperimentConfig base{};

  std::vector<std::pair<std::string, SiteSpec>> sites;
  std::vector<AlgorithmKind> algorithms;
  std::vector<std::uint64_t> seeds;
  std::vector<Bytes> disk_caps;
  std::vector<double> failure_rates;
  /// Lossless-frame-codec axis: each entry toggles base.codec.enabled, so
  /// one campaign measures the codec's wall/WAN effect cell by cell.
  std::vector<bool> codecs;
  /// Manager re-plan cadence axis (how often the decision algorithm runs).
  std::vector<WallSeconds> decision_periods;
  /// Visualization-site parallel render-slot axis.
  std::vector<int> vis_workers;

  /// Default concurrency for runners driven off this spec (the sweep
  /// tool's --jobs overrides it).
  int concurrency = 1;

  /// Default worker-process count for distributed dispatch (`[campaign]
  /// workers = N`; the sweep tool's --workers overrides it). 0 keeps the
  /// campaign in-process on the CampaignRunner.
  int workers = 0;

  [[nodiscard]] std::vector<CampaignRun> expand() const;
};

/// Terminal record of one campaign run — one row of campaign_summary.csv.
struct CampaignRunRecord {
  std::string label;
  std::string site;
  AlgorithmKind algorithm = AlgorithmKind::kOptimization;
  std::uint64_t seed = 0;
  double disk_gb = 0.0;
  double failure_rate = 0.0;
  bool codec_enabled = false;
  ExperimentSummary summary{};
  /// The run threw instead of finishing; `error` carries the message and
  /// the summary row is all defaults.
  bool failed = false;
  std::string error;
};

/// One column of the aggregated campaign summary: CSV header name, unit,
/// and the accessor producing a record's cell (telemetry_schema()'s
/// pattern — adding a summary field is one entry here and nowhere else).
struct CampaignSummaryColumn {
  const char* name;
  const char* unit;
  CsvTable::Cell (*cell)(const CampaignRunRecord&);
};

const std::vector<CampaignSummaryColumn>& campaign_summary_schema();

/// Record with the identity columns (label, site, algorithm, seed, ...)
/// filled from the cell and a default (not-yet-run) summary. The one place
/// those fields are derived — the in-process runner, the worker protocol
/// and the dispatcher's gave-up rows all agree byte for byte.
CampaignRunRecord make_run_record(const CampaignRun& cell);

/// Executes one expanded cell with full failure isolation: whatever throws
/// — config apply, framework construction/validation, the run itself, or
/// `on_result` — yields a failed record carrying the error string instead
/// of propagating. Every expanded label therefore produces exactly one
/// summary row (rows == expand().size(), always). `on_result` receives the
/// full result before it is discarded (CSV streaming, sinks).
CampaignRunRecord execute_campaign_run(
    const CampaignRun& cell, LogLevel run_log_level,
    const std::function<void(const ExperimentResult&)>& on_result = {});

/// Column names in schema order (the campaign_summary.csv header).
std::vector<std::string> campaign_summary_columns();

/// One CSV row for `record` in schema order.
std::vector<CsvTable::Cell> campaign_summary_row(
    const CampaignRunRecord& record);

/// Progress report delivered after each run completes (under the runner's
/// serialization lock — keep callbacks quick).
struct CampaignProgress {
  std::size_t finished = 0;  // runs completed so far, this one included
  std::size_t total = 0;
  const CampaignRunRecord* record = nullptr;  // the run that just finished
};

struct CampaignOptions {
  /// Experiments in flight at once (K). 1 executes strictly sequentially
  /// on the calling thread, no worker threads involved.
  int concurrency = 1;
  /// Directory receiving per-run CSVs and campaign_summary.csv.
  std::string output_dir = "results";
  /// Stream write_result() CSVs for each run as it finishes.
  bool write_per_run_csvs = true;
  /// Write <output_dir>/campaign_summary.csv when the campaign ends.
  bool write_summary_csv = true;
  /// Applied to each run's config unless it already sets a level: keeps K
  /// interleaved runs from narrating over each other on stderr.
  LogLevel run_log_level = LogLevel::kError;
  /// Invoked after each run finishes (serialized, completion order).
  std::function<void(const CampaignProgress&)> on_progress;
  /// Live control plane fronting the campaign (non-owning; must outlive
  /// the call). Every run whose config leaves steering.control_plane
  /// unset registers here — one serve process fronts all K concurrent
  /// runs — and sweep progress is published as a CampaignView after each
  /// completion.
  RegistrationServer* registration = nullptr;
};

class CampaignRunner {
 public:
  /// Receives each run's full ExperimentResult on the worker thread as it
  /// finishes, serialized by the runner's lock, before the result is
  /// discarded — the streaming hook for callers that need more than the
  /// summary row (figure benches, digest tests).
  using ResultSink = std::function<void(
      std::size_t index, const CampaignRun& run, const ExperimentResult&)>;

  explicit CampaignRunner(CampaignOptions options = {});

  /// Executes every run with at most `concurrency` in flight; returns the
  /// records in grid order (not completion order). A run that throws is
  /// recorded as failed; the campaign continues.
  std::vector<CampaignRunRecord> run(const std::vector<CampaignRun>& runs,
                                     const ResultSink& sink = {});

  /// expand() + run(). The spec's `concurrency` is used when the options
  /// left it at 0 or negative; explicit options win.
  std::vector<CampaignRunRecord> run(const CampaignSpec& spec,
                                     const ResultSink& sink = {});

 private:
  CampaignOptions options_;
  std::string campaign_label_ = "campaign";  // CampaignView name
};

// ---- [campaign] INI schema ----
//
//   [campaign]
//   name = paper-suite
//   sites = inter-department, intra-country, cross-continent
//   algorithms = greedy-threshold, optimization
//   seeds = 42, 43                    ; optional
//   disk_gb = 100, 182                ; optional disk-cap axis
//   failure_rates = 0, 0.15           ; optional transport-fault axis
//   codec = off, on                   ; optional lossless-codec axis
//   decision_period_hours = 0.5, 1.5  ; optional re-plan cadence axis
//   vis_workers = 1, 4                ; optional render-slot axis
//   concurrency = 4                   ; default K (CLI --jobs overrides)
//   workers = 2                       ; worker processes for distributed
//                                     ; dispatch (0 = in-process; CLI
//                                     ; --workers overrides)
//
// All remaining sections ([experiment], [site], [bounds], ...) form the
// base scenario, parsed by scenario_from_ini() unchanged.

/// True when the document has a [campaign] section.
[[nodiscard]] bool is_campaign_ini(const IniDocument& doc);

/// Builds a CampaignSpec from a parsed campaign document. Unknown axis
/// values raise std::runtime_error naming the offending entry.
CampaignSpec campaign_from_ini(const IniDocument& doc);

/// Loads and parses a campaign file.
CampaignSpec load_campaign(const std::string& path);

/// Writes <dir>/campaign_summary.csv off the declarative schema.
void write_campaign_summary(const std::vector<CampaignRunRecord>& records,
                            const std::string& dir);

}  // namespace adaptviz
