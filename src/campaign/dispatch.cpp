#include "campaign/dispatch.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace adaptviz {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string sanitize_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Worker scratch dirs live under the output dir as `.tmp-<label>-<pid>`;
/// a killed worker leaves one behind, so the coordinator sweeps them.
void remove_scratch_dirs(const std::string& dir) {
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) std::filesystem::remove_all(e.path(), ec);
  }
}

/// Writes of task lines to a dead worker must come back as EPIPE, not a
/// process-killing signal.
class SigpipeIgnore {
 public:
  SigpipeIgnore() {
    struct sigaction sa {};
    sa.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &sa, &old_);
  }
  ~SigpipeIgnore() { sigaction(SIGPIPE, &old_, nullptr); }
  SigpipeIgnore(const SigpipeIgnore&) = delete;
  SigpipeIgnore& operator=(const SigpipeIgnore&) = delete;

 private:
  struct sigaction old_ {};
};

struct WorkerProc {
  pid_t pid = -1;
  int to_fd = -1;    // coordinator -> worker stdin
  int from_fd = -1;  // worker stdout -> coordinator
  std::string buffer;
  bool alive = false;
  bool hello = false;
  bool busy = false;
  bool straggler_flagged = false;
  std::size_t task = 0;
  Clock::time_point dispatched_at{};
};

struct PendingTask {
  std::size_t index = 0;
  Clock::time_point ready_at{};
};

class Coordinator {
 public:
  Coordinator(std::vector<std::string> worker_command, DispatchOptions options,
              std::string campaign_path)
      : worker_command_(std::move(worker_command)),
        options_(std::move(options)),
        campaign_path_(std::move(campaign_path)),
        jitter_rng_(options_.seed) {}

  ~Coordinator() {
    // Exception path: never leak children.
    for (WorkerProc& w : workers_) kill_worker(w);
  }

  DispatchResult run() {
    const CampaignSpec spec = load_campaign(campaign_path_);
    runs_ = spec.expand();
    const std::size_t n = runs_.size();
    records_.resize(n);
    done_.assign(n, 0);
    attempts_.assign(n, 0);

    std::filesystem::create_directories(options_.output_dir);
    remove_scratch_dirs(options_.output_dir);
    manifest_path_ =
        options_.output_dir + "/" + CampaignManifest::filename();
    load_or_reset_manifest(spec, n);

    for (std::size_t i = 0; i < n; ++i) {
      if (!done_[i]) pending_.push_back(PendingTask{i, Clock::now()});
    }

    if (!pending_.empty()) {
      SigpipeIgnore sigpipe_guard;
      int target = options_.workers > 0 ? options_.workers : spec.workers;
      if (target <= 0) target = 1;
      target_workers_ = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(target), pending_.size()));
      for (int i = 0; i < target_workers_; ++i) {
        spawn_worker(i == options_.crash_inject_worker);
      }
      if (alive_count() == 0) {
        throw std::runtime_error("dispatch: could not spawn any worker");
      }
      event_loop();
      shutdown_workers();
    }

    finalize();
    DispatchResult result;
    result.records = std::move(records_);
    result.resumed = resumed_;
    result.executed = executed_;
    result.metrics = obs_.metrics().snapshot();
    return result;
  }

 private:
  // ---- resume ----

  void load_or_reset_manifest(const CampaignSpec& spec, std::size_t n) {
    if (options_.resume) {
      if (auto loaded = CampaignManifest::load(manifest_path_);
          loaded.has_value() && loaded->campaign == spec.name &&
          loaded->grid == n) {
        manifest_ = std::move(*loaded);
        for (const auto& [index, entry] : manifest_.entries) {
          if (index >= n) continue;
          if (entry.record.failed) continue;  // failed rows always re-run
          if (entry.record.label != runs_[index].label) continue;
          if (!entry_output_intact(entry, options_.output_dir)) continue;
          records_[index] = entry.record;
          done_[index] = 1;
          ++done_count_;
          ++resumed_;
        }
        if (resumed_ > 0) {
          obs_.metrics().counter("dispatch.runs_resumed").add(
              static_cast<std::int64_t>(resumed_));
          log(LogLevel::kInfo, "dispatch", "resume: %zu of %zu runs intact",
              resumed_, n);
        }
      }
    }
    manifest_.campaign = spec.name;
    manifest_.grid = n;
  }

  // ---- worker lifecycle ----

  void spawn_worker(bool crash_flag) {
    std::vector<std::string> argv_strings = worker_command_;
    argv_strings.push_back("--worker");
    argv_strings.push_back(campaign_path_);
    argv_strings.push_back(options_.output_dir);
    if (!options_.write_per_run_csvs) {
      argv_strings.push_back("--no-per-run-csvs");
    }
    if (options_.verbose_workers) argv_strings.push_back("--verbose");
    if (crash_flag) argv_strings.push_back("--crash-next-task");

    int to_pipe[2] = {-1, -1};
    int from_pipe[2] = {-1, -1};
    if (pipe(to_pipe) != 0 || pipe(from_pipe) != 0) {
      if (to_pipe[0] >= 0) {
        close(to_pipe[0]);
        close(to_pipe[1]);
      }
      log(LogLevel::kError, "dispatch", "pipe() failed: %s", strerror(errno));
      return;
    }

    const pid_t pid = fork();
    if (pid < 0) {
      close(to_pipe[0]);
      close(to_pipe[1]);
      close(from_pipe[0]);
      close(from_pipe[1]);
      log(LogLevel::kError, "dispatch", "fork() failed: %s", strerror(errno));
      return;
    }
    if (pid == 0) {
      // Child: wire the protocol pipes to stdin/stdout; stderr is
      // inherited so per-run log lines (labelled via the run context)
      // land on the coordinator's terminal.
      dup2(to_pipe[0], STDIN_FILENO);
      dup2(from_pipe[1], STDOUT_FILENO);
      close(to_pipe[0]);
      close(to_pipe[1]);
      close(from_pipe[0]);
      close(from_pipe[1]);
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (std::string& s : argv_strings) argv.push_back(s.data());
      argv.push_back(nullptr);
      // execvp: the coordinator binary may have been invoked as a bare
      // command (argv[0] with no slash), which needs the PATH search.
      execvp(argv[0], argv.data());
      _exit(127);
    }

    close(to_pipe[0]);
    close(from_pipe[1]);
    fcntl(from_pipe[0], F_SETFL, O_NONBLOCK);

    WorkerProc w;
    w.pid = pid;
    w.to_fd = to_pipe[1];
    w.from_fd = from_pipe[0];
    w.alive = true;
    workers_.push_back(w);
    obs_.metrics().counter("dispatch.workers_spawned").add(1);
  }

  [[nodiscard]] int alive_count() const {
    int n = 0;
    for (const WorkerProc& w : workers_) n += w.alive ? 1 : 0;
    return n;
  }

  void kill_worker(WorkerProc& w) {
    if (!w.alive) return;
    kill(w.pid, SIGKILL);
    reap_worker(w);
  }

  void reap_worker(WorkerProc& w) {
    if (!w.alive) return;
    w.alive = false;
    if (w.to_fd >= 0) close(w.to_fd);
    if (w.from_fd >= 0) close(w.from_fd);
    w.to_fd = w.from_fd = -1;
    int status = 0;
    waitpid(w.pid, &status, 0);
  }

  /// A worker died or broke protocol: reap it, requeue its in-flight
  /// task, and spawn a replacement from the budget.
  void on_worker_failed(WorkerProc& w, const char* reason) {
    if (!w.alive) return;
    log(LogLevel::kWarn, "dispatch", "worker pid %d lost (%s)",
        static_cast<int>(w.pid), reason);
    reap_worker(w);
    obs_.metrics().counter("dispatch.worker_failures").add(1);
    if (w.busy) {
      const std::size_t task = w.task;
      w.busy = false;
      if (!done_[task]) requeue_or_fail(task);
    }
    maybe_respawn();
  }

  void maybe_respawn() {
    const std::size_t open_tasks = pending_.size() + in_flight_count();
    const int target = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(target_workers_), std::max<std::size_t>(
            open_tasks, 1)));
    while (alive_count() < target &&
           respawns_used_ < options_.worker_respawn_budget) {
      ++respawns_used_;
      spawn_worker(/*crash_flag=*/false);
    }
  }

  [[nodiscard]] std::size_t in_flight_count() const {
    std::size_t n = 0;
    for (const WorkerProc& w : workers_) {
      n += (w.alive && w.busy && !done_[w.task]) ? 1 : 0;
    }
    return n;
  }

  // ---- task scheduling ----

  /// Returns false when the TASK write failed (the worker is reaped; a
  /// non-straggler task is requeued — the index must never be lost, or
  /// done_count_ can never reach the grid size and the loop hangs).
  bool send_task(WorkerProc& w, std::size_t index, bool straggler) {
    const std::string line = "TASK " + std::to_string(index) + "\n";
    ssize_t written =
        write(w.to_fd, line.data(), static_cast<std::size_t>(line.size()));
    if (written != static_cast<ssize_t>(line.size())) {
      // w.busy is still false here, so on_worker_failed's requeue path
      // does not cover this task.
      on_worker_failed(w, "task write failed");
      if (!straggler) requeue_or_fail(index);
      return false;
    }
    if (attempts_[index] > 0) {
      obs_.metrics().counter("dispatch.tasks_redispatched").add(1);
    }
    if (straggler) {
      obs_.metrics().counter("dispatch.straggler_redispatched").add(1);
    } else {
      ++attempts_[index];
    }
    obs_.metrics().counter("dispatch.tasks_dispatched").add(1);
    w.busy = true;
    w.straggler_flagged = false;
    w.task = index;
    w.dispatched_at = Clock::now();
    return true;
  }

  /// Hands every ready pending task (lowest grid index first) to an idle
  /// worker that has completed its HELLO.
  void dispatch_ready() {
    const Clock::time_point now = Clock::now();
    while (true) {
      std::size_t best = pending_.size();
      for (std::size_t p = 0; p < pending_.size(); ++p) {
        if (pending_[p].ready_at > now) continue;
        if (best == pending_.size() ||
            pending_[p].index < pending_[best].index) {
          best = p;
        }
      }
      if (best == pending_.size()) return;
      WorkerProc* idle = nullptr;
      for (WorkerProc& w : workers_) {
        if (w.alive && w.hello && !w.busy) {
          idle = &w;
          break;
        }
      }
      if (idle == nullptr) return;
      const std::size_t index = pending_[best].index;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
      send_task(*idle, index, /*straggler=*/false);
    }
  }

  /// A task in flight past the straggler timeout is duplicated onto an
  /// idle worker; the exactly-once accounting drops whichever ROW loses.
  void dispatch_stragglers() {
    if (options_.straggler_timeout_s <= 0.0) return;
    const Clock::time_point now = Clock::now();
    for (WorkerProc& slow : workers_) {
      if (!slow.alive || !slow.busy || slow.straggler_flagged) continue;
      if (done_[slow.task]) continue;
      if (seconds_between(slow.dispatched_at, now) <
          options_.straggler_timeout_s) {
        continue;
      }
      WorkerProc* idle = nullptr;
      for (WorkerProc& w : workers_) {
        if (&w != &slow && w.alive && w.hello && !w.busy) {
          idle = &w;
          break;
        }
      }
      if (idle == nullptr) return;
      // send_task counts the re-dispatch (attempts_ > 0 for any
      // straggler); counting here too would double it. Leave the flag
      // clear on a failed send so a later pass can try another worker.
      if (send_task(*idle, slow.task, /*straggler=*/true)) {
        slow.straggler_flagged = true;
      }
    }
  }

  void requeue_or_fail(std::size_t index) {
    if (done_[index]) return;
    if (attempts_[index] >= options_.max_task_attempts) {
      CampaignRunRecord rec = make_run_record(runs_[index]);
      rec.failed = true;
      rec.error = "dispatch: worker crashed (" +
                  std::to_string(attempts_[index]) + " attempts)";
      obs_.metrics().counter("dispatch.tasks_failed").add(1);
      complete(index, std::move(rec), {});
      return;
    }
    // The transport backoff ladder: initial * multiplier^(failures-1),
    // capped, scaled by uniform jitter so N re-dispatches decorrelate.
    const FrameSender::RetryPolicy& retry = options_.retry;
    double delay = retry.initial_backoff.seconds() *
                   std::pow(retry.multiplier, attempts_[index] - 1);
    delay = std::min(delay, retry.max_backoff.seconds());
    delay *= jitter_rng_.uniform(1.0 - retry.jitter, 1.0 + retry.jitter);
    pending_.push_back(PendingTask{
        index, Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(delay))});
  }

  void fail_all_remaining(const char* reason) {
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      if (done_[i]) continue;
      CampaignRunRecord rec = make_run_record(runs_[i]);
      rec.failed = true;
      rec.error = std::string("dispatch: ") + reason;
      obs_.metrics().counter("dispatch.tasks_failed").add(1);
      complete(i, std::move(rec), {});
    }
    pending_.clear();
  }

  /// Marks `index` terminally done — exactly once, whether via a worker
  /// ROW or a coordinator-side failure row — persisting the manifest and
  /// firing progress.
  void complete(std::size_t index, CampaignRunRecord rec,
                std::vector<FileStamp> files) {
    records_[index] = std::move(rec);
    done_[index] = 1;
    ++done_count_;
    ++executed_;
    ManifestEntry entry;
    entry.index = index;
    entry.record = records_[index];
    entry.files = std::move(files);
    manifest_.upsert(std::move(entry));
    manifest_.save(manifest_path_);
    if (options_.on_progress) {
      CampaignProgress progress;
      progress.finished = done_count_;
      progress.total = runs_.size();
      progress.record = &records_[index];
      options_.on_progress(progress);
    }
  }

  // ---- protocol ----

  void handle_line(WorkerProc& w, const std::string& line) {
    if (line.rfind("HELLO ", 0) == 0) {
      const std::size_t at = line.find("grid=");
      const long grid =
          at == std::string::npos ? -1 : std::atol(line.c_str() + at + 5);
      if (grid != static_cast<long>(runs_.size())) {
        throw std::runtime_error(
            "dispatch: worker expanded a different grid (" + line + " vs " +
            std::to_string(runs_.size()) + " runs) — campaign file drift");
      }
      w.hello = true;
      return;
    }
    if (line.rfind("ROW ", 0) == 0) {
      ManifestEntry entry;
      try {
        entry = decode_manifest_entry(line.substr(4));
      } catch (const std::exception& e) {
        kill(w.pid, SIGKILL);
        on_worker_failed(w, e.what());
        return;
      }
      if (w.busy && w.task == entry.index) {
        obs_.metrics()
            .histogram("dispatch.task_latency_s")
            .observe(seconds_between(w.dispatched_at, Clock::now()));
        w.busy = false;
      }
      if (entry.index >= runs_.size() || done_[entry.index]) {
        obs_.metrics().counter("dispatch.duplicate_rows").add(1);
        return;
      }
      obs_.metrics().counter("dispatch.tasks_completed").add(1);
      complete(entry.index, entry.record, std::move(entry.files));
      return;
    }
    if (line.rfind("ERR ", 0) == 0) {
      kill(w.pid, SIGKILL);
      on_worker_failed(w, line.c_str());
      return;
    }
    kill(w.pid, SIGKILL);
    on_worker_failed(w, "unexpected protocol line");
  }

  /// Drains a worker's pipe; returns false when the worker hit EOF.
  bool read_worker(WorkerProc& w) {
    char chunk[4096];
    while (true) {
      const ssize_t n = read(w.from_fd, chunk, sizeof chunk);
      if (n > 0) {
        w.buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = w.buffer.find('\n')) != std::string::npos) {
          std::string line = w.buffer.substr(0, nl);
          w.buffer.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (!line.empty()) handle_line(w, line);
          if (!w.alive) return false;  // handle_line may have reaped it
        }
        continue;
      }
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  // ---- event loop ----

  [[nodiscard]] int poll_timeout_ms() const {
    const Clock::time_point now = Clock::now();
    double timeout = 0.5;  // heartbeat: bounded staleness for respawns
    bool has_idle = false;
    for (const WorkerProc& w : workers_) {
      has_idle = has_idle || (w.alive && w.hello && !w.busy);
    }
    // Pending backoff deadlines only matter when a worker could take the
    // task; with every worker busy, waking early would just spin.
    if (has_idle) {
      for (const PendingTask& p : pending_) {
        timeout =
            std::min(timeout, std::max(0.0, seconds_between(now, p.ready_at)));
      }
    }
    if (options_.straggler_timeout_s > 0.0) {
      for (const WorkerProc& w : workers_) {
        if (!w.alive || !w.busy) continue;
        const double left = options_.straggler_timeout_s -
                            seconds_between(w.dispatched_at, now);
        timeout = std::min(timeout, std::max(0.0, left));
      }
    }
    return std::max(10, static_cast<int>(timeout * 1000.0));
  }

  void event_loop() {
    while (done_count_ < runs_.size()) {
      maybe_respawn();
      if (alive_count() == 0) {
        fail_all_remaining("worker respawn budget exhausted");
        return;
      }
      dispatch_ready();
      dispatch_stragglers();
      if (done_count_ == runs_.size()) return;

      std::vector<pollfd> fds;
      std::vector<WorkerProc*> owners;
      for (WorkerProc& w : workers_) {
        if (!w.alive) continue;
        fds.push_back(pollfd{w.from_fd, POLLIN, 0});
        owners.push_back(&w);
      }
      const int ready = poll(fds.data(), fds.size(), poll_timeout_ms());
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("dispatch: poll() failed: ") +
                                 strerror(errno));
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        WorkerProc& w = *owners[i];
        if (!w.alive) continue;
        if (!read_worker(w)) on_worker_failed(w, "eof");
      }
    }
  }

  void shutdown_workers() {
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      if (w.busy) {
        // Only duplicate runners are still busy once every task is done;
        // their result is no longer needed.
        kill_worker(w);
        continue;
      }
      const char exit_line[] = "EXIT\n";
      [[maybe_unused]] ssize_t n =
          write(w.to_fd, exit_line, sizeof exit_line - 1);
      reap_worker(w);
    }
  }

  // ---- finish ----

  void finalize() {
    remove_scratch_dirs(options_.output_dir);
    manifest_.save(manifest_path_);
    if (options_.write_summary_csv) {
      write_campaign_summary(records_, options_.output_dir);
    }
    if (options_.write_metrics_json) {
      obs::save_json(options_.output_dir + "/dispatch_metrics.json",
                     obs_.metrics().snapshot(), {});
    }
  }

  std::vector<std::string> worker_command_;
  DispatchOptions options_;
  std::string campaign_path_;
  std::string manifest_path_;
  Rng jitter_rng_;

  std::vector<CampaignRun> runs_;
  std::vector<CampaignRunRecord> records_;
  std::vector<char> done_;
  std::vector<int> attempts_;
  std::vector<PendingTask> pending_;
  // deque: spawn_worker push_back must not invalidate WorkerProc
  // references held across respawns in the event loop.
  std::deque<WorkerProc> workers_;
  CampaignManifest manifest_;
  obs::Observability obs_;

  std::size_t done_count_ = 0;
  std::size_t resumed_ = 0;
  std::size_t executed_ = 0;
  int target_workers_ = 0;
  int respawns_used_ = 0;
};

}  // namespace

CampaignDispatcher::CampaignDispatcher(std::vector<std::string> worker_command,
                                       DispatchOptions options)
    : worker_command_(std::move(worker_command)),
      options_(std::move(options)) {
  if (worker_command_.empty()) {
    throw std::invalid_argument("dispatch: worker command must be non-empty");
  }
}

DispatchResult CampaignDispatcher::run(const std::string& campaign_path) {
  Coordinator coordinator(worker_command_, options_, campaign_path);
  return coordinator.run();
}

// ---- worker side ----

int run_dispatch_worker(const WorkerOptions& options, std::istream& in,
                        std::ostream& out) {
  try {
    const CampaignSpec spec = load_campaign(options.campaign_path);
    const std::vector<CampaignRun> runs = spec.expand();
    std::filesystem::create_directories(options.output_dir);
    out << "HELLO v1 grid=" << runs.size() << "\n" << std::flush;

    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line == "EXIT") return 0;
      if (line.rfind("TASK ", 0) != 0) {
        out << "ERR unknown command " << sanitize_line(line) << "\n"
            << std::flush;
        return 2;
      }
      char* end = nullptr;
      const unsigned long long parsed = strtoull(line.c_str() + 5, &end, 10);
      const auto index = static_cast<std::size_t>(parsed);
      if (end == line.c_str() + 5 || *end != '\0' || index >= runs.size()) {
        out << "ERR bad task index " << sanitize_line(line) << "\n"
            << std::flush;
        return 2;
      }
      if (options.crash_next_task) {
        // Test hook: die the way a crashed worker dies — no unwind, no
        // ROW, pipe snaps shut.
        std::_Exit(42);
      }

      ManifestEntry entry;
      entry.index = index;
      const std::string& label = runs[index].label;
      entry.record = execute_campaign_run(
          runs[index], options.run_log_level,
          [&](const ExperimentResult& result) {
            if (!options.write_per_run_csvs) return;
            // Write into a private scratch dir, then rename each file
            // into place: a worker killed mid-write (or racing a
            // straggler duplicate) can never leave a truncated CSV
            // under a real result name. The pid suffix keeps a
            // straggler duplicate and the original worker from sharing
            // (and remove_all-ing) each other's staging directory.
            const std::string scratch = options.output_dir + "/.tmp-" +
                                        label + "-" +
                                        std::to_string(getpid());
            std::filesystem::remove_all(scratch);
            write_result(result, scratch);
            for (const auto& e :
                 std::filesystem::directory_iterator(scratch)) {
              std::filesystem::rename(
                  e.path(), options.output_dir + "/" +
                                e.path().filename().string());
            }
            std::filesystem::remove_all(scratch);
          });
      if (!entry.record.failed && options.write_per_run_csvs) {
        entry.files = stamp_result_files(label, options.output_dir);
      }
      out << "ROW " << encode_manifest_entry(entry) << "\n" << std::flush;
    }
    return 0;  // EOF from the coordinator is a valid shutdown
  } catch (const std::exception& e) {
    out << "ERR " << sanitize_line(e.what()) << "\n" << std::flush;
    return 2;
  }
}

}  // namespace adaptviz
