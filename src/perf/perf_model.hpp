// Performance model of the simulation on the cluster.
//
// Paper, Section IV: "The execution times of a subset of configurations have
// been experimentally found by running sample WRF runs ... for different
// discrete number of processors, spanning the available processor space and
// using performance modeling or curve fitting tools to interpolate for other
// number of processors."
//
// BenchmarkProfiler reproduces those sample runs against the ground-truth
// machine (resources/cluster.hpp); PerformanceModel wraps the fitted
// SpeedupCurve and answers the two questions the decision algorithms ask:
// expected step time on p processors at a given resolution, and the
// processor count needed to achieve a target step time.
//
// Work scaling across resolutions is multiplicative: t(p, w) = w * t1(p)
// where t1 is the fitted per-work-unit curve, so one profiling campaign at a
// reference work load covers the whole Table III ladder.
#pragma once

#include <vector>

#include "numerics/curve_fit.hpp"
#include "resources/cluster.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct ProfilerConfig {
  /// Processor counts to sample; empty = log-spaced sweep of the machine.
  std::vector<int> processor_counts;
  /// Steps timed per sample (more steps average out machine noise); the
  /// paper ran 1-hour sample simulations.
  int steps_per_sample = 25;
};

/// Profiling campaign result: samples normalized to work_units == 1.
struct ProfileData {
  std::vector<PerfSample> samples;
  double reference_work_units = 1.0;
};

class BenchmarkProfiler {
 public:
  explicit BenchmarkProfiler(ProfilerConfig config = {});

  /// Runs timed sample batches on the machine at `work_units` of per-step
  /// work and returns per-work-unit samples.
  [[nodiscard]] ProfileData profile(GroundTruthMachine& machine,
                                    double work_units) const;

 private:
  ProfilerConfig config_;
};

class PerformanceModel {
 public:
  /// Fits the speedup curve to profiling data. `max_processors` bounds all
  /// queries (machine limit and WRF decomposition limit combined).
  PerformanceModel(const ProfileData& data, int max_processors);

  /// Expected wall seconds per simulation step on p processors for a step
  /// costing `work_units`.
  [[nodiscard]] WallSeconds step_time(int processors, double work_units) const;

  /// Fastest achievable step time (all processors) — the LP's T_LB.
  [[nodiscard]] WallSeconds fastest_step_time(double work_units) const;

  /// Slowest configured step time (min_processors) — the greedy maxtime.
  [[nodiscard]] WallSeconds slowest_step_time(double work_units,
                                              int min_processors) const;

  /// Fewest processors achieving step time <= target at `work_units`
  /// (clamped to [1, max_processors]; returns max_processors when even the
  /// full machine is slower than the target).
  [[nodiscard]] int processors_for(WallSeconds target,
                                   double work_units) const;

  [[nodiscard]] int max_processors() const { return max_processors_; }
  [[nodiscard]] const SpeedupCurve& curve() const { return curve_; }

 private:
  SpeedupCurve curve_;
  int max_processors_;
};

}  // namespace adaptviz
