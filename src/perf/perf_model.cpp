#include "perf/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adaptviz {

BenchmarkProfiler::BenchmarkProfiler(ProfilerConfig config)
    : config_(std::move(config)) {
  if (config_.steps_per_sample < 1) {
    throw std::invalid_argument("BenchmarkProfiler: steps_per_sample >= 1");
  }
}

ProfileData BenchmarkProfiler::profile(GroundTruthMachine& machine,
                                       double work_units) const {
  if (work_units <= 0) {
    throw std::invalid_argument("BenchmarkProfiler: work_units must be > 0");
  }
  std::vector<int> counts = config_.processor_counts;
  if (counts.empty()) {
    // Log-spaced sweep from min_cores to max_cores, ~6 sample points.
    const int lo = machine.spec().min_cores;
    const int hi = machine.spec().max_cores;
    int p = lo;
    while (p < hi) {
      counts.push_back(p);
      p = std::max(p + 1, static_cast<int>(std::lround(p * 1.8)));
    }
    counts.push_back(hi);
  }

  ProfileData data;
  data.reference_work_units = 1.0;
  for (int p : counts) {
    double total = 0.0;
    for (int s = 0; s < config_.steps_per_sample; ++s) {
      total += machine.step_time(p, work_units).seconds();
    }
    const double avg = total / config_.steps_per_sample;
    data.samples.push_back(PerfSample{p, avg / work_units});
  }
  return data;
}

PerformanceModel::PerformanceModel(const ProfileData& data, int max_processors)
    : curve_(SpeedupCurve::fit(data.samples)), max_processors_(max_processors) {
  if (max_processors < 1) {
    throw std::invalid_argument("PerformanceModel: max_processors >= 1");
  }
}

WallSeconds PerformanceModel::step_time(int processors,
                                        double work_units) const {
  const int p = std::clamp(processors, 1, max_processors_);
  // The fitted curve is per work unit; serial and comm terms scale with the
  // workload too (bigger grids mean bigger halos and reductions).
  return WallSeconds(curve_.seconds_per_step(p) * work_units);
}

WallSeconds PerformanceModel::fastest_step_time(double work_units) const {
  // t(p) may turn upward at high p (comm term); take the true minimum.
  double best = curve_.seconds_per_step(1);
  for (int p = 2; p <= max_processors_; ++p) {
    best = std::min(best, curve_.seconds_per_step(p));
  }
  return WallSeconds(best * work_units);
}

WallSeconds PerformanceModel::slowest_step_time(double work_units,
                                                int min_processors) const {
  return step_time(min_processors, work_units);
}

int PerformanceModel::processors_for(WallSeconds target,
                                     double work_units) const {
  const double per_unit = target.seconds() / work_units;
  return curve_.processors_for_time(per_unit, max_processors_);
}

}  // namespace adaptviz
