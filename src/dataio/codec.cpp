#include "dataio/codec.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace adaptviz {
namespace {

// Payload layout: 4-byte magic, 1-byte mode, 1-byte precision, two
// little-endian u32 dims, then the mode-specific body (raw values, or one
// range-coded stream covering every residual byte plane).
constexpr std::uint8_t kMagic[4] = {'A', 'F', 'C', '1'};
constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 4 + 4;

template <typename Float>
struct BitsOf;
template <>
struct BitsOf<float> {
  using type = std::uint32_t;
};
template <>
struct BitsOf<double> {
  using type = std::uint64_t;
};

template <typename Float>
typename BitsOf<Float>::type fbits(Float v) {
  typename BitsOf<Float>::type b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

template <typename Float>
Float bits_to_float(typename BitsOf<Float>::type b) {
  Float v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

// Maps IEEE bit patterns to unsigned integers that preserve value order
// (negative floats descend as their bit patterns ascend), so subtraction
// of nearby values yields small residuals. Self-inverse modulo the branch.
template <typename UInt>
UInt order_map(UInt b) {
  constexpr UInt msb = UInt(1) << (8 * sizeof(UInt) - 1);
  return (b & msb) ? ~b : (b | msb);
}

template <typename UInt>
UInt order_unmap(UInt x) {
  constexpr UInt msb = UInt(1) << (8 * sizeof(UInt) - 1);
  return (x & msb) ? (x & ~msb) : ~x;
}

// Zigzag: small signed residuals (two's complement) to small unsigned
// codes, so zero-centered residuals concentrate in the low byte planes.
template <typename UInt>
UInt zigzag(UInt d) {
  return (d << 1) ^ (UInt(0) - (d >> (8 * sizeof(UInt) - 1)));
}

template <typename UInt>
UInt unzigzag(UInt z) {
  return (z >> 1) ^ (UInt(0) - (z & 1));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
  }
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t pos) {
  std::uint32_t v = 0;
  for (int k = 0; k < 4; ++k) {
    v |= static_cast<std::uint32_t>(in[pos + k]) << (8 * k);
  }
  return v;
}

// ---- Entropy stage: adaptive order-0 range coder ----
//
// A carry-propagating (LZMA-style) byte range coder with one adaptive
// 256-symbol frequency model per byte plane. Unlike zero-run RLE this
// approaches the per-plane order-0 entropy: near-constant exponent planes
// cost fractions of a bit per value, fully random low-mantissa planes cost
// ~8 bits, and nothing in between is wasted on run-token framing.

constexpr std::uint32_t kTopValue = 1u << 24;
constexpr std::uint32_t kFreqIncrement = 32;
constexpr std::uint32_t kMaxTotal = 1u << 16;

struct ByteModel {
  std::uint16_t freq[256];
  std::uint32_t total;

  ByteModel() : total(256) {
    for (auto& f : freq) f = 1;
  }

  void update(int sym) {
    freq[sym] = static_cast<std::uint16_t>(freq[sym] + kFreqIncrement);
    total += kFreqIncrement;
    if (total > kMaxTotal) {
      total = 0;
      for (auto& f : freq) {
        f = static_cast<std::uint16_t>((f + 1) >> 1);
        total += f;
      }
    }
  }
};

class RangeEncoder {
 public:
  explicit RangeEncoder(std::vector<std::uint8_t>& out) : out_(out) {}

  void encode(std::uint32_t cum, std::uint32_t freq, std::uint32_t total) {
    range_ /= total;
    low_ += static_cast<std::uint64_t>(cum) * range_;
    range_ *= freq;
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }

  void flush() {
    for (int k = 0; k < 5; ++k) shift_low();
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xff000000u || (low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
        cache_ = 0xff;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = static_cast<std::uint32_t>(low_) << 8;
  }

  std::vector<std::uint8_t>& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  RangeDecoder(const std::vector<std::uint8_t>& in, std::size_t pos)
      : in_(in), pos_(pos) {
    for (int k = 0; k < 5; ++k) code_ = (code_ << 8) | read_byte();
  }

  int decode(ByteModel& model) {
    range_ /= model.total;
    std::uint32_t target = static_cast<std::uint32_t>(code_ / range_);
    if (target >= model.total) target = model.total - 1;
    std::uint32_t cum = 0;
    int sym = 0;
    while (cum + model.freq[sym] <= target) cum += model.freq[sym++];
    code_ -= static_cast<std::uint64_t>(cum) * range_;
    range_ *= model.freq[sym];
    while (range_ < kTopValue) {
      code_ = (code_ << 8) | read_byte();
      range_ <<= 8;
    }
    return sym;
  }

 private:
  std::uint8_t read_byte() {
    if (pos_ >= in_.size()) {
      throw std::invalid_argument("codec: truncated range-coded stream");
    }
    return in_[pos_++];
  }

  const std::vector<std::uint8_t>& in_;
  std::size_t pos_;
  std::uint64_t code_ = 0;
  std::uint32_t range_ = 0xffffffffu;
};

// Codes the zigzagged residuals plane-major (all byte 0s, then byte 1s,
// ...), one adaptive model per plane; mirrors rc_decode_planes exactly.
template <typename UInt>
void rc_encode_planes(const std::vector<UInt>& resid,
                      std::vector<std::uint8_t>& out) {
  RangeEncoder enc(out);
  for (std::size_t p = 0; p < sizeof(UInt); ++p) {
    ByteModel model;
    for (const UInt r : resid) {
      const int sym = static_cast<int>((r >> (8 * p)) & 0xff);
      std::uint32_t cum = 0;
      for (int s = 0; s < sym; ++s) cum += model.freq[s];
      enc.encode(cum, model.freq[sym], model.total);
      model.update(sym);
    }
  }
  enc.flush();
}

template <typename UInt>
void rc_decode_planes(const std::vector<std::uint8_t>& in, std::size_t pos,
                      std::size_t n, std::vector<UInt>& resid) {
  resid.assign(n, 0);
  RangeDecoder dec(in, pos);
  for (std::size_t p = 0; p < sizeof(UInt); ++p) {
    ByteModel model;
    for (std::size_t k = 0; k < n; ++k) {
      const int sym = dec.decode(model);
      resid[k] |= static_cast<UInt>(sym) << (8 * p);
      model.update(sym);
    }
  }
}

// Lorenzo predictor on the order-mapped lattice, from the west, north, and
// north-west neighbors already known to both sides. Wrapping unsigned
// arithmetic keeps the transform exactly invertible.
template <typename UInt>
UInt lorenzo_predict(const UInt* o, std::size_t nx, std::size_t i,
                     std::size_t j) {
  const std::size_t k = j * nx + i;
  if (i > 0 && j > 0) return o[k - 1] + o[k - nx] - o[k - nx - 1];
  if (i > 0) return o[k - 1];
  if (j > 0) return o[k - nx];
  return UInt(0);
}

std::vector<std::uint8_t> make_header(CompressedFrame::Mode mode,
                                      CodecPrecision precision,
                                      std::uint32_t nx, std::uint32_t ny) {
  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  out.push_back(static_cast<std::uint8_t>(mode));
  out.push_back(static_cast<std::uint8_t>(precision));
  put_u32(out, nx);
  put_u32(out, ny);
  return out;
}

// Narrow the double view to the coded value type (identity for double),
// then map to the order-preserving integer lattice.
template <typename Float>
std::vector<typename BitsOf<Float>::type> ordered(const FieldView& v) {
  std::vector<typename BitsOf<Float>::type> out(v.count());
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = order_map(fbits(static_cast<Float>(v.data[k])));
  }
  return out;
}

bool same_shape(const FieldView* p, const FieldView& cur) {
  return p != nullptr && p->data != nullptr && p->nx == cur.nx &&
         p->ny == cur.ny;
}

template <typename Float>
CompressedFrame encode_at(FieldView cur, const FieldView* prev,
                          const FieldView* prev2, CodecPrecision precision) {
  using UInt = typename BitsOf<Float>::type;
  const std::size_t n = cur.count();
  CompressedFrame frame;
  frame.nx = static_cast<std::uint32_t>(cur.nx);
  frame.ny = static_cast<std::uint32_t>(cur.ny);
  frame.precision = precision;

  const std::vector<UInt> oc = ordered<Float>(cur);

  // Candidate 1: spatial (intra) prediction — always available.
  std::vector<UInt> resid(n);
  for (std::size_t j = 0; j < cur.ny; ++j) {
    for (std::size_t i = 0; i < cur.nx; ++i) {
      const std::size_t k = j * cur.nx + i;
      resid[k] = zigzag(
          static_cast<UInt>(oc[k] - lorenzo_predict(oc.data(), cur.nx, i, j)));
    }
  }
  CompressedFrame::Mode best_mode = CompressedFrame::Mode::kIntra;
  std::vector<std::uint8_t> best =
      make_header(best_mode, precision, frame.nx, frame.ny);
  rc_encode_planes(resid, best);

  // Candidate 2: temporal delta, when a same-shape previous frame exists.
  const bool have_prev = same_shape(prev, cur);
  if (have_prev) {
    const std::vector<UInt> o1 = ordered<Float>(*prev);
    for (std::size_t k = 0; k < n; ++k) {
      resid[k] = zigzag(static_cast<UInt>(oc[k] - o1[k]));
    }
    std::vector<std::uint8_t> delta = make_header(
        CompressedFrame::Mode::kDelta, precision, frame.nx, frame.ny);
    rc_encode_planes(resid, delta);
    if (delta.size() < best.size()) {
      best = std::move(delta);
      best_mode = CompressedFrame::Mode::kDelta;
    }

    // Candidate 3: second-order temporal extrapolation (2*prev - prev2).
    // Fields advect smoothly between frames, so the linear-in-time
    // prediction cancels most of the first difference as well.
    if (same_shape(prev2, cur)) {
      const std::vector<UInt> o2 = ordered<Float>(*prev2);
      for (std::size_t k = 0; k < n; ++k) {
        const UInt pred = static_cast<UInt>(2 * o1[k] - o2[k]);
        resid[k] = zigzag(static_cast<UInt>(oc[k] - pred));
      }
      std::vector<std::uint8_t> delta2 = make_header(
          CompressedFrame::Mode::kDelta2, precision, frame.nx, frame.ny);
      rc_encode_planes(resid, delta2);
      if (delta2.size() < best.size()) {
        best = std::move(delta2);
        best_mode = CompressedFrame::Mode::kDelta2;
      }
    }
  }

  // Escape hatch: incompressible input is stored verbatim, bounding the
  // worst case at raw size + header.
  if (best.size() > n * sizeof(Float) + kHeaderBytes) {
    best_mode = CompressedFrame::Mode::kRaw;
    best = make_header(best_mode, precision, frame.nx, frame.ny);
    for (std::size_t k = 0; k < n; ++k) {
      const UInt b = fbits(static_cast<Float>(cur.data[k]));
      for (std::size_t p = 0; p < sizeof(Float); ++p) {
        best.push_back(static_cast<std::uint8_t>(b >> (8 * p)));
      }
    }
  }

  frame.mode = best_mode;
  frame.payload = std::move(best);
  return frame;
}

template <typename Float>
std::vector<double> decode_at(const CompressedFrame& frame,
                              const FieldView* prev, const FieldView* prev2,
                              std::uint32_t nx, std::uint32_t ny) {
  using UInt = typename BitsOf<Float>::type;
  const std::vector<std::uint8_t>& in = frame.payload;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  std::vector<UInt> oc(n);

  switch (frame.mode) {
    case CompressedFrame::Mode::kRaw: {
      if (in.size() != kHeaderBytes + n * sizeof(Float)) {
        throw std::invalid_argument("decode_frame: bad raw body size");
      }
      std::vector<double> out(n);
      for (std::size_t k = 0; k < n; ++k) {
        UInt b = 0;
        for (std::size_t p = 0; p < sizeof(Float); ++p) {
          b |= static_cast<UInt>(in[kHeaderBytes + k * sizeof(Float) + p])
               << (8 * p);
        }
        out[k] = static_cast<double>(bits_to_float<Float>(b));
      }
      return out;
    }
    case CompressedFrame::Mode::kIntra: {
      std::vector<UInt> resid;
      rc_decode_planes(in, kHeaderBytes, n, resid);
      for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nx; ++i) {
          const std::size_t k = j * nx + i;
          oc[k] = static_cast<UInt>(unzigzag(resid[k]) +
                                    lorenzo_predict(oc.data(), nx, i, j));
        }
      }
      break;
    }
    case CompressedFrame::Mode::kDelta: {
      if (prev == nullptr || prev->data == nullptr || prev->nx != nx ||
          prev->ny != ny) {
        throw std::invalid_argument(
            "decode_frame: delta frame needs the matching previous frame");
      }
      const std::vector<UInt> o1 = ordered<Float>(*prev);
      std::vector<UInt> resid;
      rc_decode_planes(in, kHeaderBytes, n, resid);
      for (std::size_t k = 0; k < n; ++k) {
        oc[k] = static_cast<UInt>(unzigzag(resid[k]) + o1[k]);
      }
      break;
    }
    case CompressedFrame::Mode::kDelta2: {
      if (prev == nullptr || prev->data == nullptr || prev->nx != nx ||
          prev->ny != ny || prev2 == nullptr || prev2->data == nullptr ||
          prev2->nx != nx || prev2->ny != ny) {
        throw std::invalid_argument(
            "decode_frame: delta2 frame needs the two previous frames");
      }
      const std::vector<UInt> o1 = ordered<Float>(*prev);
      const std::vector<UInt> o2 = ordered<Float>(*prev2);
      std::vector<UInt> resid;
      rc_decode_planes(in, kHeaderBytes, n, resid);
      for (std::size_t k = 0; k < n; ++k) {
        const UInt pred = static_cast<UInt>(2 * o1[k] - o2[k]);
        oc[k] = static_cast<UInt>(unzigzag(resid[k]) + pred);
      }
      break;
    }
    default:
      throw std::invalid_argument("decode_frame: unknown mode");
  }

  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = static_cast<double>(bits_to_float<Float>(order_unmap(oc[k])));
  }
  return out;
}

}  // namespace

CompressedFrame encode_frame(FieldView cur, const FieldView* prev,
                             const FieldView* prev2,
                             CodecPrecision precision) {
  const std::size_t n = cur.count();
  if (n > 0 && cur.data == nullptr) {
    throw std::invalid_argument("encode_frame: null data with nonzero dims");
  }
  if (n == 0) {
    CompressedFrame frame;
    frame.nx = static_cast<std::uint32_t>(cur.nx);
    frame.ny = static_cast<std::uint32_t>(cur.ny);
    frame.precision = precision;
    frame.mode = CompressedFrame::Mode::kRaw;
    frame.payload = make_header(frame.mode, precision, frame.nx, frame.ny);
    return frame;
  }
  return precision == CodecPrecision::kFloat32
             ? encode_at<float>(cur, prev, prev2, precision)
             : encode_at<double>(cur, prev, prev2, precision);
}

std::vector<double> decode_frame(const CompressedFrame& frame,
                                 const FieldView* prev,
                                 const FieldView* prev2) {
  const std::vector<std::uint8_t>& in = frame.payload;
  if (in.size() < kHeaderBytes || std::memcmp(in.data(), kMagic, 4) != 0) {
    throw std::invalid_argument("decode_frame: bad header");
  }
  const auto mode = static_cast<CompressedFrame::Mode>(in[4]);
  const auto precision = static_cast<CodecPrecision>(in[5]);
  const std::uint32_t nx = get_u32(in, 6);
  const std::uint32_t ny = get_u32(in, 10);
  if (mode != frame.mode || precision != frame.precision ||
      nx != frame.nx || ny != frame.ny) {
    throw std::invalid_argument("decode_frame: header/frame mismatch");
  }
  if (precision != CodecPrecision::kFloat32 &&
      precision != CodecPrecision::kFloat64) {
    throw std::invalid_argument("decode_frame: unknown precision");
  }
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  if (n == 0) {
    if (in.size() != kHeaderBytes) {
      throw std::invalid_argument("decode_frame: empty frame with body");
    }
    return {};
  }
  return precision == CodecPrecision::kFloat32
             ? decode_at<float>(frame, prev, prev2, nx, ny)
             : decode_at<double>(frame, prev, prev2, nx, ny);
}

// ---- FrameFieldCodec ----

namespace {

// Bitwise comparison at the coded precision: NaNs must survive, so the
// doubles are compared through their narrowed bit patterns.
bool bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                CodecPrecision precision) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (precision == CodecPrecision::kFloat32) {
      if (fbits(static_cast<float>(a[k])) !=
          fbits(static_cast<float>(b[k]))) {
        return false;
      }
    } else {
      if (fbits(a[k]) != fbits(b[k])) return false;
    }
  }
  return true;
}

}  // namespace

FrameFieldCodec::FrameFieldCodec(CodecOptions options) : options_(options) {}

void FrameFieldCodec::reset_history() { slots_.clear(); }

double FrameFieldCodec::cumulative_ratio() const {
  return total_raw_ == 0 || total_encoded_ == 0
             ? 1.0
             : static_cast<double>(total_raw_) /
                   static_cast<double>(total_encoded_);
}

CodecFrameReport FrameFieldCodec::encode_frame_fields(
    const std::vector<FieldView>& fields) {
  CodecFrameReport report;
  if (fields.size() > slots_.size()) slots_.resize(fields.size());

  for (std::size_t s = 0; s < fields.size(); ++s) {
    Slot& slot = slots_[s];
    const FieldView cur = fields[s];
    const FieldView prev{slot.prev.data(), slot.prev_nx, slot.prev_ny};
    const FieldView prev2{slot.prev2.data(), slot.prev2_nx, slot.prev2_ny};

    const auto t0 = std::chrono::steady_clock::now();
    const CompressedFrame enc =
        encode_frame(cur, slot.prev.empty() ? nullptr : &prev,
                     slot.prev2.empty() ? nullptr : &prev2,
                     options_.precision);
    const auto t1 = std::chrono::steady_clock::now();
    report.raw_bytes += enc.raw_bytes();
    report.encoded_bytes += enc.encoded_bytes();
    report.encode_seconds += std::chrono::duration<double>(t1 - t0).count();
    ++report.fields;

    if (options_.verify_roundtrip) {
      const auto d0 = std::chrono::steady_clock::now();
      const std::vector<double> back =
          decode_frame(enc, slot.prev.empty() ? nullptr : &prev,
                       slot.prev2.empty() ? nullptr : &prev2);
      const auto d1 = std::chrono::steady_clock::now();
      report.decode_seconds +=
          std::chrono::duration<double>(d1 - d0).count();
      std::vector<double> want(cur.data, cur.data + cur.count());
      if (!bits_equal(back, want, options_.precision)) {
        throw std::logic_error(
            "FrameFieldCodec: decoded frame does not reconstruct the "
            "encoded values bit-for-bit");
      }
    }

    slot.prev2 = std::move(slot.prev);
    slot.prev2_nx = slot.prev_nx;
    slot.prev2_ny = slot.prev_ny;
    slot.prev.assign(cur.data, cur.data + cur.count());
    slot.prev_nx = cur.nx;
    slot.prev_ny = cur.ny;
  }

  total_raw_ += report.raw_bytes;
  total_encoded_ += report.encoded_bytes;
  last_ratio_ = report.ratio();
  return report;
}

}  // namespace adaptviz
