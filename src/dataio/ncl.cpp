#include "dataio/ncl.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace adaptviz {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'L', '1'};
constexpr std::uint32_t kMaxNameLen = 1u << 16;
constexpr std::uint64_t kMaxElements = 1ull << 32;

void put_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.write(b, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.write(b, 8);
}

void put_f64(std::ostream& out, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.write(b, 8);
}

std::uint32_t get_u32(std::istream& in) {
  char b[4];
  in.read(b, 4);
  if (!in) throw std::runtime_error("ncl: truncated stream (u32)");
  std::uint32_t v;
  std::memcpy(&v, b, 4);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  char b[8];
  in.read(b, 8);
  if (!in) throw std::runtime_error("ncl: truncated stream (u64)");
  std::uint64_t v;
  std::memcpy(&v, b, 8);
  return v;
}

double get_f64(std::istream& in) {
  char b[8];
  in.read(b, 8);
  if (!in) throw std::runtime_error("ncl: truncated stream (f64)");
  double v;
  std::memcpy(&v, b, 8);
  return v;
}

void put_name(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_name(std::istream& in) {
  const std::uint32_t len = get_u32(in);
  if (len > kMaxNameLen) throw std::runtime_error("ncl: name too long");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("ncl: truncated stream (name)");
  return s;
}

std::uint64_t name_size(const std::string& s) { return 4 + s.size(); }

void put_attr(std::ostream& out, const std::string& name,
              const NclAttribute& a) {
  put_name(out, name);
  if (const auto* s = std::get_if<std::string>(&a)) {
    out.put(0);
    put_name(out, *s);
  } else if (const auto* d = std::get_if<double>(&a)) {
    out.put(1);
    put_f64(out, *d);
  } else {
    out.put(2);
    put_u64(out, static_cast<std::uint64_t>(std::get<std::int64_t>(a)));
  }
}

std::pair<std::string, NclAttribute> get_attr(std::istream& in) {
  std::string name = get_name(in);
  const int kind = in.get();
  if (kind == 0) return {std::move(name), get_name(in)};
  if (kind == 1) return {std::move(name), get_f64(in)};
  if (kind == 2) {
    return {std::move(name), static_cast<std::int64_t>(get_u64(in))};
  }
  throw std::runtime_error("ncl: unknown attribute kind");
}

std::uint64_t attr_size(const std::string& name, const NclAttribute& a) {
  std::uint64_t s = name_size(name) + 1;
  if (const auto* str = std::get_if<std::string>(&a)) {
    s += name_size(*str);
  } else {
    s += 8;
  }
  return s;
}

}  // namespace

std::uint64_t NclVariable::element_count(
    const std::vector<NclDimension>& dims_table) const {
  std::uint64_t n = 1;
  for (std::uint32_t d : dims) {
    n *= dims_table.at(d).size;
  }
  return n;
}

std::uint32_t NclFile::add_dimension(const std::string& name,
                                     std::uint64_t size) {
  for (const auto& d : dims_) {
    if (d.name == name) {
      throw std::invalid_argument("ncl: duplicate dimension " + name);
    }
  }
  dims_.push_back(NclDimension{name, size});
  return static_cast<std::uint32_t>(dims_.size()) - 1;
}

void NclFile::add_variable(NclVariable var) {
  for (std::uint32_t d : var.dims) {
    if (d >= dims_.size()) {
      throw std::invalid_argument("ncl: variable " + var.name +
                                  " references unknown dimension");
    }
  }
  if (var.data.size() != var.element_count(dims_)) {
    throw std::invalid_argument("ncl: variable " + var.name +
                                " data size does not match dimensions");
  }
  for (const auto& v : vars_) {
    if (v.name == var.name) {
      throw std::invalid_argument("ncl: duplicate variable " + var.name);
    }
  }
  vars_.push_back(std::move(var));
}

void NclFile::set_attribute(const std::string& name, NclAttribute value) {
  attrs_[name] = std::move(value);
}

const NclVariable& NclFile::variable(const std::string& name) const {
  for (const auto& v : vars_) {
    if (v.name == name) return v;
  }
  throw std::out_of_range("ncl: no variable " + name);
}

bool NclFile::has_variable(const std::string& name) const {
  for (const auto& v : vars_) {
    if (v.name == name) return true;
  }
  return false;
}

const NclDimension& NclFile::dimension(const std::string& name) const {
  for (const auto& d : dims_) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("ncl: no dimension " + name);
}

std::uint64_t NclFile::encoded_size() const {
  std::uint64_t s = 4 + 4;  // magic + ndims
  for (const auto& d : dims_) s += name_size(d.name) + 8;
  s += 4;
  for (const auto& [n, a] : attrs_) s += attr_size(n, a);
  s += 4;
  for (const auto& v : vars_) {
    s += name_size(v.name) + 4 + 4ull * v.dims.size() + 4;
    for (const auto& [n, a] : v.attributes) s += attr_size(n, a);
    s += 8 + 8ull * v.data.size();
  }
  return s;
}

void NclFile::encode(std::ostream& out) const {
  out.write(kMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(dims_.size()));
  for (const auto& d : dims_) {
    put_name(out, d.name);
    put_u64(out, d.size);
  }
  put_u32(out, static_cast<std::uint32_t>(attrs_.size()));
  for (const auto& [n, a] : attrs_) put_attr(out, n, a);
  put_u32(out, static_cast<std::uint32_t>(vars_.size()));
  for (const auto& v : vars_) {
    put_name(out, v.name);
    put_u32(out, static_cast<std::uint32_t>(v.dims.size()));
    for (std::uint32_t d : v.dims) put_u32(out, d);
    put_u32(out, static_cast<std::uint32_t>(v.attributes.size()));
    for (const auto& [n, a] : v.attributes) put_attr(out, n, a);
    put_u64(out, v.data.size());
    for (double x : v.data) put_f64(out, x);
  }
  if (!out) throw std::runtime_error("ncl: write failed");
}

NclFile NclFile::decode(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("ncl: bad magic");
  }
  NclFile f;
  const std::uint32_t ndims = get_u32(in);
  for (std::uint32_t i = 0; i < ndims; ++i) {
    std::string name = get_name(in);
    const std::uint64_t size = get_u64(in);
    f.dims_.push_back(NclDimension{std::move(name), size});
  }
  const std::uint32_t ngattrs = get_u32(in);
  for (std::uint32_t i = 0; i < ngattrs; ++i) {
    auto [n, a] = get_attr(in);
    f.attrs_[n] = std::move(a);
  }
  const std::uint32_t nvars = get_u32(in);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    NclVariable v;
    v.name = get_name(in);
    const std::uint32_t vd = get_u32(in);
    for (std::uint32_t k = 0; k < vd; ++k) {
      const std::uint32_t d = get_u32(in);
      if (d >= f.dims_.size()) {
        throw std::runtime_error("ncl: variable references unknown dimension");
      }
      v.dims.push_back(d);
    }
    const std::uint32_t na = get_u32(in);
    for (std::uint32_t k = 0; k < na; ++k) {
      auto [n, a] = get_attr(in);
      v.attributes[n] = std::move(a);
    }
    const std::uint64_t count = get_u64(in);
    if (count > kMaxElements || count != v.element_count(f.dims_)) {
      throw std::runtime_error("ncl: variable " + v.name +
                               " has inconsistent element count");
    }
    v.data.resize(count);
    for (std::uint64_t k = 0; k < count; ++k) v.data[k] = get_f64(in);
    f.vars_.push_back(std::move(v));
  }
  return f;
}

void NclFile::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("ncl: cannot open " + path);
  encode(out);
}

NclFile NclFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ncl: cannot open " + path);
  return decode(in);
}

}  // namespace adaptviz
