#include "dataio/frame.hpp"

#include <stdexcept>

namespace adaptviz {

void FrameCatalog::push(Frame frame) {
  if (!frames_.empty() && frame.sequence <= frames_.back().sequence) {
    throw std::invalid_argument("FrameCatalog: non-increasing sequence");
  }
  if (frame.size < Bytes(0)) {
    throw std::invalid_argument("FrameCatalog: negative frame size");
  }
  total_ += frame.size;
  frames_.push_back(std::move(frame));
}

void FrameCatalog::requeue_front(Frame frame) {
  if (!frames_.empty() && frame.sequence >= frames_.front().sequence) {
    throw std::invalid_argument(
        "FrameCatalog: requeued frame must precede the current head");
  }
  if (frame.size < Bytes(0)) {
    throw std::invalid_argument("FrameCatalog: negative frame size");
  }
  total_ += frame.size;
  frames_.push_front(std::move(frame));
}

std::optional<Frame> FrameCatalog::oldest() const {
  if (frames_.empty()) return std::nullopt;
  return frames_.front();
}

Frame FrameCatalog::pop_oldest() {
  if (frames_.empty()) throw std::logic_error("FrameCatalog: empty");
  Frame f = std::move(frames_.front());
  frames_.pop_front();
  total_ -= f.size;
  return f;
}

}  // namespace adaptviz
