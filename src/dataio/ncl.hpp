// "NCL" — a netCDF-lite self-describing container.
//
// WRF writes its frames as NetCDF; the real format (and its libraries) is
// out of scope offline, so NCL reproduces the properties the framework
// relies on: named dimensions, named multi-dimensional variables with
// per-variable attributes, global attributes, and a binary encoding whose
// size scales with the grid. Layout (little-endian):
//
//   magic "NCL1" | u32 ndims | dims | u32 ngattrs | attrs | u32 nvars | vars
//   dim  := name | u64 size
//   attr := name | u8 kind | payload        (kind: 0=string, 1=f64, 2=i64)
//   var  := name | u32 ndims | dim indices | u32 nattrs | attrs
//           | u64 count | f64 * count
//   name := u32 length | bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace adaptviz {

using NclAttribute = std::variant<std::string, double, std::int64_t>;

struct NclDimension {
  std::string name;
  std::uint64_t size = 0;
};

struct NclVariable {
  std::string name;
  std::vector<std::uint32_t> dims;  // indices into the file's dimension table
  std::map<std::string, NclAttribute> attributes;
  std::vector<double> data;  // row-major over dims

  /// Product of dimension sizes, for validation against data.size().
  [[nodiscard]] std::uint64_t element_count(
      const std::vector<NclDimension>& dims_table) const;
};

class NclFile {
 public:
  /// Registers a dimension and returns its index. Duplicate names throw.
  std::uint32_t add_dimension(const std::string& name, std::uint64_t size);

  /// Adds a variable over previously registered dimensions; data length must
  /// equal the product of dimension sizes.
  void add_variable(NclVariable var);

  void set_attribute(const std::string& name, NclAttribute value);

  [[nodiscard]] const std::vector<NclDimension>& dimensions() const {
    return dims_;
  }
  [[nodiscard]] const std::vector<NclVariable>& variables() const {
    return vars_;
  }
  [[nodiscard]] const std::map<std::string, NclAttribute>& attributes() const {
    return attrs_;
  }

  /// Lookup helpers; throw std::out_of_range when missing.
  [[nodiscard]] const NclVariable& variable(const std::string& name) const;
  [[nodiscard]] const NclDimension& dimension(const std::string& name) const;
  [[nodiscard]] bool has_variable(const std::string& name) const;

  /// Serialized size in bytes (what the disk model accounts for).
  [[nodiscard]] std::uint64_t encoded_size() const;

  void encode(std::ostream& out) const;
  static NclFile decode(std::istream& in);

  void save(const std::string& path) const;
  static NclFile load(const std::string& path);

 private:
  std::vector<NclDimension> dims_;
  std::vector<NclVariable> vars_;
  std::map<std::string, NclAttribute> attrs_;
};

}  // namespace adaptviz
