// Lossless frame codec for 2-D fields.
//
// The pipeline is the classic floating-point compressor stack (cf. Gorilla,
// fpzip, and ISAAC's compressed frame streaming):
//
//   1. order mapping: each value's IEEE bit pattern is mapped to an
//      order-preserving unsigned integer, so subtracting nearby values
//      yields small residuals instead of XOR bit soup.
//   2. prediction: the encoder tries a spatial Lorenzo predictor within
//      the frame (kIntra), the same point in the previous frame (kDelta),
//      and a linear-in-time extrapolation from the two previous frames
//      (kDelta2, residual = cur - (2*prev - prev2)); it keeps whichever
//      residual stream codes smallest. Fields advect smoothly between
//      consecutive outputs, so kDelta2 usually wins once two frames of
//      history exist at the current resolution.
//   3. zigzag + byte planes: signed residuals become small unsigned codes
//      whose high byte planes are almost entirely zero.
//   4. adaptive range coding: one order-0 adaptive byte model per plane,
//      driven through a carry-propagating range coder. This approaches the
//      per-plane entropy — near-constant planes cost fractions of a bit
//      per value — where run-length framing would waste ~25%.
//
// Fields are presented as doubles (the compute grids) but frames on the
// wire are float32 — WRF writes single-precision output, and the modeled
// Frame::bytes assumes 4 bytes per value — so the default precision first
// narrows each value to float and codes 4 planes. Encoding is exact with
// respect to that frame representation: decode returns bit-for-bit the
// narrowed values (or the original doubles under kFloat64), including NaNs
// and signed zeros. A raw-store escape bounds pathological inputs at raw
// size + header. No dependencies beyond the standard library — dataio
// stays below the weather layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adaptviz {

/// A borrowed, row-major (ny, nx) view of a double field. The codec does
/// not depend on weather/Field2D; callers pass `{f.data().data(), f.nx(),
/// f.ny()}`.
struct FieldView {
  const double* data = nullptr;
  std::size_t nx = 0;
  std::size_t ny = 0;

  [[nodiscard]] std::size_t count() const { return nx * ny; }
};

/// Value width the codec works at. kFloat32 narrows each double to float
/// before coding (the frame-file precision); kFloat64 codes full doubles.
enum class CodecPrecision : std::uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
};

/// One losslessly encoded field. `payload` is self-contained: dimensions,
/// mode, precision, and the entropy-coded planes.
struct CompressedFrame {
  /// Residual predictor the encoder settled on.
  enum class Mode : std::uint8_t {
    kRaw = 0,     // verbatim values (escape hatch; never worse than raw)
    kIntra = 1,   // spatial Lorenzo prediction within the frame
    kDelta = 2,   // temporal difference against the previous frame
    kDelta2 = 3,  // linear extrapolation from the two previous frames
  };

  std::uint32_t nx = 0;
  std::uint32_t ny = 0;
  Mode mode = Mode::kRaw;
  CodecPrecision precision = CodecPrecision::kFloat32;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t value_bytes() const {
    return precision == CodecPrecision::kFloat32 ? 4 : 8;
  }
  [[nodiscard]] std::size_t raw_bytes() const {
    return static_cast<std::size_t>(nx) * ny * value_bytes();
  }
  [[nodiscard]] std::size_t encoded_bytes() const { return payload.size(); }
  /// raw/encoded; 1.0 for an empty field.
  [[nodiscard]] double ratio() const {
    return raw_bytes() == 0 || payload.empty()
               ? 1.0
               : static_cast<double>(raw_bytes()) /
                     static_cast<double>(encoded_bytes());
  }
};

/// Encodes `cur`. `prev` (the frame before `cur`) and `prev2` (the frame
/// before that) may each be null or differently sized (first frames, or a
/// resolution change mid-run); the temporal predictors quietly drop out and
/// the encoder falls back to intra/raw. Passing `prev2` without a usable
/// `prev` never selects kDelta2.
CompressedFrame encode_frame(FieldView cur, const FieldView* prev,
                             const FieldView* prev2 = nullptr,
                             CodecPrecision precision =
                                 CodecPrecision::kFloat32);

/// Exact inverse. `prev`/`prev2` must be the same views that were passed to
/// encode_frame when the mode requires them (kDelta: prev; kDelta2: both)
/// and are ignored otherwise. Under kFloat32 the returned doubles are the
/// narrowed float values — identical to what encode saw after narrowing,
/// bit for bit. Throws std::invalid_argument on a corrupt payload or a
/// missing/mismatched history frame.
std::vector<double> decode_frame(const CompressedFrame& frame,
                                 const FieldView* prev,
                                 const FieldView* prev2 = nullptr);

/// Frame-pipeline codec configuration (ExperimentConfig::codec / the
/// `[codec]` scenario section).
struct CodecOptions {
  /// Off by default: the pipeline's byte accounting is unchanged and every
  /// existing golden stands.
  bool enabled = false;
  CodecPrecision precision = CodecPrecision::kFloat32;
  /// Decode each encoded field and compare bit-for-bit against what was
  /// encoded. Cheap at compute-grid sizes, proves losslessness on every
  /// frame of every run, and produces the decode-time measurement.
  bool verify_roundtrip = true;
};

/// Aggregate result of encoding one frame's field set.
struct CodecFrameReport {
  std::size_t raw_bytes = 0;      // at the coded precision, summed
  std::size_t encoded_bytes = 0;  // payload bytes, summed
  double encode_seconds = 0.0;    // host wall clock
  double decode_seconds = 0.0;    // 0 unless verify_roundtrip
  int fields = 0;

  [[nodiscard]] double ratio() const {
    return raw_bytes == 0 || encoded_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(encoded_bytes);
  }
};

/// Stateful per-run frame coder: retains the two previous frames of every
/// field slot so the temporal predictors apply, and reports measured sizes
/// and timings per frame. Fields are matched to history by position, so
/// callers must present a stable order (e.g. parent h,u,v then nest
/// h,u,v). A resolution change mid-run is handled naturally: history of
/// the old shape disables the temporal modes for one frame (two for
/// kDelta2) and the codec falls back to intra.
class FrameFieldCodec {
 public:
  explicit FrameFieldCodec(CodecOptions options);

  /// Encodes one frame's fields against the retained history, then makes
  /// `fields` the new history. Throws std::logic_error if verify_roundtrip
  /// is set and any field fails to reconstruct bit-for-bit.
  CodecFrameReport encode_frame_fields(const std::vector<FieldView>& fields);

  /// Drops all history (job restart from checkpoint).
  void reset_history();

  [[nodiscard]] const CodecOptions& options() const { return options_; }
  /// Totals since construction.
  [[nodiscard]] std::size_t total_raw_bytes() const { return total_raw_; }
  [[nodiscard]] std::size_t total_encoded_bytes() const {
    return total_encoded_;
  }
  /// Cumulative ratio over every field encoded so far (1.0 before the
  /// first frame).
  [[nodiscard]] double cumulative_ratio() const;
  /// Ratio of the most recent frame (1.0 before the first frame).
  [[nodiscard]] double last_ratio() const { return last_ratio_; }

 private:
  struct Slot {
    std::vector<double> prev, prev2;
    std::size_t prev_nx = 0, prev_ny = 0;
    std::size_t prev2_nx = 0, prev2_ny = 0;
  };

  CodecOptions options_;
  std::vector<Slot> slots_;
  std::size_t total_raw_ = 0;
  std::size_t total_encoded_ = 0;
  double last_ratio_ = 1.0;
};

}  // namespace adaptviz
