// Frames and the simulation-site frame catalog.
//
// "A frame is the simulation output of one time step of simulation and
// corresponds to the smallest unit of simulation output that can be
// visualized" (paper, Table II context). A frame here carries:
//
//  * bookkeeping the resource models act on (sim time, modeled byte size —
//    the size the frame would have at the *modeled* grid resolution), and
//  * optionally a real NCL payload at the compute resolution, so the
//    visualization pipeline can render actual cyclone imagery.
//
// The catalog is the set of frames currently residing on the simulation
// site's disk, in output order; the frame sender always ships the oldest
// frame first and removal frees the modeled bytes (the paper assumes data
// transferred to the visualization site is removed from the simulation
// site).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "dataio/ncl.hpp"
#include "util/units.hpp"

namespace adaptviz {

struct Frame {
  /// Monotone output sequence number (restarts do not reset it).
  std::int64_t sequence = 0;
  /// Simulated weather time this frame snapshots.
  SimSeconds sim_time{};
  /// Modeled grid resolution (km) when the frame was produced.
  double resolution_km = 0.0;
  /// Headline diagnostics riding in the frame metadata (a visualization
  /// site can steer on these even when the full payload is not retained).
  double min_pressure_hpa = 0.0;
  bool nest_active = false;
  /// Bytes the frame occupies on disk / on the wire at the modeled grid.
  /// With the frame codec enabled this is the *encoded* size — it is what
  /// the disk, the WAN transfer planner, and the serve cache account.
  Bytes size{};
  /// Pre-codec (decoded) size at the modeled grid; zero when the codec is
  /// off. Rendering cost scales with this, not the wire size.
  Bytes raw_size{};
  /// Actual field data at the compute grid; may be null in fast experiments.
  std::shared_ptr<const NclFile> payload;

  /// Bytes a consumer touches after decoding: raw_size when the codec
  /// populated it, otherwise size (codec off: the two are the same thing).
  [[nodiscard]] Bytes decoded_bytes() const {
    return raw_size.count() > 0 ? raw_size : size;
  }
};

class FrameCatalog {
 public:
  /// Appends a newly written frame. Sequence numbers must be increasing;
  /// throws std::invalid_argument otherwise.
  void push(Frame frame);

  /// Oldest frame still on disk, or nullopt when empty (peek).
  [[nodiscard]] std::optional<Frame> oldest() const;

  /// Removes and returns the oldest frame; throws std::logic_error if empty.
  Frame pop_oldest();

  /// Returns a frame to the head of the catalog: the path a failed or
  /// abandoned transfer takes (its bytes never left the simulation site's
  /// disk). The frame must precede the current oldest in sequence order;
  /// throws std::invalid_argument otherwise.
  void requeue_front(Frame frame);

  [[nodiscard]] std::size_t count() const { return frames_.size(); }
  [[nodiscard]] bool empty() const { return frames_.empty(); }
  /// Sum of modeled sizes of resident frames.
  [[nodiscard]] Bytes total_bytes() const { return total_; }

  /// The resident-frame queue. Frame payloads are shared immutable
  /// NclFiles, so copying the deque aliases them safely.
  struct State {
    std::deque<Frame> frames;
    Bytes total{};
  };
  [[nodiscard]] State snapshot() const { return State{frames_, total_}; }
  void restore(const State& s) {
    frames_ = s.frames;
    total_ = s.total;
  }

 private:
  std::deque<Frame> frames_;
  Bytes total_{};
};

}  // namespace adaptviz
