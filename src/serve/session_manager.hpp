// Multi-client frame serving at the visualization site.
//
// The paper's receiver feeds exactly one VisIt session. The serving
// subsystem fans the received stream out to N viewer clients instead: every
// frame the receiver hands over is published into the bounded FrameCache,
// and each ViewerSession replays cached frames over its *own* downlink at
// its own pace. Two session modes:
//
//  * live-tail — always deliver the newest frame the client has not seen.
//    A slow downlink simply skips intermediate frames (counted), exactly
//    like tailing a live stream; its lag is bounded by one frame.
//  * catch-up — join at an arbitrary simulated time and replay every frame
//    from there forward, in order, until the cursor reaches the live head.
//
// Backpressure is per client: a session has at most one frame in flight on
// its downlink, so a 60 Kbps straggler holds only its own cursor back —
// never the receiver, never the other sessions, and never the WAN transfer
// from the simulation site.
//
// Catch-up sessions are the cache-miss generators: when their cursor points
// at an evicted frame, the frame is re-rendered at the visualization site
// (bounded re-render slots; the heavy work of concurrently-busy slots runs
// on the shared thread pool, mirroring FrameReceiver), re-inserted into the
// cache, and then delivered to every session that was waiting on it. All
// ordering decisions happen on the event loop, so results are bitwise
// identical for any pool size.
//
// The control plane (steering/control_plane.hpp) adds the interactive
// loop: sessions are addressed by stable ClientId handles, observers
// detach and re-attach mid-run, and per-client view steering
// (pan/zoom/field/colormap) re-renders the client's current frame through
// the same bounded slots — identical (frame, view) requests from
// different clients are deduped onto a single render.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "serve/frame_cache.hpp"
#include "steering/control_plane.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {

enum class ViewerMode { kLiveTail, kCatchUp };

const char* to_string(ViewerMode m);

inline LinkSpec default_viewer_downlink() {
  LinkSpec spec;
  spec.nominal = Bandwidth::mbps(100.0);
  return spec;
}

struct ViewerConfig {
  std::string name = "viewer";
  /// Downlink from the visualization site to this client (per-client link:
  /// campus LAN, home DSL, ...). Latency/outages/fluctuation all apply.
  LinkSpec downlink = default_viewer_downlink();
  ViewerMode mode = ViewerMode::kLiveTail;
  /// Catch-up sessions start replaying at the first frame with
  /// sim_time >= catchup_start; ignored for live-tail.
  SimSeconds catchup_start{0.0};
  /// Wall time the client connects. A catch-up client joining late replays
  /// an era the cache may already have thinned — the cache-miss /
  /// re-render path.
  WallSeconds join_wall{0.0};
};

/// One completed delivery to one client (the viewer-side progress series —
/// the multi-client analogue of the paper's Fig 7 records).
struct DeliveryRecord {
  WallSeconds wall_time{};  // when the last byte reached the client
  SimSeconds sim_time{};    // simulated time of the delivered frame
  std::int64_t sequence = 0;
  Bytes size{};
  /// False when the frame had been evicted and was served via re-render.
  bool cache_hit = true;
};

struct ViewerStats {
  std::int64_t frames_delivered = 0;
  Bytes bytes_delivered{};
  std::int64_t cache_hits = 0;
  std::int64_t rerender_waits = 0;
  /// Live-tail only: frames skipped because a newer one superseded them
  /// before the downlink freed up.
  std::int64_t frames_skipped = 0;
  SimSeconds latest_sim_time{};
};

/// Convenience builder for benches/scenarios: `count` viewers sharing one
/// downlink spec; the first round(count * catchup_fraction) replay from
/// `catchup_start` after connecting at wall time `catchup_join`, the rest
/// live-tail from the start. Names are viewer000, viewer001, ...
std::vector<ViewerConfig> make_viewer_fleet(
    int count, Bandwidth downlink, double catchup_fraction,
    SimSeconds catchup_start, WallSeconds catchup_join = WallSeconds(0.0));

class ViewerSessionManager {
 public:
  /// Heavy re-render work (same contract as FrameReceiver::RenderFn): must
  /// be thread-safe across distinct frames.
  using RenderFn = std::function<void(const Frame&)>;

  struct Options {
    FrameCacheConfig cache{};
    /// Re-render cost model for evicted frames (the visualization site
    /// regenerates the image from its archived fields): fixed setup plus
    /// per-gigabyte scan, like VisualizationProcess.
    double rerender_fixed_seconds = 0.5;
    double rerender_seconds_per_gb = 3.0;
    /// Parallel re-render slots (>= 1); concurrently-busy slots run their
    /// heavy work on the pool.
    int rerender_workers = 1;
  };

  ViewerSessionManager(EventQueue& queue, Options options, std::uint64_t seed,
                       ThreadPool* pool = nullptr, RenderFn rerender = nullptr);

  /// Registers a client and returns its stable handle. Sessions added
  /// mid-run join the stream from the current head (live-tail) or their
  /// catch-up point. Handles are never recycled: the id stays valid after
  /// detach() (for stats/series queries) and reattach() resumes it.
  ClientId attach(const ViewerConfig& config);

  /// Deprecated shim for the index-based API: attach() and return the
  /// handle's value as an int. ClientId values coincide with historical
  /// indices, so existing callers keep working unchanged.
  int add_viewer(const ViewerConfig& config) {
    return static_cast<int>(attach(config).value);
  }

  /// The observer leaves mid-run: deliveries stop (an in-flight transfer is
  /// abandoned without a record), re-render results it was waiting on are
  /// dropped, and idle() no longer waits for it. Stats and the delivery
  /// series remain queryable. Throws std::invalid_argument on an unknown
  /// id or one that is already detached.
  void detach(ClientId client);

  /// Resumes a detached session under the same handle: the cursor is kept,
  /// so a live-tail client skips to the head (skips counted) and a
  /// catch-up client continues its replay. No-op when already attached.
  void reattach(ClientId client);

  /// True when the id is valid and the session is currently attached.
  [[nodiscard]] bool attached(ClientId client) const;

  /// Handle lookup by client name (first match); nullopt when unknown.
  [[nodiscard]] std::optional<ClientId> find_client(
      const std::string& name) const;

  /// Per-client view steering (pan/zoom/field/colormap). A change
  /// re-renders the client's current frame under the new view; identical
  /// (frame, view) requests from different clients are deduped onto one
  /// render (steer_dedup() counts the saved renders). Throws
  /// std::invalid_argument on an unknown id or malformed view.
  void steer_view(ClientId client, const ViewCommand& view);

  /// Ingest from the FrameReceiver: publishes into the cache and wakes
  /// every session. Sequences must be strictly increasing.
  void on_frame(const Frame& frame);

  [[nodiscard]] const FrameCache& cache() const { return cache_; }
  [[nodiscard]] int viewer_count() const {
    return static_cast<int>(sessions_.size());
  }
  /// Currently-attached sessions (viewer_count() minus detached ones).
  [[nodiscard]] int attached_count() const;

  /// Accessors validate the handle at the API boundary:
  /// std::invalid_argument on an unknown id, never UB on a stale index.
  [[nodiscard]] const ViewerConfig& viewer(ClientId client) const {
    return session_for(client).config;
  }
  [[nodiscard]] const ViewerStats& stats(ClientId client) const {
    return session_for(client).stats;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries(
      ClientId client) const {
    return session_for(client).records;
  }
  /// The client's current view (default until steered).
  [[nodiscard]] const ViewCommand& view(ClientId client) const {
    return session_for(client).view;
  }

  // Deprecated index-based accessors: same data, now validated (stale
  // indices throw instead of UB).
  [[nodiscard]] const ViewerConfig& viewer(int client) const {
    return viewer(ClientId{client});
  }
  [[nodiscard]] const ViewerStats& stats(int client) const {
    return stats(ClientId{client});
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries(
      int client) const {
    return deliveries(ClientId{client});
  }

  /// Total deliveries across all clients.
  [[nodiscard]] std::int64_t frames_served() const { return frames_served_; }
  /// Total re-renders performed for evicted frames.
  [[nodiscard]] std::int64_t rerenders() const { return rerenders_; }
  /// Steer-driven re-renders actually performed / saved by deduplication.
  [[nodiscard]] std::int64_t steer_renders() const { return steer_renders_; }
  [[nodiscard]] std::int64_t steer_dedup() const { return steer_dedup_; }
  /// True when every attached session is caught up and nothing is in
  /// flight — the framework's drain condition.
  [[nodiscard]] bool idle() const;

  /// One pending or in-service render: (sequence, canonical view key).
  /// The default view maps to key "" so cache-miss re-renders behave
  /// exactly as before the control plane existed.
  using RenderKey = std::pair<std::int64_t, std::string>;

  /// Cache contents, replay index, the full per-session state (cursor,
  /// latches, view, downlink link state), and the re-render pipeline.
  /// Sessions attached after the snapshot are dropped by restore() —
  /// their pending events rewind with the EventQueue.
  struct SessionState {
    ViewerConfig config{};
    NetworkLink::State downlink;
    std::int64_t cursor = -1;
    bool active = false;
    bool detached = false;
    bool in_flight = false;
    bool waiting_rerender = false;
    ViewCommand view{};
    std::string view_key;
    std::optional<Frame> pending;
    ViewerStats stats{};
    std::vector<DeliveryRecord> records;
  };
  struct State {
    FrameCache::State cache{};
    std::vector<Frame> index;
    std::vector<SessionState> sessions;
    std::deque<RenderKey> rerender_fifo;
    std::map<RenderKey, std::vector<int>> rerender_waiters;
    std::set<RenderKey> rerender_in_service;
    int rerendering = 0;
    std::int64_t frames_served = 0;
    std::int64_t rerenders = 0;
    std::int64_t steer_renders = 0;
    std::int64_t steer_dedup = 0;
  };
  [[nodiscard]] State snapshot() const;
  void restore(const State& s);

 private:
  struct Session {
    ViewerConfig config;
    std::unique_ptr<NetworkLink> downlink;
    std::int64_t cursor = -1;  // last delivered sequence
    bool active = false;       // false until join_wall passes
    bool detached = false;
    bool in_flight = false;
    bool waiting_rerender = false;
    ViewCommand view{};        // current steered view
    std::string view_key;      // view_key(view), cached ("" = default)
    /// Re-render finished while a transfer was in flight: delivered next.
    std::optional<Frame> pending;
    ViewerStats stats;
    std::vector<DeliveryRecord> records;
  };

  Session& session_for(ClientId client);
  const Session& session_for(ClientId client) const;
  void pump(int idx);
  void start_transfer(int idx, const Frame& frame, bool cache_hit);
  void request_rerender(int idx, const RenderKey& key);
  void drain_rerenders();
  /// Next sequence the session should receive, or nullopt when caught up.
  [[nodiscard]] std::optional<std::int64_t> next_sequence(
      const Session& s) const;
  [[nodiscard]] const Frame& meta(std::int64_t sequence) const;

  EventQueue& queue_;
  Options options_;
  ThreadPool* pool_;
  RenderFn rerender_fn_;
  FrameCache cache_;
  std::uint64_t seed_;

  /// Every frame ever received, payload dropped: the replay index catch-up
  /// cursors walk and the metadata source for re-renders. Ordered by
  /// sequence (== arrival order == simulated-time order).
  std::vector<Frame> index_;
  std::vector<Session> sessions_;

  std::deque<RenderKey> rerender_fifo_;        // pending, FIFO
  std::map<RenderKey, std::vector<int>> rerender_waiters_;
  std::set<RenderKey> rerender_in_service_;
  int rerendering_ = 0;  // busy re-render slots
  std::int64_t frames_served_ = 0;
  std::int64_t rerenders_ = 0;
  std::int64_t steer_renders_ = 0;
  std::int64_t steer_dedup_ = 0;
};

}  // namespace adaptviz
