// Multi-client frame serving at the visualization site.
//
// The paper's receiver feeds exactly one VisIt session. The serving
// subsystem fans the received stream out to N viewer clients instead: every
// frame the receiver hands over is published into the bounded FrameCache,
// and each ViewerSession replays cached frames over its *own* downlink at
// its own pace. Two session modes:
//
//  * live-tail — always deliver the newest frame the client has not seen.
//    A slow downlink simply skips intermediate frames (counted), exactly
//    like tailing a live stream; its lag is bounded by one frame.
//  * catch-up — join at an arbitrary simulated time and replay every frame
//    from there forward, in order, until the cursor reaches the live head.
//
// Backpressure is per client: a session has at most one frame in flight on
// its downlink, so a 60 Kbps straggler holds only its own cursor back —
// never the receiver, never the other sessions, and never the WAN transfer
// from the simulation site.
//
// Catch-up sessions are the cache-miss generators: when their cursor points
// at an evicted frame, the frame is re-rendered at the visualization site
// (bounded re-render slots; the heavy work of concurrently-busy slots runs
// on the shared thread pool, mirroring FrameReceiver), re-inserted into the
// cache, and then delivered to every session that was waiting on it. All
// ordering decisions happen on the event loop, so results are bitwise
// identical for any pool size.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "serve/frame_cache.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {

enum class ViewerMode { kLiveTail, kCatchUp };

const char* to_string(ViewerMode m);

inline LinkSpec default_viewer_downlink() {
  LinkSpec spec;
  spec.nominal = Bandwidth::mbps(100.0);
  return spec;
}

struct ViewerConfig {
  std::string name = "viewer";
  /// Downlink from the visualization site to this client (per-client link:
  /// campus LAN, home DSL, ...). Latency/outages/fluctuation all apply.
  LinkSpec downlink = default_viewer_downlink();
  ViewerMode mode = ViewerMode::kLiveTail;
  /// Catch-up sessions start replaying at the first frame with
  /// sim_time >= catchup_start; ignored for live-tail.
  SimSeconds catchup_start{0.0};
  /// Wall time the client connects. A catch-up client joining late replays
  /// an era the cache may already have thinned — the cache-miss /
  /// re-render path.
  WallSeconds join_wall{0.0};
};

/// One completed delivery to one client (the viewer-side progress series —
/// the multi-client analogue of the paper's Fig 7 records).
struct DeliveryRecord {
  WallSeconds wall_time{};  // when the last byte reached the client
  SimSeconds sim_time{};    // simulated time of the delivered frame
  std::int64_t sequence = 0;
  Bytes size{};
  /// False when the frame had been evicted and was served via re-render.
  bool cache_hit = true;
};

struct ViewerStats {
  std::int64_t frames_delivered = 0;
  Bytes bytes_delivered{};
  std::int64_t cache_hits = 0;
  std::int64_t rerender_waits = 0;
  /// Live-tail only: frames skipped because a newer one superseded them
  /// before the downlink freed up.
  std::int64_t frames_skipped = 0;
  SimSeconds latest_sim_time{};
};

/// Convenience builder for benches/scenarios: `count` viewers sharing one
/// downlink spec; the first round(count * catchup_fraction) replay from
/// `catchup_start` after connecting at wall time `catchup_join`, the rest
/// live-tail from the start. Names are viewer000, viewer001, ...
std::vector<ViewerConfig> make_viewer_fleet(
    int count, Bandwidth downlink, double catchup_fraction,
    SimSeconds catchup_start, WallSeconds catchup_join = WallSeconds(0.0));

class ViewerSessionManager {
 public:
  /// Heavy re-render work (same contract as FrameReceiver::RenderFn): must
  /// be thread-safe across distinct frames.
  using RenderFn = std::function<void(const Frame&)>;

  struct Options {
    FrameCacheConfig cache{};
    /// Re-render cost model for evicted frames (the visualization site
    /// regenerates the image from its archived fields): fixed setup plus
    /// per-gigabyte scan, like VisualizationProcess.
    double rerender_fixed_seconds = 0.5;
    double rerender_seconds_per_gb = 3.0;
    /// Parallel re-render slots (>= 1); concurrently-busy slots run their
    /// heavy work on the pool.
    int rerender_workers = 1;
  };

  ViewerSessionManager(EventQueue& queue, Options options, std::uint64_t seed,
                       ThreadPool* pool = nullptr, RenderFn rerender = nullptr);

  /// Registers a client; returns its index. Sessions added mid-run join the
  /// stream from the current head (live-tail) or their catch-up point.
  int add_viewer(const ViewerConfig& config);

  /// Ingest from the FrameReceiver: publishes into the cache and wakes
  /// every session. Sequences must be strictly increasing.
  void on_frame(const Frame& frame);

  [[nodiscard]] const FrameCache& cache() const { return cache_; }
  [[nodiscard]] int viewer_count() const {
    return static_cast<int>(sessions_.size());
  }
  [[nodiscard]] const ViewerConfig& viewer(int client) const {
    return sessions_[static_cast<std::size_t>(client)].config;
  }
  [[nodiscard]] const ViewerStats& stats(int client) const {
    return sessions_[static_cast<std::size_t>(client)].stats;
  }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries(
      int client) const {
    return sessions_[static_cast<std::size_t>(client)].records;
  }

  /// Total deliveries across all clients.
  [[nodiscard]] std::int64_t frames_served() const { return frames_served_; }
  /// Total re-renders performed for evicted frames.
  [[nodiscard]] std::int64_t rerenders() const { return rerenders_; }
  /// True when every session is caught up and nothing is in flight — the
  /// framework's drain condition.
  [[nodiscard]] bool idle() const;

 private:
  struct Session {
    ViewerConfig config;
    std::unique_ptr<NetworkLink> downlink;
    std::int64_t cursor = -1;  // last delivered sequence
    bool active = false;       // false until join_wall passes
    bool in_flight = false;
    bool waiting_rerender = false;
    ViewerStats stats;
    std::vector<DeliveryRecord> records;
  };

  void pump(int idx);
  void start_transfer(int idx, const Frame& frame, bool cache_hit);
  void request_rerender(int idx, std::int64_t sequence);
  void drain_rerenders();
  /// Next sequence the session should receive, or nullopt when caught up.
  [[nodiscard]] std::optional<std::int64_t> next_sequence(
      const Session& s) const;
  [[nodiscard]] const Frame& meta(std::int64_t sequence) const;

  EventQueue& queue_;
  Options options_;
  ThreadPool* pool_;
  RenderFn rerender_fn_;
  FrameCache cache_;
  std::uint64_t seed_;

  /// Every frame ever received, payload dropped: the replay index catch-up
  /// cursors walk and the metadata source for re-renders. Ordered by
  /// sequence (== arrival order == simulated-time order).
  std::vector<Frame> index_;
  std::vector<Session> sessions_;

  std::deque<std::int64_t> rerender_fifo_;        // pending, FIFO
  std::map<std::int64_t, std::vector<int>> rerender_waiters_;
  std::set<std::int64_t> rerender_in_service_;
  int rerendering_ = 0;  // busy re-render slots
  std::int64_t frames_served_ = 0;
  std::int64_t rerenders_ = 0;
};

}  // namespace adaptviz
