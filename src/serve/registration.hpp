// Registration server: one serve process fronting N live simulations.
//
// ISAAC-style in-situ pipelines invert the usual connection direction: the
// *simulation* registers with a long-lived server when it starts, and
// observers discover and join runs through that server rather than
// connecting to the simulation directly. The RegistrationServer is that
// rendezvous point for this codebase:
//
//  * Simulations register under their (unique) run label — the campaign
//    runner wires every concurrent run of a sweep to one shared server, so
//    a single serve process fronts K registered runs at once.
//  * Observers steer by label or run id from any thread; events buffer in
//    the run's inbox (pre-registration events wait in a pending queue and
//    are handed over the moment the run registers, so "attach at wall X"
//    scripts work no matter which side starts first).
//  * Each run's event loop *pulls*: the framework drains the inbox
//    periodically (in virtual time) and stamps every event onto its own
//    deterministic steering stream. The server never pushes into a run, so
//    cross-thread timing can never leak into simulation results — each run
//    in a concurrent campaign stays bitwise identical to the same run
//    alone.
//  * The outbound direction (observe) keeps a bounded per-run tail of
//    recent observations for monitoring UIs, and the campaign runner
//    publishes live sweep progress (CampaignView) through the same object.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "steering/control_plane.hpp"

namespace adaptviz {

/// Monitoring snapshot of one registered run.
struct RunView {
  ControlPlane::RunId id = -1;
  std::string label;
  bool active = false;        // false once deregistered
  std::size_t inbox = 0;      // events waiting to be drained
  int observers = 0;          // attach events minus detach events
  std::int64_t events = 0;    // total events accepted for this run
  SteeringObservation last_observation{};
  std::int64_t observations = 0;
};

/// Live sweep progress published by a campaign runner fronted by this
/// server (plain data so serve/ stays independent of campaign/).
struct CampaignView {
  std::string name;
  std::size_t finished = 0;
  std::size_t total = 0;
  std::string last_label;  // most recently finished run
  bool last_failed = false;
};

/// Thread-safe multi-run ControlPlane. All methods may be called from any
/// thread; runs drain their inboxes from their own event loops.
class RegistrationServer : public ControlPlane {
 public:
  RegistrationServer() = default;

  // -- ControlPlane --
  /// Throws std::invalid_argument when `label` is already registered and
  /// still active (finished labels are reusable).
  RunId register_run(const std::string& label) override;
  void deregister_run(RunId run) override;
  ClientId attach(RunId run, const std::string& client,
                  const ObserverSpec& spec) override;
  void detach(RunId run, ClientId client) override;
  /// Validates and enqueues; event.wall is the earliest virtual time the
  /// run may apply the event at (0 = as soon as drained).
  void steer(RunId run, SteeringEvent event) override;
  void observe(RunId run, const SteeringObservation& obs) override;
  /// FIFO events with wall <= now. The run-side pull: called from the
  /// owning run's event loop.
  std::vector<SteeringEvent> drain(RunId run, WallSeconds now) override;

  // -- label-keyed conveniences (observer side) --
  /// Steers the run registered under `label`; events sent before the run
  /// registers wait in a pending queue and are delivered on registration.
  void steer(const std::string& label, SteeringEvent event);
  /// Attach by label; buffers like steer() when the run is not yet live.
  void attach(const std::string& label, const std::string& client,
              const ObserverSpec& spec);
  void detach(const std::string& label, const std::string& client);

  // -- monitoring --
  [[nodiscard]] std::vector<RunView> runs() const;
  [[nodiscard]] int active_runs() const;
  [[nodiscard]] int peak_active_runs() const;
  [[nodiscard]] std::int64_t total_registered() const;

  void publish_campaign(const CampaignView& view);
  [[nodiscard]] CampaignView campaign() const;

  /// Observations retained per run for runs()/monitoring (oldest dropped).
  static constexpr std::size_t kObservationTail = 64;

 private:
  struct RunSlot {
    std::string label;
    bool active = true;
    std::deque<SteeringEvent> inbox;
    int observers = 0;
    std::int64_t events = 0;
    SteeringObservation last_observation{};
    std::deque<SteeringObservation> tail;
    std::int64_t observations = 0;
  };

  RunSlot& slot_for(RunId run);  // callers hold mutex_
  void enqueue(RunSlot& slot, SteeringEvent event);

  mutable std::mutex mutex_;
  std::map<RunId, RunSlot> runs_;
  std::map<std::string, RunId> by_label_;  // active labels only
  std::map<std::string, std::deque<SteeringEvent>> pending_by_label_;
  RunId next_run_ = 0;
  std::int64_t next_client_ = 0;
  int peak_active_ = 0;
  CampaignView campaign_{};
};

}  // namespace adaptviz
