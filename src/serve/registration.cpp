#include "serve/registration.hpp"

#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace adaptviz {

RegistrationServer::RunSlot& RegistrationServer::slot_for(RunId run) {
  auto it = runs_.find(run);
  if (it == runs_.end()) {
    throw std::invalid_argument("RegistrationServer: unknown run id " +
                                std::to_string(run));
  }
  return it->second;
}

void RegistrationServer::enqueue(RunSlot& slot, SteeringEvent event) {
  validate(event);
  if (event.type == SteeringEvent::Type::kAttach) ++slot.observers;
  if (event.type == SteeringEvent::Type::kDetach) --slot.observers;
  ++slot.events;
  slot.inbox.push_back(std::move(event));
}

ControlPlane::RunId RegistrationServer::register_run(
    const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (label.empty()) {
    throw std::invalid_argument("RegistrationServer: empty run label");
  }
  if (by_label_.count(label) != 0) {
    throw std::invalid_argument("RegistrationServer: label '" + label +
                                "' is already registered");
  }
  const RunId id = next_run_++;
  RunSlot slot;
  slot.label = label;
  // Events addressed to this label before it went live were parked in the
  // pending queue; they become the new run's initial inbox.
  auto pending = pending_by_label_.find(label);
  if (pending != pending_by_label_.end()) {
    for (SteeringEvent& e : pending->second) enqueue(slot, std::move(e));
    pending_by_label_.erase(pending);
  }
  runs_.emplace(id, std::move(slot));
  by_label_[label] = id;
  int active = 0;
  for (const auto& [rid, s] : runs_) active += s.active ? 1 : 0;
  if (active > peak_active_) peak_active_ = active;
  ADAPTVIZ_LOG_DEBUG("serve", "run '%s' registered (id %lld, %d live)",
                     label.c_str(), static_cast<long long>(id), active);
  return id;
}

void RegistrationServer::deregister_run(RunId run) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = runs_.find(run);
  if (it == runs_.end() || !it->second.active) return;  // idempotent
  it->second.active = false;
  it->second.inbox.clear();
  by_label_.erase(it->second.label);
}

ClientId RegistrationServer::attach(RunId run, const std::string& client,
                                    const ObserverSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  SteeringEvent e;
  e.client = client;
  e.type = SteeringEvent::Type::kAttach;
  e.attach = spec;
  enqueue(slot_for(run), std::move(e));
  return ClientId{next_client_++};
}

void RegistrationServer::detach(RunId run, ClientId client) {
  if (!client.valid()) {
    throw std::invalid_argument("RegistrationServer: invalid client id");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  SteeringEvent e;
  // The server-side handle does not know the client's name; the run maps
  // handles back to names itself, so label-keyed detach is the primary
  // path and this overload is for symmetry with the interface.
  e.client = "client" + std::to_string(client.value);
  e.type = SteeringEvent::Type::kDetach;
  enqueue(slot_for(run), std::move(e));
}

void RegistrationServer::steer(RunId run, SteeringEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  RunSlot& slot = slot_for(run);
  if (!slot.active) {
    throw std::invalid_argument("RegistrationServer: run '" + slot.label +
                                "' has deregistered");
  }
  enqueue(slot, std::move(event));
}

void RegistrationServer::observe(RunId run, const SteeringObservation& obs) {
  std::lock_guard<std::mutex> lock(mutex_);
  RunSlot& slot = slot_for(run);
  slot.last_observation = obs;
  ++slot.observations;
  slot.tail.push_back(obs);
  while (slot.tail.size() > kObservationTail) slot.tail.pop_front();
}

std::vector<SteeringEvent> RegistrationServer::drain(RunId run,
                                                     WallSeconds now) {
  std::lock_guard<std::mutex> lock(mutex_);
  RunSlot& slot = slot_for(run);
  std::vector<SteeringEvent> due;
  // FIFO prefix of events whose earliest-apply time has passed. Later
  // events with earlier walls stay queued behind it — order of submission
  // is order of application, like any command stream.
  while (!slot.inbox.empty() && slot.inbox.front().wall <= now) {
    due.push_back(std::move(slot.inbox.front()));
    slot.inbox.pop_front();
  }
  return due;
}

void RegistrationServer::steer(const std::string& label,
                               SteeringEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) {
    validate(event);
    pending_by_label_[label].push_back(std::move(event));
    return;
  }
  enqueue(slot_for(it->second), std::move(event));
}

void RegistrationServer::attach(const std::string& label,
                                const std::string& client,
                                const ObserverSpec& spec) {
  SteeringEvent e;
  e.client = client;
  e.type = SteeringEvent::Type::kAttach;
  e.attach = spec;
  steer(label, std::move(e));
}

void RegistrationServer::detach(const std::string& label,
                                const std::string& client) {
  SteeringEvent e;
  e.client = client;
  e.type = SteeringEvent::Type::kDetach;
  steer(label, std::move(e));
}

std::vector<RunView> RegistrationServer::runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RunView> out;
  out.reserve(runs_.size());
  for (const auto& [id, slot] : runs_) {
    RunView v;
    v.id = id;
    v.label = slot.label;
    v.active = slot.active;
    v.inbox = slot.inbox.size();
    v.observers = slot.observers;
    v.events = slot.events;
    v.last_observation = slot.last_observation;
    v.observations = slot.observations;
    out.push_back(std::move(v));
  }
  return out;
}

int RegistrationServer::active_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(by_label_.size());
}

int RegistrationServer::peak_active_runs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_active_;
}

std::int64_t RegistrationServer::total_registered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_run_;
}

void RegistrationServer::publish_campaign(const CampaignView& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  campaign_ = view;
}

CampaignView RegistrationServer::campaign() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return campaign_;
}

}  // namespace adaptviz
