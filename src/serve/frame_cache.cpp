#include "serve/frame_cache.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace adaptviz {

const char* to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kStrideThinning:
      return "stride-thin";
  }
  return "?";
}

EvictionPolicy eviction_policy_from(const std::string& name) {
  if (name == "lru") return EvictionPolicy::kLru;
  if (name == "stride-thin") return EvictionPolicy::kStrideThinning;
  throw std::runtime_error("frame cache: unknown eviction policy '" + name +
                           "' (expected lru | stride-thin)");
}

FrameCache::FrameCache(FrameCacheConfig config) : config_(std::move(config)) {
  if (config_.capacity <= Bytes(0)) {
    throw std::invalid_argument("FrameCache: capacity must be > 0");
  }
  obs_hits_ = config_.obs_prefix + ".cache_hits";
  obs_misses_ = config_.obs_prefix + ".cache_misses";
  obs_insertions_ = config_.obs_prefix + ".cache_insertions";
  obs_evictions_ = config_.obs_prefix + ".cache_evictions";
  obs_rejections_ = config_.obs_prefix + ".cache_rejections";
  obs_peak_mb_ = config_.obs_prefix + ".cache_peak_mb";
}

bool FrameCache::insert(const Frame& frame) {
  if (auto it = entries_.find(frame.sequence); it != entries_.end()) {
    // Already resident: refresh recency only.
    lru_.erase(it->second.lru_it);
    lru_.push_front(frame.sequence);
    it->second.lru_it = lru_.begin();
    return true;
  }
  if (frame.size > config_.capacity) {
    ++stats_.rejected;
    obs::count(obs_rejections_.c_str());
    return false;
  }
  // Make room *before* admitting so resident bytes never exceed capacity.
  while (bytes_ + frame.size > config_.capacity ||
         (config_.max_frames != 0 && entries_.size() >= config_.max_frames)) {
    evict_one();
  }
  lru_.push_front(frame.sequence);
  entries_.emplace(frame.sequence, Entry{frame, lru_.begin()});
  bytes_ += frame.size;
  ++stats_.insertions;
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_);
  obs::count(obs_insertions_.c_str());
  obs::gauge_max(obs_peak_mb_.c_str(), bytes_.mb());
  return true;
}

std::optional<Frame> FrameCache::lookup(std::int64_t sequence) {
  auto it = entries_.find(sequence);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs::count(obs_misses_.c_str());
    return std::nullopt;
  }
  ++stats_.hits;
  obs::count(obs_hits_.c_str());
  lru_.erase(it->second.lru_it);
  lru_.push_front(sequence);
  it->second.lru_it = lru_.begin();
  return it->second.frame;
}

bool FrameCache::contains(std::int64_t sequence) const {
  return entries_.find(sequence) != entries_.end();
}

void FrameCache::record_fanout_hits(std::int64_t n) {
  if (n <= 0) return;
  stats_.hits += n;
  obs::count(obs_hits_.c_str(), n);
}

std::vector<std::int64_t> FrameCache::resident_sequences() const {
  std::vector<std::int64_t> out;
  out.reserve(entries_.size());
  for (const auto& [seq, entry] : entries_) out.push_back(seq);
  return out;
}

FrameCache::State FrameCache::snapshot() const {
  State s;
  s.frames.reserve(entries_.size());
  for (const auto& [seq, entry] : entries_) s.frames.push_back(entry.frame);
  s.lru.assign(lru_.begin(), lru_.end());
  s.bytes = bytes_;
  s.stats = stats_;
  return s;
}

void FrameCache::restore(const State& s) {
  entries_.clear();
  lru_.assign(s.lru.begin(), s.lru.end());
  // Index list positions by sequence, then point each rebuilt entry at its
  // spot in the restored recency order.
  std::map<std::int64_t, std::list<std::int64_t>::iterator> where;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) where[*it] = it;
  for (const Frame& f : s.frames) {
    const auto w = where.find(f.sequence);
    if (w == where.end()) {
      throw std::logic_error("FrameCache::restore: frame missing from lru");
    }
    entries_.emplace(f.sequence, Entry{f, w->second});
  }
  bytes_ = s.bytes;
  stats_ = s.stats;
}

void FrameCache::evict_one() {
  if (entries_.empty()) {
    throw std::logic_error("FrameCache: eviction from an empty cache");
  }
  std::int64_t victim = 0;
  switch (config_.policy) {
    case EvictionPolicy::kLru:
      victim = lru_.back();
      break;
    case EvictionPolicy::kStrideThinning:
      victim = stride_victim();
      break;
  }
  erase_entry(entries_.find(victim));
  ++stats_.evictions;
  obs::count(obs_evictions_.c_str());
}

std::int64_t FrameCache::stride_victim() const {
  // The frame whose removal closes the smallest simulated-time gap between
  // its neighbours; the first and last resident frames anchor the span and
  // are only evicted when nothing else remains. Ties break toward the lower
  // sequence so eviction order is fully deterministic.
  if (entries_.size() <= 2) return entries_.begin()->first;
  double best_gap = std::numeric_limits<double>::infinity();
  std::int64_t best_seq = entries_.begin()->first;
  auto prev = entries_.begin();
  auto cur = std::next(prev);
  for (auto next = std::next(cur); next != entries_.end();
       prev = cur, cur = next, ++next) {
    const double gap = (next->second.frame.sim_time -
                        prev->second.frame.sim_time)
                           .seconds();
    if (gap < best_gap) {
      best_gap = gap;
      best_seq = cur->first;
    }
  }
  return best_seq;
}

void FrameCache::erase_entry(std::map<std::int64_t, Entry>::iterator it) {
  bytes_ -= it->second.frame.size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace adaptviz
