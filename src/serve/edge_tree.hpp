// Edge-cache distribution tree: tiered frame fan-out beyond one site.
//
// PR 2's serving subsystem stops at a single visualization site: one
// FrameCache, one ViewerSessionManager, every client on a downlink of the
// same cache. That topology tops out when the viewer population no longer
// fits behind one cache — the ROADMAP's "heavy traffic from millions of
// users". The missing layer is the one the LBNL network-data-cache work
// (Bethel et al., "Using High-Speed WANs and Network Data Caches to Enable
// Remote and Distributed Visualization") puts between producer and
// distributed consumers, arranged in the tiered origin → regional → leaf
// topology of the MONARC T0/T1 replication studies:
//
//   sim site (origin, authoritative)
//     └── tier 0: regional edge caches      ── fan_out[0] nodes
//           └── tier 1: leaf session managers ── × fan_out[1] each
//                 └── viewers_per_leaf modeled viewers per leaf
//
// Every parent→child edge is an existing NetworkLink, so PR 3's failure
// injection (LinkSpec::failure_probability, plan_transfer aborting at a
// sampled progress fraction on a dedicated fault stream) and the sender's
// retry/backoff ladder (FrameSender::RetryPolicy, reused verbatim) apply
// per edge. Each EdgeNode owns a bounded FrameCache; a miss triggers a
// *fill* from the parent — and fills are single-flight: all downstream
// requests for a frame that is already being fetched coalesce onto the one
// in-flight WAN transfer (counted, so the dedup ratio is measurable). One
// transfer from the origin therefore serves every viewer below that
// subtree — the whole point of the tree.
//
// Leaves are aggregated session managers: rather than materializing one
// event-level session per viewer (PR 2's ViewerSessionManager remains the
// full-fidelity single-site model, benched to 128 clients), a leaf replays
// the entire stream in order through the tree exactly once and fans each
// resident frame out to its `viewers_per_leaf` attached viewers — which is
// how a bench drives 100k+ modeled clients with memory bounded by the node
// caches, not the viewer count.
//
// Byte accounting is codec-aware: each tier carries a `codec_ratio` (PR
// 6's measured raw/encoded ratio) modeling link-level compression on that
// tier's uplinks — wire bytes = frame bytes / ratio; caches hold decoded
// frames. When the experiment's [codec] is already enabled, Frame::size is
// the encoded size and tiers should keep ratio 1.0 (the framework does).
//
// Determinism: the tree is built deterministically from (seed, TreeSpec) —
// node seeds derive from (tier, index) — and every scheduling decision
// happens on the event loop, so delivered-frame series are bitwise
// identical across thread-pool sizes, and across tree *shapes* with equal
// leaf counts (every leaf replays the full stream in order regardless of
// what hangs above it).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataio/frame.hpp"
#include "resources/event_queue.hpp"
#include "resources/network.hpp"
#include "serve/frame_cache.hpp"
#include "transport/sender.hpp"
#include "util/ini.hpp"
#include "util/thread_pool.hpp"

namespace adaptviz {

/// One tier of the distribution tree (tier 0 sits directly below the
/// origin). All nodes of a tier share the same presets; per-node RNG
/// streams keep their links independent.
struct EdgeTierSpec {
  /// Children per parent node: tier 0 has fan_out nodes total, tier 1 has
  /// fan_out[0] * fan_out[1], and so on. Must be >= 1.
  int fan_out = 2;
  /// Parent→child link preset for every node of this tier (each node gets
  /// its own NetworkLink instance with its own noise/fault streams).
  LinkSpec uplink;
  /// Per-node bounded cache for this tier.
  FrameCacheConfig cache;
  /// Measured codec ratio (raw/encoded, >= produced by PR 6's
  /// FrameFieldCodec) applied to this tier's wire transfers; 1.0 = no
  /// link-level compression. Caches store decoded frames either way.
  double codec_ratio = 1.0;
};

/// The whole tree. Construction from (seed, spec) is deterministic.
struct TreeSpec {
  std::vector<EdgeTierSpec> tiers;
  /// Modeled viewer population attached to every leaf node (>= 1). Viewers
  /// read resident frames out of their leaf's cache; only the leaf itself
  /// pulls through the tree.
  std::int64_t viewers_per_leaf = 1;
  /// Fill retry/backoff policy, shared by every node (PR 3's ladder:
  /// exponential with jitter and a cap; a success resets it).
  FrameSender::RetryPolicy retry{};
  /// Leaf i starts replaying at wall time i * join_stagger — the staggered
  /// joins real viewer populations show, and what lets late leaves hit
  /// caches their earlier siblings warmed.
  WallSeconds leaf_join_stagger{5.0};

  [[nodiscard]] bool enabled() const { return !tiers.empty(); }
};

/// Aggregated view of one tier (summed over its nodes).
struct EdgeTierStats {
  int nodes = 0;
  // Cache behaviour (summed FrameCacheStats).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t cache_insertions = 0;
  /// Largest per-node resident peak in the tier (the bounded-memory gauge;
  /// every node is individually bounded by its configured capacity).
  Bytes peak_node_bytes{};
  // Fill protocol.
  std::int64_t fills = 0;           // upstream fetches actually issued
  std::int64_t fill_coalesced = 0;  // requests that piggybacked on one
  std::int64_t fill_retries = 0;    // re-attempts after an aborted transfer
  std::int64_t fill_failures = 0;   // aborted transfer attempts
  std::int64_t degraded_events = 0; // link_degraded latches (PR 3 semantics)
  int links_degraded = 0;           // nodes currently latched degraded
  // Wire accounting (this tier's uplinks — tier 0 is origin bytes-on-WAN).
  Bytes bytes_filled{};  // successful fill transfers, wire (encoded) bytes
  Bytes bytes_wasted{};  // partial bytes of aborted attempts
  // Frame staleness at fill completion: wall delay behind publish.
  double staleness_sum_s = 0.0;
  double staleness_max_s = 0.0;
  std::int64_t staleness_count = 0;

  [[nodiscard]] Bytes bytes_on_wan() const {
    return bytes_filled + bytes_wasted;
  }
  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = cache_hits + cache_misses;
    return total == 0 ? 1.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double mean_staleness_s() const {
    return staleness_count == 0
               ? 0.0
               : staleness_sum_s / static_cast<double>(staleness_count);
  }
};

/// One frame landing in a leaf cache (and thus reaching that leaf's whole
/// viewer population). The per-leaf series is the delivery record the
/// digest/exactly-once guarantees are stated over.
struct LeafDelivery {
  WallSeconds wall_time{};
  SimSeconds sim_time{};
  std::int64_t sequence = 0;
  Bytes size{};
  /// Wall delay behind the origin publish of this frame.
  WallSeconds staleness{};
};

class EdgeTree;

/// One node of the tree: a bounded cache plus an uplink to its parent.
/// Constructed only by EdgeTree; exposed for tests and metrics readers.
class EdgeNode {
 public:
  using FrameCallback = std::function<void(const Frame&)>;

  /// Per-node slice of the tier stats above.
  struct Stats {
    std::int64_t fills = 0;
    std::int64_t fill_coalesced = 0;
    std::int64_t fill_retries = 0;
    std::int64_t fill_failures = 0;
    std::int64_t degraded_events = 0;
    Bytes bytes_filled{};
    Bytes bytes_wasted{};
    double staleness_sum_s = 0.0;
    double staleness_max_s = 0.0;
    std::int64_t staleness_count = 0;
  };

  /// Resolves `sequence` for a downstream consumer: cache hit calls back
  /// immediately; a miss joins the single-flight fill (starting it if this
  /// is the first waiter). The callback fires on the event loop once the
  /// frame is resident.
  void fetch(std::int64_t sequence, FrameCallback on_ready);

  [[nodiscard]] const FrameCache& cache() const { return *cache_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool link_degraded() const { return link_degraded_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  /// True while any fill (including one waiting out a retry backoff) is
  /// pending on this node.
  [[nodiscard]] bool busy() const { return !waiters_.empty(); }

 private:
  friend class EdgeTree;

  EdgeNode(EdgeTree& tree, EdgeNode* parent, int tier, int index,
           const EdgeTierSpec& spec, std::uint64_t seed);

  void start_fill(std::int64_t sequence);
  void attempt_transfer(std::int64_t sequence, const Frame& frame);
  void finish_fill(std::int64_t sequence, const Frame& frame);
  [[nodiscard]] Bytes wire_bytes(const Frame& frame) const;

  EdgeTree& tree_;
  EdgeNode* parent_;  // nullptr only for the origin pseudo-node
  int tier_;
  std::string name_;
  double codec_ratio_;
  std::unique_ptr<NetworkLink> uplink_;
  std::unique_ptr<FrameCache> cache_;
  Rng jitter_rng_;
  std::map<std::int64_t, std::vector<FrameCallback>> waiters_;
  int consecutive_failures_ = 0;
  bool link_degraded_ = false;
  Stats stats_;
};

class EdgeTree {
 public:
  /// Optional side-effect work per leaf delivery (e.g. decoding/rendering
  /// at the leaf site); heavy work of concurrent deliveries runs on the
  /// pool and must never feed back into virtual time.
  using RenderFn = std::function<void(const Frame&)>;

  /// Throws std::invalid_argument on a nonsensical spec (zero fan-out,
  /// ratio < 1, bad retry bounds, > 1M nodes).
  EdgeTree(EventQueue& queue, TreeSpec spec, std::uint64_t seed,
           ThreadPool* pool = nullptr, RenderFn render_fn = nullptr);

  /// Origin ingest: the simulation site finished visualizing `frame`; it
  /// is now authoritative and every leaf will (eventually) pull it.
  /// Sequences must be strictly increasing.
  void publish(const Frame& frame);

  /// True when every leaf has replayed to the head and no fill is pending
  /// anywhere — the drain condition.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] int tier_count() const {
    return static_cast<int>(spec_.tiers.size());
  }
  [[nodiscard]] int nodes_in_tier(int tier) const {
    return static_cast<int>(tiers_[static_cast<std::size_t>(tier)].size());
  }
  [[nodiscard]] int leaf_count() const {
    return nodes_in_tier(tier_count() - 1);
  }
  [[nodiscard]] std::int64_t modeled_viewers() const {
    return static_cast<std::int64_t>(leaf_count()) * spec_.viewers_per_leaf;
  }
  [[nodiscard]] const TreeSpec& spec() const { return spec_; }
  [[nodiscard]] const EdgeNode& node(int tier, int index) const {
    return *tiers_[static_cast<std::size_t>(tier)]
                  [static_cast<std::size_t>(index)];
  }

  /// Aggregate stats over one tier's nodes.
  [[nodiscard]] EdgeTierStats tier_stats(int tier) const;
  /// Bytes that crossed the origin's WAN uplinks (tier 0, incl. wasted
  /// partial transfers) — the metric the tree exists to shrink.
  [[nodiscard]] Bytes origin_bytes_on_wan() const {
    return tier_stats(0).bytes_on_wan();
  }
  /// Fetches the origin answered directly (== tier-0 fills + coalesced).
  [[nodiscard]] std::int64_t origin_requests() const {
    return origin_requests_;
  }
  [[nodiscard]] std::int64_t frames_published() const {
    return static_cast<std::int64_t>(index_.size());
  }
  /// Leaf deliveries × viewers_per_leaf: frames that reached a viewer.
  [[nodiscard]] std::int64_t frames_delivered() const {
    return leaf_frames_delivered_ * spec_.viewers_per_leaf;
  }
  [[nodiscard]] std::int64_t leaf_frames_delivered() const {
    return leaf_frames_delivered_;
  }
  [[nodiscard]] const std::vector<LeafDelivery>& leaf_deliveries(
      int leaf) const {
    return leaves_[static_cast<std::size_t>(leaf)].records;
  }

  /// Blocks until every leaf render task submitted to the pool so far has
  /// finished, then forgets their handles. Call after the event queue
  /// drains (or periodically) before reading render side effects.
  void drain_renders();

  /// FNV-1a digest over every leaf's ordered delivery series. With
  /// `include_wall_times` false the digest covers (leaf, sequence, bytes)
  /// only, so it is comparable across tree *shapes* with equal leaf
  /// counts; with true it also pins the exact virtual-time schedule (the
  /// pool-size determinism check).
  [[nodiscard]] std::uint64_t delivery_digest(
      bool include_wall_times = false) const;

 private:
  friend class EdgeNode;

  struct LeafState {
    EdgeNode* node = nullptr;
    std::size_t cursor = 0;  // next index_ position to pull
    bool active = false;
    bool in_flight = false;
    std::vector<LeafDelivery> records;
  };

  void pump_leaf(int leaf);
  void on_leaf_frame(int leaf, const Frame& frame);
  /// Origin-side resolve: always answerable once published.
  void origin_fetch(std::int64_t sequence, EdgeNode::FrameCallback cb);
  [[nodiscard]] WallSeconds publish_wall(std::int64_t sequence) const;
  void bump(int tier, const char* suffix, std::int64_t n = 1);
  void update_degraded_gauge(int tier);
  void record_staleness(int tier, double seconds);
  [[nodiscard]] std::string metric(int tier, const char* suffix) const;

  EventQueue& queue_;
  TreeSpec spec_;
  ThreadPool* pool_;
  RenderFn render_fn_;
  std::uint64_t seed_;

  /// Authoritative frame index at the origin (payloads dropped), ordered
  /// by sequence, plus each frame's publish wall time.
  std::vector<Frame> index_;
  std::vector<WallSeconds> publish_walls_;

  std::vector<std::vector<std::unique_ptr<EdgeNode>>> tiers_;
  std::vector<LeafState> leaves_;
  std::vector<ThreadPool::TaskHandle> pending_renders_;
  std::int64_t origin_requests_ = 0;
  std::int64_t leaf_frames_delivered_ = 0;
  int inactive_leaves_ = 0;
};

// ---- [tree] INI schema ----
//
//   [tree]
//   fan_out = 4, 8              ; children per node, tier by tier (required)
//   viewers_per_leaf = 3200
//   uplink_mbps = 1000, 200     ; per-tier lists (length 1 = every tier)
//   uplink_latency_ms = 40, 5
//   uplink_efficiency = 1.0
//   cache_gb = 8, 2
//   cache_frames = 0
//   cache_policy = stride-thin  ; lru | stride-thin
//   codec_ratio = 1.0           ; measured raw/encoded applied on the wire
//   failure_rate = 0, 0.1       ; per-tier fill-abort probability
//   retry_initial_seconds = 5
//   retry_multiplier = 2.0
//   retry_cap_seconds = 120
//   retry_jitter = 0.2
//   degrade_after = 5
//   join_stagger_seconds = 5

/// Builds a TreeSpec from the [tree] section. Nonsensical values (zero
/// fan-out, per-tier list whose length matches neither 1 nor the tier
/// count, ratio < 1, negative rates) raise std::runtime_error naming the
/// offending key. Returns a disabled spec when the section is absent.
TreeSpec tree_spec_from_ini(const IniDocument& doc);

}  // namespace adaptviz
