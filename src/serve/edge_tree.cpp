#include "serve/edge_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace adaptviz {

namespace {

/// Deterministic per-node seed: a fixed mix of (experiment seed, tier,
/// index) so node RNG streams (link noise, fault draws, retry jitter) are
/// independent of each other and stable across tree rebuilds.
std::uint64_t node_seed(std::uint64_t seed, int tier, int index,
                        std::uint64_t salt) {
  std::uint64_t h = seed ^ salt;
  h ^= (static_cast<std::uint64_t>(tier) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<std::uint64_t>(index) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return h;
}

void validate_retry(const FrameSender::RetryPolicy& r) {
  if (r.initial_backoff.seconds() <= 0.0) {
    throw std::invalid_argument("EdgeTree: retry initial_backoff must be > 0");
  }
  if (r.max_backoff < r.initial_backoff) {
    throw std::invalid_argument(
        "EdgeTree: retry max_backoff must be >= initial_backoff");
  }
  if (r.multiplier < 1.0) {
    throw std::invalid_argument("EdgeTree: retry multiplier must be >= 1");
  }
  if (r.jitter < 0.0 || r.jitter >= 1.0) {
    throw std::invalid_argument("EdgeTree: retry jitter must be in [0, 1)");
  }
  if (r.degrade_after < 1) {
    throw std::invalid_argument("EdgeTree: retry degrade_after must be >= 1");
  }
}

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_mix_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv1a_mix(h, bits);
}

}  // namespace

// ---------------------------------------------------------------- EdgeNode

EdgeNode::EdgeNode(EdgeTree& tree, EdgeNode* parent, int tier, int index,
                   const EdgeTierSpec& spec, std::uint64_t seed)
    : tree_(tree),
      parent_(parent),
      tier_(tier),
      name_("tree.t" + std::to_string(tier) + ".n" + std::to_string(index)),
      codec_ratio_(spec.codec_ratio),
      uplink_(std::make_unique<NetworkLink>(
          spec.uplink, node_seed(seed, tier, index, 0x00edbe1eca11eULL))),
      jitter_rng_(node_seed(seed, tier, index, 0x0000b0ff5a17ULL)) {
  FrameCacheConfig cache = spec.cache;
  cache.obs_prefix = "tree.t" + std::to_string(tier);
  cache_ = std::make_unique<FrameCache>(std::move(cache));
}

Bytes EdgeNode::wire_bytes(const Frame& frame) const {
  // Link-level compression on this tier's uplink: the wire carries
  // size / ratio, the cache holds the full frame either way.
  const auto wire =
      static_cast<std::int64_t>(frame.size.as_double() / codec_ratio_);
  return Bytes(std::max<std::int64_t>(1, wire));
}

void EdgeNode::fetch(std::int64_t sequence, FrameCallback on_ready) {
  if (auto hit = cache_->lookup(sequence)) {
    // Resident: deliver on the event loop (same virtual instant) so every
    // delivery path is an event and hit chains never recurse.
    tree_.queue_.schedule_after(
        WallSeconds(0.0),
        [cb = std::move(on_ready), frame = *std::move(hit)] { cb(frame); },
        name_ + ".hit");
    return;
  }
  // Miss (counted by lookup). Single-flight: the first waiter starts the
  // fill; everyone else coalesces onto the in-flight transfer.
  auto& waiters = waiters_[sequence];
  waiters.push_back(std::move(on_ready));
  if (waiters.size() == 1) {
    start_fill(sequence);
  } else {
    ++stats_.fill_coalesced;
    tree_.bump(tier_, "fill_coalesced");
  }
}

void EdgeNode::start_fill(std::int64_t sequence) {
  ++stats_.fills;
  tree_.bump(tier_, "fills");
  auto cb = [this, sequence](const Frame& frame) {
    attempt_transfer(sequence, frame);
  };
  if (parent_ != nullptr) {
    parent_->fetch(sequence, std::move(cb));
  } else {
    tree_.origin_fetch(sequence, std::move(cb));
  }
}

void EdgeNode::attempt_transfer(std::int64_t sequence, const Frame& frame) {
  const Bytes wire = wire_bytes(frame);
  const WallSeconds now = tree_.queue_.now();
  const auto attempt = uplink_->plan_transfer(wire, now);
  if (!attempt.failed) {
    tree_.queue_.schedule_at(
        now + attempt.duration,
        [this, sequence, frame] { finish_fill(sequence, frame); },
        name_ + ".fill");
    return;
  }
  // Aborted mid-flight: the partial bytes are wasted wire time; retry after
  // the PR 3 backoff ladder (exponential with jitter and a cap; a success
  // resets it).
  ++stats_.fill_failures;
  stats_.bytes_wasted += attempt.bytes_moved;
  tree_.bump(tier_, "fill_failures");
  tree_.bump(tier_, "wan_bytes", attempt.bytes_moved.count());
  ++consecutive_failures_;
  const FrameSender::RetryPolicy& retry = tree_.spec().retry;
  if (!link_degraded_ && consecutive_failures_ >= retry.degrade_after) {
    link_degraded_ = true;
    ++stats_.degraded_events;
    tree_.bump(tier_, "degraded_events");
    tree_.update_degraded_gauge(tier_);
  }
  double backoff =
      retry.initial_backoff.seconds() *
      std::pow(retry.multiplier, consecutive_failures_ - 1);
  backoff = std::min(backoff, retry.max_backoff.seconds());
  backoff *= jitter_rng_.uniform(1.0 - retry.jitter, 1.0 + retry.jitter);
  tree_.queue_.schedule_at(
      now + attempt.duration + WallSeconds(backoff),
      [this, sequence, frame] {
        ++stats_.fill_retries;
        tree_.bump(tier_, "fill_retries");
        attempt_transfer(sequence, frame);
      },
      name_ + ".retry");
}

void EdgeNode::finish_fill(std::int64_t sequence, const Frame& frame) {
  const Bytes wire = wire_bytes(frame);
  stats_.bytes_filled += wire;
  tree_.bump(tier_, "wan_bytes", wire.count());
  if (consecutive_failures_ != 0 || link_degraded_) {
    consecutive_failures_ = 0;
    if (link_degraded_) {
      link_degraded_ = false;
      tree_.update_degraded_gauge(tier_);
    }
  }
  const double staleness =
      (tree_.queue_.now() - tree_.publish_wall(sequence)).seconds();
  stats_.staleness_sum_s += staleness;
  stats_.staleness_max_s = std::max(stats_.staleness_max_s, staleness);
  ++stats_.staleness_count;
  tree_.record_staleness(tier_, staleness);
  cache_->insert(frame);
  // Drain every waiter of this single flight. New fetches arriving from a
  // waiter's continuation must start a fresh flight, so detach the list
  // first.
  auto it = waiters_.find(sequence);
  std::vector<FrameCallback> waiters = std::move(it->second);
  waiters_.erase(it);
  for (auto& cb : waiters) cb(frame);
}

// ---------------------------------------------------------------- EdgeTree

EdgeTree::EdgeTree(EventQueue& queue, TreeSpec spec, std::uint64_t seed,
                   ThreadPool* pool, RenderFn render_fn)
    : queue_(queue),
      spec_(std::move(spec)),
      pool_(pool),
      render_fn_(std::move(render_fn)),
      seed_(seed) {
  if (spec_.tiers.empty()) {
    throw std::invalid_argument("EdgeTree: spec has no tiers");
  }
  if (spec_.viewers_per_leaf < 1) {
    throw std::invalid_argument("EdgeTree: viewers_per_leaf must be >= 1");
  }
  if (spec_.leaf_join_stagger.seconds() < 0.0) {
    throw std::invalid_argument("EdgeTree: leaf_join_stagger must be >= 0");
  }
  validate_retry(spec_.retry);
  constexpr std::int64_t kMaxNodes = 1'000'000;
  std::int64_t width = 1;
  for (std::size_t t = 0; t < spec_.tiers.size(); ++t) {
    const EdgeTierSpec& tier = spec_.tiers[t];
    if (tier.fan_out < 1) {
      throw std::invalid_argument("EdgeTree: tier " + std::to_string(t) +
                                  " fan_out must be >= 1");
    }
    if (tier.codec_ratio < 1.0) {
      throw std::invalid_argument("EdgeTree: tier " + std::to_string(t) +
                                  " codec_ratio must be >= 1");
    }
    width *= tier.fan_out;
    if (width > kMaxNodes) {
      throw std::invalid_argument(
          "EdgeTree: tree exceeds " + std::to_string(kMaxNodes) +
          " nodes — model wider viewer populations via viewers_per_leaf");
    }
  }

  // Build tier by tier; node (t, i)'s parent is node (t-1, i / fan_out[t]).
  tiers_.resize(spec_.tiers.size());
  width = 1;
  for (std::size_t t = 0; t < spec_.tiers.size(); ++t) {
    const EdgeTierSpec& tier = spec_.tiers[t];
    width *= tier.fan_out;
    tiers_[t].reserve(static_cast<std::size_t>(width));
    for (std::int64_t i = 0; i < width; ++i) {
      EdgeNode* parent =
          t == 0 ? nullptr
                 : tiers_[t - 1][static_cast<std::size_t>(i / tier.fan_out)]
                       .get();
      tiers_[t].push_back(std::unique_ptr<EdgeNode>(
          new EdgeNode(*this, parent, static_cast<int>(t),
                       static_cast<int>(i), tier, seed_)));
    }
  }

  // Leaves join staggered — the warm-cache effect a real viewer population
  // shows: leaf 0's pulls fill the shared parents, later leaves hit them.
  leaves_.resize(tiers_.back().size());
  inactive_leaves_ = static_cast<int>(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    leaves_[i].node = tiers_.back()[i].get();
    queue_.schedule_at(
        spec_.leaf_join_stagger * static_cast<double>(i),
        [this, i] {
          leaves_[i].active = true;
          --inactive_leaves_;
          pump_leaf(static_cast<int>(i));
        },
        "tree.leaf_join");
  }
}

void EdgeTree::publish(const Frame& frame) {
  if (!index_.empty() && frame.sequence <= index_.back().sequence) {
    throw std::invalid_argument(
        "EdgeTree::publish: sequences must be strictly increasing");
  }
  Frame stored = frame;
  stored.payload.reset();  // the tree models bytes; the origin index holds
                           // metadata only so memory stays bounded
  index_.push_back(std::move(stored));
  publish_walls_.push_back(queue_.now());
  if (auto* o = obs::current()) {
    o->metrics().counter("tree.published").add(1);
  }
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    pump_leaf(static_cast<int>(i));
  }
}

void EdgeTree::origin_fetch(std::int64_t sequence,
                            EdgeNode::FrameCallback cb) {
  ++origin_requests_;
  auto it = std::lower_bound(
      index_.begin(), index_.end(), sequence,
      [](const Frame& f, std::int64_t seq) { return f.sequence < seq; });
  if (it == index_.end() || it->sequence != sequence) {
    throw std::logic_error("EdgeTree: fetch of an unpublished sequence " +
                           std::to_string(sequence));
  }
  cb(*it);
}

void EdgeTree::pump_leaf(int leaf) {
  LeafState& state = leaves_[static_cast<std::size_t>(leaf)];
  if (!state.active || state.in_flight || state.cursor >= index_.size()) {
    return;
  }
  state.in_flight = true;
  const std::int64_t sequence = index_[state.cursor].sequence;
  state.node->fetch(sequence, [this, leaf](const Frame& frame) {
    on_leaf_frame(leaf, frame);
  });
}

void EdgeTree::on_leaf_frame(int leaf, const Frame& frame) {
  LeafState& state = leaves_[static_cast<std::size_t>(leaf)];
  const WallSeconds now = queue_.now();
  state.records.push_back(LeafDelivery{
      now, frame.sim_time, frame.sequence, frame.size,
      now - publish_wall(frame.sequence)});
  ++state.cursor;
  state.in_flight = false;
  ++leaf_frames_delivered_;
  // The leaf's attached viewer population reads the now-resident frame out
  // of the leaf cache: viewers_per_leaf aggregated hits, zero WAN bytes.
  state.node->cache_->record_fanout_hits(spec_.viewers_per_leaf);
  if (auto* o = obs::current()) {
    o->metrics().counter("tree.viewer_frames").add(spec_.viewers_per_leaf);
  }
  if (render_fn_) {
    if (pool_ != nullptr) {
      // Side-effect work (decode/render at the leaf site) runs on the pool;
      // nothing feeds back into virtual time, so the schedule — and every
      // delivery record — is identical for any pool size.
      pending_renders_.push_back(
          pool_->submit([fn = render_fn_, frame] { fn(frame); }));
    } else {
      render_fn_(frame);
    }
  }
  pump_leaf(leaf);
}

void EdgeTree::drain_renders() {
  for (auto& handle : pending_renders_) handle.wait();
  pending_renders_.clear();
}

bool EdgeTree::idle() const {
  if (inactive_leaves_ != 0) return false;
  for (const LeafState& state : leaves_) {
    if (state.in_flight || state.cursor < index_.size()) return false;
  }
  for (const auto& tier : tiers_) {
    for (const auto& node : tier) {
      if (node->busy()) return false;
    }
  }
  return true;
}

WallSeconds EdgeTree::publish_wall(std::int64_t sequence) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), sequence,
      [](const Frame& f, std::int64_t seq) { return f.sequence < seq; });
  return publish_walls_[static_cast<std::size_t>(it - index_.begin())];
}

EdgeTierStats EdgeTree::tier_stats(int tier) const {
  EdgeTierStats out;
  for (const auto& node : tiers_[static_cast<std::size_t>(tier)]) {
    ++out.nodes;
    const FrameCacheStats& cache = node->cache().stats();
    out.cache_hits += cache.hits;
    out.cache_misses += cache.misses;
    out.cache_evictions += cache.evictions;
    out.cache_insertions += cache.insertions;
    out.peak_node_bytes = std::max(out.peak_node_bytes, cache.peak_bytes);
    const EdgeNode::Stats& stats = node->stats();
    out.fills += stats.fills;
    out.fill_coalesced += stats.fill_coalesced;
    out.fill_retries += stats.fill_retries;
    out.fill_failures += stats.fill_failures;
    out.degraded_events += stats.degraded_events;
    if (node->link_degraded()) ++out.links_degraded;
    out.bytes_filled += stats.bytes_filled;
    out.bytes_wasted += stats.bytes_wasted;
    out.staleness_sum_s += stats.staleness_sum_s;
    out.staleness_max_s = std::max(out.staleness_max_s, stats.staleness_max_s);
    out.staleness_count += stats.staleness_count;
  }
  return out;
}

std::uint64_t EdgeTree::delivery_digest(bool include_wall_times) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(leaf));
    for (const LeafDelivery& d : leaves_[leaf].records) {
      h = fnv1a_mix(h, static_cast<std::uint64_t>(d.sequence));
      h = fnv1a_mix(h, static_cast<std::uint64_t>(d.size.count()));
      h = fnv1a_mix_double(h, d.sim_time.seconds());
      if (include_wall_times) {
        h = fnv1a_mix_double(h, d.wall_time.seconds());
        h = fnv1a_mix_double(h, d.staleness.seconds());
      }
    }
  }
  return h;
}

std::string EdgeTree::metric(int tier, const char* suffix) const {
  return "tree.t" + std::to_string(tier) + "." + suffix;
}

void EdgeTree::bump(int tier, const char* suffix, std::int64_t n) {
  if (auto* o = obs::current()) {
    o->metrics().counter(metric(tier, suffix)).add(n);
  }
}

void EdgeTree::update_degraded_gauge(int tier) {
  if (auto* o = obs::current()) {
    int degraded = 0;
    for (const auto& node : tiers_[static_cast<std::size_t>(tier)]) {
      if (node->link_degraded()) ++degraded;
    }
    o->metrics()
        .gauge(metric(tier, "links_degraded"))
        .set(static_cast<double>(degraded));
  }
}

void EdgeTree::record_staleness(int tier, double seconds) {
  if (auto* o = obs::current()) {
    o->metrics().histogram(metric(tier, "staleness_s")).observe(seconds);
  }
}

// ------------------------------------------------------------- [tree] INI

namespace {

/// Splits a comma-separated value list, trimming whitespace.
std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    std::string item = value.substr(start, comma - start);
    const auto a = item.find_first_not_of(" \t");
    if (a == std::string::npos) {
      item.clear();
    } else {
      const auto b = item.find_last_not_of(" \t");
      item = item.substr(a, b - a + 1);
    }
    if (!item.empty()) out.push_back(std::move(item));
    start = comma + 1;
  }
  return out;
}

double parse_double(const std::string& key, const std::string& item) {
  try {
    std::size_t used = 0;
    const double v = std::stod(item, &used);
    if (used != item.size()) throw std::invalid_argument(item);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("[tree] " + key + ": malformed number '" + item +
                             "'");
  }
}

/// Per-tier list: a single value broadcasts to every tier; otherwise the
/// list length must equal the tier count.
std::vector<double> tier_list(const IniDocument& doc, const std::string& key,
                              std::size_t tiers, double fallback) {
  const auto raw = doc.get("tree", key);
  if (!raw.has_value()) return std::vector<double>(tiers, fallback);
  const auto items = split_list(*raw);
  if (items.empty()) {
    throw std::runtime_error("[tree] " + key + ": empty value");
  }
  std::vector<double> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(parse_double(key, item));
  if (out.size() == 1) return std::vector<double>(tiers, out.front());
  if (out.size() != tiers) {
    throw std::runtime_error(
        "[tree] " + key + ": expected 1 or " + std::to_string(tiers) +
        " values (one per tier), got " + std::to_string(items.size()));
  }
  return out;
}

}  // namespace

TreeSpec tree_spec_from_ini(const IniDocument& doc) {
  TreeSpec spec;
  if (!doc.has_section("tree")) {
    spec.tiers.clear();
    return spec;
  }
  const auto fan_raw = doc.get("tree", "fan_out");
  if (!fan_raw.has_value()) {
    throw std::runtime_error("[tree] fan_out is required");
  }
  std::vector<int> fan_out;
  for (const auto& item : split_list(*fan_raw)) {
    const double v = parse_double("fan_out", item);
    if (v < 1.0 || v != std::floor(v)) {
      throw std::runtime_error("[tree] fan_out: '" + item +
                               "' is not a positive integer");
    }
    fan_out.push_back(static_cast<int>(v));
  }
  if (fan_out.empty()) {
    throw std::runtime_error("[tree] fan_out: empty list");
  }
  const std::size_t tiers = fan_out.size();

  const auto mbps = tier_list(doc, "uplink_mbps", tiers, 1000.0);
  const auto latency_ms = tier_list(doc, "uplink_latency_ms", tiers, 50.0);
  const auto efficiency = tier_list(doc, "uplink_efficiency", tiers, 1.0);
  const auto cache_gb = tier_list(doc, "cache_gb", tiers, 4.0);
  const auto cache_frames = tier_list(doc, "cache_frames", tiers, 0.0);
  const auto codec_ratio = tier_list(doc, "codec_ratio", tiers, 1.0);
  const auto failure_rate = tier_list(doc, "failure_rate", tiers, 0.0);
  const EvictionPolicy policy =
      eviction_policy_from(doc.get_or("tree", "cache_policy", "lru"));

  for (std::size_t t = 0; t < tiers; ++t) {
    if (mbps[t] <= 0.0) {
      throw std::runtime_error("[tree] uplink_mbps must be > 0");
    }
    if (latency_ms[t] < 0.0) {
      throw std::runtime_error("[tree] uplink_latency_ms must be >= 0");
    }
    if (efficiency[t] <= 0.0 || efficiency[t] > 1.0) {
      throw std::runtime_error("[tree] uplink_efficiency must be in (0, 1]");
    }
    if (cache_gb[t] <= 0.0) {
      throw std::runtime_error("[tree] cache_gb must be > 0");
    }
    if (cache_frames[t] < 0.0 ||
        cache_frames[t] != std::floor(cache_frames[t])) {
      throw std::runtime_error(
          "[tree] cache_frames must be a non-negative integer");
    }
    if (codec_ratio[t] < 1.0) {
      throw std::runtime_error("[tree] codec_ratio must be >= 1");
    }
    if (failure_rate[t] < 0.0 || failure_rate[t] > 1.0) {
      throw std::runtime_error("[tree] failure_rate must be in [0, 1]");
    }
    EdgeTierSpec tier;
    tier.fan_out = fan_out[t];
    tier.uplink.nominal = Bandwidth::mbps(mbps[t]);
    tier.uplink.latency = WallSeconds(latency_ms[t] / 1000.0);
    tier.uplink.efficiency = efficiency[t];
    tier.uplink.failure_probability = failure_rate[t];
    tier.cache.capacity = Bytes::gigabytes(cache_gb[t]);
    tier.cache.max_frames = static_cast<std::size_t>(cache_frames[t]);
    tier.cache.policy = policy;
    tier.codec_ratio = codec_ratio[t];
    spec.tiers.push_back(std::move(tier));
  }

  const auto check_positive = [&](const char* key, double v) {
    if (v <= 0.0) {
      throw std::runtime_error(std::string("[tree] ") + key +
                               " must be > 0");
    }
    return v;
  };
  if (const auto v = doc.get_int("tree", "viewers_per_leaf")) {
    if (*v < 1) {
      throw std::runtime_error("[tree] viewers_per_leaf must be >= 1");
    }
    spec.viewers_per_leaf = *v;
  }
  if (const auto v = doc.get_double("tree", "retry_initial_seconds")) {
    spec.retry.initial_backoff =
        WallSeconds(check_positive("retry_initial_seconds", *v));
  }
  if (const auto v = doc.get_double("tree", "retry_multiplier")) {
    if (*v < 1.0) {
      throw std::runtime_error("[tree] retry_multiplier must be >= 1");
    }
    spec.retry.multiplier = *v;
  }
  if (const auto v = doc.get_double("tree", "retry_cap_seconds")) {
    spec.retry.max_backoff =
        WallSeconds(check_positive("retry_cap_seconds", *v));
  }
  if (spec.retry.max_backoff < spec.retry.initial_backoff) {
    throw std::runtime_error(
        "[tree] retry_cap_seconds must be >= retry_initial_seconds");
  }
  if (const auto v = doc.get_double("tree", "retry_jitter")) {
    if (*v < 0.0 || *v >= 1.0) {
      throw std::runtime_error("[tree] retry_jitter must be in [0, 1)");
    }
    spec.retry.jitter = *v;
  }
  if (const auto v = doc.get_int("tree", "degrade_after")) {
    if (*v < 1) {
      throw std::runtime_error("[tree] degrade_after must be >= 1");
    }
    spec.retry.degrade_after = static_cast<int>(*v);
  }
  if (const auto v = doc.get_double("tree", "join_stagger_seconds")) {
    if (*v < 0.0) {
      throw std::runtime_error("[tree] join_stagger_seconds must be >= 0");
    }
    spec.leaf_join_stagger = WallSeconds(*v);
  }
  return spec;
}

}  // namespace adaptviz
