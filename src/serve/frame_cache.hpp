// Visualization-site frame cache.
//
// The paper ships every frame to exactly one scientist's VisIt session and
// discards it after rendering. Turning that point-to-point stream into a
// multi-consumer service needs a network data cache at the visualization
// site (Bethel et al., "Using High-Speed WANs and Network Data Caches to
// Enable Remote and Distributed Visualization"): received frames are kept
// in a bounded store so any number of viewer sessions can replay them
// without touching the WAN or the simulation site again.
//
// The cache is bounded in bytes (modeled frame sizes — the same accounting
// the disk model uses) and optionally in frame count, and never exceeds
// either bound: eviction happens *before* an insert is admitted. Two
// eviction policies are provided:
//
//  * LRU — classic recency: serves live-tail fan-out well, but a burst of
//    catch-up replays from one era can flush the rest of the timeline.
//  * Stride thinning — evicts the frame whose removal creates the smallest
//    gap in simulated time, never the first or last resident frame. The
//    cache degrades into a progressively coarser but *full-span* sampling
//    of the cyclone track, so a catch-up viewer joining at any simulated
//    time finds a nearby frame — temporal coverage is the asset worth
//    preserving for a storm-track archive.
//
// Hit/miss/eviction counters feed the telemetry series and the client
// scaling bench.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dataio/frame.hpp"
#include "util/units.hpp"

namespace adaptviz {

enum class EvictionPolicy { kLru, kStrideThinning };

const char* to_string(EvictionPolicy p);
/// Parses "lru" / "stride-thin"; throws std::runtime_error otherwise.
EvictionPolicy eviction_policy_from(const std::string& name);

struct FrameCacheConfig {
  /// Hard byte bound (modeled frame sizes). Resident bytes never exceed it.
  Bytes capacity = Bytes::gigabytes(4.0);
  /// Optional frame-count bound; 0 means bytes-only.
  std::size_t max_frames = 0;
  EvictionPolicy policy = EvictionPolicy::kLru;
  /// Prefix for the cache's obs metric names ("<prefix>.cache_hits", ...).
  /// The single-site serving cache keeps the historical "serve" series; the
  /// edge tree gives each tier its own ("tree.t0", "tree.t1", ...) so
  /// per-tier hit rates and eviction pressure are separable in a snapshot.
  std::string obs_prefix = "serve";
};

struct FrameCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  /// Frames larger than the entire cache: refused outright.
  std::int64_t rejected = 0;
  Bytes peak_bytes{};

  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total == 0 ? 1.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class FrameCache {
 public:
  explicit FrameCache(FrameCacheConfig config);

  /// Admits `frame`, evicting per policy until it fits. Returns false (and
  /// counts a rejection) when the frame alone exceeds the byte capacity.
  /// Re-inserting a resident sequence refreshes its recency and is not a
  /// second insertion.
  bool insert(const Frame& frame);

  /// Cached frame by sequence. Counts a hit (and refreshes LRU recency) or
  /// a miss.
  std::optional<Frame> lookup(std::int64_t sequence);

  /// Residency probe without counter side effects.
  [[nodiscard]] bool contains(std::int64_t sequence) const;

  /// Accounts `n` aggregated hits in one call: the edge tree models a leaf
  /// node's whole viewer population reading a freshly resident frame out of
  /// the leaf cache without materializing one lookup per viewer.
  void record_fanout_hits(std::int64_t n);

  [[nodiscard]] std::size_t frame_count() const { return entries_.size(); }
  [[nodiscard]] Bytes bytes_cached() const { return bytes_; }
  [[nodiscard]] const FrameCacheStats& stats() const { return stats_; }
  [[nodiscard]] const FrameCacheConfig& config() const { return config_; }

  /// Resident sequences in ascending order (tests, coverage inspection).
  [[nodiscard]] std::vector<std::int64_t> resident_sequences() const;

  /// Cache contents as values: resident frames, the LRU order as a
  /// sequence list (front = most recent), byte occupancy and counters.
  /// restore() rebuilds the entry map and list iterators from it.
  struct State {
    std::vector<Frame> frames;       // ascending sequence order
    std::vector<std::int64_t> lru;   // front = most recently used
    Bytes bytes{};
    FrameCacheStats stats{};
  };
  [[nodiscard]] State snapshot() const;
  void restore(const State& s);

 private:
  struct Entry {
    Frame frame;
    std::list<std::int64_t>::iterator lru_it;  // position in lru_
  };

  void evict_one();
  [[nodiscard]] std::int64_t stride_victim() const;
  void erase_entry(std::map<std::int64_t, Entry>::iterator it);

  FrameCacheConfig config_;
  // Obs metric names, precomputed so the hot counters don't concatenate
  // strings per lookup.
  std::string obs_hits_;
  std::string obs_misses_;
  std::string obs_insertions_;
  std::string obs_evictions_;
  std::string obs_rejections_;
  std::string obs_peak_mb_;
  /// Keyed by sequence; map order == output order == simulated-time order,
  /// which is what stride thinning walks.
  std::map<std::int64_t, Entry> entries_;
  std::list<std::int64_t> lru_;  // front = most recently used
  Bytes bytes_{};
  FrameCacheStats stats_;
};

}  // namespace adaptviz
