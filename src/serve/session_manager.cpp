#include "serve/session_manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace adaptviz {

const char* to_string(ViewerMode m) {
  switch (m) {
    case ViewerMode::kLiveTail:
      return "live-tail";
    case ViewerMode::kCatchUp:
      return "catch-up";
  }
  return "?";
}

std::vector<ViewerConfig> make_viewer_fleet(int count, Bandwidth downlink,
                                            double catchup_fraction,
                                            SimSeconds catchup_start,
                                            WallSeconds catchup_join) {
  if (count < 0) throw std::invalid_argument("viewer fleet: count < 0");
  const int catchup = std::clamp(
      static_cast<int>(std::lround(catchup_fraction * count)), 0, count);
  std::vector<ViewerConfig> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    ViewerConfig v;
    char name[32];
    std::snprintf(name, sizeof name, "viewer%03d", i);
    v.name = name;
    v.downlink.nominal = downlink;
    v.mode = i < catchup ? ViewerMode::kCatchUp : ViewerMode::kLiveTail;
    v.catchup_start = catchup_start;
    if (v.mode == ViewerMode::kCatchUp) v.join_wall = catchup_join;
    out.push_back(std::move(v));
  }
  return out;
}

ViewerSessionManager::ViewerSessionManager(EventQueue& queue, Options options,
                                           std::uint64_t seed, ThreadPool* pool,
                                           RenderFn rerender)
    : queue_(queue),
      options_(std::move(options)),
      pool_(pool),
      rerender_fn_(std::move(rerender)),
      cache_(options_.cache),
      seed_(seed) {
  if (options_.rerender_workers < 1) {
    throw std::invalid_argument(
        "ViewerSessionManager: rerender_workers must be >= 1");
  }
  if (options_.rerender_fixed_seconds < 0 ||
      options_.rerender_seconds_per_gb < 0) {
    throw std::invalid_argument(
        "ViewerSessionManager: re-render costs must be >= 0");
  }
}

ClientId ViewerSessionManager::attach(const ViewerConfig& config) {
  const int idx = viewer_count();
  Session s;
  s.config = config;
  // Each client rides its own link instance with its own noise stream.
  s.downlink = std::make_unique<NetworkLink>(
      config.downlink, seed_ + 101 * static_cast<std::uint64_t>(idx + 1));
  sessions_.push_back(std::move(s));
  if (config.join_wall <= queue_.now()) {
    sessions_.back().active = true;
    pump(idx);
  } else {
    queue_.schedule_at(
        config.join_wall,
        [this, idx] {
          sessions_[static_cast<std::size_t>(idx)].active = true;
          pump(idx);
        },
        "serve.join");
  }
  return ClientId{idx};
}

ViewerSessionManager::Session& ViewerSessionManager::session_for(
    ClientId client) {
  if (!client.valid() ||
      client.value >= static_cast<std::int64_t>(sessions_.size())) {
    throw std::invalid_argument("ViewerSessionManager: unknown client id " +
                                std::to_string(client.value));
  }
  return sessions_[static_cast<std::size_t>(client.value)];
}

const ViewerSessionManager::Session& ViewerSessionManager::session_for(
    ClientId client) const {
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast): same validation
  return const_cast<ViewerSessionManager*>(this)->session_for(client);
}

void ViewerSessionManager::detach(ClientId client) {
  Session& s = session_for(client);
  if (s.detached) {
    throw std::invalid_argument("ViewerSessionManager: client " +
                                std::to_string(client.value) +
                                " already detached");
  }
  s.detached = true;
  s.pending.reset();
  obs::count("serve.detaches");
  ADAPTVIZ_LOG_DEBUG("serve", "[%s] %s detached",
                     hh_mm(queue_.now()).c_str(), s.config.name.c_str());
}

void ViewerSessionManager::reattach(ClientId client) {
  Session& s = session_for(client);
  if (!s.detached) return;
  s.detached = false;
  ADAPTVIZ_LOG_DEBUG("serve", "[%s] %s re-attached",
                     hh_mm(queue_.now()).c_str(), s.config.name.c_str());
  if (s.active) pump(static_cast<int>(client.value));
}

bool ViewerSessionManager::attached(ClientId client) const {
  if (!client.valid() ||
      client.value >= static_cast<std::int64_t>(sessions_.size())) {
    return false;
  }
  return !sessions_[static_cast<std::size_t>(client.value)].detached;
}

std::optional<ClientId> ViewerSessionManager::find_client(
    const std::string& name) const {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].config.name == name) {
      return ClientId{static_cast<std::int64_t>(i)};
    }
  }
  return std::nullopt;
}

int ViewerSessionManager::attached_count() const {
  int n = 0;
  for (const Session& s : sessions_) n += s.detached ? 0 : 1;
  return n;
}

void ViewerSessionManager::steer_view(ClientId client,
                                      const ViewCommand& view) {
  Session& s = session_for(client);
  validate(view);
  const std::string key = view_key(view);
  if (key == s.view_key) return;  // same render — nothing to do
  s.view = view;
  s.view_key = key;
  // Nothing on screen yet (not joined, detached, or no frame delivered):
  // the new view simply applies to future renders.
  if (!s.active || s.detached || s.cursor < 0) return;
  const RenderKey rk{s.cursor, key};
  const bool shared = rerender_waiters_.count(rk) != 0 ||
                      rerender_in_service_.count(rk) != 0;
  if (shared) {
    ++steer_dedup_;
    obs::count("serve.steer_dedup");
  } else {
    ++steer_renders_;
    obs::count("serve.steer_rerenders");
  }
  s.waiting_rerender = true;
  ++s.stats.rerender_waits;
  request_rerender(static_cast<int>(client.value), rk);
}

void ViewerSessionManager::on_frame(const Frame& frame) {
  if (!index_.empty() && frame.sequence <= index_.back().sequence) {
    throw std::invalid_argument(
        "ViewerSessionManager: sequences must be increasing");
  }
  Frame m = frame;
  m.payload.reset();  // the index keeps metadata only
  index_.push_back(std::move(m));
  cache_.insert(frame);
  for (int i = 0; i < viewer_count(); ++i) pump(i);
}

bool ViewerSessionManager::idle() const {
  if (rerendering_ != 0 || !rerender_fifo_.empty()) return false;
  for (const Session& s : sessions_) {
    if (s.detached) continue;  // detached clients hold nothing up
    if (!s.active) return false;  // still waiting on its join event
    if (s.in_flight || s.waiting_rerender) return false;
    if (next_sequence(s).has_value()) return false;
  }
  return true;
}

std::optional<std::int64_t> ViewerSessionManager::next_sequence(
    const Session& s) const {
  if (index_.empty()) return std::nullopt;
  if (s.config.mode == ViewerMode::kLiveTail) {
    const std::int64_t newest = index_.back().sequence;
    if (newest <= s.cursor) return std::nullopt;
    return newest;
  }
  // Catch-up: before the first delivery, locate the start point by
  // simulated time; afterwards, replay strictly in sequence order.
  if (s.cursor < 0) {
    auto it = std::lower_bound(
        index_.begin(), index_.end(), s.config.catchup_start,
        [](const Frame& f, SimSeconds t) { return f.sim_time < t; });
    if (it == index_.end()) return std::nullopt;
    return it->sequence;
  }
  auto it = std::upper_bound(
      index_.begin(), index_.end(), s.cursor,
      [](std::int64_t seq, const Frame& f) { return seq < f.sequence; });
  if (it == index_.end()) return std::nullopt;
  return it->sequence;
}

const Frame& ViewerSessionManager::meta(std::int64_t sequence) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), sequence,
      [](const Frame& f, std::int64_t seq) { return f.sequence < seq; });
  if (it == index_.end() || it->sequence != sequence) {
    throw std::logic_error("ViewerSessionManager: unknown sequence");
  }
  return *it;
}

void ViewerSessionManager::pump(int idx) {
  Session& s = sessions_[static_cast<std::size_t>(idx)];
  // Per-client backpressure: one frame in flight per downlink, one pending
  // re-render wait. A stalled client parks here without touching anyone
  // else's progress; a detached one receives nothing.
  if (!s.active || s.detached || s.in_flight || s.waiting_rerender) return;
  const std::optional<std::int64_t> seq = next_sequence(s);
  if (!seq.has_value()) return;  // caught up; the next on_frame re-pumps

  if (s.config.mode == ViewerMode::kLiveTail && s.cursor >= 0) {
    // Frames superseded while the downlink was busy are dropped, like any
    // live stream tail; count them.
    auto first = std::upper_bound(
        index_.begin(), index_.end(), s.cursor,
        [](std::int64_t c, const Frame& f) { return c < f.sequence; });
    auto chosen = std::lower_bound(
        index_.begin(), index_.end(), *seq,
        [](const Frame& f, std::int64_t c) { return f.sequence < c; });
    s.stats.frames_skipped += chosen - first;
  }

  if (std::optional<Frame> frame = cache_.lookup(*seq)) {
    ++s.stats.cache_hits;
    start_transfer(idx, *frame, /*cache_hit=*/true);
  } else {
    s.waiting_rerender = true;
    ++s.stats.rerender_waits;
    // The miss re-renders under the client's current view key, so two
    // clients replaying the same era with the same view share one render.
    request_rerender(idx, RenderKey{*seq, s.view_key});
  }
}

void ViewerSessionManager::start_transfer(int idx, const Frame& frame,
                                          bool cache_hit) {
  Session& s = sessions_[static_cast<std::size_t>(idx)];
  s.in_flight = true;
  const WallSeconds duration =
      s.downlink->transfer_duration(frame.size, queue_.now());
  obs::trace_sim("serve.deliver", queue_.now().seconds(), duration.seconds(),
                 "viewer=" + std::to_string(idx) +
                     " seq=" + std::to_string(frame.sequence) +
                     (cache_hit ? " hit=1" : " hit=0"));
  queue_.schedule_after(
      duration,
      [this, idx, sequence = frame.sequence, sim_time = frame.sim_time,
       size = frame.size, cache_hit] {
        Session& session = sessions_[static_cast<std::size_t>(idx)];
        session.in_flight = false;
        if (session.detached) {
          // The client left while the frame was on the wire: the delivery
          // is abandoned without a record.
          session.pending.reset();
          return;
        }
        session.cursor = std::max(session.cursor, sequence);
        session.records.push_back(
            DeliveryRecord{queue_.now(), sim_time, sequence, size, cache_hit});
        ++session.stats.frames_delivered;
        session.stats.bytes_delivered += size;
        session.stats.latest_sim_time =
            std::max(session.stats.latest_sim_time, sim_time);
        ++frames_served_;
        obs::count("serve.frames_served");
        if (session.pending.has_value()) {
          // A steer re-render finished mid-transfer; deliver it now.
          const Frame next = *session.pending;
          session.pending.reset();
          start_transfer(idx, next, /*cache_hit=*/false);
          return;
        }
        pump(idx);
      },
      "serve.deliver");
}

ViewerSessionManager::State ViewerSessionManager::snapshot() const {
  State s;
  s.cache = cache_.snapshot();
  s.index = index_;
  s.sessions.reserve(sessions_.size());
  for (const Session& sess : sessions_) {
    SessionState ss;
    ss.config = sess.config;
    ss.downlink = sess.downlink->snapshot();
    ss.cursor = sess.cursor;
    ss.active = sess.active;
    ss.detached = sess.detached;
    ss.in_flight = sess.in_flight;
    ss.waiting_rerender = sess.waiting_rerender;
    ss.view = sess.view;
    ss.view_key = sess.view_key;
    ss.pending = sess.pending;
    ss.stats = sess.stats;
    ss.records = sess.records;
    s.sessions.push_back(std::move(ss));
  }
  s.rerender_fifo = rerender_fifo_;
  s.rerender_waiters = rerender_waiters_;
  s.rerender_in_service = rerender_in_service_;
  s.rerendering = rerendering_;
  s.frames_served = frames_served_;
  s.rerenders = rerenders_;
  s.steer_renders = steer_renders_;
  s.steer_dedup = steer_dedup_;
  return s;
}

void ViewerSessionManager::restore(const State& s) {
  cache_.restore(s.cache);
  index_ = s.index;
  // Sessions attached after the snapshot vanish with it: their join/pump
  // events rewind with the EventQueue, so nothing references them again.
  sessions_.resize(s.sessions.size());
  for (std::size_t i = 0; i < s.sessions.size(); ++i) {
    const SessionState& ss = s.sessions[i];
    Session& sess = sessions_[i];
    sess.config = ss.config;
    if (!sess.downlink) {
      sess.downlink = std::make_unique<NetworkLink>(
          ss.config.downlink,
          seed_ + 101 * static_cast<std::uint64_t>(i + 1));
    }
    sess.downlink->restore(ss.downlink);
    sess.cursor = ss.cursor;
    sess.active = ss.active;
    sess.detached = ss.detached;
    sess.in_flight = ss.in_flight;
    sess.waiting_rerender = ss.waiting_rerender;
    sess.view = ss.view;
    sess.view_key = ss.view_key;
    sess.pending = ss.pending;
    sess.stats = ss.stats;
    sess.records = ss.records;
  }
  rerender_fifo_ = s.rerender_fifo;
  rerender_waiters_ = s.rerender_waiters;
  rerender_in_service_ = s.rerender_in_service;
  rerendering_ = s.rerendering;
  frames_served_ = s.frames_served;
  rerenders_ = s.rerenders;
  steer_renders_ = s.steer_renders;
  steer_dedup_ = s.steer_dedup;
}

void ViewerSessionManager::request_rerender(int idx, const RenderKey& key) {
  std::vector<int>& waiters = rerender_waiters_[key];
  waiters.push_back(idx);
  // First waiter enqueues the work; later ones piggyback on the same
  // re-render whether it is still queued or already in a slot.
  if (waiters.size() == 1 && rerender_in_service_.count(key) == 0) {
    rerender_fifo_.push_back(key);
  }
  drain_rerenders();
}

void ViewerSessionManager::drain_rerenders() {
  while (rerendering_ < options_.rerender_workers && !rerender_fifo_.empty()) {
    // Claim every free slot: these re-renders run concurrently in virtual
    // time, so their real work may run concurrently on the pool too
    // (mirrors FrameReceiver::drain).
    std::vector<std::pair<RenderKey, Frame>> batch;
    while (static_cast<int>(batch.size()) <
               options_.rerender_workers - rerendering_ &&
           !rerender_fifo_.empty()) {
      const RenderKey key = rerender_fifo_.front();
      rerender_fifo_.pop_front();
      batch.emplace_back(key, meta(key.first));
    }
    for (const auto& b : batch) rerender_in_service_.insert(b.first);

    if (rerender_fn_) {
      if (pool_ != nullptr && batch.size() > 1) {
        pool_->parallel_for_chunked(
            0, batch.size(), static_cast<int>(batch.size()), /*chunk=*/1,
            [&](std::size_t lo, std::size_t hi) {
              for (std::size_t k = lo; k < hi; ++k) {
                rerender_fn_(batch[k].second);
              }
            });
      } else {
        for (const auto& b : batch) rerender_fn_(b.second);
      }
    }

    for (const auto& b : batch) {
      ++rerendering_;
      ++rerenders_;
      obs::count("serve.rerenders");
      const Frame& f = b.second;
      const WallSeconds cost(
          options_.rerender_fixed_seconds +
          options_.rerender_seconds_per_gb * f.decoded_bytes().gb());
      queue_.schedule_after(
          cost,
          [this, key = b.first, f] {
            --rerendering_;
            rerender_in_service_.erase(key);
            // Back into the cache: the next session replaying this era
            // hits instead of re-rendering again. Steered (non-default)
            // views are client-specific images and stay out of the
            // default-keyed cache.
            if (key.second.empty()) cache_.insert(f);
            std::vector<int> waiters = std::move(rerender_waiters_[key]);
            rerender_waiters_.erase(key);
            ADAPTVIZ_LOG_DEBUG("serve",
                               "frame #%lld re-rendered for %zu client(s)",
                               static_cast<long long>(f.sequence),
                               waiters.size());
            for (int idx : waiters) {
              Session& session = sessions_[static_cast<std::size_t>(idx)];
              session.waiting_rerender = false;
              if (session.detached) continue;  // result dropped
              if (session.in_flight) {
                session.pending = f;  // deliver after the current transfer
                continue;
              }
              start_transfer(idx, f, /*cache_hit=*/false);
            }
            drain_rerenders();
          },
          "serve.rerender");
    }
  }
}

}  // namespace adaptviz
